# In-service oracle-bite check, run as a ctest via `cmake -P`.
#
# Proves the tufp_serve --sanity oracles catch a real reclaim bug
# end-to-end: a session run under --inject leak-expired-capacity must
# (1) abort with exit code 3 mid-session,
# (2) leave a replayable repro dump in the scratch dir, and
# (3) re-fire (exit 3 again) when that dump is piped back through an
#     identically-configured daemon — the repro contract.
#
# Inputs: SERVE (tufp_serve binary), SESSION (session transcript piped to
# stdin), SCRATCH (directory for the repro dump and captured output).
foreach(var SERVE SESSION SCRATCH)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_sanity_test.cmake requires -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

set(serve_args --max-batch 16 --sanity every-2 --inject leak-expired-capacity
               --repro-dir ${SCRATCH})

execute_process(
  COMMAND ${SERVE} ${serve_args}
  INPUT_FILE ${SESSION}
  OUTPUT_FILE ${SCRATCH}/det.jsonl
  ERROR_FILE ${SCRATCH}/wall.txt
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 3)
  file(READ ${SCRATCH}/wall.txt wall_text)
  message(FATAL_ERROR "tufp_serve under fault injection exited ${run_rc}, "
          "expected 3 (sanity violation)\n${wall_text}")
endif()

file(GLOB repro_files ${SCRATCH}/serve-repro-*.txt)
list(LENGTH repro_files repro_count)
if(repro_count EQUAL 0)
  message(FATAL_ERROR "sanity violation fired but no repro dump was "
          "written to ${SCRATCH}")
endif()
list(GET repro_files 0 repro)

# The violation must be reported on the deterministic channel too.
file(READ ${SCRATCH}/det.jsonl det_text)
if(NOT det_text MATCHES "\"event\":\"sanity_violation\"")
  message(FATAL_ERROR "no sanity_violation event on the det channel:\n"
          "${det_text}")
endif()

# Replay: the dump must re-fire the same violation.
execute_process(
  COMMAND ${SERVE} ${serve_args}
  INPUT_FILE ${repro}
  OUTPUT_QUIET
  ERROR_QUIET
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 3)
  file(READ ${repro} repro_text)
  message(FATAL_ERROR "repro replay exited ${replay_rc}, expected the "
          "violation to re-fire (exit 3)\n--- dump\n${repro_text}")
endif()

# Control: the same session without injection must run clean.
execute_process(
  COMMAND ${SERVE} --max-batch 16 --sanity every-2 --repro-dir ${SCRATCH}
  INPUT_FILE ${SESSION}
  OUTPUT_QUIET
  ERROR_QUIET
  RESULT_VARIABLE clean_rc)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR "control session without fault injection exited "
          "${clean_rc}, expected 0 — the oracles are firing on healthy "
          "state")
endif()
