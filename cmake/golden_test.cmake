# Golden-trace comparison, run as a ctest via `cmake -P`.
#
# Inputs: ENGINE (binary path), ARGS (one shell-style argument string),
# GOLDEN (committed expected stdout), OUT (scratch path for actual stdout).
# Optional: EXPECT_RC (expected exit status, default 0 — repro replays
# exit 1 by contract when the violation re-fires); INPUT (file piped to
# the tool's stdin — how the tufp_serve session goldens drive a daemon
# the same way a shell pipe would).
# The tool's stdout is its deterministic channel (wall-clock goes to
# stderr), so the comparison is byte-for-byte.
foreach(var ENGINE ARGS GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_test.cmake requires -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXPECT_RC)
  set(EXPECT_RC 0)
endif()

separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
if(DEFINED INPUT)
  set(stdin_arg INPUT_FILE ${INPUT})
  set(stdin_hint "< ${INPUT} ")
else()
  set(stdin_arg)
  set(stdin_hint "")
endif()
execute_process(
  COMMAND ${ENGINE} ${arg_list}
  ${stdin_arg}
  OUTPUT_FILE ${OUT}
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL EXPECT_RC)
  message(FATAL_ERROR "${ENGINE} ${ARGS} exited ${run_rc}"
          " (expected ${EXPECT_RC})\n${stderr_text}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ ${OUT} actual)
  file(READ ${GOLDEN} expected)
  message(FATAL_ERROR
          "deterministic stdout drifted from the committed golden trace\n"
          "--- expected (${GOLDEN})\n${expected}\n"
          "--- actual (${OUT})\n${actual}\n"
          "If the change is intentional, regenerate the golden file:\n"
          "  ${ENGINE} ${ARGS} ${stdin_hint}> ${GOLDEN} 2>/dev/null")
endif()
