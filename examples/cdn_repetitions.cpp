// CDN replication planning — unsplittable flow *with repetitions* (§5).
//
// A content provider pushes stream replicas from its origin sites to
// regional exchanges. The same stream may be replicated many times over
// different paths, and profit scales with the number of replicas — exactly
// the repetitions variant, for which the paper's Algorithm 3 certifies a
// (1+eps) approximation (Theorem 5.1) instead of the e/(e-1) barrier of
// one-shot routing.
#include <iostream>

#include "tufp/graph/generators.hpp"
#include "tufp/ufp/bounded_ufp_repeat.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/scenarios.hpp"

int main() {
  using namespace tufp;

  // Backbone ring of 8 exchanges with chords, capacity 40 per link.
  Rng rng(7);
  Graph net = random_graph(/*n=*/8, /*num_edges=*/16, /*cap_min=*/40.0,
                           /*cap_max=*/40.0, /*directed=*/false, rng);

  // Five streams: (origin, exchange, per-replica bandwidth, per-replica
  // profit).
  std::vector<Request> streams{
      {0, 4, 1.0, 5.0},   // flagship live channel
      {1, 6, 0.8, 3.0},   // sports feed
      {2, 5, 0.6, 2.0},   // news
      {3, 7, 1.0, 2.5},   // movies
      {0, 7, 0.5, 1.0},   // long-tail catalogue
  };
  UfpInstance instance(std::move(net), std::move(streams));

  const double eps = 0.25;
  std::cout << "CDN: " << instance.graph().num_vertices() << " exchanges, "
            << instance.graph().num_edges() << " links of capacity "
            << instance.bound_B() << "; " << instance.num_requests()
            << " streams, eps = " << eps << "\n\n";

  BoundedUfpRepeatConfig config;
  config.epsilon = eps;
  const BoundedUfpRepeatResult plan = bounded_ufp_repeat(instance, config);

  Table table({"stream", "route", "bandwidth/replica", "profit/replica",
               "replicas", "total profit"});
  table.set_precision(2);
  for (int r = 0; r < instance.num_requests(); ++r) {
    const Request& req = instance.request(r);
    table.row()
        .cell(r)
        .cell(std::to_string(req.source) + " -> " + std::to_string(req.target))
        .cell(req.demand)
        .cell(req.value)
        .cell(plan.solution.repetitions_of(r))
        .cell(plan.solution.repetitions_of(r) * req.value);
  }
  table.print(std::cout);

  const auto loads = plan.solution.edge_loads(instance);
  double max_util = 0.0;
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    max_util = std::max(max_util, loads[static_cast<std::size_t>(e)] /
                                      instance.graph().capacity(e));
  }

  const double value = plan.solution.total_value(instance);
  std::cout << "\nreplication rounds: " << plan.iterations
            << "\ntotal profit: " << value
            << "\nprovable upper bound (dual certificate): "
            << plan.dual_upper_bound
            << "\ncertified gap: " << plan.dual_upper_bound / value
            << "  (Theorem 5.1 bound at this eps: " << 1.0 + 6.0 * eps << ")"
            << "\npeak link utilization: " << max_util * 100 << "%"
            << "\nfeasible: "
            << (plan.solution.check_feasibility(instance).feasible ? "yes"
                                                                   : "no")
            << "\n";
  return 0;
}
