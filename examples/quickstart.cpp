// Quickstart: build a tiny network, run the truthful unsplittable-flow
// mechanism, and read out allocations, payments and utilities.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/table.hpp"

int main() {
  using namespace tufp;

  // 1. A directed network. Edge capacities bound how much demand can cross.
  //
  //        0 ----> 1 ----> 3
  //         \             ^
  //          `----> 2 ---'
  Graph g = Graph::directed(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();

  // 2. Selfish agents declare (source, target, demand, value). Demands are
  //    normalized into (0, 1]; terminals are public, demand and value are
  //    private — exactly the paper's "unknown demand and value" setting.
  UfpInstance instance(std::move(g), {
                                         {0, 3, 1.0, 9.0},  // agent 0
                                         {0, 3, 1.0, 7.0},  // agent 1
                                         {0, 3, 0.8, 6.5},  // agent 2
                                         {0, 3, 0.9, 2.0},  // agent 3
                                     });

  // 3. The allocation rule: Bounded-UFP (Algorithm 1). It is monotone and
  //    exact, so critical-value payments make the overall mechanism
  //    truthful (Theorem 2.3 / Corollary 3.2). The saturation flag keeps
  //    the run meaningful on this deliberately tiny network (B = 1 sits
  //    outside the paper's ln(m) regime, where the faithful threshold
  //    would stop before selecting anything).
  BoundedUfpConfig config;
  config.run_to_saturation = true;
  const UfpRule rule = make_bounded_ufp_rule(config);

  // 4. Run allocation + payments in one call.
  const UfpMechanismResult result = run_ufp_mechanism(instance, rule);

  Table table({"agent", "demand", "declared value", "allocated", "payment",
               "utility"});
  table.set_precision(3);
  for (int r = 0; r < instance.num_requests(); ++r) {
    const Request& req = instance.request(r);
    table.row()
        .cell(r)
        .cell(req.demand)
        .cell(req.value)
        .cell(result.allocation.is_selected(r) ? "yes" : "no")
        .cell(result.payments[r])
        .cell(result.utilities[r]);
  }
  table.print(std::cout);

  std::cout << "\nsocial value: " << result.allocation.total_value(instance)
            << ", feasible: "
            << (result.allocation.check_feasibility(instance).feasible ? "yes"
                                                                       : "no")
            << "\nWinners pay their critical value - the smallest declaration"
            << "\nthat still wins - so no agent can gain by lying.\n";
  return 0;
}
