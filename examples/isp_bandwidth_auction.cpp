// ISP bandwidth auction — the paper's motivating network-routing scenario.
//
// An ISP sells guaranteed-bandwidth connections over its backbone mesh.
// Customers (selfish agents) declare endpoint pairs, bandwidth demands and
// willingness to pay. The operator wants high welfare AND robustness to
// strategic bidding: Bounded-UFP + critical payments delivers both in the
// large-capacity regime (link capacity >> single-flow demand), with the
// e/(e-1) welfare guarantee of Theorem 3.1.
#include <iostream>

#include "tufp/baselines/greedy.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/mechanism/truthfulness_audit.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

int main() {
  using namespace tufp;

  // Backbone: 4x5 mesh; every link carries B units, with B chosen inside
  // the Omega(ln m)/eps^2 regime so the paper-faithful algorithm applies.
  const double eps = 0.5;
  Rng rng(2007);
  Graph probe = grid_graph(4, 5, 1.0, false);
  const double B = regime_capacity(probe.num_edges(), eps, 1.1);
  Graph backbone = grid_graph(4, 5, B, false);

  // 40 customers; values roughly proportional to bandwidth-distance
  // (long-haul fat flows are worth more), demands up to one unit.
  RequestGenConfig gen;
  gen.num_requests = 40;
  gen.value_model = ValueModel::kProportional;
  std::vector<Request> customers = generate_requests(backbone, gen, rng);
  UfpInstance instance(std::move(backbone), std::move(customers));

  std::cout << "ISP backbone: " << instance.graph().num_vertices()
            << " PoPs, " << instance.graph().num_edges()
            << " links of capacity " << B << " (regime for eps=" << eps
            << ")\n"
            << instance.num_requests() << " customers bidding\n\n";

  BoundedUfpConfig config;
  config.epsilon = eps;
  const UfpRule rule = make_bounded_ufp_rule(config);
  const UfpMechanismResult mech = run_ufp_mechanism(instance, rule);

  // Summary table: top ten winners by payment.
  struct Row {
    int agent;
    double value, payment;
  };
  std::vector<Row> winners;
  for (int r = 0; r < instance.num_requests(); ++r) {
    if (mech.allocation.is_selected(r)) {
      winners.push_back({r, instance.request(r).value, mech.payments[r]});
    }
  }
  std::sort(winners.begin(), winners.end(),
            [](const Row& a, const Row& b) { return a.payment > b.payment; });

  Table top({"customer", "declared value", "payment", "surplus"});
  top.set_precision(3);
  for (std::size_t i = 0; i < winners.size() && i < 10; ++i) {
    top.row()
        .cell(winners[i].agent)
        .cell(winners[i].value)
        .cell(winners[i].payment)
        .cell(winners[i].value - winners[i].payment);
  }
  std::cout << "top winners by payment:\n";
  top.print(std::cout);

  double revenue = 0.0;
  for (double p : mech.payments) revenue += p;
  const double welfare = mech.allocation.total_value(instance);

  // Compare against the classical truthful greedy.
  const double greedy_welfare =
      greedy_ufp(instance, GreedyRanking::kByDensity).total_value(instance);

  // Link utilization.
  const auto loads = mech.allocation.edge_loads(instance);
  double max_util = 0.0, avg_util = 0.0;
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    const double u = loads[static_cast<std::size_t>(e)] /
                     instance.graph().capacity(e);
    max_util = std::max(max_util, u);
    avg_util += u;
  }
  avg_util /= instance.graph().num_edges();

  std::cout << "\naccepted " << mech.allocation.num_selected() << "/"
            << instance.num_requests() << " customers"
            << "\nwelfare:        " << welfare
            << "\nrevenue:        " << revenue
            << "\ngreedy welfare: " << greedy_welfare
            << "\nlink utilization: avg " << avg_util * 100 << "%, max "
            << max_util * 100 << "%\n";

  // Spot-audit incentives: simulate strategic customers.
  AuditOptions audit;
  audit.value_misreports_per_agent = 4;
  audit.demand_misreports_per_agent = 2;
  const AuditReport report = audit_ufp_truthfulness(instance, rule, audit);
  std::cout << "\nstrategic audit: " << report.misreports_tried
            << " misreports simulated, " << report.violations.size()
            << " profitable (expected: 0)\n";
  return report.truthful() ? 0 : 1;
}
