// Spectrum license auction — the multi-unit combinatorial auction of §4.
//
// A regulator sells B identical licenses per frequency band. Operators are
// single-minded: each wants one specific band bundle (its planned
// footprint) and has a private valuation — and in the *unknown
// single-minded* setting of Corollary 4.2 it could also lie about the
// bundle. Bounded-MUCA + critical payments is truthful against both.
#include <iostream>

#include "tufp/auction/bounded_muca.hpp"
#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/mechanism/truthfulness_audit.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/scenarios.hpp"

int main() {
  using namespace tufp;

  // 14 frequency bands, 6 licenses each; 30 single-minded operators
  // wanting footprints of 2-5 bands.
  const int bands = 14;
  const int licenses_per_band = 6;
  const MucaInstance auction = make_random_auction(
      bands, licenses_per_band, /*num_requests=*/30, /*bundle_min=*/2,
      /*bundle_max=*/5, /*value_min=*/1.0, /*value_max=*/20.0, /*seed=*/42);

  std::cout << "spectrum auction: " << bands << " bands x "
            << licenses_per_band << " licenses, " << auction.num_requests()
            << " single-minded operators\n\n";

  // B = 6 vs ln(14) ~ 2.64: within the Omega(ln m) regime for eps ~ 0.67.
  BoundedMucaConfig config;
  config.epsilon = 0.67;
  const MucaRule rule = make_bounded_muca_rule(config);
  const MucaMechanismResult mech = run_muca_mechanism(auction, rule);

  Table table({"operator", "bands wanted", "declared value", "won", "payment"});
  table.set_precision(2);
  for (int r = 0; r < auction.num_requests(); ++r) {
    const MucaRequest& req = auction.request(r);
    table.row()
        .cell(r)
        .cell(req.bundle.size())
        .cell(req.value)
        .cell(mech.allocation.is_selected(r) ? "yes" : "no")
        .cell(mech.payments[r]);
  }
  table.print(std::cout);

  double revenue = 0.0;
  for (double p : mech.payments) revenue += p;
  const auto loads = mech.allocation.item_loads(auction);
  int fully_sold = 0;
  for (int u = 0; u < auction.num_items(); ++u) {
    fully_sold += loads[static_cast<std::size_t>(u)] == licenses_per_band;
  }

  std::cout << "\nwinners: " << mech.allocation.num_selected() << "/"
            << auction.num_requests() << ", welfare "
            << mech.allocation.total_value(auction) << ", revenue " << revenue
            << "\nfully sold bands: " << fully_sold << "/" << bands << "\n";

  // Audit the unknown-single-minded incentives: value lies AND bundle lies
  // (declaring more or fewer bands than actually needed).
  AuditOptions audit;
  audit.value_misreports_per_agent = 4;
  audit.bundle_misreports_per_agent = 4;
  const AuditReport report = audit_muca_truthfulness(auction, rule, audit);
  std::cout << "\nstrategic audit (value + bundle misreports): "
            << report.misreports_tried << " tried, "
            << report.violations.size() << " profitable (expected: 0)\n";
  return report.truthful() ? 0 : 1;
}
