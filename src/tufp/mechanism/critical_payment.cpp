#include "tufp/mechanism/critical_payment.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

// Generic bisection for the winning threshold of a monotone predicate
// wins(v): wins(declared) must hold; returns an upper bracket of
// inf{v : wins(v)}. Never probes v <= 0 (values must stay positive).
template <typename WinsAt>
double bisect_critical(double declared, WinsAt&& wins_at,
                       const PaymentOptions& options, long* evaluations) {
  double lo = 0.0;   // known-losing (or the open limit v -> 0+)
  double hi = declared;  // known-winning
  for (int step = 0; step < options.max_bisection_steps; ++step) {
    if (hi - lo <= options.tolerance * std::max(1.0, hi)) break;
    const double mid = 0.5 * (lo + hi);
    if (mid <= 0.0) break;
    if (evaluations != nullptr) ++*evaluations;
    if (wins_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

double ufp_critical_value(const UfpInstance& instance, const UfpRule& rule,
                          int r, const PaymentOptions& options,
                          long* evaluations) {
  const Request& declared = instance.request(r);
  const auto wins_at = [&](double v) {
    Request probe = declared;
    probe.value = v;
    return rule(instance.with_request(r, probe)).is_selected(r);
  };
  return bisect_critical(declared.value, wins_at, options, evaluations);
}

double muca_critical_value(const MucaInstance& instance, const MucaRule& rule,
                           int r, const PaymentOptions& options,
                           long* evaluations) {
  const MucaRequest& declared = instance.request(r);
  const auto wins_at = [&](double v) {
    MucaRequest probe = declared;
    probe.value = v;
    return rule(instance.with_request(r, probe)).is_selected(r);
  };
  return bisect_critical(declared.value, wins_at, options, evaluations);
}

double ufp_critical_demand(const UfpInstance& instance, const UfpRule& rule,
                           int r, const PaymentOptions& options,
                           long* evaluations) {
  const Request& declared = instance.request(r);
  const auto wins_at = [&](double d) {
    Request probe = declared;
    probe.demand = d;
    return rule(instance.with_request(r, probe)).is_selected(r);
  };
  TUFP_REQUIRE(wins_at(declared.demand),
               "critical demand is defined for winning requests");
  if (evaluations != nullptr) ++*evaluations;
  double lo = declared.demand;  // known winning
  double hi = 1.0;              // normalized ceiling, possibly winning too
  if (wins_at(hi)) return hi;
  if (evaluations != nullptr) ++*evaluations;
  for (int step = 0; step < options.max_bisection_steps; ++step) {
    if (hi - lo <= options.tolerance * std::max(1.0, hi)) break;
    const double mid = 0.5 * (lo + hi);
    if (evaluations != nullptr) ++*evaluations;
    if (wins_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

UfpMechanismResult run_ufp_mechanism(const UfpInstance& instance,
                                     const UfpRule& rule,
                                     const PaymentOptions& options) {
  UfpMechanismResult result{rule(instance)};
  const int R = instance.num_requests();
  TUFP_CHECK(result.allocation.num_requests() == R,
             "rule returned a solution of the wrong arity");
  result.payments.assign(static_cast<std::size_t>(R), 0.0);
  result.utilities.assign(static_cast<std::size_t>(R), 0.0);
  for (int r = 0; r < R; ++r) {
    if (!result.allocation.is_selected(r)) continue;
    const double payment =
        ufp_critical_value(instance, rule, r, options, &result.rule_evaluations);
    result.payments[static_cast<std::size_t>(r)] = payment;
    result.utilities[static_cast<std::size_t>(r)] =
        instance.request(r).value - payment;
  }
  return result;
}

MucaMechanismResult run_muca_mechanism(const MucaInstance& instance,
                                       const MucaRule& rule,
                                       const PaymentOptions& options) {
  MucaMechanismResult result{rule(instance)};
  const int R = instance.num_requests();
  TUFP_CHECK(result.allocation.num_requests() == R,
             "rule returned a solution of the wrong arity");
  result.payments.assign(static_cast<std::size_t>(R), 0.0);
  result.utilities.assign(static_cast<std::size_t>(R), 0.0);
  for (int r = 0; r < R; ++r) {
    if (!result.allocation.is_selected(r)) continue;
    const double payment = muca_critical_value(instance, rule, r, options,
                                               &result.rule_evaluations);
    result.payments[static_cast<std::size_t>(r)] = payment;
    result.utilities[static_cast<std::size_t>(r)] =
        instance.request(r).value - payment;
  }
  return result;
}

}  // namespace tufp
