#include "tufp/mechanism/truthfulness_audit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

// Deterministic grid of value-misreport factors, padded with random draws.
std::vector<double> value_factors(int count, Rng& rng) {
  static constexpr double kGrid[] = {0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2.0, 4.0};
  std::vector<double> factors;
  for (double f : kGrid) {
    if (static_cast<int>(factors.size()) >= count) break;
    factors.push_back(f);
  }
  while (static_cast<int>(factors.size()) < count) {
    factors.push_back(rng.next_double(0.1, 5.0));
  }
  return factors;
}

}  // namespace

AuditReport audit_ufp_truthfulness(const UfpInstance& instance,
                                   const UfpRule& rule,
                                   const AuditOptions& options) {
  Rng rng(options.seed);
  const UfpMechanismResult truthful =
      run_ufp_mechanism(instance, rule, options.payments);

  AuditReport report;
  report.agents_audited = instance.num_requests();

  for (int r = 0; r < instance.num_requests(); ++r) {
    const Request& truth = instance.request(r);
    const double truthful_utility = truthful.utilities[static_cast<std::size_t>(r)];

    // Candidate misreports: value scalings at the true demand, plus demand
    // shadings/inflations at the true value (inflations capped at 1 to stay
    // inside the normalized declaration space).
    std::vector<Request> probes;
    for (double f : value_factors(options.value_misreports_per_agent, rng)) {
      Request probe = truth;
      probe.value = truth.value * f;
      probes.push_back(probe);
    }
    for (int k = 0; k < options.demand_misreports_per_agent; ++k) {
      Request probe = truth;
      probe.demand = k % 2 == 0
                         ? truth.demand * rng.next_double(0.3, 0.95)
                         : std::min(1.0, truth.demand * rng.next_double(1.05, 2.0));
      if (probe.demand <= 0.0 || probe.demand == truth.demand) continue;
      probes.push_back(probe);
    }

    if (options.probe_zero_value) {
      // A zero-value bid cannot even be declared (UfpInstance validates
      // v > 0): the mechanism reads it as opting out, for a guaranteed
      // utility of 0. Individual rationality demands truth-telling never
      // fall below that outside the bisection tolerance.
      ++report.misreports_tried;
      if (0.0 > truthful_utility + options.tolerance) {
        std::ostringstream os;
        os << "agent " << r << " prefers the zero-value opt-out (utility 0) "
           << "to truth-telling (utility " << truthful_utility << ")";
        report.violations.push_back(
            {r, truthful_utility, 0.0, 0.0, truth.demand, os.str()});
      }
    }

    for (const Request& probe : probes) {
      ++report.misreports_tried;
      const UfpInstance misreported = instance.with_request(r, probe);
      if (!rule(misreported).is_selected(r)) continue;  // loser: utility 0
      long evals = 0;
      const double payment =
          ufp_critical_value(misreported, rule, r, options.payments, &evals);
      // Exactness: the mechanism routes the *declared* demand, so an agent
      // that shaded its demand receives an unusable allocation.
      const bool covers = probe.demand >= truth.demand - 1e-12;
      const double utility = (covers ? truth.value : 0.0) - payment;
      if (utility > truthful_utility + options.tolerance) {
        std::ostringstream os;
        os << "agent " << r << " gains by declaring (d=" << probe.demand
           << ", v=" << probe.value << ") instead of (d=" << truth.demand
           << ", v=" << truth.value << ")";
        report.violations.push_back({r, truthful_utility, utility, probe.value,
                                     probe.demand, os.str()});
      }
    }
  }
  return report;
}

AuditReport audit_muca_truthfulness(const MucaInstance& instance,
                                    const MucaRule& rule,
                                    const AuditOptions& options) {
  Rng rng(options.seed);
  const MucaMechanismResult truthful =
      run_muca_mechanism(instance, rule, options.payments);

  AuditReport report;
  report.agents_audited = instance.num_requests();

  for (int r = 0; r < instance.num_requests(); ++r) {
    const MucaRequest& truth = instance.request(r);
    const double truthful_utility = truthful.utilities[static_cast<std::size_t>(r)];

    std::vector<MucaRequest> probes;
    for (double f : value_factors(options.value_misreports_per_agent, rng)) {
      MucaRequest probe = truth;
      probe.value = truth.value * f;
      probes.push_back(probe);
    }
    // Unknown single-minded agents may also lie about the bundle:
    // alternately drop an item (under-declare) or add one (over-declare).
    const std::set<int> truth_items(truth.bundle.begin(), truth.bundle.end());
    for (int k = 0; k < options.bundle_misreports_per_agent; ++k) {
      MucaRequest probe = truth;
      if (k % 2 == 0 && probe.bundle.size() > 1) {
        const auto drop = static_cast<std::size_t>(
            rng.next_below(probe.bundle.size()));
        probe.bundle.erase(probe.bundle.begin() + static_cast<std::ptrdiff_t>(drop));
      } else {
        const int extra = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(instance.num_items())));
        if (truth_items.contains(extra)) continue;
        probe.bundle.push_back(extra);
      }
      probes.push_back(probe);
    }

    if (options.probe_zero_value) {
      // Same boundary probe as the UFP audit: opting out guarantees 0.
      ++report.misreports_tried;
      if (0.0 > truthful_utility + options.tolerance) {
        std::ostringstream os;
        os << "agent " << r << " prefers the zero-value opt-out (utility 0) "
           << "to truth-telling (utility " << truthful_utility << ")";
        report.violations.push_back(
            {r, truthful_utility, 0.0, 0.0, 0.0, os.str()});
      }
    }

    for (const MucaRequest& probe : probes) {
      ++report.misreports_tried;
      const MucaInstance misreported = instance.with_request(r, probe);
      if (!rule(misreported).is_selected(r)) continue;
      long evals = 0;
      const double payment =
          muca_critical_value(misreported, rule, r, options.payments, &evals);
      // The declared bundle covers the agent's need iff it contains every
      // item of the true bundle.
      const std::set<int> declared_items(probe.bundle.begin(), probe.bundle.end());
      bool covers = true;
      for (int u : truth.bundle) {
        if (!declared_items.contains(u)) {
          covers = false;
          break;
        }
      }
      const double utility = (covers ? truth.value : 0.0) - payment;
      if (utility > truthful_utility + options.tolerance) {
        std::ostringstream os;
        os << "agent " << r << " gains by declaring value " << probe.value
           << " with a bundle of " << probe.bundle.size() << " items";
        report.violations.push_back(
            {r, truthful_utility, utility, probe.value, 0.0, os.str()});
      }
    }
  }
  return report;
}

MonotonicityReport audit_ufp_monotonicity(const UfpInstance& instance,
                                          const UfpRule& rule,
                                          const MonotonicityOptions& options) {
  Rng rng(options.seed);
  const UfpSolution base = rule(instance);

  MonotonicityReport report;
  report.agents_audited = instance.num_requests();

  for (int r = 0; r < instance.num_requests(); ++r) {
    const Request& truth = instance.request(r);
    for (int k = 0; k < options.probes_per_agent; ++k) {
      ++report.probes_tried;
      Request probe = truth;
      if (base.is_selected(r)) {
        // Definition 2.1: an improvement must keep the request selected.
        probe.value = truth.value * rng.next_double(1.0, 4.0);
        probe.demand = truth.demand * rng.next_double(0.25, 1.0);
      } else {
        // Contrapositive: a worsening must keep it unselected.
        probe.value = truth.value * rng.next_double(0.25, 1.0);
        probe.demand = std::min(1.0, truth.demand * rng.next_double(1.0, 2.0));
      }
      const bool now_selected =
          rule(instance.with_request(r, probe)).is_selected(r);
      const bool violated =
          base.is_selected(r) ? !now_selected : now_selected;
      if (violated) {
        report.violations.push_back({r, truth.value, probe.value, truth.demand,
                                     probe.demand});
      }
    }
  }
  return report;
}

MonotonicityReport audit_muca_monotonicity(const MucaInstance& instance,
                                           const MucaRule& rule,
                                           const MonotonicityOptions& options) {
  Rng rng(options.seed);
  const MucaSolution base = rule(instance);

  MonotonicityReport report;
  report.agents_audited = instance.num_requests();

  for (int r = 0; r < instance.num_requests(); ++r) {
    const MucaRequest& truth = instance.request(r);
    for (int k = 0; k < options.probes_per_agent; ++k) {
      ++report.probes_tried;
      MucaRequest probe = truth;
      probe.value = base.is_selected(r) ? truth.value * rng.next_double(1.0, 4.0)
                                        : truth.value * rng.next_double(0.25, 1.0);
      const bool now_selected =
          rule(instance.with_request(r, probe)).is_selected(r);
      const bool violated =
          base.is_selected(r) ? !now_selected : now_selected;
      if (violated) {
        report.violations.push_back({r, truth.value, probe.value, 0.0, 0.0});
      }
    }
  }
  return report;
}

}  // namespace tufp
