// Empirical truthfulness and monotonicity auditing.
//
// The paper's guarantee is game-theoretic: under Bounded-UFP/Bounded-MUCA
// with critical payments, no agent can gain utility by misreporting its
// private type (Corollaries 3.2/4.2). These auditors *simulate* the selfish
// agents the setting postulates: for each agent they sweep a grid plus
// random sample of misreports — value scalings, demand inflation/shading,
// and for MUCA bundle supersets/subsets (the unknown single-minded case) —
// recompute the full mechanism outcome, and compare the agent's utility at
// its true valuation against the truthful run. A violation is a misreport
// that strictly beats truth-telling beyond tolerance.
//
// Utility model (single-minded, quasi-linear): an agent whose allocation
// covers its true requirement (demand' >= demand_true; bundle' a superset
// of the true bundle) enjoys its true value; an allocation that under-covers
// is worthless; winners pay their critical value, losers pay nothing.
//
// The same driver exposes a direct Definition-2.1 monotonicity audit, used
// both to certify the paper's algorithms and to demonstrate that the
// classical randomized-rounding baseline is *not* monotone (bench E8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/util/rng.hpp"

namespace tufp {

struct AuditOptions {
  int value_misreports_per_agent = 8;
  int demand_misreports_per_agent = 4;  // UFP only
  int bundle_misreports_per_agent = 4;  // MUCA only
  // Also probe the boundary of the declaration space: a zero-value bid.
  // Zero is outside the valid type space (instances require v > 0), so
  // the mechanism treats it as non-participation — the agent is never
  // allocated and pays nothing, utility exactly 0. The probe flags an
  // individual-rationality breach: truth-telling must never be worse than
  // opting out. Off by default to keep misreports_tried stable for
  // existing callers.
  bool probe_zero_value = false;
  double tolerance = 1e-4;  // must exceed the payment bisection tolerance
  std::uint64_t seed = 0x5eed;
  PaymentOptions payments;
};

struct AuditViolation {
  int agent = -1;
  double truthful_utility = 0.0;
  double misreport_utility = 0.0;
  double declared_value = 0.0;
  double declared_demand = 0.0;  // UFP
  std::string description;
};

struct AuditReport {
  int agents_audited = 0;
  long misreports_tried = 0;
  std::vector<AuditViolation> violations;
  bool truthful() const { return violations.empty(); }
};

AuditReport audit_ufp_truthfulness(const UfpInstance& instance,
                                   const UfpRule& rule,
                                   const AuditOptions& options = {});

AuditReport audit_muca_truthfulness(const MucaInstance& instance,
                                    const MucaRule& rule,
                                    const AuditOptions& options = {});

// Direct Definition-2.1 check: for sampled agents and sampled
// improvements (value up, demand down; everything else fixed), a selected
// request must stay selected. Returns violations found.
struct MonotonicityOptions {
  int probes_per_agent = 6;
  std::uint64_t seed = 0xcafe;
};

struct MonotonicityViolation {
  int agent = -1;
  double original_value = 0.0, improved_value = 0.0;
  double original_demand = 0.0, improved_demand = 0.0;
};

struct MonotonicityReport {
  int agents_audited = 0;
  long probes_tried = 0;
  std::vector<MonotonicityViolation> violations;
  bool monotone() const { return violations.empty(); }
};

MonotonicityReport audit_ufp_monotonicity(const UfpInstance& instance,
                                          const UfpRule& rule,
                                          const MonotonicityOptions& options = {});

MonotonicityReport audit_muca_monotonicity(
    const MucaInstance& instance, const MucaRule& rule,
    const MonotonicityOptions& options = {});

}  // namespace tufp
