// Allocation rules — the algorithmic half of a mechanism.
//
// Theorem 2.3 (Lehmann et al. / Briest et al.): a monotone and exact
// allocation algorithm induces a truthful mechanism once winners are
// charged their critical values. The payment and audit machinery below
// is algorithm-agnostic: any callable mapping an instance to a solution
// can be plugged in, including non-monotone baselines (which the auditors
// then catch red-handed — bench E8).
#pragma once

#include <functional>

#include "tufp/auction/bounded_muca.hpp"
#include "tufp/ufp/bounded_ufp.hpp"

namespace tufp {

using UfpRule = std::function<UfpSolution(const UfpInstance&)>;
using MucaRule = std::function<MucaSolution(const MucaInstance&)>;

// The paper's Algorithm 1 as an allocation rule (monotone + exact, so the
// induced mechanism is truthful — Corollary 3.2).
UfpRule make_bounded_ufp_rule(const BoundedUfpConfig& config = {});

// The paper's Algorithm 2 (Corollary 4.2, unknown single-minded agents).
MucaRule make_bounded_muca_rule(const BoundedMucaConfig& config = {});

}  // namespace tufp
