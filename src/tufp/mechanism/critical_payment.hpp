// Critical-value payments: the pricing half of a truthful mechanism.
//
// For a monotone allocation rule the set of winning declared values of an
// agent (everything else fixed) is an up-closed interval; its infimum is
// the agent's *critical value*, and charging exactly that makes
// truth-telling a dominant strategy (Theorem 2.3). Monotonicity makes the
// critical value computable by bisection on the declared value: each probe
// re-runs the allocation rule on a single-declaration variant of the
// instance. Losers pay zero (normalization).
//
// The bisection brackets theta within a configurable relative tolerance;
// payments are reported as the upper end of the bracket, so they never
// undercharge by more than the bracket width and never exceed the declared
// value (individual rationality).
#pragma once

#include <vector>

#include "tufp/mechanism/allocation_rule.hpp"

namespace tufp {

struct PaymentOptions {
  // Bisection stops when hi - lo <= tolerance * max(1, hi).
  double tolerance = 1e-6;
  int max_bisection_steps = 80;
};

struct UfpMechanismResult {
  UfpSolution allocation;
  std::vector<double> payments;   // per request; 0 for losers
  std::vector<double> utilities;  // v_r - payment for winners, else 0
  long rule_evaluations = 0;      // total allocation-rule re-runs
};

struct MucaMechanismResult {
  MucaSolution allocation;
  std::vector<double> payments;
  std::vector<double> utilities;
  long rule_evaluations = 0;
};

// Runs allocation + critical payments for every winner. The rule must be
// monotone for the output to be a truthful mechanism; the function itself
// only requires that rule(instance) is deterministic.
UfpMechanismResult run_ufp_mechanism(const UfpInstance& instance,
                                     const UfpRule& rule,
                                     const PaymentOptions& options = {});

MucaMechanismResult run_muca_mechanism(const MucaInstance& instance,
                                       const MucaRule& rule,
                                       const PaymentOptions& options = {});

// The critical value of request r under `rule` at its declared demand
// (bisection; requires r to win at its declared value). Exposed for tests
// and the truthfulness auditors.
double ufp_critical_value(const UfpInstance& instance, const UfpRule& rule,
                          int r, const PaymentOptions& options = {},
                          long* evaluations = nullptr);

double muca_critical_value(const MucaInstance& instance, const MucaRule& rule,
                           int r, const PaymentOptions& options = {},
                           long* evaluations = nullptr);

// The other axis of the two-parameter type (d_r, v_r): the largest demand
// at which request r still wins, holding its declared value fixed.
// Monotonicity (Definition 2.1) makes the winning demand set down-closed,
// so the threshold is well defined; the bisection searches (declared, 1]
// and returns the known-winning end of the bracket. Requires r to win at
// its declared demand. Useful for diagnosing how much headroom a winner
// has, and exercised by the truthfulness tests (over-declaring demand
// beyond this threshold loses).
double ufp_critical_demand(const UfpInstance& instance, const UfpRule& rule,
                           int r, const PaymentOptions& options = {},
                           long* evaluations = nullptr);

}  // namespace tufp
