#include "tufp/mechanism/allocation_rule.hpp"

namespace tufp {

UfpRule make_bounded_ufp_rule(const BoundedUfpConfig& config) {
  return [config](const UfpInstance& instance) {
    return bounded_ufp(instance, config).solution;
  };
}

MucaRule make_bounded_muca_rule(const BoundedMucaConfig& config) {
  return [config](const MucaInstance& instance) {
    return bounded_muca(instance, config).solution;
  };
}

}  // namespace tufp
