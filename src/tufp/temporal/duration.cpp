#include "tufp/temporal/duration.hpp"

#include <cmath>
#include <stdexcept>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

// Pareto shape for the heavy-tailed profile: α = 1.5 has finite mean but
// infinite variance — the classic "elephants and mice" holding-time mix.
constexpr double kParetoAlpha = 1.5;
constexpr double kPi = 3.14159265358979323846;

}  // namespace

const char* duration_profile_name(DurationProfile profile) {
  switch (profile) {
    case DurationProfile::kInfinite: return "infinite";
    case DurationProfile::kFixed: return "fixed";
    case DurationProfile::kExponential: return "exponential";
    case DurationProfile::kHeavyTailed: return "heavy-tailed";
    case DurationProfile::kDiurnal: return "diurnal";
    case DurationProfile::kFlashCrowd: return "flash-crowd";
    case DurationProfile::kAuto: return "auto";
  }
  return "unknown";
}

DurationProfile duration_profile_from_name(const std::string& name) {
  for (DurationProfile p : kAllDurationProfiles) {
    if (name == duration_profile_name(p)) return p;
  }
  throw std::invalid_argument("unknown duration profile: " + name);
}

DurationSampler::DurationSampler(const DurationConfig& config,
                                 std::uint64_t seed)
    : config_(config), rng_(seed) {
  TUFP_REQUIRE(config.profile != DurationProfile::kAuto,
               "kAuto is a sim-layer sentinel, not a samplable profile");
  if (config.profile != DurationProfile::kInfinite) {
    TUFP_REQUIRE(config.mean > 0.0 && std::isfinite(config.mean),
                 "duration mean must be positive and finite");
    TUFP_REQUIRE(config.period > 0.0 && std::isfinite(config.period),
                 "duration period must be positive and finite");
  }
}

double DurationSampler::sample(double arrival_time) {
  switch (config_.profile) {
    case DurationProfile::kInfinite:
      return kInf;
    case DurationProfile::kFixed:
      return config_.mean;
    case DurationProfile::kExponential:
      // Inverse CDF on (0,1]: log never sees zero, duration never is.
      return -config_.mean * std::log(1.0 - rng_.next_double());
    case DurationProfile::kHeavyTailed: {
      // Pareto with x_m chosen so the mean matches config_.mean:
      // mean = x_m * α/(α-1)  =>  x_m = mean (α-1)/α.
      const double xm = config_.mean * (kParetoAlpha - 1.0) / kParetoAlpha;
      const double u = rng_.next_double();  // in [0,1)
      return xm * std::pow(1.0 - u, -1.0 / kParetoAlpha);
    }
    case DurationProfile::kDiurnal: {
      // Phase in [0,1] of the arrival within the cycle scales an
      // exponential base draw by [0.3, 1.7]: mean over a full cycle stays
      // config_.mean, but leases cluster long at peak and short at trough.
      const double phase =
          0.5 * (1.0 + std::sin(2.0 * kPi * arrival_time / config_.period));
      const double base = -config_.mean * std::log(1.0 - rng_.next_double());
      return base * (0.3 + 1.4 * phase);
    }
    case DurationProfile::kFlashCrowd: {
      // Expire at the next window boundary strictly after the arrival:
      // every admission of a window releases at the same instant.
      const double next_boundary =
          (std::floor(arrival_time / config_.period) + 1.0) * config_.period;
      return next_boundary - arrival_time;
    }
    case DurationProfile::kAuto:
      break;  // rejected by the constructor
  }
  TUFP_CHECK(false, "unhandled duration profile");
}

}  // namespace tufp
