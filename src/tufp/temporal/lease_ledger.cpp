#include "tufp/temporal/lease_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp::temporal {

LeaseLedger::LeaseLedger(int num_edges, LeaseLedgerConfig config)
    : config_(config),
      wheel_(config.tick_seconds),
      leased_demand_(static_cast<std::size_t>(num_edges), 0.0),
      active_on_edge_(static_cast<std::size_t>(num_edges), 0) {
  TUFP_REQUIRE(num_edges >= 1, "lease ledger needs a non-empty edge space");
}

LeaseId LeaseLedger::admit(std::int64_t sequence, double demand,
                           std::vector<EdgeId> edges, double now,
                           double expires_at) {
  TUFP_REQUIRE(demand > 0.0 && std::isfinite(demand),
               "lease demand must be positive and finite");
  TUFP_REQUIRE(!edges.empty(), "a lease must hold at least one edge");
  TUFP_REQUIRE(expires_at >= now, "a lease cannot expire before it starts");
  const LeaseId id = next_id_++;
  for (const EdgeId e : edges) {
    const auto ei = static_cast<std::size_t>(e);
    leased_demand_[ei] += demand;
    ++active_on_edge_[ei];
  }
  leased_capacity_ += demand * static_cast<double>(edges.size());
  if (expires_at < kInf) {
    // The wheel clock may already sit past this expiry: reclaim_until()
    // advances it to the frontier, and a driver may legally admit from an
    // older batch afterwards (EpochEngine::run_epoch). Such a lease is
    // due immediately — schedule it at the frontier instead of tripping
    // the wheel's no-past precondition; it drains on the next reclaim.
    wheel_.schedule(std::max(expires_at, wheel_.now()), id);
    ++finite_admitted_;
  }
  leases_.emplace(id, Lease{id, sequence, demand, now, expires_at,
                            std::move(edges)});
  return id;
}

int LeaseLedger::reclaim_until(double now, std::span<const double> capacities,
                               std::span<double> residual,
                               std::vector<Lease>* expired) {
  TUFP_REQUIRE(capacities.size() == leased_demand_.size() &&
                   residual.size() == leased_demand_.size(),
               "reclaim_until spans must cover the base edge space");
  due_.clear();
  wheel_.advance(now, &due_);
  for (const TimerWheel::Event& event : due_) {
    const auto it = leases_.find(event.id);
    TUFP_CHECK(it != leases_.end(), "timer fired for an unknown lease");
    Lease& lease = it->second;
    for (const EdgeId e : lease.edges) {
      const auto ei = static_cast<std::size_t>(e);
      leased_demand_[ei] -= lease.demand;
      if (--active_on_edge_[ei] == 0) {
        // Last lease off this edge: snap both gauges to their exact
        // baseline. Incremental +/- demand is not associative, and the
        // no-leak guarantee is an == guarantee, not a tolerance.
        leased_demand_[ei] = 0.0;
        residual[ei] = capacities[ei];
      } else {
        residual[ei] = std::min(capacities[ei], residual[ei] + lease.demand);
      }
    }
    leased_capacity_ -=
        lease.demand * static_cast<double>(lease.edges.size());
    ++expired_total_;
    if (expired != nullptr) expired->push_back(std::move(lease));
    leases_.erase(it);
  }
  if (leases_.empty()) leased_capacity_ = 0.0;  // same snap, global gauge
  return static_cast<int>(due_.size());
}

void LeaseLedger::clear() {
  wheel_ = TimerWheel(config_.tick_seconds);
  leases_.clear();
  std::fill(leased_demand_.begin(), leased_demand_.end(), 0.0);
  std::fill(active_on_edge_.begin(), active_on_edge_.end(), 0);
  leased_capacity_ = 0.0;
  next_id_ = 0;
  finite_admitted_ = 0;
  expired_total_ = 0;
}

}  // namespace tufp::temporal
