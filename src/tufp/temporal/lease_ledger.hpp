// LeaseLedger — finite-duration capacity bookkeeping for the admission
// engine (DESIGN.md §10).
//
// Every admission becomes a *lease*: the demand it holds on each edge of
// its admitted path, the virtual time it was granted, and the time it
// expires (kInf = permanent, which reproduces the engine's historical
// hold-forever semantics exactly: a permanent lease is recorded for
// occupancy accounting but never scheduled, never drained, and costs
// nothing on the reclaim path). Finite leases are scheduled on a
// hierarchical TimerWheel; reclaim_until() drains everything expired by
// the epoch's close time in deterministic (expiry time, lease id) order
// and returns the capacity to the caller's residual vector.
//
// Exact capacity return. Residuals are maintained incrementally by the
// engine (subtract on admit), and floating-point addition is not
// associative, so naively adding demands back on expiry would leave the
// residual within an ulp of — but not equal to — the empty-network
// baseline after full churn. The ledger therefore tracks, per edge, the
// number of active leases: when an expiry drops an edge's count to zero
// the residual is *snapped* to the base capacity bit-for-bit (and clamped
// to it otherwise). Hence "all finite leases expired" implies "residual
// == base capacity exactly", the property the temporal-no-leak oracle
// asserts with == and not a tolerance.
//
// Single-threaded like the wheel: admissions and drains happen on the
// epoch loop's thread, so ledger state is a pure function of the
// admission history and byte-identical across OpenMP thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/temporal/timer_wheel.hpp"

namespace tufp::temporal {

using LeaseId = std::int64_t;

struct Lease {
  LeaseId id = -1;
  std::int64_t sequence = -1;   // stream sequence of the admitted request
  double demand = 0.0;          // per-edge capacity held
  double admitted_at = 0.0;     // epoch close time of the admission
  double expires_at = 0.0;      // kInf = permanent
  std::vector<EdgeId> edges;    // base edge ids of the admitted path
};

struct LeaseLedgerConfig {
  // TimerWheel quantization. Pure performance knob: expiry comparisons
  // are exact regardless (timer_wheel.hpp), this only sets how many
  // (cheap, empty) slot scans a reclaim pays per virtual second.
  double tick_seconds = 0.05;
};

class LeaseLedger {
 public:
  LeaseLedger(int num_edges, LeaseLedgerConfig config = {});

  // Records an admission. `expires_at` is an absolute virtual time >= now
  // (kInf for a permanent lease). Returns the lease id — a monotonically
  // increasing admission counter, which is what makes the drain order's
  // id tie-break deterministic.
  LeaseId admit(std::int64_t sequence, double demand,
                std::vector<EdgeId> edges, double now, double expires_at);

  // Drains every lease with expires_at <= now in (expires_at, id) order,
  // returning each lease's demand to `residual` (indexed by base edge,
  // clamped to `capacities` and snapped exactly when an edge's last
  // active lease leaves). Returns the number of leases reclaimed.
  // `expired`, when non-null, receives the drained leases in drain order
  // (consumed by tests and the churn metrics).
  int reclaim_until(double now, std::span<const double> capacities,
                    std::span<double> residual,
                    std::vector<Lease>* expired = nullptr);

  // Active = admitted and not yet reclaimed (permanent leases included).
  std::int64_t active_count() const {
    return static_cast<std::int64_t>(leases_.size());
  }
  // Σ over active leases of demand * |edges| — the capacity currently
  // promised out, the numerator of the engine's occupancy gauge.
  double leased_capacity() const { return leased_capacity_; }
  // Σ demand of active leases crossing edge e / their count.
  double leased_demand(EdgeId e) const {
    return leased_demand_[static_cast<std::size_t>(e)];
  }
  int active_on_edge(EdgeId e) const {
    return active_on_edge_[static_cast<std::size_t>(e)];
  }

  std::int64_t finite_admitted() const { return finite_admitted_; }
  std::int64_t expired_total() const { return expired_total_; }
  double now() const { return wheel_.now(); }
  int num_edges() const { return static_cast<int>(leased_demand_.size()); }

  // Forgets everything (engine reset): counters, gauges, wheel and clock.
  void clear();

 private:
  LeaseLedgerConfig config_;
  TimerWheel wheel_;
  std::unordered_map<LeaseId, Lease> leases_;  // active, by id
  std::vector<double> leased_demand_;          // per base edge
  std::vector<int> active_on_edge_;            // per base edge
  double leased_capacity_ = 0.0;
  LeaseId next_id_ = 0;
  std::int64_t finite_admitted_ = 0;
  std::int64_t expired_total_ = 0;
  std::vector<TimerWheel::Event> due_;         // reclaim scratch
};

}  // namespace tufp::temporal
