// Lease duration profiles — the "how long does an admission hold its
// capacity" axis of the workload space (DESIGN.md §10).
//
// A DurationSampler turns arrival times into lease durations under one of
// six profiles. Everything draws from its own RNG stream (seeded
// explicitly), so wiring durations into an existing stream or world
// generator never perturbs the request/arrival sampling — a stream with
// the kInfinite profile consumes no randomness at all and is
// byte-identical to a pre-temporal stream.
//
//   infinite     — every lease is permanent (the engine's historical
//                  semantics; the differential baseline).
//   fixed        — duration == mean, deterministic. The simplest churn.
//   exponential  — memoryless holding times, the M/M/∞-style steady state.
//   heavy-tailed — Pareto(α = 1.5) scaled to the same mean: most leases
//                  short, a fat tail of long holders — the mix that keeps
//                  occupancy high while churn stays high too.
//   diurnal      — exponential base scaled by a sinusoidal phase of the
//                  arrival clock: leases granted "at night" (trough) are
//                  short, "at peak" long. Models load-correlated holding.
//   flash-crowd  — every lease expires at the *next multiple of period*
//                  after its arrival: an entire window's admissions
//                  release simultaneously, the mass-synchronized-expiry
//                  stress case for the reclaim path.
#pragma once

#include <cstdint>
#include <string>

#include "tufp/util/rng.hpp"

namespace tufp {

enum class DurationProfile {
  kInfinite,
  kFixed,
  kExponential,
  kHeavyTailed,
  kDiurnal,
  kFlashCrowd,
  // Sentinel for the sim layer: sample a concrete profile from the world
  // seed (world_gen.cpp). Not a valid profile for a DurationSampler.
  kAuto,
};

inline constexpr DurationProfile kAllDurationProfiles[] = {
    DurationProfile::kInfinite,    DurationProfile::kFixed,
    DurationProfile::kExponential, DurationProfile::kHeavyTailed,
    DurationProfile::kDiurnal,     DurationProfile::kFlashCrowd,
};

const char* duration_profile_name(DurationProfile profile);
// Throws std::invalid_argument on an unknown name ("auto" included: the
// sentinel is not addressable from CLIs).
DurationProfile duration_profile_from_name(const std::string& name);

struct DurationConfig {
  DurationProfile profile = DurationProfile::kInfinite;
  // Mean duration (virtual seconds) for fixed/exponential/heavy-tailed
  // and the base mean for diurnal.
  double mean = 1.0;
  // Diurnal cycle length / flash-crowd release window.
  double period = 1.0;
};

class DurationSampler {
 public:
  // `seed` feeds the sampler's private RNG; kInfinite/kFixed/kFlashCrowd
  // never touch it.
  DurationSampler(const DurationConfig& config, std::uint64_t seed);

  // Duration (virtual seconds, > 0; kInf for the infinite profile) for a
  // lease granted to a request arriving at `arrival_time`.
  double sample(double arrival_time);

  const DurationConfig& config() const { return config_; }

 private:
  DurationConfig config_;
  Rng rng_;
};

}  // namespace tufp
