// Hierarchical timer wheel over the engine's virtual clock.
//
// The reclamation side of the temporal lease subsystem (DESIGN.md §10)
// needs "pop everything that expired by time t" at every epoch boundary,
// cheap enough that expiry processing never shows up on the admission hot
// path. A priority queue costs O(log n) per expiry and its heap layout
// depends on insertion history; this wheel is the classic serving-system
// alternative: virtual time is quantized into ticks, ticks hash into a
// small circular array of slots, and L stacked wheels of W slots each
// cover a W^L-tick horizon so one event never sits in more than L slots
// over its lifetime — amortized O(1) schedule + cascade work per event.
//
// Determinism contract (the property every consumer relies on): advance()
// emits due events ordered by (time, id), exactly — not by slot insertion
// history, not by tick rounding. Slots are drained in increasing tick
// order (times in different ticks are ordered by construction) and each
// drained slot is sorted by (time, id) before it is appended; the final
// tick is drained *partially* on the exact `time <= now` comparison so an
// event expiring later in the same tick as `now` never fires early. The
// cursor therefore may sit on a tick whose slot still holds future
// events; the next advance() re-examines that slot first.
//
// Single-threaded by design: the engine drains expiries at epoch
// boundaries on the epoch loop's thread, so the wheel needs no locks and
// its output is trivially byte-identical for any OpenMP thread count.
#pragma once

#include <cstdint>
#include <vector>

namespace tufp::temporal {

class TimerWheel {
 public:
  struct Event {
    double time = 0.0;       // scheduled (expiry) time, virtual seconds
    std::int64_t id = -1;    // tie-break: deterministic (time, id) order
  };

  // `tick_seconds` is the quantization of the level-0 wheel; events within
  // one tick are ordered exactly (see above), so the tick only trades
  // cascade frequency against slot occupancy, never correctness.
  explicit TimerWheel(double tick_seconds);

  // Schedules an event. `time` must be >= the time of the last advance()
  // (the wheel has no past).
  void schedule(double time, std::int64_t id);

  // Appends every scheduled event with time <= now to *out in (time, id)
  // order and moves the clock to `now`. `now` must be nondecreasing
  // across calls. Amortized O(1) per event: per-level occupancy counts
  // let the cursor jump straight to the next boundary that could matter
  // (an entirely empty wheel fast-forwards in one step), so long idle
  // stretches cost boundary hops, not per-tick scans.
  void advance(double now, std::vector<Event>* out);

  std::size_t size() const { return size_; }
  double now() const { return now_; }
  double tick_seconds() const { return tick_seconds_; }

 private:
  // W = 64 slots per level, L = 4 levels: horizon = 64^4 ticks. With the
  // default 50 ms tick that is ~9.7 virtual days; later expiries go to the
  // overflow list and re-bucket exactly once — at the horizon boundary
  // that brings the earliest of them within wheel range — so an overflow
  // event costs O(overflow size) total, not per crossed boundary.
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;       // 64
  static constexpr int kLevels = 4;
  static constexpr std::int64_t kHorizonTicks =
      std::int64_t{1} << (kSlotBits * kLevels);       // 64^4

  std::int64_t tick_of(double time) const;
  void place(std::int64_t tick, const Event& event);
  void cascade(int level, std::size_t slot);
  // The next tick after cursor_ at which anything can happen: the nearest
  // occupied level-0 slot, the nearest cascade boundary whose slot is
  // occupied per higher level, or the next overflow re-bucket horizon.
  // O(levels x slots) scan, paid once per landing, so advances cost
  // boundary hops instead of per-tick scans.
  std::int64_t next_event_tick() const;
  // Drains slot `cursor_ % 64`: fully when the whole tick is due, else
  // only events with time <= now (the remainder stays put).
  void drain_cursor_slot(double now, bool whole_tick,
                         std::vector<Event>* out);

  double tick_seconds_;
  double now_ = 0.0;
  std::int64_t cursor_ = 0;  // tick currently under the level-0 cursor
  std::size_t size_ = 0;
  // levels_[l][s] holds events whose tick maps to slot s of level l.
  std::vector<std::vector<Event>> levels_[kLevels];
  std::int64_t level_counts_[kLevels] = {};  // occupancy per level
  std::vector<Event> overflow_;  // beyond the top-level horizon
  // Earliest overflow tick; the boundary floor(min/horizon)*horizon is
  // where the next re-bucket is due (INT64_MAX when overflow is empty).
  std::int64_t overflow_min_tick_ = 0;
  std::vector<Event> scratch_;   // per-drain staging (sorted, then emitted)
};

}  // namespace tufp::temporal
