#include "tufp/temporal/timer_wheel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "tufp/util/assert.hpp"

namespace tufp::temporal {

namespace {

bool event_order(const TimerWheel::Event& a, const TimerWheel::Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.id < b.id;
}

}  // namespace

TimerWheel::TimerWheel(double tick_seconds) : tick_seconds_(tick_seconds) {
  TUFP_REQUIRE(tick_seconds > 0.0 && std::isfinite(tick_seconds),
               "timer wheel tick must be positive and finite");
  for (auto& level : levels_) level.resize(kSlots);
}

std::int64_t TimerWheel::tick_of(double time) const {
  return static_cast<std::int64_t>(std::floor(time / tick_seconds_));
}

void TimerWheel::place(std::int64_t tick, const Event& event) {
  const std::int64_t delta = tick - cursor_;
  for (int level = 0; level < kLevels; ++level) {
    if (delta < (std::int64_t{1} << (kSlotBits * (level + 1)))) {
      const auto slot = static_cast<std::size_t>(
          (tick >> (kSlotBits * level)) & (kSlots - 1));
      levels_[level][slot].push_back(event);
      ++level_counts_[level];
      return;
    }
  }
  overflow_.push_back(event);
  overflow_min_tick_ = overflow_.size() == 1
                           ? tick
                           : std::min(overflow_min_tick_, tick);
}

void TimerWheel::schedule(double time, std::int64_t id) {
  TUFP_REQUIRE(std::isfinite(time) && time >= 0.0 && time >= now_,
               "timer wheel cannot schedule into the past");
  place(tick_of(time), Event{time, id});
  ++size_;
}

void TimerWheel::cascade(int level, std::size_t slot) {
  std::vector<Event>& bucket = levels_[level][slot];
  if (bucket.empty()) return;
  // Events here now have delta < 64^level from the cursor, so they land
  // strictly below `level`; each event cascades at most kLevels times
  // over its whole lifetime.
  std::vector<Event> moved = std::move(bucket);
  bucket.clear();
  level_counts_[level] -= static_cast<std::int64_t>(moved.size());
  for (const Event& event : moved) place(tick_of(event.time), event);
}

void TimerWheel::drain_cursor_slot(double now, bool whole_tick,
                                   std::vector<Event>* out) {
  std::vector<Event>& slot =
      levels_[0][static_cast<std::size_t>(cursor_ & (kSlots - 1))];
  if (slot.empty()) return;
  scratch_.clear();
  if (whole_tick) {
    scratch_.swap(slot);
  } else {
    // The cursor's own tick may straddle `now`: take exactly the due
    // prefix of the tick, keep the rest for the next advance.
    auto keep = slot.begin();
    for (const Event& event : slot) {
      if (event.time <= now) {
        scratch_.push_back(event);
      } else {
        *keep++ = event;
      }
    }
    slot.erase(keep, slot.end());
  }
  size_ -= scratch_.size();
  level_counts_[0] -= static_cast<std::int64_t>(scratch_.size());
  // Slot insertion order is admission order, not expiry order; the sort
  // restores the deterministic (time, id) contract. Ticks are drained in
  // increasing order, so sorting within a tick orders the whole stream.
  std::sort(scratch_.begin(), scratch_.end(), event_order);
  out->insert(out->end(), scratch_.begin(), scratch_.end());
}

void TimerWheel::advance(double now, std::vector<Event>* out) {
  TUFP_REQUIRE(out != nullptr, "advance() needs an output vector");
  TUFP_REQUIRE(std::isfinite(now) && now >= now_,
               "timer wheel clock must be nondecreasing");
  const std::int64_t target = tick_of(now);
  if (size_ == 0) {
    cursor_ = target;
    now_ = now;
    return;
  }
  // The cursor's slot may hold leftovers from a previous partial drain of
  // this same tick; re-examine it before stepping. After this, every slot
  // at or before the cursor is empty, which is what lets the loop jump.
  drain_cursor_slot(now, /*whole_tick=*/cursor_ < target, out);
  while (cursor_ < target) {
    if (size_ == 0) {
      cursor_ = target;
      break;
    }
    const std::int64_t next = next_event_tick();
    TUFP_CHECK(next > cursor_, "timer wheel failed to make progress");
    cursor_ = std::min(target, next);
    // Wheel housekeeping at the landing, overflow first and cascades
    // highest-level first so events settle downward in one pass. Every
    // boundary between the old cursor and the landing had an empty slot
    // by construction of next_event_tick(), so skipping it changed
    // nothing. The overflow re-buckets only when the cursor reaches the
    // horizon boundary that brings its earliest event in range; events
    // still out of range simply return to the list with a fresh minimum.
    if (!overflow_.empty() &&
        cursor_ >= (overflow_min_tick_ / kHorizonTicks) * kHorizonTicks) {
      std::vector<Event> moved = std::move(overflow_);
      overflow_.clear();
      for (const Event& event : moved) place(tick_of(event.time), event);
    }
    for (int level = kLevels - 1; level >= 1; --level) {
      if ((cursor_ & ((std::int64_t{1} << (kSlotBits * level)) - 1)) == 0) {
        cascade(level, static_cast<std::size_t>(
                           (cursor_ >> (kSlotBits * level)) & (kSlots - 1)));
      }
    }
    drain_cursor_slot(now, /*whole_tick=*/cursor_ < target, out);
  }
  now_ = now;
}

std::int64_t TimerWheel::next_event_tick() const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // Level 0 holds events at most one revolution ahead: the first occupied
  // slot going forward is the next level-0 tick that matters.
  for (std::int64_t i = 1; i < kSlots && cursor_ + i < best; ++i) {
    const auto idx =
        static_cast<std::size_t>((cursor_ + i) & (kSlots - 1));
    if (!levels_[0][idx].empty()) {
      best = cursor_ + i;
      break;
    }
  }
  // Higher levels only act at their cascade boundaries (multiples of
  // 64^level); slot indices advance by one per boundary, so one
  // revolution of boundaries covers every occupied slot.
  for (int level = 1; level < kLevels; ++level) {
    if (level_counts_[level] == 0) continue;
    const std::int64_t gran = std::int64_t{1} << (kSlotBits * level);
    for (std::int64_t j = 1; j <= kSlots; ++j) {
      const std::int64_t boundary = (cursor_ / gran + j) * gran;
      if (boundary >= best) break;
      const auto idx = static_cast<std::size_t>(
          (boundary >> (kSlotBits * level)) & (kSlots - 1));
      if (!levels_[level][idx].empty()) {
        best = boundary;
        break;
      }
    }
  }
  if (!overflow_.empty()) {
    // The earliest overflow event becomes placeable at the last horizon
    // boundary not after it; that boundary is > cursor_ (anything nearer
    // would have been placed into the wheel directly).
    best = std::min(best,
                    (overflow_min_tick_ / kHorizonTicks) * kHorizonTicks);
  }
  return best;
}

}  // namespace tufp::temporal
