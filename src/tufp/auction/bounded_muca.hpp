// Algorithm 2: Bounded-MUCA(eps) — the paper's truthful multi-unit
// combinatorial auction (§4).
//
// The specialization of Bounded-UFP to singleton path sets: items take the
// role of edges (y_u = (1/c_u) e^{eps*B*f_u/c_u}), the "shortest path" of
// a request is its fixed bundle, and the selection rule minimizes
// (1/v_r) sum_{u in U_r} y_u. Approximation (1+eps)*e/(e-1) in the
// B = Omega(ln m) regime (Theorem 4.1), monotone and exact w.r.t. value —
// and w.r.t. the bundle in the *unknown single-minded* sense: shrinking a
// bundle only lowers its priority sum, so declaring a superset bundle
// never helps (Corollary 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/auction/muca_solution.hpp"

namespace tufp {

struct BoundedMucaConfig {
  double epsilon = 1.0 / 6.0;
  // Skip requests whose bundle no longer fits the residual multiplicities
  // (same rationale as BoundedUfpConfig::capacity_guard).
  bool capacity_guard = true;
  // Ignore the stopping threshold and run until nothing fits (requires the
  // guard; see BoundedUfpConfig::run_to_saturation).
  bool run_to_saturation = false;
  bool record_trace = false;
};

struct MucaIterationRecord {
  int request = -1;
  double alpha = 0.0;
  double dual_sum = 0.0;
  double primal_value = 0.0;
};

struct BoundedMucaResult {
  MucaSolution solution;
  int iterations = 0;
  double final_dual_sum = 0.0;
  std::vector<double> y;  // final item duals
  double dual_upper_bound = 0.0;  // Claim 3.6 specialization
  bool stopped_by_threshold = false;
  std::vector<MucaIterationRecord> trace;
};

BoundedMucaResult bounded_muca(const MucaInstance& instance,
                               const BoundedMucaConfig& config = {});

}  // namespace tufp
