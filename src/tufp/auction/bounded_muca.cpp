#include "tufp/auction/bounded_muca.hpp"

#include <algorithm>
#include <cmath>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

BoundedMucaResult bounded_muca(const MucaInstance& instance,
                               const BoundedMucaConfig& config) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 1.0,
               "epsilon outside (0,1]");
  const double B = static_cast<double>(instance.bound_B());
  const double eps = config.epsilon;
  TUFP_REQUIRE(eps * B <= kMaxSafeExponent,
               "eps*B too large for double-range weights");
  TUFP_REQUIRE(!config.run_to_saturation || config.capacity_guard,
               "run_to_saturation requires the capacity guard");

  const int m = instance.num_items();
  const int R = instance.num_requests();

  BoundedMucaResult result{MucaSolution(R)};
  result.dual_upper_bound = kInf;

  // Line 2: y_u = 1/c_u, so sum_u c_u y_u = m.
  std::vector<double> y(static_cast<std::size_t>(m));
  for (int u = 0; u < m; ++u) {
    y[static_cast<std::size_t>(u)] = 1.0 / instance.multiplicity(u);
  }
  double dual_sum = static_cast<double>(m);
  const double threshold = std::exp(eps * (B - 1.0));

  std::vector<int> residual(instance.multiplicities());
  std::vector<int> remaining(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) remaining[static_cast<std::size_t>(r)] = r;

  double primal_value = 0.0;

  // Line 3: while (L != empty and sum c_u y_u <= e^{eps(B-1)}).
  while (!remaining.empty()) {
    if (!config.run_to_saturation && dual_sum > threshold) {
      result.stopped_by_threshold = true;
      break;
    }

    // Line 4: request minimizing (1/v_r) sum_{u in U_r} y_u.
    int best = -1;
    double best_priority = kInf;
    double alpha_cert = kInf;
    for (int r : remaining) {
      const MucaRequest& req = instance.request(r);
      double sum = 0.0;
      bool fits = true;
      for (int u : req.bundle) {
        sum += y[static_cast<std::size_t>(u)];
        if (residual[static_cast<std::size_t>(u)] < 1) fits = false;
      }
      const double priority = sum / req.value;
      alpha_cert = std::min(alpha_cert, priority);
      if (config.capacity_guard && !fits) continue;
      if (priority < best_priority) {
        best_priority = priority;
        best = r;
      }
    }

    if (alpha_cert < kInf && alpha_cert > 0.0) {
      result.dual_upper_bound = std::min(result.dual_upper_bound,
                                         dual_sum / alpha_cert + primal_value);
    }

    if (best < 0) break;

    // Lines 5-6: inflate item duals over the winning bundle.
    const MucaRequest& req = instance.request(best);
    const double dual_before = dual_sum;
    for (int u : req.bundle) {
      const auto ui = static_cast<std::size_t>(u);
      const double cap = static_cast<double>(instance.multiplicity(u));
      const double old_y = y[ui];
      y[ui] = old_y * std::exp(eps * B / cap);
      dual_sum += cap * (y[ui] - old_y);
      --residual[ui];
    }
    result.solution.select(best);
    primal_value += req.value;
    ++result.iterations;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
    if (config.record_trace) {
      result.trace.push_back({best, best_priority, dual_before, primal_value});
    }
  }

  if (remaining.empty()) {
    result.dual_upper_bound = std::min(result.dual_upper_bound, primal_value);
  }
  result.final_dual_sum = dual_sum;
  result.y = std::move(y);
  return result;
}

}  // namespace tufp
