// Exact optimum of small MUCA instances (branch and bound + LP bound).
#pragma once

#include <cstdint>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/auction/muca_solution.hpp"

namespace tufp {

struct MucaExactOptions {
  std::int64_t max_nodes = 50'000'000;
  bool use_lp_root_bound = true;
};

struct MucaExactResult {
  double optimal_value = 0.0;
  MucaSolution solution;
  std::int64_t nodes = 0;
  bool proven_optimal = true;
};

MucaExactResult solve_muca_exact(const MucaInstance& instance,
                                 const MucaExactOptions& options = {});

// The exact LP relaxation value of the instance (fractional OPT).
double solve_muca_lp(const MucaInstance& instance);

}  // namespace tufp
