// The B-bounded single-minded multi-unit combinatorial auction (paper §1).
//
// m non-identical items with positive integer multiplicities c_u; each
// request wants one fixed bundle U_r (a set of distinct items, one copy
// each) and has value v_r. B = min_u c_u. The paper treats MUCA as the
// special case of the UFP integer program with unit demands and singleton
// path sets S_r = {U_r}.
#pragma once

#include <vector>

namespace tufp {

struct MucaRequest {
  std::vector<int> bundle;  // distinct item ids
  double value = 0.0;
};

class MucaInstance {
 public:
  // Validates: positive multiplicities, non-empty bundles of distinct
  // in-range items, positive values.
  MucaInstance(std::vector<int> multiplicities, std::vector<MucaRequest> requests);

  int num_items() const { return static_cast<int>(multiplicities_.size()); }
  int num_requests() const { return static_cast<int>(requests_.size()); }

  int multiplicity(int item) const;
  const std::vector<int>& multiplicities() const { return multiplicities_; }
  const MucaRequest& request(int r) const;
  const std::vector<MucaRequest>& requests() const { return requests_; }

  // B = min_u c_u.
  int bound_B() const;

  double total_value() const;

  // B >= ln(m)/eps^2 — the regime of Theorem 4.1.
  bool in_large_capacity_regime(double eps) const;

  // Copy with request r's declaration replaced (mechanism-layer misreport
  // and payment machinery; in the unknown single-minded setting both the
  // bundle and the value are private).
  MucaInstance with_request(int r, const MucaRequest& declared) const;

 private:
  std::vector<int> multiplicities_;
  std::vector<MucaRequest> requests_;
};

}  // namespace tufp
