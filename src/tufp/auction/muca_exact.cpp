#include "tufp/auction/muca_exact.hpp"

#include <algorithm>
#include <vector>

#include "tufp/lp/simplex.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

constexpr double kBoundSlack = 1e-9;

PackingLp build_lp(const MucaInstance& instance) {
  PackingLp lp;
  for (int u = 0; u < instance.num_items(); ++u) {
    lp.add_row(static_cast<double>(instance.multiplicity(u)));
  }
  for (int r = 0; r < instance.num_requests(); ++r) lp.add_row(1.0);
  for (int r = 0; r < instance.num_requests(); ++r) {
    const MucaRequest& req = instance.request(r);
    const int var = lp.add_variable(req.value);
    lp.add_coefficient(instance.num_items() + r, var, 1.0);
    for (int u : req.bundle) lp.add_coefficient(u, var, 1.0);
  }
  return lp;
}

struct SearchState {
  const MucaInstance* instance;
  std::vector<int> residual;
  std::vector<double> suffix_value;
  double lp_bound = kInf;

  // Fractional-knapsack node bound: relax per-item constraints to one
  // aggregate copy budget (sum of residual multiplicities); each request
  // weighs |U_r| copies. Sound upper bound on any feasible completion.
  struct KnapsackItem {
    int request;
    double weight;  // bundle size
    double value;
  };
  std::vector<KnapsackItem> by_density;  // value/weight descending
  double residual_total = 0.0;

  double current_value = 0.0;
  std::vector<bool> chosen;

  double best_value = 0.0;
  std::vector<bool> best_chosen;

  std::int64_t nodes = 0;
  std::int64_t max_nodes = 0;
  bool aborted = false;
};

double knapsack_bound(const SearchState& st, int from_request) {
  double capacity = st.residual_total;
  double bound = 0.0;
  for (const auto& item : st.by_density) {
    if (item.request < from_request) continue;
    if (capacity <= 0.0) break;
    if (item.weight <= capacity) {
      bound += item.value;
      capacity -= item.weight;
    } else {
      bound += item.value * (capacity / item.weight);
      break;
    }
  }
  return bound;
}

void dfs(SearchState& st, int r) {
  if (st.aborted) return;
  if (++st.nodes > st.max_nodes) {
    st.aborted = true;
    return;
  }
  const int R = st.instance->num_requests();
  if (r == R) {
    if (st.current_value > st.best_value + kBoundSlack) {
      st.best_value = st.current_value;
      st.best_chosen = st.chosen;
    }
    return;
  }
  const double optimistic =
      std::min(st.current_value + st.suffix_value[static_cast<std::size_t>(r)],
               st.lp_bound);
  if (optimistic <= st.best_value + kBoundSlack) return;
  if (st.current_value + knapsack_bound(st, r) <= st.best_value + kBoundSlack) {
    return;
  }

  const MucaRequest& req = st.instance->request(r);
  bool fits = true;
  for (int u : req.bundle) {
    if (st.residual[static_cast<std::size_t>(u)] < 1) {
      fits = false;
      break;
    }
  }
  if (fits) {
    const auto consumed = static_cast<double>(req.bundle.size());
    for (int u : req.bundle) --st.residual[static_cast<std::size_t>(u)];
    st.residual_total -= consumed;
    st.current_value += req.value;
    st.chosen[static_cast<std::size_t>(r)] = true;
    dfs(st, r + 1);
    st.chosen[static_cast<std::size_t>(r)] = false;
    st.current_value -= req.value;
    st.residual_total += consumed;
    for (int u : req.bundle) ++st.residual[static_cast<std::size_t>(u)];
    if (st.aborted) return;
  }
  dfs(st, r + 1);
}

}  // namespace

double solve_muca_lp(const MucaInstance& instance) {
  if (instance.num_requests() == 0) return 0.0;
  const PackingLp lp = build_lp(instance);
  const LpSolution sol = solve_packing_lp(lp);
  TUFP_CHECK(sol.status == LpSolution::Status::kOptimal,
             "MUCA LP hit the pivot limit");
  return sol.objective;
}

MucaExactResult solve_muca_exact(const MucaInstance& instance,
                                 const MucaExactOptions& options) {
  const int R = instance.num_requests();
  SearchState st;
  st.instance = &instance;
  st.residual = instance.multiplicities();
  st.suffix_value.assign(static_cast<std::size_t>(R) + 1, 0.0);
  for (int r = R - 1; r >= 0; --r) {
    st.suffix_value[static_cast<std::size_t>(r)] =
        st.suffix_value[static_cast<std::size_t>(r) + 1] +
        instance.request(r).value;
  }
  st.chosen.assign(static_cast<std::size_t>(R), false);
  st.best_chosen = st.chosen;
  st.max_nodes = options.max_nodes;
  if (options.use_lp_root_bound && R > 0) {
    st.lp_bound = solve_muca_lp(instance) + kBoundSlack;
  }
  for (int c : st.residual) st.residual_total += c;
  for (int r = 0; r < R; ++r) {
    const MucaRequest& req = instance.request(r);
    st.by_density.push_back(
        {r, static_cast<double>(req.bundle.size()), req.value});
  }
  std::sort(st.by_density.begin(), st.by_density.end(),
            [](const SearchState::KnapsackItem& a,
               const SearchState::KnapsackItem& b) {
              return a.value * b.weight > b.value * a.weight;
            });

  dfs(st, 0);

  MucaExactResult result{st.best_value, MucaSolution(R), st.nodes, !st.aborted};
  for (int r = 0; r < R; ++r) {
    if (st.best_chosen[static_cast<std::size_t>(r)]) result.solution.select(r);
  }
  return result;
}

}  // namespace tufp
