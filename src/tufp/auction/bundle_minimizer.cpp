#include "tufp/auction/bundle_minimizer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

ExponentialBundleFunction::ExponentialBundleFunction(double eps, double B)
    : eps_(eps), B_(B) {
  TUFP_REQUIRE(eps > 0.0 && eps <= 1.0, "eps outside (0,1]");
  TUFP_REQUIRE(B >= 1.0, "B must be >= 1");
}

std::string ExponentialBundleFunction::name() const {
  std::ostringstream os;
  os << "h(eps=" << eps_ << ",B=" << B_ << ")";
  return os.str();
}

double ExponentialBundleFunction::evaluate(
    double value, const std::vector<int>& bundle, std::span<const int> allocated,
    std::span<const int> multiplicities) const {
  double sum = 0.0;
  for (int u : bundle) {
    const auto ui = static_cast<std::size_t>(u);
    const double cap = static_cast<double>(multiplicities[ui]);
    sum += (1.0 / cap) *
           std::exp(eps_ * B_ * static_cast<double>(allocated[ui]) / cap);
  }
  return sum / value;
}

HopBiasedBundleFunction::HopBiasedBundleFunction(double eps, double B)
    : inner_(eps, B) {}

std::string HopBiasedBundleFunction::name() const {
  return "h1=ln(1+|T|)*" + inner_.name();
}

double HopBiasedBundleFunction::evaluate(
    double value, const std::vector<int>& bundle, std::span<const int> allocated,
    std::span<const int> multiplicities) const {
  return std::log(1.0 + static_cast<double>(bundle.size())) *
         inner_.evaluate(value, bundle, allocated, multiplicities);
}

BundleMinimizerResult reasonable_bundle_minimizer(
    const MucaInstance& instance, const BundleMinimizerConfig& config) {
  TUFP_REQUIRE(config.function != nullptr, "a reasonable function is required");
  const int R = instance.num_requests();

  BundleMinimizerResult result{MucaSolution(R)};
  std::vector<int> allocated(static_cast<std::size_t>(instance.num_items()), 0);
  const std::span<const int> multiplicities = instance.multiplicities();

  std::vector<int> remaining(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) remaining[static_cast<std::size_t>(r)] = r;

  while (!remaining.empty()) {
    int best = -1;
    double best_score = kInf;
    double best_tie = kInf;
    for (int r : remaining) {
      const MucaRequest& req = instance.request(r);
      bool fits = true;
      for (int u : req.bundle) {
        if (allocated[static_cast<std::size_t>(u)] >=
            multiplicities[static_cast<std::size_t>(u)]) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      const double score = config.function->evaluate(req.value, req.bundle,
                                                     allocated, multiplicities);
      if (score > best_score) continue;
      if (score < best_score) {
        best_score = score;
        best_tie = config.tie_score ? config.tie_score(r) : 0.0;
        best = r;
        continue;
      }
      if (config.tie_score) {
        const double tie = config.tie_score(r);
        if (tie < best_tie) {
          best_tie = tie;
          best = r;
        }
      }
    }

    if (best < 0) break;

    for (int u : instance.request(best).bundle) {
      ++allocated[static_cast<std::size_t>(u)];
    }
    result.solution.select(best);
    ++result.iterations;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
    if (config.record_trace) result.trace.push_back({best, best_score});
  }

  return result;
}

}  // namespace tufp
