// Generic reasonable iterative bundle-minimizing algorithm
// (Definitions 4.3/4.4) — the family Theorem 4.5 lower-bounds.
//
// Mirrors ufp/iterative_minimizer.hpp: repeatedly select the request whose
// bundle minimizes a reasonable function of the current allocation counts,
// among requests that still fit the residual multiplicities; stop when
// nothing fits. Drives the Figure-4 reproduction (bench E5).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/auction/muca_solution.hpp"

namespace tufp {

class ReasonableBundleFunction {
 public:
  virtual ~ReasonableBundleFunction() = default;
  virtual std::string name() const = 0;
  // Priority of a (bundle, value) request given the copies already
  // allocated per item; lower is better.
  virtual double evaluate(double value, const std::vector<int>& bundle,
                          std::span<const int> allocated,
                          std::span<const int> multiplicities) const = 0;
};

// The rule Algorithm 2 minimizes:
//   h(s) = (1/v_s) sum_{u in s} (1/c_u) e^{eps*B*f_u/c_u}.
class ExponentialBundleFunction final : public ReasonableBundleFunction {
 public:
  ExponentialBundleFunction(double eps, double B);
  std::string name() const override;
  double evaluate(double value, const std::vector<int>& bundle,
                  std::span<const int> allocated,
                  std::span<const int> multiplicities) const override;

 private:
  double eps_;
  double B_;
};

// Bundle-cardinality-biased analogue of h1.
class HopBiasedBundleFunction final : public ReasonableBundleFunction {
 public:
  HopBiasedBundleFunction(double eps, double B);
  std::string name() const override;
  double evaluate(double value, const std::vector<int>& bundle,
                  std::span<const int> allocated,
                  std::span<const int> multiplicities) const override;

 private:
  ExponentialBundleFunction inner_;
};

using BundleTieScore = std::function<double(int request)>;

struct BundleMinimizerConfig {
  const ReasonableBundleFunction* function = nullptr;  // required
  BundleTieScore tie_score;  // lower preferred on exact priority ties
  bool record_trace = false;
};

struct BundleMinimizerIteration {
  int request = -1;
  double score = 0.0;
};

struct BundleMinimizerResult {
  MucaSolution solution;
  int iterations = 0;
  std::vector<BundleMinimizerIteration> trace;
};

BundleMinimizerResult reasonable_bundle_minimizer(
    const MucaInstance& instance, const BundleMinimizerConfig& config);

}  // namespace tufp
