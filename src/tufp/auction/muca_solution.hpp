// Allocation of a multi-unit combinatorial auction.
#pragma once

#include <string>
#include <vector>

#include "tufp/auction/muca_instance.hpp"

namespace tufp {

struct MucaFeasibilityReport {
  bool feasible = true;
  std::string message;
};

class MucaSolution {
 public:
  explicit MucaSolution(int num_requests);

  void select(int r);  // at most once (exactness)
  bool is_selected(int r) const;

  int num_requests() const { return static_cast<int>(selected_.size()); }
  int num_selected() const { return num_selected_; }
  std::vector<int> selected_requests() const;

  double total_value(const MucaInstance& instance) const;
  // Copies allocated per item.
  std::vector<int> item_loads(const MucaInstance& instance) const;
  // Every item allocated at most multiplicity times.
  MucaFeasibilityReport check_feasibility(const MucaInstance& instance) const;

 private:
  std::vector<bool> selected_;
  int num_selected_ = 0;
};

}  // namespace tufp
