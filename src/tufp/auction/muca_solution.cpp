#include "tufp/auction/muca_solution.hpp"

#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

MucaSolution::MucaSolution(int num_requests)
    : selected_(static_cast<std::size_t>(num_requests), false) {
  TUFP_REQUIRE(num_requests >= 0, "negative request count");
}

void MucaSolution::select(int r) {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  TUFP_REQUIRE(!selected_[static_cast<std::size_t>(r)],
               "request already selected (exactness)");
  selected_[static_cast<std::size_t>(r)] = true;
  ++num_selected_;
}

bool MucaSolution::is_selected(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  return selected_[static_cast<std::size_t>(r)];
}

std::vector<int> MucaSolution::selected_requests() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_selected_));
  for (int r = 0; r < num_requests(); ++r) {
    if (selected_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

double MucaSolution::total_value(const MucaInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests(),
               "solution/instance request count mismatch");
  double total = 0.0;
  for (int r = 0; r < num_requests(); ++r) {
    if (selected_[static_cast<std::size_t>(r)]) total += instance.request(r).value;
  }
  return total;
}

std::vector<int> MucaSolution::item_loads(const MucaInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests(),
               "solution/instance request count mismatch");
  std::vector<int> loads(static_cast<std::size_t>(instance.num_items()), 0);
  for (int r = 0; r < num_requests(); ++r) {
    if (!selected_[static_cast<std::size_t>(r)]) continue;
    for (int u : instance.request(r).bundle) ++loads[static_cast<std::size_t>(u)];
  }
  return loads;
}

MucaFeasibilityReport MucaSolution::check_feasibility(
    const MucaInstance& instance) const {
  const std::vector<int> loads = item_loads(instance);
  for (int u = 0; u < instance.num_items(); ++u) {
    if (loads[static_cast<std::size_t>(u)] > instance.multiplicity(u)) {
      std::ostringstream os;
      os << "item " << u << " over-allocated: " << loads[static_cast<std::size_t>(u)]
         << " > " << instance.multiplicity(u);
      return {false, os.str()};
    }
  }
  return {true, {}};
}

}  // namespace tufp
