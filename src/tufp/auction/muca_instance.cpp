#include "tufp/auction/muca_instance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tufp/util/assert.hpp"

namespace tufp {

MucaInstance::MucaInstance(std::vector<int> multiplicities,
                           std::vector<MucaRequest> requests)
    : multiplicities_(std::move(multiplicities)), requests_(std::move(requests)) {
  TUFP_REQUIRE(!multiplicities_.empty(), "auction needs at least one item");
  for (int c : multiplicities_) {
    TUFP_REQUIRE(c >= 1, "item multiplicities must be positive integers");
  }
  std::vector<bool> seen(multiplicities_.size());
  for (const MucaRequest& r : requests_) {
    TUFP_REQUIRE(!r.bundle.empty(), "bundles must be non-empty");
    TUFP_REQUIRE(r.value > 0.0, "request value must be positive");
    std::fill(seen.begin(), seen.end(), false);
    for (int u : r.bundle) {
      TUFP_REQUIRE(u >= 0 && u < num_items(), "bundle item out of range");
      TUFP_REQUIRE(!seen[static_cast<std::size_t>(u)],
                   "bundle items must be distinct");
      seen[static_cast<std::size_t>(u)] = true;
    }
  }
}

int MucaInstance::multiplicity(int item) const {
  TUFP_REQUIRE(item >= 0 && item < num_items(), "item index out of range");
  return multiplicities_[static_cast<std::size_t>(item)];
}

const MucaRequest& MucaInstance::request(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  return requests_[static_cast<std::size_t>(r)];
}

int MucaInstance::bound_B() const {
  return *std::min_element(multiplicities_.begin(), multiplicities_.end());
}

double MucaInstance::total_value() const {
  double total = 0.0;
  for (const MucaRequest& r : requests_) total += r.value;
  return total;
}

bool MucaInstance::in_large_capacity_regime(double eps) const {
  TUFP_REQUIRE(eps > 0.0 && eps <= 1.0, "eps outside (0,1]");
  return bound_B() >= std::log(static_cast<double>(num_items())) / (eps * eps);
}

MucaInstance MucaInstance::with_request(int r, const MucaRequest& declared) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  std::vector<MucaRequest> reqs = requests_;
  reqs[static_cast<std::size_t>(r)] = declared;
  return MucaInstance(multiplicities_, std::move(reqs));
}

}  // namespace tufp
