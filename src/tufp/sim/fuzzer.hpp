// The fuzz driver: seed-driven world sweep + oracle suite + shrink +
// repro emission.
//
// Worlds are drawn round-robin over the configured family matrix with
// per-world seeds expanded from the run seed by SplitMix64, so the world
// sequence is a pure function of the run seed: `--seed S --budget N` and
// `--seed S --budget M` agree on their common prefix, and every verdict is
// reproducible from the log line alone. A wall-clock budget (nightly CI)
// truncates the same deterministic sequence at a machine-dependent point;
// everything up to the truncation is still seed-reproducible.
//
// On a violation the driver shrinks the world against the failing oracle
// (sim/shrink.hpp) and emits a repro: a workload/io `ufp` file with a
// comment header naming run seed, world, oracle and witness — loadable by
// load_ufp, replayable by `tufp_fuzz --replay`, and small enough to commit
// as a regression test.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tufp/sim/oracles.hpp"
#include "tufp/sim/shrink.hpp"
#include "tufp/sim/world.hpp"

namespace tufp::sim {

struct FuzzConfig {
  std::uint64_t seed = 1;
  // World-count budget; the determinism unit. Same seed + same max_worlds
  // => same worlds, same verdicts, same log.
  int max_worlds = 100;
  // Optional wall-clock cap checked between worlds (0 = none). Truncates
  // the deterministic sequence; does not perturb it.
  double budget_seconds = 0.0;

  std::vector<WorldFamily> families;  // empty = full matrix
  // Duration-profile axis, crossed with the families round-robin. Empty =
  // kAuto (each world samples its own profile from its seed).
  std::vector<DurationProfile> duration_profiles;
  std::vector<std::string> oracles;   // empty = whole catalogue
  OracleOptions oracle_options;

  bool shrink = true;
  ShrinkOptions shrink_options;
  // Directory for repro files (created if missing); empty keeps repros in
  // the report only.
  std::string repro_dir;
  bool stop_on_first = false;
};

struct FuzzViolation {
  int world_index = -1;
  WorldSpec spec;
  std::string oracle;
  std::string detail;
  int original_requests = 0;
  int shrunk_requests = 0;
  std::string repro_text;  // workload/io ufp format + comment header
  std::string repro_path;  // empty unless repro_dir configured
};

struct FuzzReport {
  int worlds_run = 0;
  int worlds_failed = 0;
  bool wall_clock_stop = false;
  std::vector<FuzzViolation> violations;
};

// Runs the sweep. `log`, when given, receives one deterministic line per
// world plus violation details — no timing, no pointers, byte-identical
// for identical configs.
FuzzReport run_fuzz(const FuzzConfig& config, std::ostream* log = nullptr);

// The repro file body for a shrunk violation (exposed for tests). Besides
// the instance it records the failing world's solver config and batching
// as a `# solver ...` directive so replay runs the violation under the
// exact configuration that produced it.
std::string make_repro_text(const FuzzConfig& config,
                            const FuzzViolation& violation,
                            const SimWorld& shrunk);

// Loads a repro (or any workload/io ufp stream) into a replayable world,
// honouring the `# solver ...` directive when present and falling back to
// wrap_instance defaults otherwise.
SimWorld load_repro(std::istream& is);

}  // namespace tufp::sim
