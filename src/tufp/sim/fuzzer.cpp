#include "tufp/sim/fuzzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "tufp/sim/world_gen.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/io.hpp"

namespace tufp::sim {

namespace {

std::string repro_filename(const FuzzViolation& violation) {
  return "repro-" + violation.oracle + "-w" +
         std::to_string(violation.world_index) + ".txt";
}

void write_repro_file(const std::string& dir, const std::string& name,
                      const std::string& text, std::string* path_out) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  std::ofstream os(path);
  TUFP_REQUIRE(os.good(), "cannot open repro file for writing: " + path);
  os << text;
  TUFP_REQUIRE(os.good(), "repro write failed: " + path);
  *path_out = path;
}

}  // namespace

std::string make_repro_text(const FuzzConfig& config,
                            const FuzzViolation& violation,
                            const SimWorld& shrunk) {
  std::ostringstream os;
  os.precision(17);
  os << "# tufp_fuzz repro\n"
     << "# run-seed " << config.seed << " world " << violation.world_index
     << " family " << family_name(violation.spec.family) << " world-seed "
     << violation.spec.seed << "\n"
     << "# fault " << fault_name(config.oracle_options.fault) << "\n"
     << "# oracle " << violation.oracle << ": " << violation.detail << "\n"
     << "# shrunk " << violation.original_requests << " -> "
     << shrunk.instance.num_requests() << " requests\n"
     << "# solver epsilon " << shrunk.solver.epsilon
     << " run-to-saturation " << (shrunk.solver.run_to_saturation ? 1 : 0)
     << " max-batch " << shrunk.max_batch << "\n";
  if (!shrunk.durations.empty()) {
    // Lease durations per surviving request ("inf" = permanent), plus the
    // arrival clock that lets them actually expire mid-replay: the
    // temporal oracles fail *on* these, so replay must restore both.
    os << "# durations " << duration_profile_name(shrunk.duration_profile);
    for (const double d : shrunk.durations) {
      if (d >= kInf) {
        os << " inf";
      } else {
        os << " " << d;
      }
    }
    os << "\n# arrivals";
    for (int r = 0; r < shrunk.instance.num_requests(); ++r) {
      const auto ri = static_cast<std::size_t>(r);
      os << " " << (ri < shrunk.arrivals.size() ? shrunk.arrivals[ri] : 0.0);
    }
    os << "\n";
  }
  os << "# replay: tufp_fuzz --replay <this-file> --oracles "
     << violation.oracle;
  if (config.oracle_options.fault != FaultInjection::kNone) {
    os << " --inject " << fault_name(config.oracle_options.fault);
  }
  os << "\n";
  save_ufp(shrunk.instance, os);
  return os.str();
}

SimWorld load_repro(std::istream& is) {
  // Pull the whole stream so the solver directive can be scanned without
  // disturbing what load_ufp reads (it skips '#' comments on its own).
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  BoundedUfpConfig solver;
  solver.capacity_guard = true;
  solver.run_to_saturation = true;
  int max_batch = 0;  // 0 = derive from the request count below
  std::vector<double> arrivals;
  std::vector<double> durations;
  DurationProfile duration_profile = DurationProfile::kInfinite;

  std::istringstream lines(text);
  std::string line;
  bool solver_seen = false;
  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    std::string hash, keyword;
    if (!(ls >> hash >> keyword) || hash != "#") continue;
    if (keyword == "solver" && !solver_seen) {
      solver_seen = true;
      std::string key;
      while (ls >> key) {
        if (key == "epsilon") {
          ls >> solver.epsilon;
        } else if (key == "run-to-saturation") {
          int flag = 1;
          ls >> flag;
          solver.run_to_saturation = flag != 0;
        } else if (key == "max-batch") {
          ls >> max_batch;
        }
      }
    } else if (keyword == "arrivals" && arrivals.empty()) {
      double t = 0.0;
      while (ls >> t) arrivals.push_back(t);
    } else if (keyword == "durations" && durations.empty()) {
      std::string token;
      if (ls >> token) {
        try {
          duration_profile = duration_profile_from_name(token);
        } catch (const std::invalid_argument&) {
          // Tolerate headerless duration lists from hand-written files.
          durations.push_back(token == "inf" ? kInf : std::stod(token));
        }
      }
      while (ls >> token) {
        durations.push_back(token == "inf" ? kInf : std::stod(token));
      }
    }
  }

  std::istringstream body(text);
  UfpInstance instance = load_ufp(body);
  const int R = instance.num_requests();
  if (max_batch <= 0) max_batch = std::max(2, R / 3);
  SimWorld world = wrap_instance(std::move(instance), solver, max_batch);
  if (!durations.empty()) {
    TUFP_REQUIRE(static_cast<int>(durations.size()) == R,
                 "repro `# durations` count does not match its requests");
    world.durations = std::move(durations);
    world.duration_profile = duration_profile;
  }
  if (!arrivals.empty()) {
    TUFP_REQUIRE(static_cast<int>(arrivals.size()) == R,
                 "repro `# arrivals` count does not match its requests");
    world.arrivals = std::move(arrivals);
  }
  return world;
}

FuzzReport run_fuzz(const FuzzConfig& config, std::ostream* log) {
  TUFP_REQUIRE(config.max_worlds >= 0, "negative world budget");
  const std::vector<WorldFamily> families =
      config.families.empty()
          ? std::vector<WorldFamily>(std::begin(kAllFamilies),
                                     std::end(kAllFamilies))
          : config.families;

  FuzzReport report;
  SplitMix64 seeds(config.seed);
  WallTimer timer;

  for (int i = 0; i < config.max_worlds; ++i) {
    if (config.budget_seconds > 0.0 &&
        timer.elapsed_seconds() >= config.budget_seconds) {
      report.wall_clock_stop = true;
      break;
    }
    WorldSpec spec;
    spec.family = families[static_cast<std::size_t>(i) % families.size()];
    spec.seed = seeds.next();
    if (!config.duration_profiles.empty()) {
      // Profiles advance once per full family cycle, so the sweep walks
      // the complete families x profiles cross product in |F|*|P| worlds
      // (a shared i % len for both would skip unaligned pairs whenever
      // the list lengths share a factor).
      spec.durations = config.duration_profiles
          [(static_cast<std::size_t>(i) / families.size()) %
           config.duration_profiles.size()];
    }
    const SimWorld world = generate_world(spec);
    ++report.worlds_run;

    const std::vector<Violation> violations =
        run_oracle_suite(world, config.oracle_options, config.oracles);

    if (log) {
      *log << "world " << i << " family=" << family_name(spec.family)
           << " seed=" << spec.seed << " durations="
           << duration_profile_name(world.duration_profile)
           << " requests=" << world.instance.num_requests()
           << " edges=" << world.instance.graph().num_edges() << " verdict=";
      if (violations.empty()) {
        *log << "ok\n";
      } else {
        *log << "FAIL oracle=" << violations.front().oracle << "\n";
      }
    }
    if (violations.empty()) continue;

    ++report.worlds_failed;
    FuzzViolation record;
    record.world_index = i;
    record.spec = spec;
    record.oracle = violations.front().oracle;
    record.detail = violations.front().detail;
    record.original_requests = world.instance.num_requests();

    SimWorld shrunk = world;
    if (config.shrink) {
      const std::vector<std::string> only{record.oracle};
      const WorldPredicate still_fails = [&](const SimWorld& candidate) {
        return !run_oracle_suite(candidate, config.oracle_options, only)
                    .empty();
      };
      ShrinkStats stats;
      shrunk = shrink_world(world, still_fails, config.shrink_options, &stats);
      if (log) {
        *log << "  shrunk requests " << record.original_requests << " -> "
             << shrunk.instance.num_requests() << ", edges "
             << world.instance.graph().num_edges() << " -> "
             << shrunk.instance.graph().num_edges() << " (" << stats.probes
             << " probes)\n";
      }
    }
    record.shrunk_requests = shrunk.instance.num_requests();
    record.repro_text = make_repro_text(config, record, shrunk);
    if (!config.repro_dir.empty()) {
      write_repro_file(config.repro_dir, repro_filename(record),
                       record.repro_text, &record.repro_path);
      if (log) *log << "  repro " << record.repro_path << "\n";
    }
    if (log) {
      *log << "  " << record.oracle << ": " << record.detail << "\n";
    }
    report.violations.push_back(std::move(record));
    if (config.stop_on_first) break;
  }
  return report;
}

}  // namespace tufp::sim
