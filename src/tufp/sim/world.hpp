// Simulation worlds — the unit of work of the property-fuzz harness.
//
// A SimWorld is one randomized scenario: a normalized B-bounded UfpInstance
// (graph + ordered requests) plus the deterministic knobs the oracle suite
// replays it under — solver config, epoch batching, and synthesized arrival
// times for the streaming oracles. Every field is a pure function of the
// WorldSpec, so a (family, seed) pair names the world completely and the
// fuzz driver can regenerate any world from its log line alone.
//
// The generator matrix (world_gen.hpp) spans the instance distributions
// where UFP solvers are known to break: the paper's staircase adversary,
// single-sink trees in the Shepherd–Vetta style, meshes, sparse random
// graphs, layered DAGs, and Poisson/burst streaming traces materialized
// into arrival-ordered request lists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tufp/temporal/duration.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp::sim {

enum class WorldFamily {
  kStaircase,    // Figure 2 directed staircase (Thm 3.11 adversary)
  kSingleSink,   // random tree oriented into one sink, all requests -> sink
  kGrid,         // undirected mesh, mixed traffic
  kRandomSparse, // random connected directed graph, B-bounded demand mix
  kLayered,      // layered DAG, left-to-right traffic
  kRing,         // cycle — long paths, heavy edge sharing
};

inline constexpr WorldFamily kAllFamilies[] = {
    WorldFamily::kStaircase, WorldFamily::kSingleSink,  WorldFamily::kGrid,
    WorldFamily::kRandomSparse, WorldFamily::kLayered,  WorldFamily::kRing,
};

const char* family_name(WorldFamily family);
// Throws std::invalid_argument on an unknown name.
WorldFamily family_from_name(const std::string& name);

// Complete name of a world: regenerating from an identical spec yields a
// byte-identical world.
struct WorldSpec {
  WorldFamily family = WorldFamily::kGrid;
  std::uint64_t seed = 0;  // world-local seed (not the fuzz run seed)
  // Lease-duration axis (temporal/duration.hpp), crossed with the family
  // matrix. kAuto samples a concrete profile from the seed — from a
  // *separate* RNG stream, so worlds generated before the temporal axis
  // existed are byte-identical under kAuto.
  DurationProfile durations = DurationProfile::kAuto;
};

struct SimWorld {
  WorldSpec spec;
  UfpInstance instance;  // normalized (d <= 1), B >= 1 by construction

  // Arrival time per request, nondecreasing, same length as the request
  // list (all-zero for one-shot families). Only the streaming oracles
  // read them; allocation outcomes are arrival-time independent.
  std::vector<double> arrivals;

  // Lease duration per request (virtual seconds; kInf = permanent), same
  // length as the request list — or empty, meaning all-permanent. Only
  // the temporal oracles read them; the pre-temporal oracle suite replays
  // every world under hold-forever semantics regardless.
  std::vector<double> durations;
  // The concrete profile `durations` was drawn from (spec.durations, or
  // the seed-sampled profile when the spec says kAuto). Log/repro label.
  DurationProfile duration_profile = DurationProfile::kInfinite;

  // Epoch batch size the streaming oracles replay the request list under.
  int max_batch = 16;

  // Per-world solver configuration (epsilon, kernel, saturation mode).
  BoundedUfpConfig solver;
};

}  // namespace tufp::sim
