// The oracle catalogue: machine-checkable statements every world must
// satisfy, in three groups.
//
// Differential oracles re-run the same world through two implementations
// that are promised to agree and diff the outcomes exactly:
//   * kernel-diff    — bucket-queue vs heap shortest-path kernel
//   * thread-diff    — solver with 1 vs 4 OpenMP threads
//   * engine-offline — one engine epoch over a fresh network vs the
//                      paper's one-shot mechanism (allocation + critical
//                      payments)
//   * payment-policy — allocation identical under kNone/kDualPrice/
//                      kCritical (payments must not steer allocation)
//   * engine-thread  — full multi-epoch engine run, 1 vs 4 threads
//   * temporal-infinite — the temporal engine path (lease ledger on,
//                      every duration infinite) vs the lease-free legacy
//                      path, byte-for-byte
//   * residual-differential — the persistent ResidualGraph engine vs the
//                      legacy snapshot-per-epoch engine, byte-for-byte,
//                      plain and churn replays, across both shortest-path
//                      kernels and 1 vs 4 threads (DESIGN.md §12)
//
// Metamorphic oracles perturb the world in a direction with a provable
// consequence and check the consequence:
//   * bid-scaling     — scaling every value by λ > 0 leaves the
//                       allocation unchanged (selection minimizes
//                       (d/v)·|p|; a uniform λ cancels)
//   * winner-monotone — a winner raising its bid still wins; a loser
//                       lowering its bid still loses (Lemma 3.4)
//   * loser-removal   — deleting a loser changes nothing (a loser is
//                       never the per-iteration argmin, so the selection
//                       sequence is untouched)
//   * capacity-monotone — on a capacity-scaled copy the original
//                       solution stays feasible and the original value
//                       stays below the scaled copy's dual upper bound
//                       (OPT is monotone in capacity; Claim 3.6)
//
// Invariant oracles check single-run properties:
//   * feasible          — output exact + capacity-feasible (Lemma 3.3)
//   * dual-bound        — admitted value <= dual upper bound (Claim 3.6)
//   * residual-feasible — per-epoch residual in [0, base capacity] and
//                       cumulative load reconstructed from admitted paths
//                       matching base - residual
//   * payments-ir       — 0 <= payment <= bid for winners, losers pay
//                       zero (individual rationality + no positive
//                       transfers). This oracle prices through the sim
//                       payment rule, which is where fault injection
//                       plugs in.
//   * temporal-conserve — per epoch and per edge, active leased demand +
//                       residual == capacity, cross-checked against a
//                       sim-side lease replay reconstructed from the
//                       admission records (where kLeakExpiredCapacity
//                       injects).
//   * temporal-no-leak  — after the clock passes every finite expiry,
//                       each edge with no remaining lease holds its base
//                       capacity EXACTLY (==, not a tolerance: the
//                       ledger's snap-on-last-expiry rule).
//
// Fault injection exists to prove the harness catches bugs: the sim
// payment rule can be deliberately broken (seeded from the fuzz config,
// never by default) and the suite must flag and shrink the violation —
// the ctest acceptance check for the whole subsystem.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tufp/sim/world.hpp"

namespace tufp::sim {

enum class FaultInjection {
  kNone,
  kOverchargeWinners,  // winners pay 1.05x their bid — breaks IR
  kChargeLosers,       // losers pay a token amount — breaks loser-pays-zero
  // The temporal-conserve oracle's sim-side lease replay "loses" 5% of
  // every expired lease's capacity — breaks lease conservation, proving
  // the temporal oracle suite bites (the temporal analogue of
  // kOverchargeWinners for payments).
  kLeakExpiredCapacity,
};

const char* fault_name(FaultInjection fault);
FaultInjection fault_from_name(const std::string& name);

struct OracleOptions {
  FaultInjection fault = FaultInjection::kNone;
  // Bisection-based checks (critical payments) cost O(winners · log 1/tol)
  // full re-solves; worlds with more requests than this skip them and rely
  // on the cheap dual-price pricing path instead.
  int critical_cap = 24;
};

struct Violation {
  std::string oracle;
  std::string detail;  // deterministic human-readable witness
};

// Handed to every oracle: the world, the options, and lazily-memoized
// shared computations — the base solver run and the engine replays that
// several oracles diff against. Lazy so a restricted suite (e.g. the
// shrinker probing one oracle up to 600 times) only pays for what the
// selected oracles actually read. Definition is internal to oracles.cpp.
struct OracleContext;

using OracleFn = std::vector<Violation> (*)(OracleContext&);

struct OracleEntry {
  const char* name;
  const char* summary;
  OracleFn fn;
};

// The full catalogue, in a fixed canonical order.
std::span<const OracleEntry> oracle_catalogue();

// Runs `only` (all when empty) against the world, concatenating violations
// in catalogue order. Throws std::invalid_argument on an unknown oracle
// name.
std::vector<Violation> run_oracle_suite(
    const SimWorld& world, const OracleOptions& options,
    std::span<const std::string> only = {});

// Wraps a bare instance (e.g. a loaded repro file) into a SimWorld with
// one-shot arrivals, so repros replay through exactly the same suite. The
// two-argument form restores the failing world's sampled solver config and
// epoch batching (a violation that only manifests under, say,
// run_to_saturation=false must replay under it); the bare form uses
// defaults (guard on, saturation mode).
SimWorld wrap_instance(UfpInstance instance);
SimWorld wrap_instance(UfpInstance instance, const BoundedUfpConfig& solver,
                       int max_batch);

// The sim payment rule: solver allocation plus per-request payments
// (critical-value when num_requests <= critical_cap, dual-price otherwise),
// with the configured fault applied. Exposed so tests can pin the fault
// semantics directly.
struct SimPricing {
  UfpSolution allocation;
  std::vector<double> payments;
};
SimPricing sim_price(const UfpInstance& instance,
                     const BoundedUfpConfig& solver,
                     const OracleOptions& options);

}  // namespace tufp::sim
