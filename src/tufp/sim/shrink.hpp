// Instance shrinking: reduce a failing world to a minimal repro.
//
// Given a world and a deterministic failure predicate (normally "oracle X
// still reports a violation"), the shrinker greedily applies three
// reductions until a fixpoint or the probe budget:
//   1. request ddmin — delta-debugging over the request list (try to
//      drop chunks at doubling granularity, keep any reduction that still
//      fails);
//   2. edge contraction — drop graph edges one at a time while the
//      failure persists (requests keep their vertex ids);
//   3. vertex compaction — strip vertices no remaining edge or request
//      touches and renumber, so the repro file reads small.
// The predicate sees complete SimWorlds (solver config and epoch batching
// inherited from the failing world, arrivals zeroed) and must treat any
// exception as "does not fail"; the shrinker itself never throws on a
// reduction that produces an invalid instance — it just discards it.
#pragma once

#include <functional>

#include "tufp/sim/world.hpp"

namespace tufp::sim {

struct ShrinkOptions {
  // Hard cap on predicate evaluations across all rounds (each is a full
  // oracle re-run, the dominant cost).
  int max_probes = 600;
};

struct ShrinkStats {
  int probes = 0;
  int rounds = 0;
};

using WorldPredicate = std::function<bool(const SimWorld&)>;

// Returns the smallest failing world found; `start` itself when nothing
// smaller fails. Precondition: fails(start) is true (checked).
SimWorld shrink_world(const SimWorld& start, const WorldPredicate& fails,
                      const ShrinkOptions& options = {},
                      ShrinkStats* stats = nullptr);

}  // namespace tufp::sim
