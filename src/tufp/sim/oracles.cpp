#include "tufp/sim/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/sharded_engine.hpp"
#include "tufp/mechanism/allocation_rule.hpp"
#include "tufp/obs/telemetry.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/ufp/dual_certificate.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp::sim {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void add(std::vector<Violation>* out, const char* oracle, std::string detail) {
  out->push_back({oracle, std::move(detail)});
}

// ---------------------------------------------------------------- solver

BoundedUfpResult solve(const SimWorld& world, const BoundedUfpConfig& cfg) {
  return bounded_ufp(world.instance, cfg);
}

bool same_paths(const Path* a, const Path* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  return a == nullptr || *a == *b;
}

// Exact allocation equality: same selected set, same path per winner.
// Returns a witness string for the first difference, empty when equal.
std::string selection_diff(const UfpSolution& a, const UfpSolution& b) {
  if (a.num_requests() != b.num_requests()) {
    return "request-count mismatch " + std::to_string(a.num_requests()) +
           " vs " + std::to_string(b.num_requests());
  }
  for (int r = 0; r < a.num_requests(); ++r) {
    if (a.is_selected(r) != b.is_selected(r)) {
      return "request " + std::to_string(r) + " selected=" +
             (a.is_selected(r) ? "yes" : "no") + " vs " +
             (b.is_selected(r) ? "yes" : "no");
    }
    if (!same_paths(a.path_of(r), b.path_of(r))) {
      return "request " + std::to_string(r) + " routed along different paths";
    }
  }
  return {};
}

// ----------------------------------------------------------- engine runs

struct EpochDigest {
  int epoch = 0;
  int batch_size = 0;
  int admitted = 0;
  double revenue = 0.0;
  double admitted_value = 0.0;
  // Solver effort counters: the persistent-vs-snapshot differential pins
  // these too (the cross-epoch warm path must not change what the
  // reports print — golden counter parity, sp_cache.hpp).
  int solver_iterations = 0;
  std::int64_t sp_computations = 0;
  std::int64_t sp_tree_runs = 0;
  // (global request id, bid, payment, path_edges) per winner, epoch order.
  std::vector<AdmissionRecord> allocations;
};

struct EngineRun {
  std::vector<EpochDigest> epochs;
  std::vector<double> residual;          // final
  std::vector<Violation> residual_violations;  // bounds breached mid-run
};

// Replays the world's request list through the epoch engine in max_batch
// chunks. AdmissionRecord::sequence carries the global request index so
// digests are comparable across runs and against offline solves.
// `temporal_path` selects the lease-ledger code path with every duration
// left infinite — the same workload through the temporal machinery, which
// the temporal-infinite oracle diffs byte-for-byte against the default
// lease-free path. `persistent` selects the ResidualGraph hot path
// (the engine default); the residual-differential oracle runs both and
// diffs them, every other oracle exercises the default.
EngineRun run_world_engine(const SimWorld& world, PaymentPolicy payments,
                           int num_threads, bool temporal_path = false,
                           bool persistent = true) {
  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.payments = payments;
  config.record_allocations = true;
  config.persistent_residual = persistent;
  // The pre-temporal oracle suite replays every world under hold-forever
  // semantics: leases off keeps this the frozen legacy baseline.
  config.track_leases = temporal_path;
  config.solver = world.solver;
  config.solver.capacity_guard = true;  // engine precondition
  config.solver.num_threads = num_threads;
  EpochEngine engine(world.instance.shared_graph(), config);

  EngineRun run;
  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  const Graph& base = *world.instance.shared_graph();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    t.sequence = static_cast<std::int64_t>(i);
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    const AdmissionReport report = engine.run_epoch(batch);
    run.epochs.push_back({report.epoch, report.batch_size, report.admitted,
                          report.revenue, report.admitted_value,
                          report.solver_iterations, report.sp_computations,
                          report.sp_tree_runs, report.allocations});
    const auto residual = engine.residual();
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      const double res = residual[static_cast<std::size_t>(e)];
      if (res < -1e-9 || res > base.capacity(e) + 1e-9) {
        add(&run.residual_violations, "residual-feasible",
            "epoch " + std::to_string(report.epoch) + " edge " +
                std::to_string(e) + " residual " + fmt(res) +
                " outside [0, " + fmt(base.capacity(e)) + "]");
      }
    }
    batch.clear();
  }
  run.residual.assign(engine.residual().begin(), engine.residual().end());
  return run;
}

// ------------------------------------------------------- temporal replay

// One epoch of the temporal replay: the engine's report plus the per-edge
// ledger view right after the boundary cleared.
struct TemporalEpoch {
  AdmissionReport report;
  std::vector<double> residual;
  std::vector<double> leased;  // ledger's active leased demand per edge
};

struct TemporalRun {
  std::vector<TemporalEpoch> epochs;
  double last_close = 0.0;
  // State after the post-run horizon drain: the clock advanced past every
  // finite expiry and everything reclaimable reclaimed.
  int reclaimed_at_horizon = 0;
  std::vector<double> final_residual;
  std::vector<double> final_leased;
  std::vector<int> final_active_on_edge;
  std::int64_t final_active = 0;
  // Warm-tree reclaim revalidation counters (persistent path only; the
  // snapshot engine has no tree cache and reports zeros). Deterministic
  // per world: the residual-differential oracle pins them equal across
  // kernels and thread counts.
  std::int64_t trees_kept_on_reclaim = 0;
  std::int64_t trees_dropped_on_reclaim = 0;
};

// Replays the world through the lease-tracking engine with its sampled
// durations, recording the ledger view each epoch, then drains to a
// horizon beyond the last possible expiry (admissions happen at epoch
// close <= last_close, so last_close + max finite duration bounds every
// expiry).
TemporalRun run_world_engine_temporal(const SimWorld& world, int num_threads,
                                      bool persistent = true) {
  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.payments = PaymentPolicy::kNone;
  config.record_allocations = true;
  config.track_leases = true;
  config.persistent_residual = persistent;
  config.solver = world.solver;
  config.solver.capacity_guard = true;
  config.solver.num_threads = num_threads;
  EpochEngine engine(world.instance.shared_graph(), config);
  const temporal::LeaseLedger& ledger = *engine.lease_ledger();
  const Graph& base = world.instance.graph();
  const auto edges = static_cast<std::size_t>(base.num_edges());

  TemporalRun run;
  double max_finite_duration = 0.0;
  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    t.sequence = static_cast<std::int64_t>(i);
    t.duration = i < world.durations.size() ? world.durations[i] : kInf;
    if (t.duration < kInf) {
      max_finite_duration = std::max(max_finite_duration, t.duration);
    }
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    TemporalEpoch epoch;
    epoch.report = engine.run_epoch(batch);
    run.last_close = std::max(run.last_close, epoch.report.close_time);
    epoch.residual.assign(engine.residual().begin(),
                          engine.residual().end());
    epoch.leased.resize(edges);
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      epoch.leased[static_cast<std::size_t>(e)] = ledger.leased_demand(e);
    }
    run.epochs.push_back(std::move(epoch));
    batch.clear();
  }

  const double horizon = run.last_close + max_finite_duration + 1.0;
  run.reclaimed_at_horizon = engine.reclaim_expired(horizon);
  run.final_residual.assign(engine.residual().begin(),
                            engine.residual().end());
  run.final_leased.resize(edges);
  run.final_active_on_edge.resize(edges);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    run.final_leased[static_cast<std::size_t>(e)] = ledger.leased_demand(e);
    run.final_active_on_edge[static_cast<std::size_t>(e)] =
        ledger.active_on_edge(e);
  }
  run.final_active = ledger.active_count();
  run.trees_kept_on_reclaim =
      engine.metrics().counters().trees_kept_on_reclaim;
  run.trees_dropped_on_reclaim =
      engine.metrics().counters().trees_dropped_on_reclaim;
  return run;
}

std::string engine_run_diff(const EngineRun& a, const EngineRun& b) {
  if (a.epochs.size() != b.epochs.size()) {
    return "epoch-count mismatch " + std::to_string(a.epochs.size()) + " vs " +
           std::to_string(b.epochs.size());
  }
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const EpochDigest& x = a.epochs[i];
    const EpochDigest& y = b.epochs[i];
    if (x.batch_size != y.batch_size || x.admitted != y.admitted ||
        x.revenue != y.revenue || x.admitted_value != y.admitted_value ||
        x.allocations.size() != y.allocations.size()) {
      return "epoch " + std::to_string(x.epoch) + " digest mismatch";
    }
    if (x.solver_iterations != y.solver_iterations ||
        x.sp_computations != y.sp_computations ||
        x.sp_tree_runs != y.sp_tree_runs) {
      return "epoch " + std::to_string(x.epoch) + " solver counter mismatch";
    }
    for (std::size_t j = 0; j < x.allocations.size(); ++j) {
      if (x.allocations[j].sequence != y.allocations[j].sequence ||
          x.allocations[j].payment != y.allocations[j].payment) {
        return "epoch " + std::to_string(x.epoch) + " winner " +
               std::to_string(j) + " mismatch";
      }
    }
  }
  if (a.residual != b.residual) return "final residual mismatch";
  return {};
}

// Byte-exact diff of two temporal replays: per-epoch reports, residual
// and ledger views, and the drained-horizon final state. The operator==
// here are deliberate — the persistent and snapshot paths promise
// bitwise-identical histories, not merely close ones.
std::string temporal_run_diff(const TemporalRun& a, const TemporalRun& b) {
  if (a.epochs.size() != b.epochs.size()) {
    return "epoch-count mismatch " + std::to_string(a.epochs.size()) +
           " vs " + std::to_string(b.epochs.size());
  }
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const AdmissionReport& x = a.epochs[i].report;
    const AdmissionReport& y = b.epochs[i].report;
    if (x.batch_size != y.batch_size || x.admitted != y.admitted ||
        x.admitted_value != y.admitted_value || x.revenue != y.revenue ||
        x.close_time != y.close_time ||
        x.expired_leases != y.expired_leases ||
        x.active_leases != y.active_leases || x.occupancy != y.occupancy) {
      return "epoch " + std::to_string(x.epoch) + " report mismatch";
    }
    if (x.solver_iterations != y.solver_iterations ||
        x.sp_computations != y.sp_computations ||
        x.sp_tree_runs != y.sp_tree_runs) {
      return "epoch " + std::to_string(x.epoch) + " solver counter mismatch";
    }
    if (x.allocations.size() != y.allocations.size()) {
      return "epoch " + std::to_string(x.epoch) + " winner-count mismatch";
    }
    for (std::size_t j = 0; j < x.allocations.size(); ++j) {
      if (x.allocations[j].sequence != y.allocations[j].sequence ||
          x.allocations[j].payment != y.allocations[j].payment ||
          x.allocations[j].path_edges != y.allocations[j].path_edges) {
        return "epoch " + std::to_string(x.epoch) + " winner " +
               std::to_string(j) + " mismatch";
      }
    }
    if (a.epochs[i].residual != b.epochs[i].residual) {
      return "epoch " + std::to_string(x.epoch) + " residual mismatch";
    }
    if (a.epochs[i].leased != b.epochs[i].leased) {
      return "epoch " + std::to_string(x.epoch) + " leased-demand mismatch";
    }
  }
  if (a.reclaimed_at_horizon != b.reclaimed_at_horizon) {
    return "horizon reclaim-count mismatch";
  }
  if (a.final_residual != b.final_residual) {
    return "final residual mismatch";
  }
  if (a.final_leased != b.final_leased) return "final leased mismatch";
  if (a.final_active_on_edge != b.final_active_on_edge) {
    return "final per-edge lease-count mismatch";
  }
  if (a.final_active != b.final_active) return "final active-count mismatch";
  return {};
}

}  // namespace

// Lazy shared computations. Several oracles diff against the unperturbed
// base solve or the same engine replay; memoizing them here means a full
// sweep pays for each at most once, and a restricted suite (the shrinker
// probes a single oracle hundreds of times) pays only for what that
// oracle reads.
struct OracleContext {
  const SimWorld& world;
  const OracleOptions& options;

  OracleContext(const SimWorld& w, const OracleOptions& o)
      : world(w), options(o) {}

  const BoundedUfpResult& base() {
    if (!base_) base_.emplace(bounded_ufp(world.instance, world.solver));
    return *base_;
  }
  const EngineRun& engine_none() {
    if (!none_) none_.emplace(run_world_engine(world, PaymentPolicy::kNone, 1));
    return *none_;
  }
  const EngineRun& engine_dual() {
    if (!dual_) {
      dual_.emplace(run_world_engine(world, PaymentPolicy::kDualPrice, 1));
    }
    return *dual_;
  }
  const TemporalRun& temporal() {
    if (!temporal_) temporal_.emplace(run_world_engine_temporal(world, 1));
    return *temporal_;
  }

 private:
  std::optional<BoundedUfpResult> base_;
  std::optional<EngineRun> none_;
  std::optional<EngineRun> dual_;
  std::optional<TemporalRun> temporal_;
};

namespace {

// --------------------------------------------------------------- oracles

std::vector<Violation> oracle_feasible(OracleContext& ctx) {
  std::vector<Violation> out;
  const FeasibilityReport report =
      ctx.base().solution.check_feasibility(ctx.world.instance);
  if (!report.feasible) add(&out, "feasible", report.message);
  return out;
}

std::vector<Violation> oracle_dual_bound(OracleContext& ctx) {
  std::vector<Violation> out;
  const double value = ctx.base().solution.total_value(ctx.world.instance);
  if (!approx_le(value, ctx.base().dual_upper_bound, 1e-9, 1e-9)) {
    add(&out, "dual-bound",
        "admitted value " + fmt(value) + " exceeds dual upper bound " +
            fmt(ctx.base().dual_upper_bound));
  }
  return out;
}

std::vector<Violation> oracle_kernel_diff(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  BoundedUfpConfig heap = world.solver;
  heap.sp_kernel = SpKernel::kHeap;
  BoundedUfpConfig bucket = world.solver;
  bucket.sp_kernel = SpKernel::kBucket;
  const BoundedUfpResult a = solve(world, heap);
  const BoundedUfpResult b = solve(world, bucket);
  const std::string diff = selection_diff(a.solution, b.solution);
  if (!diff.empty()) {
    add(&out, "kernel-diff", "heap vs bucket: " + diff);
  } else if (a.final_dual_sum != b.final_dual_sum ||
             a.iterations != b.iterations) {
    add(&out, "kernel-diff",
        "heap vs bucket agree on allocation but not on dual state");
  }
  return out;
}

std::vector<Violation> oracle_thread_diff(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  BoundedUfpConfig one = world.solver;
  one.parallel = true;
  one.num_threads = 1;
  BoundedUfpConfig four = world.solver;
  four.parallel = true;
  four.num_threads = 4;
  const BoundedUfpResult a = solve(world, one);
  const BoundedUfpResult b = solve(world, four);
  const std::string diff = selection_diff(a.solution, b.solution);
  if (!diff.empty()) {
    add(&out, "thread-diff", "threads 1 vs 4: " + diff);
  } else if (a.final_dual_sum != b.final_dual_sum ||
             a.dual_upper_bound != b.dual_upper_bound) {
    add(&out, "thread-diff",
        "threads 1 vs 4 agree on allocation but not on dual state");
  }
  return out;
}

std::vector<Violation> oracle_bid_scaling(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  const BoundedUfpResult& base = ctx.base();
  // Powers of two: the scaled priorities (d/λv)·|p| are exact binary
  // rescalings, so even floating-point ties are preserved and the
  // allocation must be byte-identical.
  for (const double lambda : {0.5, 4.0}) {
    std::vector<Request> scaled = world.instance.requests();
    for (Request& r : scaled) r.value *= lambda;
    const UfpInstance instance(world.instance.shared_graph(),
                               std::move(scaled));
    const BoundedUfpResult run = bounded_ufp(instance, world.solver);
    const std::string diff = selection_diff(base.solution, run.solution);
    if (!diff.empty()) {
      add(&out, "bid-scaling",
          "allocation changed under uniform bid scaling x" + fmt(lambda) +
              ": " + diff);
    }
  }
  return out;
}

std::vector<Violation> oracle_winner_monotone(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  const BoundedUfpResult& base = ctx.base();
  int winner = -1, loser = -1;
  for (int r = 0; r < world.instance.num_requests(); ++r) {
    if (base.solution.is_selected(r) && winner < 0) winner = r;
    if (!base.solution.is_selected(r) && loser < 0) loser = r;
  }
  if (winner >= 0) {
    Request up = world.instance.request(winner);
    up.value *= 2.0;
    const BoundedUfpResult run =
        bounded_ufp(world.instance.with_request(winner, up), world.solver);
    if (!run.solution.is_selected(winner)) {
      add(&out, "winner-monotone",
          "winner " + std::to_string(winner) + " lost after raising its bid");
    }
    Request lighter = world.instance.request(winner);
    lighter.demand *= 0.5;
    const BoundedUfpResult run2 = bounded_ufp(
        world.instance.with_request(winner, lighter), world.solver);
    if (!run2.solution.is_selected(winner)) {
      add(&out, "winner-monotone",
          "winner " + std::to_string(winner) +
              " lost after halving its demand");
    }
  }
  if (loser >= 0) {
    Request down = world.instance.request(loser);
    down.value *= 0.5;
    const BoundedUfpResult run =
        bounded_ufp(world.instance.with_request(loser, down), world.solver);
    if (run.solution.is_selected(loser)) {
      add(&out, "winner-monotone",
          "loser " + std::to_string(loser) + " won after lowering its bid");
    }
  }
  return out;
}

std::vector<Violation> oracle_loser_removal(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  const BoundedUfpResult& base = ctx.base();
  int loser = -1;
  for (int r = 0; r < world.instance.num_requests(); ++r) {
    if (!base.solution.is_selected(r)) {
      loser = r;
      break;
    }
  }
  if (loser < 0 || world.instance.num_requests() < 2) return out;

  std::vector<Request> reduced = world.instance.requests();
  reduced.erase(reduced.begin() + loser);
  const UfpInstance instance(world.instance.shared_graph(), std::move(reduced));
  const BoundedUfpResult run = bounded_ufp(instance, world.solver);
  // Identity map: request r of the reduced instance is request r (+1 past
  // the removed slot) of the original.
  for (int r = 0; r < instance.num_requests(); ++r) {
    const int orig = r < loser ? r : r + 1;
    if (run.solution.is_selected(r) != base.solution.is_selected(orig) ||
        !same_paths(run.solution.path_of(r), base.solution.path_of(orig))) {
      add(&out, "loser-removal",
          "removing losing request " + std::to_string(loser) +
              " changed the outcome of request " + std::to_string(orig));
      break;
    }
  }
  return out;
}

std::vector<Violation> oracle_capacity_monotone(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  const BoundedUfpResult& base = ctx.base();
  const double value = base.solution.total_value(world.instance);

  const Graph& g = world.instance.graph();
  Graph scaled =
      g.is_directed() ? Graph::directed(g.num_vertices())
                      : Graph::undirected(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    scaled.add_edge(u, v, g.capacity(e) * 2.0);
  }
  scaled.finalize();
  const UfpInstance bigger(std::move(scaled), world.instance.requests());

  // The old allocation fits a fortiori in the wider network.
  const FeasibilityReport feas = base.solution.check_feasibility(bigger);
  if (!feas.feasible) {
    add(&out, "capacity-monotone",
        "solution infeasible after doubling capacities: " + feas.message);
  }
  // OPT is monotone in capacity, and Claim 3.6 upper-bounds the wider
  // optimum: value(c) <= OPT(c) <= OPT(2c) <= dual_ub(2c). The bound is
  // the shared certified implementation (ufp/dual_certificate.hpp) the
  // evaluation lab also builds on, so the fuzzer and the lab can never
  // disagree on it.
  const double wide_bound = claim36_upper_bound(bigger, world.solver);
  if (!approx_le(value, wide_bound, 1e-9, 1e-9)) {
    add(&out, "capacity-monotone",
        "value " + fmt(value) + " at base capacity exceeds the dual bound " +
            fmt(wide_bound) + " of the doubled network");
  }
  return out;
}

std::vector<Violation> oracle_engine_offline(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const OracleOptions& options = ctx.options;
  std::vector<Violation> out;
  const int R = world.instance.num_requests();
  if (R > options.critical_cap) return out;  // bisection cost cap

  // One epoch over the fresh network == the paper's one-shot auction.
  SimWorld single = world;
  single.max_batch = std::max(1, R);
  const EngineRun engine =
      run_world_engine(single, PaymentPolicy::kCritical, /*num_threads=*/1);

  BoundedUfpConfig cfg = world.solver;
  cfg.capacity_guard = true;
  const UfpMechanismResult offline =
      run_ufp_mechanism(world.instance, make_bounded_ufp_rule(cfg));

  std::vector<double> engine_payment(static_cast<std::size_t>(R), 0.0);
  std::vector<bool> engine_won(static_cast<std::size_t>(R), false);
  for (const EpochDigest& epoch : engine.epochs) {
    for (const AdmissionRecord& a : epoch.allocations) {
      const auto i = static_cast<std::size_t>(a.sequence);
      engine_won[i] = true;
      engine_payment[i] = a.payment;
    }
  }
  for (int r = 0; r < R; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (engine_won[i] != offline.allocation.is_selected(r)) {
      add(&out, "engine-offline",
          "request " + std::to_string(r) + " admitted by " +
              (engine_won[i] ? "engine only" : "offline mechanism only"));
      continue;
    }
    if (std::fabs(engine_payment[i] - offline.payments[i]) > 1e-9) {
      add(&out, "engine-offline",
          "request " + std::to_string(r) + " engine payment " +
              fmt(engine_payment[i]) + " != offline critical payment " +
              fmt(offline.payments[i]));
    }
  }
  return out;
}

std::vector<Violation> oracle_payment_policy(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const OracleOptions& options = ctx.options;
  std::vector<Violation> out;
  const EngineRun& none = ctx.engine_none();
  const EngineRun& dual = ctx.engine_dual();

  const auto admitted_sequences = [](const EngineRun& run) {
    std::vector<std::int64_t> seq;
    for (const EpochDigest& e : run.epochs) {
      for (const AdmissionRecord& a : e.allocations) seq.push_back(a.sequence);
    }
    return seq;
  };
  // IR + no-positive-transfer on the engine's *actual* charged payments
  // (the payments-ir oracle prices through the sim rule; this leg keeps
  // EpochEngine::apply_payments itself under the same invariant).
  const auto check_engine_ir = [&](const EngineRun& run, const char* policy) {
    for (const EpochDigest& e : run.epochs) {
      double revenue = 0.0;
      for (const AdmissionRecord& a : e.allocations) {
        revenue += a.payment;
        if (a.payment < -1e-12 || a.payment > a.bid + 1e-9) {
          add(&out, "payment-policy",
              std::string(policy) + " epoch " + std::to_string(e.epoch) +
                  " charged " + fmt(a.payment) + " against bid " +
                  fmt(a.bid));
        }
      }
      if (!approx_eq(revenue, e.revenue, 1e-9, 1e-12)) {
        add(&out, "payment-policy",
            std::string(policy) + " epoch " + std::to_string(e.epoch) +
                " revenue " + fmt(e.revenue) +
                " does not match the sum of its payments " + fmt(revenue));
      }
    }
  };

  const std::vector<std::int64_t> base_seq = admitted_sequences(none);
  if (admitted_sequences(dual) != base_seq) {
    add(&out, "payment-policy",
        "dual-price pricing changed the admitted set vs kNone");
  }
  check_engine_ir(dual, "dual-price");
  for (const EpochDigest& e : none.epochs) {
    if (e.revenue != 0.0) {
      add(&out, "payment-policy",
          "kNone epoch " + std::to_string(e.epoch) + " charged revenue " +
              fmt(e.revenue));
    }
  }
  if (world.instance.num_requests() <= options.critical_cap) {
    const EngineRun critical =
        run_world_engine(world, PaymentPolicy::kCritical, 1);
    if (admitted_sequences(critical) != base_seq) {
      add(&out, "payment-policy",
          "critical pricing changed the admitted set vs kNone");
    }
    check_engine_ir(critical, "critical");
  }
  return out;
}

std::vector<Violation> oracle_engine_thread(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  std::vector<Violation> out;
  const EngineRun& one = ctx.engine_dual();
  const EngineRun four = run_world_engine(world, PaymentPolicy::kDualPrice, 4);
  const std::string diff = engine_run_diff(one, four);
  if (!diff.empty()) add(&out, "engine-thread", "threads 1 vs 4: " + diff);
  return out;
}

std::vector<Violation> oracle_residual_feasible(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const EngineRun& run = ctx.engine_none();
  std::vector<Violation> out = run.residual_violations;

  // Global conservation: total capacity consumed across the base network
  // equals the sum over winners of demand x path length.
  const Graph& g = world.instance.graph();
  double consumed = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    consumed += g.capacity(e) - run.residual[static_cast<std::size_t>(e)];
  }
  double expected = 0.0;
  for (const EpochDigest& epoch : run.epochs) {
    for (const AdmissionRecord& a : epoch.allocations) {
      const Request& req =
          world.instance.request(static_cast<int>(a.sequence));
      expected += req.demand * a.path_edges;
    }
  }
  if (!approx_eq(consumed, expected, 1e-6, 1e-6)) {
    add(&out, "residual-feasible",
        "consumed capacity " + fmt(consumed) +
            " does not match admitted load " + fmt(expected));
  }
  return out;
}

std::vector<Violation> oracle_payments_ir(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const OracleOptions& options = ctx.options;
  std::vector<Violation> out;
  const SimPricing pricing = sim_price(world.instance, world.solver, options);
  for (int r = 0; r < world.instance.num_requests(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    const double pay = pricing.payments[i];
    const double bid = world.instance.request(r).value;
    if (!pricing.allocation.is_selected(r)) {
      if (pay != 0.0) {
        add(&out, "payments-ir",
            "loser " + std::to_string(r) + " charged " + fmt(pay));
      }
      continue;
    }
    if (pay < -1e-12) {
      add(&out, "payments-ir",
          "winner " + std::to_string(r) + " paid negative amount " + fmt(pay));
    }
    if (pay > bid + 1e-9) {
      add(&out, "payments-ir",
          "winner " + std::to_string(r) + " charged " + fmt(pay) +
              " above its bid " + fmt(bid));
    }
  }
  return out;
}

// ------------------------------------------------------ temporal oracles

std::vector<Violation> oracle_temporal_infinite(OracleContext& ctx) {
  // The temporal code path with every duration infinite must be
  // indistinguishable — byte-for-byte, residuals included — from the
  // lease-free legacy path: the ledger is pure bookkeeping until
  // something actually expires.
  std::vector<Violation> out;
  const EngineRun& legacy = ctx.engine_dual();
  const EngineRun temporal = run_world_engine(
      ctx.world, PaymentPolicy::kDualPrice, 1, /*temporal_path=*/true);
  const std::string diff = engine_run_diff(legacy, temporal);
  if (!diff.empty()) {
    add(&out, "temporal-infinite",
        "lease-free vs infinite-lease engine: " + diff);
  }
  return out;
}

std::vector<Violation> oracle_temporal_conserve(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const Graph& g = world.instance.graph();
  std::vector<Violation> out;
  const TemporalRun& run = ctx.temporal();

  // Leg 1 — ledger vs residual, per epoch, per edge: what the ledger says
  // is promised out plus what the engine says is free must reconstruct
  // the base capacity. (Tolerance, not ==: admission clamps at zero may
  // discard up to the guard slack per admission.)
  for (const TemporalEpoch& epoch : run.epochs) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto ei = static_cast<std::size_t>(e);
      const double residual = epoch.residual[ei];
      const double leased = epoch.leased[ei];
      if (residual < -1e-9 || residual > g.capacity(e) + 1e-9 ||
          !approx_eq(residual + leased, g.capacity(e), 1e-9, 1e-6)) {
        add(&out, "temporal-conserve",
            "epoch " + std::to_string(epoch.report.epoch) + " edge " +
                std::to_string(e) + " residual " + fmt(residual) +
                " + leased " + fmt(leased) + " != capacity " +
                fmt(g.capacity(e)));
      }
    }
  }

  // Leg 2 — sim-side lease replay: rebuild the lease book from nothing
  // but the admission records (demand, path length, duration) and demand
  // the engine's total consumed capacity match it every epoch. This is
  // the leg kLeakExpiredCapacity corrupts (the replay "loses" 5% of each
  // expired lease), proving the conservation check bites.
  const double reclaim_factor =
      ctx.options.fault == FaultInjection::kLeakExpiredCapacity ? 0.95 : 1.0;
  struct BookedLease {
    double expires = 0.0;
    double units = 0.0;  // demand * path edges
  };
  std::vector<BookedLease> book;
  double booked = 0.0;
  for (const TemporalEpoch& epoch : run.epochs) {
    const double close = epoch.report.close_time;
    // Expiries drain before the auction, mirroring the engine.
    for (BookedLease& lease : book) {
      if (lease.units > 0.0 && lease.expires <= close) {
        booked -= lease.units * reclaim_factor;
        lease.units = 0.0;
      }
    }
    for (const AdmissionRecord& a : epoch.report.allocations) {
      const auto seq = static_cast<std::size_t>(a.sequence);
      const Request& req = world.instance.request(static_cast<int>(seq));
      const double duration =
          seq < world.durations.size() ? world.durations[seq] : kInf;
      const double units = req.demand * a.path_edges;
      booked += units;
      if (duration < kInf) book.push_back({close + duration, units});
    }
    double consumed = 0.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      consumed += g.capacity(e) - epoch.residual[static_cast<std::size_t>(e)];
    }
    if (!approx_eq(consumed, booked, 1e-6, 1e-6)) {
      add(&out, "temporal-conserve",
          "epoch " + std::to_string(epoch.report.epoch) +
              " consumed capacity " + fmt(consumed) +
              " does not match the replayed lease book " + fmt(booked));
      break;  // the books only diverge further; one witness is enough
    }
  }
  return out;
}

std::vector<Violation> oracle_temporal_no_leak(OracleContext& ctx) {
  const SimWorld& world = ctx.world;
  const Graph& g = world.instance.graph();
  std::vector<Violation> out;
  const TemporalRun& run = ctx.temporal();

  // Every finite lease has expired by the drained horizon: an edge with
  // no remaining (permanent) lease must hold its base capacity EXACTLY —
  // the ledger's snap rule makes this an ==, not a tolerance.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto ei = static_cast<std::size_t>(e);
    if (run.final_active_on_edge[ei] == 0) {
      if (run.final_residual[ei] != g.capacity(e)) {
        add(&out, "temporal-no-leak",
            "edge " + std::to_string(e) + " residual " +
                fmt(run.final_residual[ei]) + " != base capacity " +
                fmt(g.capacity(e)) + " after every lease expired");
      }
    } else if (!approx_eq(run.final_residual[ei] + run.final_leased[ei],
                          g.capacity(e), 1e-9, 1e-6)) {
      add(&out, "temporal-no-leak",
          "edge " + std::to_string(e) + " residual " +
              fmt(run.final_residual[ei]) + " + permanent leases " +
              fmt(run.final_leased[ei]) + " != capacity " +
              fmt(g.capacity(e)));
    }
  }

  // Only permanent admissions may survive the horizon.
  std::int64_t permanent = 0;
  for (const TemporalEpoch& epoch : run.epochs) {
    for (const AdmissionRecord& a : epoch.report.allocations) {
      const auto seq = static_cast<std::size_t>(a.sequence);
      const double duration =
          seq < world.durations.size() ? world.durations[seq] : kInf;
      if (duration >= kInf) ++permanent;
    }
  }
  if (run.final_active != permanent) {
    add(&out, "temporal-no-leak",
        "ledger holds " + std::to_string(run.final_active) +
            " leases past the horizon, expected the " +
            std::to_string(permanent) + " permanent admissions");
  }
  return out;
}

// The tentpole differential of the persistent-residual PR: the engine
// with the in-place ResidualGraph + cross-epoch workspace against the
// legacy snapshot-per-epoch engine, byte-for-byte — admissions,
// payments, residuals, ledger views, solver counters — across both
// shortest-path kernels and OpenMP thread counts, on the plain replay
// AND the full admit->expire->re-admit churn replay. This is the oracle
// that licenses shipping the persistent path as the default.
std::vector<Violation> oracle_residual_differential(OracleContext& ctx) {
  std::vector<Violation> out;
  // Warm-tree reclaim revalidation verdicts of each persistent temporal
  // leg: the surviving tree set is a pure function of the epoch history,
  // so (kept, dropped) must agree across kernels and thread counts.
  std::vector<std::pair<std::int64_t, std::int64_t>> reclaim_legs;
  std::vector<std::string> leg_names;
  for (const SpKernel kernel : {SpKernel::kHeap, SpKernel::kBucket}) {
    SimWorld world = ctx.world;
    world.solver.sp_kernel = kernel;
    const char* kname = kernel == SpKernel::kHeap ? "heap" : "bucket";
    for (const int threads : {1, 4}) {
      const std::string leg =
          std::string(kname) + " t" + std::to_string(threads) + ": ";
      const EngineRun persistent = run_world_engine(
          world, PaymentPolicy::kDualPrice, threads,
          /*temporal_path=*/false, /*persistent=*/true);
      const EngineRun snapshot = run_world_engine(
          world, PaymentPolicy::kDualPrice, threads,
          /*temporal_path=*/false, /*persistent=*/false);
      const std::string diff = engine_run_diff(persistent, snapshot);
      if (!diff.empty()) {
        add(&out, "residual-differential",
            leg + "persistent vs snapshot engine: " + diff);
      }
      // Churn leg: finite durations live, expiries reclaim mid-run —
      // the regime where the stamp/warm-tree machinery actually bites.
      const TemporalRun tp =
          run_world_engine_temporal(world, threads, /*persistent=*/true);
      const TemporalRun ts =
          run_world_engine_temporal(world, threads, /*persistent=*/false);
      const std::string tdiff = temporal_run_diff(tp, ts);
      if (!tdiff.empty()) {
        add(&out, "residual-differential",
            leg + "persistent vs snapshot temporal replay: " + tdiff);
      }
      reclaim_legs.emplace_back(tp.trees_kept_on_reclaim,
                                tp.trees_dropped_on_reclaim);
      leg_names.push_back(std::string(kname) + " t" +
                          std::to_string(threads));
    }
  }
  for (std::size_t i = 1; i < reclaim_legs.size(); ++i) {
    if (reclaim_legs[i] != reclaim_legs[0]) {
      add(&out, "residual-differential",
          "warm-tree reclaim counters diverge across legs: " + leg_names[0] +
              " kept/dropped " + std::to_string(reclaim_legs[0].first) + "/" +
              std::to_string(reclaim_legs[0].second) + " vs " + leg_names[i] +
              " " + std::to_string(reclaim_legs[i].first) + "/" +
              std::to_string(reclaim_legs[i].second));
    }
  }
  return out;
}

// ------------------------------------------------------- sharded replay

// Protocol-level observations of one sharded replay: the coordinator's
// exact-state audit after every epoch (and after the horizon drain), plus
// the lifetime totals of the two-phase counters.
struct ShardedProbe {
  std::vector<std::string> audit;  // verify() failures, prefixed by epoch
  shard::ShardCounters totals;
  std::int64_t winners = 0;
  std::int64_t cross_shard_winners = 0;
};

void audit_sharded(const ShardedEpochEngine& sharded, const std::string& at,
                   ShardedProbe* probe) {
  for (const std::string& v : sharded.verify()) {
    probe->audit.push_back(at + ": " + v);
  }
}

void finish_probe(const ShardedEpochEngine& sharded, ShardedProbe* probe) {
  probe->totals = sharded.totals();
  probe->winners = sharded.winners();
  probe->cross_shard_winners = sharded.cross_shard_winners();
}

// run_world_engine through a ShardedEpochEngine decider: identical replay
// loop, identical config — the digests must therefore be byte-identical,
// and the per-epoch audit proves the shard layer reconstructed the global
// state exactly while producing them.
EngineRun run_world_engine_sharded(const SimWorld& world,
                                   PaymentPolicy payments, int num_threads,
                                   int num_shards, ShardedProbe* probe) {
  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.payments = payments;
  config.record_allocations = true;
  config.persistent_residual = true;
  config.track_leases = false;
  config.solver = world.solver;
  config.solver.capacity_guard = true;
  config.solver.num_threads = num_threads;
  ShardedEpochEngine sharded(world.instance.shared_graph(), config,
                             num_shards);
  EpochEngine& engine = sharded.engine();

  EngineRun run;
  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    t.sequence = static_cast<std::int64_t>(i);
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    const AdmissionReport report = engine.run_epoch(batch);
    run.epochs.push_back({report.epoch, report.batch_size, report.admitted,
                          report.revenue, report.admitted_value,
                          report.solver_iterations, report.sp_computations,
                          report.sp_tree_runs, report.allocations});
    if (probe != nullptr) {
      audit_sharded(sharded, "epoch " + std::to_string(report.epoch), probe);
    }
    batch.clear();
  }
  run.residual.assign(engine.residual().begin(), engine.residual().end());
  if (probe != nullptr) finish_probe(sharded, probe);
  return run;
}

// run_world_engine_temporal through a sharded decider, with the same
// per-epoch + post-horizon audit.
TemporalRun run_world_engine_temporal_sharded(const SimWorld& world,
                                              int num_threads, int num_shards,
                                              ShardedProbe* probe) {
  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.payments = PaymentPolicy::kNone;
  config.record_allocations = true;
  config.track_leases = true;
  config.persistent_residual = true;
  config.solver = world.solver;
  config.solver.capacity_guard = true;
  config.solver.num_threads = num_threads;
  ShardedEpochEngine sharded(world.instance.shared_graph(), config,
                             num_shards);
  EpochEngine& engine = sharded.engine();
  const temporal::LeaseLedger& ledger = *engine.lease_ledger();
  const Graph& base = world.instance.graph();
  const auto edges = static_cast<std::size_t>(base.num_edges());

  TemporalRun run;
  double max_finite_duration = 0.0;
  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    t.sequence = static_cast<std::int64_t>(i);
    t.duration = i < world.durations.size() ? world.durations[i] : kInf;
    if (t.duration < kInf) {
      max_finite_duration = std::max(max_finite_duration, t.duration);
    }
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    TemporalEpoch epoch;
    epoch.report = engine.run_epoch(batch);
    run.last_close = std::max(run.last_close, epoch.report.close_time);
    epoch.residual.assign(engine.residual().begin(),
                          engine.residual().end());
    epoch.leased.resize(edges);
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      epoch.leased[static_cast<std::size_t>(e)] = ledger.leased_demand(e);
    }
    if (probe != nullptr) {
      audit_sharded(sharded, "epoch " + std::to_string(epoch.report.epoch),
                    probe);
    }
    run.epochs.push_back(std::move(epoch));
    batch.clear();
  }

  const double horizon = run.last_close + max_finite_duration + 1.0;
  run.reclaimed_at_horizon = engine.reclaim_expired(horizon);
  run.final_residual.assign(engine.residual().begin(),
                            engine.residual().end());
  run.final_leased.resize(edges);
  run.final_active_on_edge.resize(edges);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    run.final_leased[static_cast<std::size_t>(e)] = ledger.leased_demand(e);
    run.final_active_on_edge[static_cast<std::size_t>(e)] =
        ledger.active_on_edge(e);
  }
  run.final_active = ledger.active_count();
  run.trees_kept_on_reclaim =
      engine.metrics().counters().trees_kept_on_reclaim;
  run.trees_dropped_on_reclaim =
      engine.metrics().counters().trees_dropped_on_reclaim;
  if (probe != nullptr) {
    audit_sharded(sharded, "horizon", probe);
    finish_probe(sharded, probe);
  }
  return run;
}

// The tentpole differential of the sharding PR: the sharded multi-engine
// service against the single engine, byte-for-byte — every report digest,
// payment, residual, ledger view and solver counter — across both SP
// kernels and thread counts, plain AND temporal churn replays. On top,
// the two-phase protocol counters themselves must agree across legs:
// they are declared a pure function of the admission history, so a
// kernel or thread count changing any of them is a determinism bug even
// if the admissions match.
std::vector<Violation> oracle_sharded_differential(OracleContext& ctx) {
  std::vector<Violation> out;
  constexpr int kShards = 4;
  struct LegCounters {
    shard::ShardCounters plain, temporal;
    std::string name;
  };
  std::vector<LegCounters> legs;
  for (const SpKernel kernel : {SpKernel::kHeap, SpKernel::kBucket}) {
    SimWorld world = ctx.world;
    world.solver.sp_kernel = kernel;
    const char* kname = kernel == SpKernel::kHeap ? "heap" : "bucket";
    for (const int threads : {1, 4}) {
      const std::string leg =
          std::string(kname) + " t" + std::to_string(threads);
      ShardedProbe plain_probe;
      const EngineRun single = run_world_engine(
          world, PaymentPolicy::kDualPrice, threads,
          /*temporal_path=*/false, /*persistent=*/true);
      const EngineRun sharded = run_world_engine_sharded(
          world, PaymentPolicy::kDualPrice, threads, kShards, &plain_probe);
      const std::string diff = engine_run_diff(single, sharded);
      if (!diff.empty()) {
        add(&out, "sharded-differential",
            leg + ": sharded vs single engine: " + diff);
      }
      ShardedProbe temporal_probe;
      const TemporalRun tsingle =
          run_world_engine_temporal(world, threads, /*persistent=*/true);
      const TemporalRun tsharded = run_world_engine_temporal_sharded(
          world, threads, kShards, &temporal_probe);
      const std::string tdiff = temporal_run_diff(tsingle, tsharded);
      if (!tdiff.empty()) {
        add(&out, "sharded-differential",
            leg + ": sharded vs single temporal replay: " + tdiff);
      }
      for (const ShardedProbe* p : {&plain_probe, &temporal_probe}) {
        if (p->totals.aborts != 0 || p->totals.releases != 0) {
          add(&out, "sharded-differential",
              leg + ": two-phase abort/release on a decider-selected "
                    "winner set (aborts " +
                  std::to_string(p->totals.aborts) + ", releases " +
                  std::to_string(p->totals.releases) + ")");
        }
      }
      legs.push_back({plain_probe.totals, temporal_probe.totals, leg});
    }
  }
  const auto counters_equal = [](const shard::ShardCounters& a,
                                 const shard::ShardCounters& b) {
    return a.reservations == b.reservations && a.conflicts == b.conflicts &&
           a.aborts == b.aborts && a.commits == b.commits &&
           a.releases == b.releases && a.reclaims == b.reclaims;
  };
  for (std::size_t i = 1; i < legs.size(); ++i) {
    if (!counters_equal(legs[i].plain, legs[0].plain) ||
        !counters_equal(legs[i].temporal, legs[0].temporal)) {
      add(&out, "sharded-differential",
          "two-phase protocol counters diverge across legs: " + legs[0].name +
              " vs " + legs[i].name);
    }
  }
  return out;
}

// Per-shard + global lease conservation, extending the PR-5 temporal
// oracles to the shard layer: after every epoch (and the horizon drain),
// each shard's residual store and lease book must reconstruct the global
// residual and ledger gauges on its window with exact (==) equality, the
// shard windows must tile the edge space, and the merged protocol
// counters must satisfy the winner-accounting conservation law (verify()
// checks all of it; two lattices exercise boundary placement).
std::vector<Violation> oracle_shard_conserve(OracleContext& ctx) {
  std::vector<Violation> out;
  for (const int shards : {3, 4}) {
    // Plan tiling: every edge owned by exactly one shard, windows
    // contiguous and exhaustive.
    const shard::ShardPlan plan(ctx.world.instance.graph().num_edges(),
                                shards);
    EdgeId expect = 0;
    for (int s = 0; s < plan.num_shards(); ++s) {
      const shard::ShardWindow& w = plan.window(s);
      if (w.begin != expect || w.end < w.begin) {
        add(&out, "shard-conserve",
            "plan windows do not tile the edge space at shard " +
                std::to_string(s));
      }
      expect = w.end;
    }
    if (expect != ctx.world.instance.graph().num_edges()) {
      add(&out, "shard-conserve", "plan windows stop short of the edge space");
    }
    for (EdgeId e = 0; e < ctx.world.instance.graph().num_edges(); ++e) {
      const int s = plan.shard_of(e);
      if (!plan.window(s).contains(e)) {
        add(&out, "shard-conserve",
            "shard_of(" + std::to_string(e) + ") = " + std::to_string(s) +
                " does not own the edge");
        break;
      }
    }

    ShardedProbe probe;
    (void)run_world_engine_temporal_sharded(ctx.world, /*num_threads=*/1,
                                            shards, &probe);
    for (const std::string& v : probe.audit) {
      add(&out, "shard-conserve",
          "shards=" + std::to_string(shards) + " " + v);
    }
  }
  return out;
}

// --------------------------------------------------- decision trace legs

// Captures the decision channel into memory: the trace-differential
// oracle diffs raw rendered lines, so it must see exactly the bytes a
// file sink would.
class CapturingSink final : public obs::TelemetrySink {
 public:
  void emit(obs::Channel channel, std::string_view line) override {
    if (channel == obs::Channel::kDeterministic) lines.emplace_back(line);
  }
  std::vector<std::string> lines;
};

// Replays the world with a DecisionTrace attached and returns the
// rendered decision lines. `num_shards == 0` runs the bare engine;
// otherwise the same replay goes through a ShardedEpochEngine observer
// (which must not perturb the decision stream). `temporal_path` replays
// with the sampled durations and drains to the post-run horizon, so
// lease_expired records are part of the diffed history too.
std::vector<std::string> run_world_trace(const SimWorld& world,
                                         int num_threads, int num_shards,
                                         bool temporal_path) {
  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.payments = PaymentPolicy::kDualPrice;
  config.record_allocations = true;
  config.persistent_residual = true;
  config.track_leases = temporal_path;
  config.solver = world.solver;
  config.solver.capacity_guard = true;
  config.solver.num_threads = num_threads;

  CapturingSink sink;
  obs::DecisionTrace trace(&sink);
  std::unique_ptr<ShardedEpochEngine> sharded;
  std::unique_ptr<EpochEngine> single;
  EpochEngine* engine = nullptr;
  if (num_shards > 0) {
    sharded = std::make_unique<ShardedEpochEngine>(
        world.instance.shared_graph(), config, num_shards);
    engine = &sharded->engine();
  } else {
    single =
        std::make_unique<EpochEngine>(world.instance.shared_graph(), config);
    engine = single.get();
  }
  engine->set_decision_trace(&trace);

  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  double last_close = 0.0;
  double max_finite_duration = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    t.sequence = static_cast<std::int64_t>(i);
    if (temporal_path) {
      t.duration = i < world.durations.size() ? world.durations[i] : kInf;
      if (t.duration < kInf) {
        max_finite_duration = std::max(max_finite_duration, t.duration);
      }
    }
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    const AdmissionReport report = engine->run_epoch(batch);
    last_close = std::max(last_close, report.close_time);
    batch.clear();
  }
  if (temporal_path) {
    (void)engine->reclaim_expired(last_close + max_finite_duration + 1.0);
  }
  engine->set_decision_trace(nullptr);
  return std::move(sink.lines);
}

// The tentpole differential of the provenance PR: the rendered decision
// stream — every outcome, density, bottleneck edge, conflict shard,
// payment and warm/fresh provenance bit, as bytes — must be identical
// across SP kernels, thread counts and shard layouts, on both the plain
// and the churn replay. On top, the stream must satisfy the terminal-
// decision contract: exactly one non-expiry record per offered request,
// in ascending sequence order within each epoch.
std::vector<Violation> oracle_trace_differential(OracleContext& ctx) {
  std::vector<Violation> out;
  for (const bool temporal_path : {false, true}) {
    const char* mode = temporal_path ? "churn" : "plain";
    std::vector<std::string> reference;
    std::string reference_leg;
    for (const SpKernel kernel : {SpKernel::kHeap, SpKernel::kBucket}) {
      SimWorld world = ctx.world;
      world.solver.sp_kernel = kernel;
      const char* kname = kernel == SpKernel::kHeap ? "heap" : "bucket";
      for (const int threads : {1, 4}) {
        for (const int shards : {0, 4}) {
          const std::string leg = std::string(mode) + " " + kname + " t" +
                                  std::to_string(threads) +
                                  (shards > 0
                                       ? " shards" + std::to_string(shards)
                                       : " unsharded");
          std::vector<std::string> lines =
              run_world_trace(world, threads, shards, temporal_path);
          if (reference_leg.empty()) {
            // One-decision-per-request audit on the reference leg only
            // (equality transports it to every other leg).
            std::int64_t decisions = 0;
            for (const std::string& line : lines) {
              if (line.find("\"outcome\":\"lease_expired\"") ==
                  std::string::npos) {
                ++decisions;
              }
            }
            const auto offered =
                static_cast<std::int64_t>(world.instance.requests().size());
            if (decisions != offered) {
              add(&out, "trace-differential",
                  leg + ": " + std::to_string(decisions) +
                      " terminal decisions for " + std::to_string(offered) +
                      " offered requests");
            }
            reference = std::move(lines);
            reference_leg = leg;
            continue;
          }
          if (lines == reference) continue;
          const std::size_t n = std::min(lines.size(), reference.size());
          std::size_t k = 0;
          while (k < n && lines[k] == reference[k]) ++k;
          add(&out, "trace-differential",
              leg + " diverges from " + reference_leg + " at record " +
                  std::to_string(k) + ": " +
                  (k < reference.size() ? reference[k] : "<end>") + " vs " +
                  (k < lines.size() ? lines[k] : "<end>"));
        }
      }
    }
  }
  return out;
}

constexpr OracleEntry kCatalogue[] = {
    {"feasible", "solver output exact and capacity-feasible", oracle_feasible},
    {"dual-bound", "admitted value within the Claim 3.6 dual bound",
     oracle_dual_bound},
    {"kernel-diff", "bucket vs heap shortest-path kernels agree",
     oracle_kernel_diff},
    {"thread-diff", "solver identical across OpenMP thread counts",
     oracle_thread_diff},
    {"bid-scaling", "allocation invariant under uniform bid scaling",
     oracle_bid_scaling},
    {"winner-monotone", "better declarations keep winning (Lemma 3.4)",
     oracle_winner_monotone},
    {"loser-removal", "removing a loser changes nothing",
     oracle_loser_removal},
    {"capacity-monotone", "value bounded by the wider network's dual bound",
     oracle_capacity_monotone},
    {"payments-ir", "payments individually rational, no positive transfers",
     oracle_payments_ir},
    {"residual-feasible", "engine residual bounded, load conserved",
     oracle_residual_feasible},
    {"engine-thread", "engine history identical across thread counts",
     oracle_engine_thread},
    {"payment-policy", "pricing policy never steers allocation",
     oracle_payment_policy},
    {"engine-offline", "single engine epoch equals the one-shot mechanism",
     oracle_engine_offline},
    {"temporal-infinite",
     "infinite-duration lease runs match the lease-free engine exactly",
     oracle_temporal_infinite},
    {"temporal-conserve",
     "active lease demand + residual reconstructs capacity every epoch",
     oracle_temporal_conserve},
    {"temporal-no-leak",
     "residual returns to the empty-network baseline after expiry",
     oracle_temporal_no_leak},
    {"residual-differential",
     "persistent residual engine byte-identical to the snapshot engine",
     oracle_residual_differential},
    {"sharded-differential",
     "sharded multi-engine service byte-identical to the single engine",
     oracle_sharded_differential},
    {"shard-conserve",
     "per-shard residual and lease books reconstruct the global state",
     oracle_shard_conserve},
    {"trace-differential",
     "decision provenance stream byte-identical across kernels, threads "
     "and shard layouts",
     oracle_trace_differential},
};

}  // namespace

const char* fault_name(FaultInjection fault) {
  switch (fault) {
    case FaultInjection::kNone: return "none";
    case FaultInjection::kOverchargeWinners: return "overcharge-winners";
    case FaultInjection::kChargeLosers: return "charge-losers";
    case FaultInjection::kLeakExpiredCapacity:
      return "leak-expired-capacity";
  }
  return "unknown";
}

FaultInjection fault_from_name(const std::string& name) {
  for (FaultInjection f :
       {FaultInjection::kNone, FaultInjection::kOverchargeWinners,
        FaultInjection::kChargeLosers,
        FaultInjection::kLeakExpiredCapacity}) {
    if (name == fault_name(f)) return f;
  }
  throw std::invalid_argument("unknown fault injection: " + name);
}

std::span<const OracleEntry> oracle_catalogue() { return kCatalogue; }

std::vector<Violation> run_oracle_suite(const SimWorld& world,
                                        const OracleOptions& options,
                                        std::span<const std::string> only) {
  for (const std::string& name : only) {
    const auto known = std::any_of(
        std::begin(kCatalogue), std::end(kCatalogue),
        [&](const OracleEntry& e) { return name == e.name; });
    if (!known) throw std::invalid_argument("unknown oracle: " + name);
  }
  OracleContext ctx(world, options);
  std::vector<Violation> out;
  for (const OracleEntry& entry : kCatalogue) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), entry.name) == only.end()) {
      continue;
    }
    std::vector<Violation> found = entry.fn(ctx);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

SimWorld wrap_instance(UfpInstance instance) {
  BoundedUfpConfig solver;
  solver.capacity_guard = true;
  solver.run_to_saturation = true;
  const int R = instance.num_requests();
  return wrap_instance(std::move(instance), solver, std::max(2, R / 3));
}

SimWorld wrap_instance(UfpInstance instance, const BoundedUfpConfig& solver,
                       int max_batch) {
  const int R = instance.num_requests();
  SimWorld world{WorldSpec{WorldFamily::kGrid, 0},
                 std::move(instance),
                 std::vector<double>(static_cast<std::size_t>(R), 0.0),
                 {},
                 DurationProfile::kInfinite,
                 std::max(1, max_batch),
                 solver};
  return world;
}

SimPricing sim_price(const UfpInstance& instance,
                     const BoundedUfpConfig& solver,
                     const OracleOptions& options) {
  BoundedUfpConfig cfg = solver;
  cfg.record_trace = true;
  const BoundedUfpResult run = bounded_ufp(instance, cfg);

  SimPricing pricing{run.solution,
                     std::vector<double>(
                         static_cast<std::size_t>(instance.num_requests()),
                         0.0)};
  if (instance.num_requests() <= options.critical_cap) {
    BoundedUfpConfig probe = cfg;
    probe.parallel = false;
    probe.record_trace = false;
    const UfpRule rule = make_bounded_ufp_rule(probe);
    for (int r = 0; r < instance.num_requests(); ++r) {
      if (!run.solution.is_selected(r)) continue;
      const double critical = ufp_critical_value(instance, rule, r);
      pricing.payments[static_cast<std::size_t>(r)] =
          std::min(critical, instance.request(r).value);
    }
  } else {
    for (const IterationRecord& it : run.trace) {
      const double bid = instance.request(it.request).value;
      pricing.payments[static_cast<std::size_t>(it.request)] =
          bid * std::min(1.0, it.alpha);
    }
  }

  // Deliberate breakage for harness-catches-bugs demonstrations. Never on
  // by default; seeded explicitly from the fuzz config.
  switch (options.fault) {
    case FaultInjection::kNone:
    case FaultInjection::kLeakExpiredCapacity:  // temporal-side fault:
      break;  // payments untouched (see oracle_temporal_conserve)
    case FaultInjection::kOverchargeWinners:
      for (int r = 0; r < instance.num_requests(); ++r) {
        if (run.solution.is_selected(r)) {
          pricing.payments[static_cast<std::size_t>(r)] =
              instance.request(r).value * 1.05;
        }
      }
      break;
    case FaultInjection::kChargeLosers:
      for (int r = 0; r < instance.num_requests(); ++r) {
        if (!run.solution.is_selected(r)) {
          pricing.payments[static_cast<std::size_t>(r)] = 0.01;
        }
      }
      break;
  }
  return pricing;
}

}  // namespace tufp::sim
