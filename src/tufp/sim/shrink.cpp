#include "tufp/sim/shrink.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "tufp/util/assert.hpp"

namespace tufp::sim {

namespace {

// Rebuilds a shrunk world. Arrivals and durations are part of what a
// temporal oracle fails *on* (no clock advance, no expiry), so both
// travel with their surviving requests; allocation outcomes themselves
// stay arrival-time independent, which is why the legacy oracles never
// notice.
SimWorld rebuild(const SimWorld& base, UfpInstance instance,
                 std::vector<double> arrivals,
                 std::vector<double> durations) {
  const int R = instance.num_requests();
  if (arrivals.empty()) {
    arrivals.assign(static_cast<std::size_t>(R), 0.0);
  }
  SimWorld world{base.spec,
                 std::move(instance),
                 std::move(arrivals),
                 std::move(durations),
                 base.duration_profile,
                 std::max(1, std::min(base.max_batch, std::max(1, R))),
                 base.solver};
  return world;
}

std::optional<UfpInstance> keep_requests(const SimWorld& world,
                                         const std::vector<char>& keep,
                                         std::vector<double>* arrivals,
                                         std::vector<double>* durations) {
  const UfpInstance& instance = world.instance;
  std::vector<Request> reduced;
  arrivals->clear();
  durations->clear();
  for (int r = 0; r < instance.num_requests(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (keep[ri]) {
      reduced.push_back(instance.request(r));
      if (ri < world.arrivals.size()) {
        arrivals->push_back(world.arrivals[ri]);
      }
      if (ri < world.durations.size()) {
        durations->push_back(world.durations[ri]);
      }
    }
  }
  if (reduced.empty()) return std::nullopt;  // empty worlds fail no oracle
  if (world.durations.empty()) durations->clear();
  return UfpInstance(instance.shared_graph(), std::move(reduced));
}

std::optional<UfpInstance> drop_edge(const UfpInstance& instance,
                                     EdgeId drop) {
  const Graph& g = instance.graph();
  if (g.num_edges() <= 1) return std::nullopt;
  Graph reduced = g.is_directed() ? Graph::directed(g.num_vertices())
                                  : Graph::undirected(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (e == drop) continue;
    const auto [u, v] = g.endpoints(e);
    reduced.add_edge(u, v, g.capacity(e));
  }
  reduced.finalize();
  return UfpInstance(std::move(reduced), instance.requests());
}

std::optional<UfpInstance> compact_vertices(const UfpInstance& instance) {
  const Graph& g = instance.graph();
  std::vector<VertexId> remap(static_cast<std::size_t>(g.num_vertices()),
                              kInvalidVertex);
  const auto mark = [&](VertexId v) {
    remap[static_cast<std::size_t>(v)] = 0;
  };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    mark(u);
    mark(v);
  }
  for (const Request& r : instance.requests()) {
    mark(r.source);
    mark(r.target);
  }
  VertexId next = 0;
  for (auto& slot : remap) {
    if (slot == 0) slot = next++;
  }
  if (next == g.num_vertices()) return std::nullopt;  // nothing to strip

  Graph reduced =
      g.is_directed() ? Graph::directed(next) : Graph::undirected(next);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    reduced.add_edge(remap[static_cast<std::size_t>(u)],
                     remap[static_cast<std::size_t>(v)], g.capacity(e));
  }
  reduced.finalize();
  std::vector<Request> requests = instance.requests();
  for (Request& r : requests) {
    r.source = remap[static_cast<std::size_t>(r.source)];
    r.target = remap[static_cast<std::size_t>(r.target)];
  }
  return UfpInstance(std::move(reduced), std::move(requests));
}

class Shrinker {
 public:
  Shrinker(const WorldPredicate& fails, const ShrinkOptions& options)
      : fails_(fails), options_(options) {}

  // True when the candidate still fails (and budget allows probing).
  bool probe(const SimWorld& candidate) {
    if (stats_.probes >= options_.max_probes) return false;
    ++stats_.probes;
    try {
      return fails_(candidate);
    } catch (const std::exception&) {
      return false;  // invalid reduction, discard
    }
  }

  // Classic ddmin over the request list: try removing chunks at doubling
  // granularity; accept any removal that keeps the failure.
  bool shrink_requests(SimWorld* world) {
    bool changed = false;
    int granularity = 2;
    while (world->instance.num_requests() > 1) {
      const int R = world->instance.num_requests();
      granularity = std::min(granularity, R);
      bool reduced_this_pass = false;
      for (int chunk = 0; chunk < granularity; ++chunk) {
        const int lo = static_cast<int>(
            static_cast<long long>(chunk) * R / granularity);
        const int hi = static_cast<int>(
            static_cast<long long>(chunk + 1) * R / granularity);
        if (lo >= hi) continue;
        std::vector<char> keep(static_cast<std::size_t>(R), 1);
        for (int r = lo; r < hi; ++r) keep[static_cast<std::size_t>(r)] = 0;
        std::vector<double> arrivals;
        std::vector<double> durations;
        auto candidate = keep_requests(*world, keep, &arrivals, &durations);
        if (!candidate) continue;
        SimWorld next = rebuild(*world, std::move(*candidate),
                                std::move(arrivals), std::move(durations));
        if (probe(next)) {
          *world = std::move(next);
          changed = reduced_this_pass = true;
          break;  // indices shifted; restart the pass
        }
      }
      if (reduced_this_pass) continue;
      if (granularity >= R) break;
      granularity = std::min(2 * granularity, R);
    }
    return changed;
  }

  bool shrink_edges(SimWorld* world) {
    bool changed = false;
    // Highest id first: surviving edge ids below the dropped one are
    // stable, so one sweep visits every original edge once.
    for (EdgeId e = world->instance.graph().num_edges() - 1; e >= 0; --e) {
      auto candidate = drop_edge(world->instance, e);
      if (!candidate) continue;
      // The request list is untouched: arrivals/durations carry over.
      SimWorld next = rebuild(*world, std::move(*candidate),
                              world->arrivals, world->durations);
      if (probe(next)) {
        *world = std::move(next);
        changed = true;
      }
    }
    return changed;
  }

  bool compact(SimWorld* world) {
    auto candidate = compact_vertices(world->instance);
    if (!candidate) return false;
    SimWorld next = rebuild(*world, std::move(*candidate),
                            world->arrivals, world->durations);
    if (!probe(next)) return false;
    *world = std::move(next);
    return true;
  }

  SimWorld run(SimWorld world) {
    for (;;) {
      ++stats_.rounds;
      bool changed = shrink_requests(&world);
      changed = shrink_edges(&world) || changed;
      changed = compact(&world) || changed;
      if (!changed || stats_.probes >= options_.max_probes) break;
    }
    return world;
  }

  const ShrinkStats& stats() const { return stats_; }

 private:
  const WorldPredicate& fails_;
  ShrinkOptions options_;
  ShrinkStats stats_;
};

}  // namespace

SimWorld shrink_world(const SimWorld& start, const WorldPredicate& fails,
                      const ShrinkOptions& options, ShrinkStats* stats) {
  TUFP_REQUIRE(fails(start), "shrink_world requires a failing start world");
  Shrinker shrinker(fails, options);
  SimWorld world = shrinker.run(start);
  if (stats) *stats = shrinker.stats();
  return world;
}

}  // namespace tufp::sim
