#include "tufp/sim/world_gen.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "tufp/graph/generators.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/lower_bounds.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp::sim {

namespace {

// Per-world demand profile — the "B-bounded demand mixes" axis of the
// matrix. Every profile keeps demands in (0, 1].
enum class DemandProfile { kUniform, kSmall, kBimodal, kUnit };

double sample_demand(DemandProfile profile, Rng& rng) {
  switch (profile) {
    case DemandProfile::kUniform:
      return rng.next_double(0.1, 1.0);
    case DemandProfile::kSmall:
      return rng.next_double(0.05, 0.3);
    case DemandProfile::kBimodal:
      return rng.next_bool(0.5) ? rng.next_double(0.05, 0.2)
                                : rng.next_double(0.8, 1.0);
    case DemandProfile::kUnit:
      return 1.0;
  }
  return 1.0;
}

double sample_value(Rng& rng) {
  // Mild skew: most bids moderate, occasional whale.
  const double base = rng.next_double(1.0, 8.0);
  return rng.next_bool(0.1) ? base * rng.next_double(3.0, 8.0) : base;
}

// Terminal-pair sampling that cannot fail: source uniform among vertices
// that reach somebody, target uniform among its reachable set. BFS per
// draw is fine at fuzz-world sizes.
Request sample_request(const Graph& graph, DemandProfile profile, Rng& rng) {
  const int n = graph.num_vertices();
  for (;;) {
    const auto s = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const std::vector<bool> reach = reachable_from(graph, s);
    std::vector<VertexId> targets;
    for (VertexId v = 0; v < n; ++v) {
      if (v != s && reach[static_cast<std::size_t>(v)]) targets.push_back(v);
    }
    if (targets.empty()) continue;  // isolated source; redraw
    Request req;
    req.source = s;
    req.target = targets[rng.next_below(targets.size())];
    req.demand = sample_demand(profile, rng);
    req.value = sample_value(rng);
    return req;
  }
}

std::vector<Request> sample_requests(const Graph& graph, int count,
                                     DemandProfile profile, Rng& rng) {
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    requests.push_back(sample_request(graph, profile, rng));
  }
  return requests;
}

// Arrival-time synthesis — the trace axis. Arrival order is the request
// order; only the clock differs.
std::vector<double> synth_arrivals(int count, Rng& rng) {
  std::vector<double> arrivals(static_cast<std::size_t>(count), 0.0);
  const int model = static_cast<int>(rng.next_below(3));
  if (model == 0) return arrivals;  // one-shot: everything at t = 0
  if (model == 1) {                 // Poisson trace
    const double rate = rng.next_double(20.0, 200.0);
    double clock = 0.0;
    for (auto& t : arrivals) {
      clock += -std::log1p(-rng.next_double()) / rate;
      t = clock;
    }
    return arrivals;
  }
  // Burst trace: groups arrive simultaneously every `period` seconds.
  const double period = rng.next_double(0.02, 0.2);
  const int burst = 1 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < count; ++i) {
    arrivals[static_cast<std::size_t>(i)] = (i / burst) * period;
  }
  return arrivals;
}

DemandProfile sample_profile(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return DemandProfile::kUniform;
    case 1: return DemandProfile::kSmall;
    case 2: return DemandProfile::kBimodal;
    default: return DemandProfile::kUnit;
  }
}

// The temporal axis (spec.durations). Draws from a dedicated RNG stream,
// never the world rng: adding the axis must not perturb the instances,
// arrivals or solver configs the pre-temporal suite was generated with.
DurationProfile sample_duration_profile(Rng& drng) {
  // Weighted toward kInfinite so roughly half the matrix still exercises
  // the hold-forever baseline the differential oracles diff against.
  if (drng.next_bool(0.5)) return DurationProfile::kInfinite;
  switch (drng.next_below(5)) {
    case 0: return DurationProfile::kFixed;
    case 1: return DurationProfile::kExponential;
    case 2: return DurationProfile::kHeavyTailed;
    case 3: return DurationProfile::kDiurnal;
    default: return DurationProfile::kFlashCrowd;
  }
}

// Duration synthesis for a generated world: scale the mean/period to the
// world's arrival span so finite leases actually expire (and churn) while
// its request list replays. One-shot worlds (span 0) still get small
// positive durations — they expire once a driver advances the clock.
std::vector<double> synth_durations(DurationProfile profile, int count,
                                    std::span<const double> arrivals,
                                    Rng& drng) {
  if (profile == DurationProfile::kInfinite) return {};
  const double span =
      arrivals.empty() ? 0.0 : arrivals[arrivals.size() - 1];
  DurationConfig config;
  config.profile = profile;
  config.mean = std::max(span / 3.0, 0.02) * drng.next_double(0.3, 1.5);
  config.period = std::max(span / 2.0, 0.05);
  DurationSampler sampler(config, drng());
  std::vector<double> durations(static_cast<std::size_t>(count), 0.0);
  for (int i = 0; i < count; ++i) {
    durations[static_cast<std::size_t>(i)] =
        sampler.sample(i < static_cast<int>(arrivals.size())
                           ? arrivals[static_cast<std::size_t>(i)]
                           : 0.0);
  }
  return durations;
}

BoundedUfpConfig sample_solver(Rng& rng) {
  BoundedUfpConfig solver;
  solver.capacity_guard = true;
  // Mostly the serving-layer mode; sometimes the paper-faithful threshold
  // so the stopping rule is fuzzed too.
  solver.run_to_saturation = !rng.next_bool(0.25);
  switch (rng.next_below(3)) {
    case 0: solver.epsilon = 1.0 / 6.0; break;
    case 1: solver.epsilon = 0.1; break;
    default: solver.epsilon = 0.3; break;
  }
  return solver;
}

UfpInstance make_staircase_world(Rng& rng) {
  const int l = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  const int B = 2 + static_cast<int>(rng.next_below(4));  // 2..5
  const bool subdivided = rng.next_bool(0.5);
  return make_staircase(l, B, subdivided).instance;
}

// Single-sink tree: every vertex routes to one sink, the topology where
// edge contention concentrates (the hard single-sink families of
// Shepherd–Vetta live on trees into one sink). Random parent pointers give
// random depth/branching; capacities grow toward the sink so B sits on
// the leaves.
UfpInstance make_single_sink_world(Rng& rng, DemandProfile profile) {
  const int n = 6 + static_cast<int>(rng.next_below(15));  // 6..20
  const double B = 1.0 + static_cast<double>(rng.next_below(8));
  Graph g = Graph::directed(n);
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(v)));
    // Edges closer to the sink (vertex 0) carry more headroom.
    const double depth_bonus = parent == 0 ? rng.next_double(1.0, 3.0) : 1.0;
    g.add_edge(v, parent, B * depth_bonus);
  }
  g.finalize();

  const int R = 6 + static_cast<int>(rng.next_below(25));
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(R));
  for (int i = 0; i < R; ++i) {
    Request req;
    req.source = 1 + static_cast<VertexId>(
                         rng.next_below(static_cast<std::uint64_t>(n - 1)));
    req.target = 0;
    req.demand = sample_demand(profile, rng);
    req.value = sample_value(rng);
    requests.push_back(req);
  }
  return UfpInstance(std::move(g), std::move(requests));
}

UfpInstance make_grid_world(Rng& rng, DemandProfile profile) {
  const int rows = 3 + static_cast<int>(rng.next_below(3));
  const int cols = 3 + static_cast<int>(rng.next_below(3));
  const double cap = 2.0 + static_cast<double>(rng.next_below(15));
  Graph g = grid_graph(rows, cols, cap, /*directed=*/false);
  const int R = 8 + static_cast<int>(rng.next_below(25));
  std::vector<Request> requests = sample_requests(g, R, profile, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

UfpInstance make_random_sparse_world(Rng& rng, DemandProfile profile) {
  const int n = 8 + static_cast<int>(rng.next_below(14));  // 8..21
  const int m = n + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(2 * n)));
  const double cap_min = 1.0 + static_cast<double>(rng.next_below(6));
  Graph g = random_graph(n, m, cap_min, cap_min * rng.next_double(1.0, 3.0),
                         rng.next_bool(0.5), rng);
  const int R = 6 + static_cast<int>(rng.next_below(28));
  std::vector<Request> requests = sample_requests(g, R, profile, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

UfpInstance make_layered_world(Rng& rng, DemandProfile profile) {
  const int layers = 3 + static_cast<int>(rng.next_below(3));
  const int width = 2 + static_cast<int>(rng.next_below(3));
  const int fanout =
      1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(width)));
  const double cap_min = 1.0 + static_cast<double>(rng.next_below(5));
  Graph g = layered_graph(layers, width, fanout, cap_min,
                          cap_min * rng.next_double(1.0, 2.5), rng);
  const int R = 6 + static_cast<int>(rng.next_below(20));
  std::vector<Request> requests = sample_requests(g, R, profile, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

UfpInstance make_ring_world(Rng& rng, DemandProfile profile) {
  const int n = 6 + static_cast<int>(rng.next_below(11));  // 6..16
  const double cap = 2.0 + static_cast<double>(rng.next_below(10));
  Graph g = ring_graph(n, cap, rng.next_bool(0.5));
  const int R = 6 + static_cast<int>(rng.next_below(20));
  std::vector<Request> requests = sample_requests(g, R, profile, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

}  // namespace

const char* family_name(WorldFamily family) {
  switch (family) {
    case WorldFamily::kStaircase: return "staircase";
    case WorldFamily::kSingleSink: return "single-sink";
    case WorldFamily::kGrid: return "grid";
    case WorldFamily::kRandomSparse: return "random-sparse";
    case WorldFamily::kLayered: return "layered";
    case WorldFamily::kRing: return "ring";
  }
  return "unknown";
}

WorldFamily family_from_name(const std::string& name) {
  for (WorldFamily f : kAllFamilies) {
    if (name == family_name(f)) return f;
  }
  throw std::invalid_argument("unknown world family: " + name);
}

SimWorld generate_world(const WorldSpec& spec) {
  Rng rng(spec.seed ^ 0xf0f1f2f3f4f5f6f7ULL);
  const DemandProfile profile = sample_profile(rng);

  UfpInstance instance = [&]() -> UfpInstance {
    switch (spec.family) {
      case WorldFamily::kStaircase: return make_staircase_world(rng);
      case WorldFamily::kSingleSink: return make_single_sink_world(rng, profile);
      case WorldFamily::kGrid: return make_grid_world(rng, profile);
      case WorldFamily::kRandomSparse:
        return make_random_sparse_world(rng, profile);
      case WorldFamily::kLayered: return make_layered_world(rng, profile);
      case WorldFamily::kRing: return make_ring_world(rng, profile);
    }
    TUFP_CHECK(false, "unhandled world family");
  }();

  SimWorld world{spec,
                 std::move(instance),
                 {},
                 {},
                 DurationProfile::kInfinite,
                 16,
                 sample_solver(rng)};
  const int R = world.instance.num_requests();
  world.arrivals = synth_arrivals(R, rng);
  // Batches small enough that multi-epoch residual carry-over is exercised,
  // large enough that epochs hold real auctions.
  const int lo = std::max(2, R / 6);
  const int hi = std::max(lo + 1, R / 2);
  world.max_batch =
      lo + static_cast<int>(rng.next_below(
               static_cast<std::uint64_t>(hi - lo + 1)));

  // Temporal axis last, from its own seed stream (see above): the world
  // up to this point is byte-identical to its pre-temporal self.
  Rng drng(spec.seed ^ 0x1ea5e5d0a7a11e57ULL);
  world.duration_profile = spec.durations == DurationProfile::kAuto
                               ? sample_duration_profile(drng)
                               : spec.durations;
  world.durations =
      synth_durations(world.duration_profile, R, world.arrivals, drng);
  return world;
}

SimWorld make_scale_churn_world(const ScaleChurnSpec& spec) {
  TUFP_REQUIRE(spec.rows >= 2 && spec.cols >= 2, "churn grid too small");
  TUFP_REQUIRE(spec.arrival_rate > 0.0, "churn arrival rate must be positive");
  TUFP_REQUIRE(spec.durations != DurationProfile::kInfinite &&
                   spec.durations != DurationProfile::kAuto,
               "the churn tier needs a concrete finite duration profile");
  Graph g = grid_graph(spec.rows, spec.cols, spec.capacity,
                       /*directed=*/false);
  const int n = g.num_vertices();

  RequestGenConfig cfg;
  cfg.num_requests = spec.num_requests;
  cfg.source_pool = spec.source_pool;
  cfg.source_stride = spec.source_stride > 0
                          ? spec.source_stride
                          : std::max(1, (n - 1) / std::max(1, spec.source_pool - 1));
  cfg.target_radius = spec.target_radius;
  Rng rng(spec.seed ^ 0xc4a7f00d5ca1e000ULL);
  std::vector<Request> requests = generate_requests(g, cfg, rng);

  BoundedUfpConfig solver;
  solver.capacity_guard = true;
  solver.run_to_saturation = true;

  SimWorld world{WorldSpec{WorldFamily::kGrid, spec.seed, spec.durations},
                 UfpInstance(std::move(g), std::move(requests)),
                 {},
                 {},
                 spec.durations,
                 std::max(1, spec.max_batch),
                 solver};

  // Poisson arrivals at the spec rate; the duration stream draws from a
  // separate seed so tuning the arrival rate never reshuffles durations.
  const int R = world.instance.num_requests();
  world.arrivals.resize(static_cast<std::size_t>(R));
  double clock = 0.0;
  for (auto& t : world.arrivals) {
    clock += -std::log1p(-rng.next_double()) / spec.arrival_rate;
    t = clock;
  }
  DurationConfig dc;
  dc.profile = spec.durations;
  dc.mean = spec.duration_mean;
  dc.period = spec.duration_period;
  Rng drng(spec.seed ^ 0x5ca1ab1e0c472000ULL);
  DurationSampler sampler(dc, drng());
  world.durations.resize(static_cast<std::size_t>(R));
  for (int i = 0; i < R; ++i) {
    world.durations[static_cast<std::size_t>(i)] =
        sampler.sample(world.arrivals[static_cast<std::size_t>(i)]);
  }
  return world;
}

}  // namespace tufp::sim
