// The generator matrix: WorldSpec -> SimWorld, deterministically.
#pragma once

#include <cstdint>

#include "tufp/sim/world.hpp"

namespace tufp::sim {

// Generates the world named by `spec`. Pure: identical specs yield
// byte-identical worlds (graph, requests, arrivals, config). Never throws
// on any spec — every (family, seed) pair maps to a valid normalized
// B-bounded instance with at least one request.
SimWorld generate_world(const WorldSpec& spec);

// The non-saturating churn tier's world shape, shared by the scale bench,
// the oracle suite and test_engine_leases: a grid mesh under hub-local
// traffic (pooled sources spread across the grid, targets from each hub's
// hop ball) with finite lease durations, so reclaims fire steadily while
// most hubs' warm trees sit far from any reclaimed edge — the regime where
// per-tree reclaim revalidation keeps trees_kept_on_reclaim > 0 and the
// residual graph never saturates into the blocked-mask fast path.
struct ScaleChurnSpec {
  int rows = 60;
  int cols = 60;
  double capacity = 8.0;
  int num_requests = 2000;
  int max_batch = 64;
  // Hub-locality knobs (workload/request_gen.hpp): `source_stride == 0`
  // auto-spreads the pool evenly across the vertex set.
  int source_pool = 24;
  int source_stride = 0;
  int target_radius = 6;
  // Poisson arrival rate (requests per virtual second) and the finite
  // duration profile driving the churn. Occupancy scales with
  // arrival_rate * duration_mean; the defaults land mid-band on the
  // default grid.
  double arrival_rate = 400.0;
  DurationProfile durations = DurationProfile::kExponential;
  double duration_mean = 0.05;
  // Flash-crowd release window (kFlashCrowd only).
  double duration_period = 0.5;
  std::uint64_t seed = 1;
};

// Builds the churn world named by `spec`. Pure and deterministic like
// generate_world(); requests are reachable by construction (hop-ball
// targets), so no per-sample reachability probe runs even at 10^6
// requests.
SimWorld make_scale_churn_world(const ScaleChurnSpec& spec);

}  // namespace tufp::sim
