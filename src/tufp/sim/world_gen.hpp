// The generator matrix: WorldSpec -> SimWorld, deterministically.
#pragma once

#include "tufp/sim/world.hpp"

namespace tufp::sim {

// Generates the world named by `spec`. Pure: identical specs yield
// byte-identical worlds (graph, requests, arrivals, config). Never throws
// on any spec — every (family, seed) pair maps to a valid normalized
// B-bounded instance with at least one request.
SimWorld generate_world(const WorldSpec& spec);

}  // namespace tufp::sim
