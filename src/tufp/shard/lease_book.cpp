#include "tufp/shard/lease_book.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"

namespace tufp::shard {

ShardLeaseBook::ShardLeaseBook(ShardWindow window)
    : window_(window),
      leased_demand_(static_cast<std::size_t>(window.size()), 0.0),
      active_on_edge_(static_cast<std::size_t>(window.size()), 0) {
  TUFP_REQUIRE(window.size() >= 1, "a shard lease book needs a non-empty window");
}

void ShardLeaseBook::apply_admit(double demand,
                                 std::span<const EdgeId> edges) {
  TUFP_REQUIRE(!edges.empty(), "a shard admit must touch an in-window edge");
  for (const EdgeId e : edges) {
    TUFP_REQUIRE(window_.contains(e), "admit edge outside the shard window");
    const std::size_t i = index(e);
    leased_demand_[i] += demand;
    ++active_on_edge_[i];
  }
  leased_capacity_ += demand * static_cast<double>(edges.size());
  ++active_leases_;
}

void ShardLeaseBook::apply_drain(double demand,
                                 std::span<const EdgeId> edges) {
  TUFP_REQUIRE(!edges.empty(), "a shard drain must touch an in-window edge");
  for (const EdgeId e : edges) {
    TUFP_REQUIRE(window_.contains(e), "drain edge outside the shard window");
    const std::size_t i = index(e);
    leased_demand_[i] -= demand;
    if (--active_on_edge_[i] == 0) {
      // Exact-snap rule, bit-for-bit the ledger's: incremental +/- demand
      // is not associative, the empty-edge baseline is.
      leased_demand_[i] = 0.0;
    }
  }
  leased_capacity_ -= demand * static_cast<double>(edges.size());
  --active_leases_;
  if (active_leases_ == 0) leased_capacity_ = 0.0;  // same snap, shard gauge
}

void ShardLeaseBook::clear() {
  std::fill(leased_demand_.begin(), leased_demand_.end(), 0.0);
  std::fill(active_on_edge_.begin(), active_on_edge_.end(), 0);
  active_leases_ = 0;
  leased_capacity_ = 0.0;
}

}  // namespace tufp::shard
