// Per-shard lease accounting: the shard-local slice of the global
// LeaseLedger's gauges (temporal/lease_ledger.hpp).
//
// Each region shard keeps its own book of what is leased on the edges it
// owns, driven by the same admit/drain event stream the global ledger
// sees, in the same order, with bit-identical arithmetic — including the
// exact-snap rule (leased_demand snaps to 0.0 when the last lease leaves
// an edge; the no-leak guarantee is an == guarantee, not a tolerance).
// Per-edge ops on distinct edges commute bitwise and each edge is owned
// by exactly one shard, so after any prefix of the event stream every
// in-window gauge equals the ledger's — the per-shard half of the
// shard-conserve oracle (sim/oracles.cpp) checks exactly that, with ==.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/shard/partition.hpp"

namespace tufp::shard {

class ShardLeaseBook {
 public:
  explicit ShardLeaseBook(ShardWindow window);

  // One admitted lease crossing this shard. `edges` is the in-window
  // subset of the lease's path, in path order; must be non-empty.
  void apply_admit(double demand, std::span<const EdgeId> edges);

  // The same lease leaving (ledger drain). Mirrors LeaseLedger's
  // reclaim arithmetic on the gauges; the residual write-back lives in
  // ShardEngine::drain (it owns the shard residual store).
  void apply_drain(double demand, std::span<const EdgeId> edges);

  const ShardWindow& window() const { return window_; }
  // Gauges by base edge id (must be in-window).
  double leased_demand(EdgeId e) const {
    return leased_demand_[index(e)];
  }
  std::int32_t active_on_edge(EdgeId e) const {
    return active_on_edge_[index(e)];
  }
  // Leases currently holding at least one in-window edge.
  std::int64_t active_leases() const { return active_leases_; }
  // Sum of demand * in-window edge count over active leases.
  double leased_capacity() const { return leased_capacity_; }

  void clear();

 private:
  std::size_t index(EdgeId e) const {
    return static_cast<std::size_t>(e - window_.begin);
  }

  ShardWindow window_;
  std::vector<double> leased_demand_;
  std::vector<std::int32_t> active_on_edge_;
  std::int64_t active_leases_ = 0;
  double leased_capacity_ = 0.0;
};

}  // namespace tufp::shard
