#include "tufp/shard/shard_engine.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp::shard {

ShardEngine::ShardEngine(int shard_id, ShardWindow window,
                         std::span<const double> base_capacities)
    : shard_id_(shard_id), book_(window) {
  TUFP_REQUIRE(window.begin >= 0 && window.end > window.begin &&
                   static_cast<std::size_t>(window.end) <=
                       base_capacities.size(),
               "shard window outside the base edge space");
  const auto n = static_cast<std::size_t>(window.size());
  capacity_.assign(base_capacities.begin() + window.begin,
                   base_capacities.begin() + window.end);
  residual_ = capacity_;
  stamp_.assign(n, 0);
  reserved_demand_.assign(n, 0.0);
  reserved_epoch_.assign(n, -1);
}

bool ShardEngine::reserve(std::int64_t epoch, std::span<const EdgeId> edges,
                          double demand) {
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const std::size_t i = index(edges[k]);
    if (reserved_epoch_[i] == epoch && reserved_demand_[i] > 0.0) {
      // An earlier winner of this epoch already holds a reservation here:
      // the boundary-edge contention the protocol exists to serialize.
      // The decider's canonical winner order already resolved it; count
      // the event and stack the reservation.
      ++counters_.conflicts;
    }
    if (demand > residual_[i]) {
      // Defensive: a genuine solver winner set is jointly feasible
      // (capacity guard), so this branch is dead in engine-driven runs
      // and the coordinator checks it loudly. Roll back this call's
      // partial acquisitions so a direct caller observes clean state.
      release(edges.subspan(0, k), demand);
      return false;
    }
    if (reserved_epoch_[i] != epoch) {
      reserved_epoch_[i] = epoch;
      reserved_demand_[i] = demand;
    } else {
      reserved_demand_[i] += demand;
    }
    ++counters_.reservations;
  }
  return true;
}

void ShardEngine::commit(std::span<const EdgeId> edges, double demand) {
  TUFP_REQUIRE(!edges.empty(), "a shard commit must touch an in-window edge");
  // One fresh tick per committed winner, every touched edge stamped at it
  // — the ResidualGraph::commit_admission discipline, shard-local.
  const std::int64_t tick = ++clock_;
  for (const EdgeId e : edges) {
    const std::size_t i = index(e);
    // The engine's exact clamp rule; bit-identical to the global store.
    residual_[i] = std::max(0.0, residual_[i] - demand);
    stamp_[i] = tick;
  }
  book_.apply_admit(demand, edges);
  ++counters_.commits;
}

void ShardEngine::release(std::span<const EdgeId> edges, double demand) {
  for (const EdgeId e : edges) {
    const std::size_t i = index(e);
    reserved_demand_[i] -= demand;
    if (reserved_demand_[i] <= 0.0) reserved_demand_[i] = 0.0;
    ++counters_.releases;
  }
}

void ShardEngine::drain(double demand, std::span<const EdgeId> edges) {
  TUFP_REQUIRE(!edges.empty(), "a shard drain must touch an in-window edge");
  const std::int64_t tick = ++clock_;
  for (const EdgeId e : edges) {
    const std::size_t i = index(e);
    // The ledger's exact restore arithmetic (lease_ledger.cpp): the book
    // holds the authoritative active count for the snap decision, and by
    // induction it equals the ledger's on every in-window edge.
    if (book_.active_on_edge(e) == 1) {
      residual_[i] = capacity_[i];
    } else {
      residual_[i] = std::min(capacity_[i], residual_[i] + demand);
    }
    stamp_[i] = tick;
  }
  book_.apply_drain(demand, edges);
  // A residual increase is a dual-weight decrease — the ResidualGraph
  // note_reclaimed discipline, shard-local.
  last_decrease_ = tick;
  ++counters_.reclaims;
}

void ShardEngine::reset() {
  residual_ = capacity_;
  std::fill(stamp_.begin(), stamp_.end(), 0);
  std::fill(reserved_demand_.begin(), reserved_demand_.end(), 0.0);
  std::fill(reserved_epoch_.begin(), reserved_epoch_.end(), -1);
  book_.clear();
  counters_ = ShardCounters();
  clock_ = 0;
  last_decrease_ = 0;
}

void ShardEngine::verify_against(std::span<const double> global_residual,
                                 const temporal::LeaseLedger* ledger,
                                 std::vector<std::string>* out) const {
  const ShardWindow& w = window();
  for (EdgeId e = w.begin; e < w.end; ++e) {
    const std::size_t i = index(e);
    if (residual_[i] != global_residual[static_cast<std::size_t>(e)]) {
      out->push_back("shard " + std::to_string(shard_id_) + " edge " +
                     std::to_string(e) + ": shard residual " +
                     std::to_string(residual_[i]) + " != global " +
                     std::to_string(global_residual[static_cast<std::size_t>(e)]));
    }
    if (ledger == nullptr) continue;
    if (book_.leased_demand(e) != ledger->leased_demand(e)) {
      out->push_back("shard " + std::to_string(shard_id_) + " edge " +
                     std::to_string(e) + ": book leased_demand " +
                     std::to_string(book_.leased_demand(e)) + " != ledger " +
                     std::to_string(ledger->leased_demand(e)));
    }
    if (static_cast<int>(book_.active_on_edge(e)) != ledger->active_on_edge(e)) {
      out->push_back("shard " + std::to_string(shard_id_) + " edge " +
                     std::to_string(e) + ": book active_on_edge " +
                     std::to_string(book_.active_on_edge(e)) + " != ledger " +
                     std::to_string(ledger->active_on_edge(e)));
    }
  }
}

}  // namespace tufp::shard
