// Deterministic region partitioner over the CSR edge layout.
//
// The shard layer (DESIGN.md §13) splits a world's edge space into N
// contiguous windows of base EdgeIds. Because base edge ids are assigned
// in CSR order — edges sorted by tail vertex, then by insertion order
// within a vertex — a contiguous id window is a contiguous region of the
// CSR arrays, i.e. a *region shard*: the grid generators emit edges
// row-major, so windows are horizontal bands; layered DAGs shard by
// layer; trees by subtree discovery order. No hashing, no RNG: the plan
// is a pure function of (num_edges, num_shards), so every run — any
// thread count, any message interleaving — agrees on which shard owns
// which edge, which is the first link in the determinism argument for
// the two-phase protocol (shard_engine.hpp).
//
// Windows are balanced to within one edge: shard s owns
// [floor(s*m/N), floor((s+1)*m/N)). N is clamped to m so no shard is
// empty — an empty shard could never witness a reservation and would
// make per-shard conservation vacuous.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"

namespace tufp::shard {

struct ShardWindow {
  EdgeId begin = 0;  // first base edge id owned by this shard
  EdgeId end = 0;    // one past the last

  int size() const { return static_cast<int>(end - begin); }
  bool contains(EdgeId e) const { return e >= begin && e < end; }
};

class ShardPlan {
 public:
  // Builds the canonical plan for `num_edges` base edges. `num_shards`
  // is clamped to [1, num_edges].
  ShardPlan(int num_edges, int num_shards);

  int num_shards() const { return static_cast<int>(windows_.size()); }
  int num_edges() const { return num_edges_; }
  const ShardWindow& window(int shard) const {
    return windows_[static_cast<std::size_t>(shard)];
  }

  // Owning shard of a base edge id. O(1): windows are the floor-division
  // lattice, so the owner is recoverable arithmetically.
  int shard_of(EdgeId e) const;

  // The canonical shard sequence of a path: every shard holding at least
  // one path edge, ascending by shard id, deduplicated. Reservations are
  // always acquired in exactly this order (two-phase protocol, §13), so
  // the lock order is global and deadlock/interleaving-free by
  // construction. Appends into `out` (cleared first); returns out->size().
  int shards_of_path(std::span<const EdgeId> path, std::vector<int>* out) const;

 private:
  int num_edges_ = 0;
  std::vector<ShardWindow> windows_;
};

}  // namespace tufp::shard
