#include "tufp/shard/partition.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"

namespace tufp::shard {

ShardPlan::ShardPlan(int num_edges, int num_shards) : num_edges_(num_edges) {
  TUFP_REQUIRE(num_edges >= 1, "shard plan needs a non-empty edge space");
  TUFP_REQUIRE(num_shards >= 1, "shard plan needs at least one shard");
  const int n = std::min(num_shards, num_edges);
  windows_.reserve(static_cast<std::size_t>(n));
  const auto m = static_cast<std::int64_t>(num_edges);
  for (std::int64_t s = 0; s < n; ++s) {
    ShardWindow w;
    w.begin = static_cast<EdgeId>(s * m / n);
    w.end = static_cast<EdgeId>((s + 1) * m / n);
    windows_.push_back(w);
  }
}

int ShardPlan::shard_of(EdgeId e) const {
  TUFP_REQUIRE(e >= 0 && e < num_edges_, "edge id outside the shard plan");
  // Invert the floor-division lattice: shard s owns [s*m/n, (s+1)*m/n),
  // so the owner of e is floor(((e+1)*n - 1) / m) — the largest s with
  // s*m/n <= e. Cheaper than a binary search and exactly consistent with
  // the windows built above.
  const auto m = static_cast<std::int64_t>(num_edges_);
  const auto n = static_cast<std::int64_t>(windows_.size());
  const auto s = ((static_cast<std::int64_t>(e) + 1) * n - 1) / m;
  return static_cast<int>(s);
}

int ShardPlan::shards_of_path(std::span<const EdgeId> path,
                              std::vector<int>* out) const {
  out->clear();
  for (const EdgeId e : path) {
    const int s = shard_of(e);
    if (std::find(out->begin(), out->end(), s) == out->end()) out->push_back(s);
  }
  // Canonical acquisition order: ascending shard id, independent of the
  // order the path visits regions in.
  std::sort(out->begin(), out->end());
  return static_cast<int>(out->size());
}

}  // namespace tufp::shard
