// ShardEngine — one region shard's state of record and its half of the
// two-phase cross-shard admission protocol (DESIGN.md §13).
//
// A shard owns a contiguous window of the base edge space (the ShardPlan
// lattice) and maintains, independently of the global engine, everything
// the global state holds on those edges:
//
//   residual_[i]  shard-local residual store — the per-shard ResidualGraph.
//                 Commits apply the engine's exact clamp rule
//                 max(0, r - d); drains apply the lease ledger's exact
//                 restore-with-snap rule. Both are bit-identical to the
//                 global arithmetic, so shard residual == global residual
//                 on the window after any event prefix (checked with ==
//                 by the shard-conserve oracle).
//   stamp_/clock_ shard-local change clock, the per-shard analogue of
//                 ResidualGraph's stamp discipline: commits and drains
//                 both tick, drains bump last_decrease_.
//   book_         the shard's lease gauges (lease_book.hpp).
//
// Two-phase protocol, this shard's half:
//
//   reserve(epoch, edges, d)  phase 1. Checks d fits the live shard
//       residual on every in-window edge and records an epoch-scoped
//       reservation. An edge already reserved this epoch by an earlier
//       winner is a CONFLICT — counted, not refused: the decider already
//       serialized the two winners, the count is the contention signal.
//       A failed fit releases this call's partial reservations and
//       returns false (the coordinator then releases the other shards in
//       reverse order and counts an ABORT). For genuine solver winner
//       sets the abort path is provably dead — the capacity guard admits
//       only jointly feasible sets — so it is defensive, and exercised
//       directly by the two-phase unit tests instead.
//   commit(edges, d)          phase 2. Applies the residual decrement +
//       stamp and posts the lease to the book.
//   release(edges, d)         undo of phase 1 on abort.
//
// Determinism: every method is called from the engine's serial commit
// loop, winners in canonical (request-index, i.e. lex-min tie-broken)
// order, shards of one winner in ascending shard order (partition.hpp).
// Shard state is therefore a pure function of the admission history —
// independent of thread count, kernel, and message interleaving.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/shard/lease_book.hpp"
#include "tufp/shard/partition.hpp"
#include "tufp/temporal/lease_ledger.hpp"

namespace tufp::shard {

// Per-shard protocol counters, reported on the deterministic telemetry
// channel (obs/telemetry.hpp) — every field is a pure function of the
// admission history.
struct ShardCounters {
  std::int64_t reservations = 0;  // per-edge phase-1 acquisitions
  std::int64_t conflicts = 0;     // reservations on an already-reserved edge
  std::int64_t aborts = 0;        // two-phase rounds rolled back at this shard
  std::int64_t commits = 0;       // winners committed through this shard
  std::int64_t releases = 0;      // per-edge reservations undone on abort
  std::int64_t reclaims = 0;      // drained leases that touched this shard
};

class ShardEngine {
 public:
  ShardEngine(int shard_id, ShardWindow window,
              std::span<const double> base_capacities);

  int shard_id() const { return shard_id_; }
  const ShardWindow& window() const { return book_.window(); }
  const ShardLeaseBook& book() const { return book_; }
  const ShardCounters& counters() const { return counters_; }

  // Live shard residual / base capacity by base edge id (in-window).
  double residual(EdgeId e) const { return residual_[index(e)]; }
  double capacity(EdgeId e) const { return capacity_[index(e)]; }
  std::int64_t clock() const { return clock_; }
  std::int64_t last_decrease() const { return last_decrease_; }

  // Phase 1: reserve `demand` on the in-window `edges` for one winner of
  // `epoch`. Returns false (and releases this call's acquisitions) when
  // an edge cannot fit the demand.
  bool reserve(std::int64_t epoch, std::span<const EdgeId> edges,
               double demand);
  // Phase 2: apply the reserved winner.
  void commit(std::span<const EdgeId> edges, double demand);
  // Abort rollback of a phase-1 acquisition.
  void release(std::span<const EdgeId> edges, double demand);
  void note_abort() { ++counters_.aborts; }

  // Ledger drain of one expired lease's in-window edges: restores the
  // shard residual with the ledger's exact arithmetic and updates the
  // book.
  void drain(double demand, std::span<const EdgeId> edges);

  // Forgets all admissions (engine reset): residual back to base
  // capacities, book, counters and clocks to zero.
  void reset();

  // Appends human-readable mismatches between this shard's state and the
  // global stores: `global_residual` is the engine's full residual span;
  // `ledger` is optional (null without track_leases). Exact (==)
  // comparisons throughout.
  void verify_against(std::span<const double> global_residual,
                      const temporal::LeaseLedger* ledger,
                      std::vector<std::string>* out) const;

 private:
  std::size_t index(EdgeId e) const {
    return static_cast<std::size_t>(e - window().begin);
  }

  int shard_id_;
  std::vector<double> capacity_;  // base capacities, window slice
  std::vector<double> residual_;
  std::vector<std::int64_t> stamp_;
  // Epoch-scoped reservation table: reserved_demand_ is live only where
  // reserved_epoch_ matches the current epoch (lazy reset — no O(window)
  // work per epoch).
  std::vector<double> reserved_demand_;
  std::vector<std::int64_t> reserved_epoch_;
  ShardLeaseBook book_;
  ShardCounters counters_;
  std::int64_t clock_ = 0;
  std::int64_t last_decrease_ = 0;
};

}  // namespace tufp::shard
