#include "tufp/obs/telemetry.hpp"

#include <ostream>

#include "tufp/util/assert.hpp"
#include "tufp/util/json.hpp"

namespace tufp::obs {

const char* channel_name(Channel channel) {
  return channel == Channel::kDeterministic ? "det" : "wall";
}

void StreamSink::emit(Channel channel, std::string_view json_line) {
  std::ostream* os =
      channel == Channel::kDeterministic ? det_ : wall_;
  if (os == nullptr) return;
  *os << json_line << '\n';
}

EpochTelemetry::EpochTelemetry(TelemetrySink* sink, TelemetryConfig config)
    : sink_(sink), config_(config) {
  TUFP_REQUIRE(sink_ != nullptr, "telemetry requires a sink");
  TUFP_REQUIRE(config_.histogram_every >= 0,
               "histogram cadence must be non-negative");
}

void EpochTelemetry::emit(Channel channel, std::string_view line) {
  if (channel == Channel::kWallClock && !config_.wall_events) return;
  sink_->emit(channel, line);
  ++events_;
}

void EpochTelemetry::emit_histogram(const EngineMetrics& metrics) {
  JsonObject hist;
  hist.field("event", "hist")
      .field("chan", "det")
      .field("epoch", epochs_seen_ - 1)
      .field("name", "admission_delay")
      .raw("hist", metrics.admission_delay().to_json());
  emit(Channel::kDeterministic, hist.str());
}

void EpochTelemetry::on_epoch(const AdmissionReport& report,
                              const EngineMetrics& metrics) {
  ++epochs_seen_;
  JsonObject det;
  det.field("event", "epoch")
      .field("chan", "det")
      .field("epoch", report.epoch)
      .field("close", report.close_time)
      .field("batch", report.batch_size)
      .field("admitted", report.admitted)
      .field("invalid", report.invalid_rejected)
      .field("no_path", report.no_path)
      .field("capacity_blocked", report.capacity_blocked)
      .field("lost_auction", report.lost_auction)
      .field("shard_conflict", report.shard_conflict)
      .field("offered_value", report.offered_value)
      .field("admitted_value", report.admitted_value)
      .field("revenue", report.revenue)
      .field("dual_ub", report.dual_upper_bound)
      .field("active_edges", report.active_edges)
      .field("saturated", report.saturated_edges)
      .field("min_residual", report.min_residual)
      .field("iterations", report.solver_iterations)
      .field("sp", report.sp_computations)
      .field("expired", report.expired_leases)
      .field("active_leases", report.active_leases)
      .field("occupancy", report.occupancy)
      .field("queue_depth", report.queue_depth)
      .field("max_delay", report.max_admission_delay);
  emit(Channel::kDeterministic, det.str());

  JsonObject wall;
  wall.field("event", "epoch_wall")
      .field("chan", "wall")
      .field("epoch", report.epoch)
      .field("solve_seconds", report.solve_seconds)
      .field("reclaim_seconds", report.reclaim_seconds);
  emit(Channel::kWallClock, wall.str());

  if (config_.histogram_every > 0 &&
      epochs_seen_ % config_.histogram_every == 0) {
    emit_histogram(metrics);
  }
}

void EpochTelemetry::on_sanity(std::int64_t epoch, int checks_run,
                               int violations) {
  JsonObject obj;
  obj.field("event", "sanity")
      .field("chan", "det")
      .field("epoch", epoch)
      .field("checks", checks_run)
      .field("violations", violations);
  emit(Channel::kDeterministic, obj.str());
}

void EpochTelemetry::on_shard_epoch(int epoch, int shard,
                                    std::int64_t reservations,
                                    std::int64_t conflicts,
                                    std::int64_t aborts, std::int64_t commits,
                                    std::int64_t reclaims) {
  JsonObject obj;
  obj.field("event", "shard_epoch")
      .field("chan", "det")
      .field("epoch", epoch)
      .field("shard", shard)
      .field("reservations", reservations)
      .field("conflicts", conflicts)
      .field("aborts", aborts)
      .field("commits", commits)
      .field("reclaims", reclaims);
  emit(Channel::kDeterministic, obj.str());
}

void EpochTelemetry::on_invalid(std::int64_t epoch, std::string_view reason,
                                std::int64_t total_invalid) {
  JsonObject obj;
  obj.field("event", "invalid")
      .field("chan", "det")
      .field("epoch", epoch)
      .field("reason", reason)
      .field("invalid", total_invalid);
  emit(Channel::kDeterministic, obj.str());
}

void EpochTelemetry::finish(const EngineMetrics& metrics,
                            std::int64_t active_leases, double occupancy,
                            double wall_seconds,
                            double requests_per_second) {
  {
    JsonObject hist;
    hist.field("event", "hist")
        .field("chan", "det")
        .field("epoch", epochs_seen_ - 1)
        .field("name", "admission_delay")
        .raw("hist", metrics.admission_delay().to_json());
    emit(Channel::kDeterministic, hist.str());
  }

  const EngineCounters& c = metrics.counters();
  JsonObject det;
  det.field("event", "summary")
      .field("chan", "det")
      .field("epochs", c.epochs)
      .field("requests", c.requests_seen)
      .field("queue_dropped", c.queue_dropped)
      .field("admitted", c.admitted)
      .field("rejected", c.rejected)
      .field("invalid", c.invalid_rejected)
      .field("no_path", c.no_path)
      .field("capacity_blocked", c.capacity_blocked)
      .field("lost_auction", c.lost_auction)
      .field("shard_conflict", c.shard_conflict)
      .field("admitted_fraction", metrics.admitted_fraction())
      .field("offered_value", c.offered_value)
      .field("admitted_value", c.admitted_value)
      .field("revenue", c.revenue)
      .field("solver_iterations", c.solver_iterations)
      .field("sp_computations", c.sp_computations)
      .field("sp_tree_runs", c.sp_tree_runs)
      .field("finite_leases", c.finite_leases)
      .field("leases_expired", c.leases_expired)
      .field("active_leases", active_leases)
      .field("occupancy", occupancy)
      .field("delay_p50", metrics.admission_delay().percentile(0.5))
      .field("delay_p99", metrics.admission_delay().percentile(0.99));
  // Warm-tree reclaim counters join the deterministic summary only when
  // a reclaim actually met a populated tree cache: committed baselines
  // from churn-free runs stay byte-identical (the check_trend.py exact
  // gate diffs this event field-for-field).
  if (c.trees_kept_on_reclaim > 0 || c.trees_dropped_on_reclaim > 0) {
    det.field("trees_kept_on_reclaim", c.trees_kept_on_reclaim)
        .field("trees_dropped_on_reclaim", c.trees_dropped_on_reclaim);
  }
  emit(Channel::kDeterministic, det.str());

  JsonObject wall;
  wall.field("event", "summary_wall")
      .field("chan", "wall")
      .field("wall_seconds", wall_seconds)
      .field("requests_per_second", requests_per_second)
      .field("solve_p50", metrics.solve_seconds().percentile(0.5))
      .field("solve_p99", metrics.solve_seconds().percentile(0.99))
      .field("reclaim_p99", metrics.reclaim_seconds().percentile(0.99));
  emit(Channel::kWallClock, wall.str());
}

}  // namespace tufp::obs
