// Per-request decision provenance + phase-span profiling (DESIGN.md §14).
//
// Two channels, same discipline as telemetry.hpp:
//
//   * Decision records (det) — every request offered to the engine
//     terminates in exactly ONE canonical `DecisionRecord`: admitted,
//     no_path, capacity_blocked (with the bottleneck base-edge id),
//     lost_auction (with the request's exit density), shard_conflict
//     (with the conflicting canonical-lattice shard id), invalid, or —
//     for the reclaim path — lease_expired. Records are rendered through
//     util/json.hpp and are byte-identical across SP kernels, thread
//     counts and `--shards N`: the classification runs in the decider's
//     serial exit path over deterministic solver state, never inside the
//     parallel region (the trace-differential sim oracle enforces this).
//
//   * Spans (wall) — nested `TUFP_SPAN("phase")` scopes over the epoch
//     phases (reclaim/validate/snapshot/solve/payments/commit),
//     aggregated per phase into geometric histograms and per call stack
//     into a collapsed-stack (flamegraph-format) dump. Machine-dependent
//     by construction; never emitted on the det channel.
//
// The span hook is a thread-local profiler pointer: TUFP_SPAN is a no-op
// (one TLS load) on threads with no profiler installed, which is exactly
// what makes it safe to leave in code reachable from OpenMP worker
// threads — only the serial driver thread installs a profiler, so the
// parallel region never touches shared span state.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tufp/engine/metrics.hpp"
#include "tufp/util/timer.hpp"

namespace tufp::obs {

class TelemetrySink;  // telemetry.hpp; forward-declared so trace.hpp can
                      // be included from ufp/ without dragging in the
                      // engine headers telemetry.hpp depends on.

// --------------------------------------------------------------- records

enum class DecisionOutcome {
  kAdmitted,
  kNoPath,           // base topology does not connect source to target
  kCapacityBlocked,  // a base route exists, but saturation cut every one:
                     // bottleneck_edge names the first edge on the
                     // canonical base-BFS route held below the floor
  kLostAuction,      // path feasible at exit; density never won an iteration
  kShardConflict,    // fit at epoch start, lost the intra-epoch capacity race
  kInvalid,          // malformed bid, shed before any auction
  kLeaseExpired,     // reclaim event closing an admitted request's lease
};

// Canonical wire name ("admitted", "no_path", ...).
const char* decision_name(DecisionOutcome outcome);

// One terminal decision for one request (or one lease reclaim). Edge and
// shard ids are plain integers — base-graph edge ids and canonical-lattice
// shard ids — keeping this header decoupled from the graph types.
struct DecisionRecord {
  std::int64_t sequence = -1;  // global request id (lease owner for expiry)
  std::int64_t epoch = -1;
  DecisionOutcome outcome = DecisionOutcome::kInvalid;
  double close_time = 0.0;  // virtual clock at the deciding boundary
  double value = 0.0;       // declared bid
  double demand = 0.0;
  // Routed path in base-edge ids: the admitted path, or the cached
  // candidate path the classification inspected; empty when unreachable.
  std::vector<std::int64_t> path;
  double payment = 0.0;       // winners only; zero otherwise
  bool warm_tree = false;     // SP provenance: cross-epoch warm cache hit
  double density = 0.0;       // (d/v)·|p|_y at solver exit (lost_auction)
  std::int64_t bottleneck_edge = -1;  // capacity_blocked / shard_conflict
  std::int64_t conflict_shard = -1;   // shard_conflict (canonical lattice)
  double admitted_at = 0.0;   // lease grant time (admitted / lease_expired)
  double expires_at = 0.0;    // lease expiry (inf = holds forever)

  // `{"event":"decision","chan":"det",...}` through the canonical
  // formatter; field order is part of the byte-exact contract.
  std::string to_json() const;
};

// Renders decision records onto a telemetry sink's det channel and keeps
// the last `ring_capacity` rendered lines in a bounded ring so a serving
// daemon can dump recent history on a sanity violation (tufp_serve
// --trace). Sink may be null: ring-only capture.
class DecisionTrace {
 public:
  struct Config {
    std::size_t ring_capacity = 256;
  };

  // Two overloads instead of a `Config config = {}` default argument:
  // GCC rejects brace-init defaults naming a nested aggregate before the
  // enclosing class is complete.
  explicit DecisionTrace(TelemetrySink* sink)
      : DecisionTrace(sink, Config{}) {}
  DecisionTrace(TelemetrySink* sink, Config config);

  void record(const DecisionRecord& record);

  std::int64_t records_emitted() const { return records_; }
  // Oldest-first snapshot of the retained rendered lines.
  std::vector<std::string> ring_snapshot() const;

 private:
  TelemetrySink* sink_;
  Config config_;
  std::deque<std::string> ring_;
  std::int64_t records_ = 0;
};

// ----------------------------------------------------------------- spans

// Aggregating span profiler for one driver thread. enter()/exit() are
// called by SpanScope; consumers read per-phase totals, percentile
// histograms, and the collapsed-stack dump after the run.
class SpanProfiler {
 public:
  struct PhaseStat {
    std::int64_t count = 0;
    double total_seconds = 0.0;
  };

  void enter(const char* name);
  void exit();

  // Leaf-name aggregation in lexicographic phase order.
  std::vector<std::pair<std::string, PhaseStat>> phases() const;
  double phase_seconds(std::string_view name) const;
  std::int64_t phase_count(std::string_view name) const;
  // Null when the phase never ran.
  const GeometricHistogram* phase_histogram(std::string_view name) const;

  // flamegraph.pl collapsed format: "root;child;leaf <microseconds>\n"
  // per distinct stack, self time (children subtracted), sorted by stack.
  std::string collapsed_stacks() const;

  // `{"event":"spans","chan":"wall","phases":[...]}` — wall channel only.
  std::string to_json() const;

 private:
  struct Frame {
    const char* name;
    WallTimer timer;
    double child_seconds = 0.0;
  };
  struct PhaseAgg {
    PhaseStat stat;
    GeometricHistogram hist{1e-9, 4.0, 32};
  };

  std::vector<Frame> stack_;
  std::map<std::string, PhaseAgg, std::less<>> by_phase_;
  std::map<std::string, double> self_by_stack_;
};

// Installs `profiler` as the calling thread's active span profiler and
// returns the previous one (null to uninstall). TUFP_SPAN consults this
// thread-local: threads that never install — OpenMP workers — pay one
// TLS load per span site and nothing else.
SpanProfiler* install_span_profiler(SpanProfiler* profiler);
SpanProfiler* current_span_profiler();

class SpanScope {
 public:
  explicit SpanScope(const char* name) : profiler_(current_span_profiler()) {
    if (profiler_ != nullptr) profiler_->enter(name);
  }
  ~SpanScope() {
    if (profiler_ != nullptr) profiler_->exit();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanProfiler* profiler_;
};

#define TUFP_SPAN_CONCAT_INNER(a, b) a##b
#define TUFP_SPAN_CONCAT(a, b) TUFP_SPAN_CONCAT_INNER(a, b)
#define TUFP_SPAN(name) \
  ::tufp::obs::SpanScope TUFP_SPAN_CONCAT(tufp_span_scope_, __LINE__)(name)

}  // namespace tufp::obs
