#include "tufp/obs/sanity.hpp"

#include <cmath>
#include <sstream>
#include <span>

#include "tufp/temporal/lease_ledger.hpp"
#include "tufp/util/math.hpp"

namespace tufp::obs {

namespace {

std::string edge_witness(const Graph& g, EdgeId e, double residual,
                         double leased) {
  const auto [u, v] = g.endpoints(e);
  std::ostringstream os;
  os.precision(17);
  os << "edge " << e << " (" << u << "->" << v << ") capacity="
     << g.capacity(e) << " residual=" << residual << " leased=" << leased;
  return os.str();
}

}  // namespace

int sanity_check_count(const EpochEngine& engine) {
  return engine.lease_ledger() != nullptr ? 3 : 1;
}

std::vector<SanityViolation> run_sanity_checks(const EpochEngine& engine) {
  std::vector<SanityViolation> out;
  const Graph& g = engine.base_graph();
  const std::span<const double> residual = engine.residual();
  const temporal::LeaseLedger* ledger = engine.lease_ledger();

  // feasible: residual in [0, capacity]. A residual above base means
  // capacity was returned twice; below zero means it was promised twice.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double r = residual[static_cast<std::size_t>(e)];
    if (!(r >= -1e-9) || !(r <= g.capacity(e) + 1e-9) || std::isnan(r)) {
      out.push_back({"feasible",
                     edge_witness(g, e, r,
                                  ledger != nullptr ? ledger->leased_demand(e)
                                                    : 0.0)});
      break;
    }
  }
  if (ledger == nullptr) return out;

  // temporal-conserve: what the ledger says is promised out plus what the
  // residual says is free must account for the whole edge. Same tolerance
  // as the sim oracle: both sides are incremental float sums.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double r = residual[static_cast<std::size_t>(e)];
    const double leased = ledger->leased_demand(e);
    if (!approx_eq(r + leased, g.capacity(e), 1e-9, 1e-6)) {
      out.push_back({"temporal-conserve", edge_witness(g, e, r, leased)});
      break;
    }
  }

  // temporal-no-leak: the ledger's snap rule (DESIGN.md §10) makes this
  // an exact equality — an idle edge that is not bit-for-bit at base
  // capacity has leaked, however small the gap.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (ledger->active_on_edge(e) != 0) continue;
    const double r = residual[static_cast<std::size_t>(e)];
    if (r != g.capacity(e)) {
      out.push_back({"temporal-no-leak", edge_witness(g, e, r, 0.0)});
      break;
    }
  }
  return out;
}

}  // namespace tufp::obs
