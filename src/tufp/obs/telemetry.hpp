// Live telemetry for the admission engine (DESIGN.md §11).
//
// One JSONL event per epoch, streamed while the engine runs — the
// trajectory view (occupancy, churn, admitted value over time) that a
// batch summary cannot give and that tools/check_trend.py diffs against a
// committed baseline to catch *shape* regressions, not just endpoint
// regressions.
//
// Channel separation is the load-bearing rule, inherited from
// engine/metrics.hpp and enforced structurally here: every event carries
// exactly one channel and sinks route on it.
//   * kDeterministic ("det")  — counters, admitted value, revenue,
//     occupancy, lease churn, queue depth, admission-delay histograms.
//     Byte-identical across thread counts, SP kernels and machines; safe
//     to golden-test and to gate CI on exactly.
//   * kWallClock ("wall")     — solve/reclaim seconds, throughput.
//     Machine-dependent; compared only with tolerance, never byte-exact.
// A det event must never contain a wall-clock field and vice versa: one
// leaked timing field would poison every byte-exact consumer downstream.
//
// EpochTelemetry is the adapter between the existing EpochEngine on_epoch
// hook and a sink: it renders AdmissionReports into `epoch`/`epoch_wall`
// event pairs, emits periodic `hist` snapshots (geometric-bucket dumps of
// the admission-delay histogram, via GeometricHistogram::to_json) and a
// final `summary`/`summary_wall` pair. tufp_engine --json/--telemetry and
// the tufp_serve daemon both speak this one schema.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "tufp/engine/epoch_engine.hpp"

namespace tufp::obs {

enum class Channel { kDeterministic, kWallClock };

// "det" / "wall" — the `chan` field value of every event.
const char* channel_name(Channel channel);

// Receives rendered events. Implementations decide where each channel
// lands (file, stdout/stderr split, nowhere); the line is a complete JSON
// object without trailing newline.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void emit(Channel channel, std::string_view json_line) = 0;
};

// Routes each channel to an ostream; either may be null (events on that
// channel are dropped). The stdout/stderr split of the CLI tools is
// StreamSink(&std::cout, &std::cerr); a det-only JSONL artifact is
// StreamSink(&file, nullptr).
class StreamSink final : public TelemetrySink {
 public:
  StreamSink(std::ostream* deterministic, std::ostream* wall_clock)
      : det_(deterministic), wall_(wall_clock) {}

  void emit(Channel channel, std::string_view json_line) override;

 private:
  std::ostream* det_;
  std::ostream* wall_;
};

struct TelemetryConfig {
  // Epochs between `hist` snapshot events (admission-delay geometric
  // buckets). 0 = no periodic snapshots; finish() always emits a final
  // one either way.
  int histogram_every = 0;
  // Suppress the wall channel entirely (det-only artifacts).
  bool wall_events = true;
};

class EpochTelemetry {
 public:
  // `sink` must outlive this object.
  EpochTelemetry(TelemetrySink* sink, TelemetryConfig config = {});

  // Renders one epoch report as an `epoch` (det) + `epoch_wall` (wall)
  // event pair; every histogram_every epochs also emits a `hist`
  // snapshot. Wire as: engine.run(stream, [&](const AdmissionReport& r) {
  // telemetry.on_epoch(r, engine.metrics()); }).
  void on_epoch(const AdmissionReport& report, const EngineMetrics& metrics);

  // Emits `sanity` (det) — one line per in-service oracle sweep, so a
  // telemetry stream records *that* the checks ran and found nothing, not
  // just silence (the mod_virgule sanity_check idiom: the check is part
  // of the serving loop's observable behavior).
  void on_sanity(std::int64_t epoch, int checks_run, int violations);

  // Emits `shard_epoch` (det) — one region shard's two-phase protocol
  // activity over one epoch (engine/sharded_engine.hpp counter deltas).
  // Every field is a pure function of the admission history, so the
  // events are byte-identical across thread counts and kernels like any
  // other det event. Plain integers keep obs/ decoupled from the shard
  // layer's types.
  void on_shard_epoch(int epoch, int shard, std::int64_t reservations,
                      std::int64_t conflicts, std::int64_t aborts,
                      std::int64_t commits, std::int64_t reclaims);

  // Emits `invalid` (det) — one wire-level framing shed (oversized or
  // truncated line) in a serving session, with the driver's running
  // invalid total. Deterministic: a pure function of the input bytes.
  void on_invalid(std::int64_t epoch, std::string_view reason,
                  std::int64_t total_invalid);

  // Final `hist` + `summary` (det) and `summary_wall` (wall) events.
  // Wall-clock figures are passed explicitly (EngineMetrics keeps them,
  // but the engine summary owns the lifetime totals).
  void finish(const EngineMetrics& metrics, std::int64_t active_leases,
              double occupancy, double wall_seconds,
              double requests_per_second);

  std::int64_t events_emitted() const { return events_; }

 private:
  void emit(Channel channel, std::string_view line);
  void emit_histogram(const EngineMetrics& metrics);

  TelemetrySink* sink_;
  TelemetryConfig config_;
  std::int64_t epochs_seen_ = 0;
  std::int64_t events_ = 0;
};

}  // namespace tufp::obs
