// In-service sanity oracles (DESIGN.md §11).
//
// The PR-5 conservation oracles run offline against sim-world replays;
// these are their *live* counterparts, reading the running engine's state
// directly so a resident daemon can validate itself inside the serving
// loop — the mod_virgule pattern, where net_flow_sanity_check runs against
// the live flow structure the site is serving from, not a test fixture.
// They are pure reads (no allocation mutation, no clock movement), cheap
// (O(edges)), and deterministic, so a `--sanity every-N` cadence changes
// nothing about the admission history.
//
// The catalogue, mirroring the sim oracle names:
//   * feasible           — residual within [0, base capacity] on every
//                          edge (Lemma 3.3's feasibility, live).
//   * temporal-conserve  — per edge: active leased demand + residual ==
//                          base capacity (tolerance: residuals are
//                          maintained incrementally, so equality holds to
//                          accumulation error, same bound the sim oracle
//                          uses).
//   * temporal-no-leak   — an edge with NO active lease holds its base
//                          capacity EXACTLY (==, not a tolerance: the
//                          ledger snaps on last expiry, DESIGN.md §10).
// Without a lease ledger only `feasible` applies.
//
// These catch exactly the class of bug the reclaim path can have: capacity
// leaked on expiry (injectable via EpochEngineConfig::inject_reclaim_leak
// to prove the checks bite), double-returned capacity, or a residual
// drifting from the lease book.
#pragma once

#include <string>
#include <vector>

#include "tufp/engine/epoch_engine.hpp"

namespace tufp::obs {

struct SanityViolation {
  std::string check;   // catalogue name
  std::string detail;  // deterministic human-readable witness
};

// Number of checks a sweep runs against this engine (3 with a lease
// ledger, 1 without) — reported in telemetry `sanity` events.
int sanity_check_count(const EpochEngine& engine);

// Runs every applicable check against the engine's current state.
// Violations are reported in catalogue order, first offending edge per
// check (one witness is enough to abort on; the repro dump is the
// debugging artifact).
std::vector<SanityViolation> run_sanity_checks(const EpochEngine& engine);

}  // namespace tufp::obs
