#include "tufp/obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tufp/obs/telemetry.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/json.hpp"

namespace tufp::obs {

const char* decision_name(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kAdmitted: return "admitted";
    case DecisionOutcome::kNoPath: return "no_path";
    case DecisionOutcome::kCapacityBlocked: return "capacity_blocked";
    case DecisionOutcome::kLostAuction: return "lost_auction";
    case DecisionOutcome::kShardConflict: return "shard_conflict";
    case DecisionOutcome::kInvalid: return "invalid";
    case DecisionOutcome::kLeaseExpired: return "lease_expired";
  }
  return "unknown";
}

std::string DecisionRecord::to_json() const {
  std::ostringstream edges;
  edges << '[';
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) edges << ',';
    edges << path[i];
  }
  edges << ']';
  JsonObject obj;
  obj.field("event", "decision")
      .field("chan", "det")
      .field("seq", sequence)
      .field("epoch", epoch)
      .field("outcome", decision_name(outcome))
      .field("close_time", close_time)
      .field("value", value)
      .field("demand", demand)
      .raw("path", edges.str())
      .field("payment", payment)
      .field("warm_tree", warm_tree)
      .field("density", density)
      .field("bottleneck_edge", bottleneck_edge)
      .field("conflict_shard", conflict_shard)
      .field("admitted_at", admitted_at)
      .field("expires_at", expires_at);
  return obj.str();
}

DecisionTrace::DecisionTrace(TelemetrySink* sink, Config config)
    : sink_(sink), config_(config) {
  TUFP_REQUIRE(config_.ring_capacity >= 1, "trace ring needs capacity >= 1");
}

void DecisionTrace::record(const DecisionRecord& record) {
  std::string line = record.to_json();
  if (sink_ != nullptr) sink_->emit(Channel::kDeterministic, line);
  ring_.push_back(std::move(line));
  while (ring_.size() > config_.ring_capacity) ring_.pop_front();
  ++records_;
}

std::vector<std::string> DecisionTrace::ring_snapshot() const {
  return {ring_.begin(), ring_.end()};
}

// ----------------------------------------------------------------- spans

namespace {
thread_local SpanProfiler* tls_profiler = nullptr;
}  // namespace

SpanProfiler* install_span_profiler(SpanProfiler* profiler) {
  SpanProfiler* previous = tls_profiler;
  tls_profiler = profiler;
  return previous;
}

SpanProfiler* current_span_profiler() { return tls_profiler; }

void SpanProfiler::enter(const char* name) {
  stack_.push_back(Frame{name, WallTimer(), 0.0});
}

void SpanProfiler::exit() {
  TUFP_REQUIRE(!stack_.empty(), "span exit without a matching enter");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const double elapsed = frame.timer.elapsed_seconds();

  PhaseAgg& agg = by_phase_[frame.name];
  ++agg.stat.count;
  agg.stat.total_seconds += elapsed;
  agg.hist.record(std::max(0.0, elapsed));

  // Collapsed stack key: enclosing frames joined with ';', charged with
  // the frame's SELF time so a flamegraph's column widths sum correctly.
  std::string key;
  for (const Frame& f : stack_) {
    key += f.name;
    key += ';';
  }
  key += frame.name;
  self_by_stack_[key] += std::max(0.0, elapsed - frame.child_seconds);
  if (!stack_.empty()) stack_.back().child_seconds += elapsed;
}

std::vector<std::pair<std::string, SpanProfiler::PhaseStat>>
SpanProfiler::phases() const {
  std::vector<std::pair<std::string, PhaseStat>> out;
  out.reserve(by_phase_.size());
  for (const auto& [name, agg] : by_phase_) out.emplace_back(name, agg.stat);
  return out;
}

double SpanProfiler::phase_seconds(std::string_view name) const {
  const auto it = by_phase_.find(name);
  return it == by_phase_.end() ? 0.0 : it->second.stat.total_seconds;
}

std::int64_t SpanProfiler::phase_count(std::string_view name) const {
  const auto it = by_phase_.find(name);
  return it == by_phase_.end() ? 0 : it->second.stat.count;
}

const GeometricHistogram* SpanProfiler::phase_histogram(
    std::string_view name) const {
  const auto it = by_phase_.find(name);
  return it == by_phase_.end() ? nullptr : &it->second.hist;
}

std::string SpanProfiler::collapsed_stacks() const {
  std::ostringstream os;
  for (const auto& [stack, seconds] : self_by_stack_) {
    os << stack << ' '
       << static_cast<std::int64_t>(std::llround(seconds * 1e6)) << '\n';
  }
  return os.str();
}

std::string SpanProfiler::to_json() const {
  std::ostringstream rows;
  rows << '[';
  bool first = true;
  for (const auto& [name, agg] : by_phase_) {
    if (!first) rows << ',';
    first = false;
    JsonObject row;
    row.field("name", name)
        .field("count", agg.stat.count)
        .field("total_seconds", agg.stat.total_seconds)
        .field("p50", agg.hist.percentile(0.5))
        .field("p99", agg.hist.percentile(0.99));
    rows << row.str();
  }
  rows << ']';
  JsonObject obj;
  obj.field("event", "spans").field("chan", "wall").raw("phases", rows.str());
  return obj.str();
}

}  // namespace tufp::obs
