#include "tufp/baselines/randomized_rounding.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "tufp/lp/ufp_lp.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/rng.hpp"

namespace tufp {

RoundingResult randomized_rounding_ufp(const UfpInstance& instance,
                                       std::uint64_t seed,
                                       const RoundingConfig& config) {
  TUFP_REQUIRE(config.scale > 0.0 && config.scale <= 1.0,
               "scale must be in (0,1]");
  const Graph& g = instance.graph();
  const int R = instance.num_requests();

  UfpLpOptions lp_options;
  lp_options.path_enum = config.path_enum;
  const UfpFractionalSolution lp = solve_ufp_lp(instance, lp_options);

  RoundingResult result{UfpSolution(R), lp.objective};
  Rng rng(seed);

  // Raghavan-Thompson: select path k of request r with probability
  // scale * x[r][k]; with the leftover probability the request is dropped.
  std::vector<int> chosen(static_cast<std::size_t>(R), -1);
  for (int r = 0; r < R; ++r) {
    const auto& weights = lp.x[static_cast<std::size_t>(r)];
    double u = rng.next_double();
    for (int k = 0; k < static_cast<int>(weights.size()); ++k) {
      const double p = config.scale * weights[static_cast<std::size_t>(k)];
      if (u < p) {
        chosen[static_cast<std::size_t>(r)] = k;
        ++result.sampled;
        break;
      }
      u -= p;
    }
  }

  // Repair: while some edge is overloaded, drop the lowest-value request
  // crossing it. Terminates because every drop strictly reduces total load.
  std::vector<double> loads(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (int r = 0; r < R; ++r) {
    const int k = chosen[static_cast<std::size_t>(r)];
    if (k < 0) continue;
    for (EdgeId e :
         lp.paths[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)]) {
      loads[static_cast<std::size_t>(e)] += instance.request(r).demand;
    }
  }
  for (;;) {
    EdgeId overloaded = kInvalidEdge;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (loads[static_cast<std::size_t>(e)] > g.capacity(e) + 1e-9) {
        overloaded = e;
        break;
      }
    }
    if (overloaded == kInvalidEdge) break;
    int victim = -1;
    for (int r = 0; r < R; ++r) {
      const int k = chosen[static_cast<std::size_t>(r)];
      if (k < 0) continue;
      const Path& path =
          lp.paths[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)];
      if (std::find(path.begin(), path.end(), overloaded) == path.end()) continue;
      if (victim < 0 ||
          instance.request(r).value < instance.request(victim).value) {
        victim = r;
      }
    }
    TUFP_CHECK(victim >= 0, "overloaded edge with no crossing request");
    const int k = chosen[static_cast<std::size_t>(victim)];
    for (EdgeId e :
         lp.paths[static_cast<std::size_t>(victim)][static_cast<std::size_t>(k)]) {
      loads[static_cast<std::size_t>(e)] -= instance.request(victim).demand;
    }
    chosen[static_cast<std::size_t>(victim)] = -1;
    ++result.dropped;
  }

  for (int r = 0; r < R; ++r) {
    const int k = chosen[static_cast<std::size_t>(r)];
    if (k < 0) continue;
    result.solution.assign(
        r, lp.paths[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)]);
  }
  return result;
}

}  // namespace tufp
