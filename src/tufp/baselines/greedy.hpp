// Greedy baselines.
//
// Classic one-pass greedy allocation in the style of Lehmann, O'Callaghan
// and Shoham [13]: sort requests by a monotone ranking, route each along a
// minimum-hop path that fits the residual capacities. Both rankings are
// monotone in (demand down, value up), so these are truthful comparators —
// just weaker ones than the paper's primal-dual algorithm (bench E9).
#pragma once

#include "tufp/auction/muca_instance.hpp"
#include "tufp/auction/muca_solution.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp {

enum class GreedyRanking {
  kByValue,    // v_r descending
  kByDensity,  // v_r / (d_r * hops_r) descending (LOS-style)
};

UfpSolution greedy_ufp(const UfpInstance& instance, GreedyRanking ranking);

// MUCA analogue: kByDensity ranks by v_r / |U_r|.
MucaSolution greedy_muca(const MucaInstance& instance, GreedyRanking ranking);

}  // namespace tufp
