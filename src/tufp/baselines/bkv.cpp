#include "tufp/baselines/bkv.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "tufp/ufp/detail/sp_cache.hpp"
#include "tufp/ufp/detail/substrate.hpp"
#include "tufp/ufp/detail/workspace_access.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

BkvResult run_bkv(const detail::Substrate& sub, const BoundedUfpConfig& config,
                  detail::SpCache& cache, bool warm_start) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 1.0,
               "epsilon outside (0,1]");
  TUFP_REQUIRE(sub.num_active > 0, "BKV needs at least one active edge");
  const double B = sub.B;
  TUFP_REQUIRE(B >= 1.0, "B must be >= 1");
  const double eps = config.epsilon;
  TUFP_REQUIRE(eps * B <= kMaxSafeExponent, "eps*B too large");
  TUFP_REQUIRE(!config.run_to_saturation || config.capacity_guard,
               "run_to_saturation requires the capacity guard");

  const int R = static_cast<int>(sub.requests.size());

  BkvResult result{UfpSolution(R)};
  result.coarse_upper_bound = kInf;
  result.tight_upper_bound = kInf;

  std::vector<double> y;
  double dual_sum = 0.0;
  WeightProfile profile;
  detail::init_duals(sub, &y, &dual_sum, &profile);
  const double threshold = std::exp(eps * (B - 1.0));

  std::vector<double> residual(sub.capacities.begin(), sub.capacities.end());
  std::vector<std::int64_t> edge_stamp(sub.capacities.size(), 0);
  std::int64_t now = 0;

  // The coarse certificate needs shortest paths for *every* request each
  // iteration (selected ones included), so the cache tracks all of them.
  std::vector<int> all(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) all[static_cast<std::size_t>(r)] = r;
  std::vector<bool> selected(static_cast<std::size_t>(R), false);

  const std::span<const double> guard_residual =
      config.capacity_guard ? std::span<const double>(residual)
                            : std::span<const double>();

  double primal_value = 0.0;
  int num_remaining = R;

  while (num_remaining > 0) {
    if (!config.run_to_saturation && dual_sum > threshold) {
      result.stopped_by_threshold = true;
      break;
    }
    ++now;
    cache.refresh(y, edge_stamp, now, all, config.lazy_shortest_paths,
                  guard_residual, &profile, sub.blocked,
                  /*epoch_start=*/warm_start && now == 1);

    int best = -1;
    double best_priority = kInf;
    double alpha_remaining = kInf;
    double alpha_all = kInf;
    for (int r = 0; r < R; ++r) {
      const auto& entry = cache.entry(r);
      if (!entry.reachable) continue;
      const Request& req = sub.requests[static_cast<std::size_t>(r)];
      const double priority = req.demand / req.value * entry.length;
      alpha_all = std::min(alpha_all, priority);
      if (selected[static_cast<std::size_t>(r)]) continue;
      alpha_remaining = std::min(alpha_remaining, priority);
      // Cached guard verdict: valid because residual only decreases here
      // and every decrement stamps its edge (sp_cache.hpp's direction-
      // agnostic invariant — capacity *increases* would need stamps too).
      if (config.capacity_guard && !entry.fits) continue;
      if (priority < best_priority) {
        best_priority = priority;
        best = r;
      }
    }

    if (alpha_all < kInf && alpha_all > 0.0) {
      result.coarse_upper_bound =
          std::min(result.coarse_upper_bound, dual_sum / alpha_all);
    }
    if (alpha_remaining < kInf && alpha_remaining > 0.0) {
      result.tight_upper_bound = std::min(
          result.tight_upper_bound, dual_sum / alpha_remaining + primal_value);
    }

    if (best < 0) break;

    const Request& req = sub.requests[static_cast<std::size_t>(best)];
    const auto& entry = cache.entry(best);
    for (EdgeId e : entry.path) {
      const auto ei = static_cast<std::size_t>(e);
      const double cap = sub.capacities[ei];
      const double old_y = y[ei];
      y[ei] = old_y * std::exp(eps * B * req.demand / cap);
      dual_sum += cap * (y[ei] - old_y);
      edge_stamp[ei] = now;
      residual[ei] -= req.demand;
      profile.include(y[ei]);
    }
    result.solution.assign(best, entry.path);
    selected[static_cast<std::size_t>(best)] = true;
    primal_value += req.value;
    --num_remaining;
    ++result.iterations;
  }

  if (num_remaining == 0) {
    result.tight_upper_bound = std::min(result.tight_upper_bound, primal_value);
  }
  return result;
}

}  // namespace

BkvResult bkv_ufp(const UfpInstance& instance, const BoundedUfpConfig& config) {
  TUFP_REQUIRE(instance.is_normalized(), "demands must be in (0,1]");
  const detail::Substrate sub = detail::substrate_of(instance);
  detail::SpCache cache(instance, config.parallel, config.num_threads,
                        config.sp_kernel);
  return run_bkv(sub, config, cache, /*warm_start=*/false);
}

BkvResult bkv_ufp(const ResidualView& view, std::span<const Request> requests,
                  const BoundedUfpConfig& config, UfpWorkspace* workspace) {
  const detail::Substrate sub = detail::substrate_of(view, requests);
  detail::validate_requests(sub);
  if (workspace != nullptr) {
    detail::SpCache& cache = detail::WorkspaceAccess::bind_cache(
        *workspace, view.owner(), requests, config.parallel,
        config.num_threads, config.sp_kernel);
    return run_bkv(sub, config, cache, /*warm_start=*/true);
  }
  detail::SpCache cache(view.base(), requests, config.parallel,
                        config.num_threads, config.sp_kernel);
  return run_bkv(sub, config, cache, /*warm_start=*/false);
}

}  // namespace tufp
