#include "tufp/baselines/greedy.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

// Hop count of the min-hop s->t path, or +inf when unreachable.
double hop_distance(ShortestPathEngine& engine, const Graph& g, VertexId s,
                    VertexId t) {
  static thread_local std::vector<double> unit_weights;
  unit_weights.assign(static_cast<std::size_t>(g.num_edges()), 1.0);
  return engine.shortest_path(unit_weights, s, t);
}

}  // namespace

UfpSolution greedy_ufp(const UfpInstance& instance, GreedyRanking ranking) {
  const Graph& g = instance.graph();
  const int R = instance.num_requests();
  ShortestPathEngine engine(g);

  // Ranking keys. Ties resolve by request id for determinism.
  std::vector<double> key(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const Request& req = instance.request(r);
    if (ranking == GreedyRanking::kByValue) {
      key[static_cast<std::size_t>(r)] = req.value;
    } else {
      const double hops = hop_distance(engine, g, req.source, req.target);
      key[static_cast<std::size_t>(r)] =
          hops >= kInf ? 0.0 : req.value / (req.demand * std::max(1.0, hops));
    }
  }
  std::vector<int> order(static_cast<std::size_t>(R));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ka = key[static_cast<std::size_t>(a)];
    const double kb = key[static_cast<std::size_t>(b)];
    if (ka != kb) return ka > kb;
    return a < b;
  });

  UfpSolution solution(R);
  std::vector<double> residual(g.capacities().begin(), g.capacities().end());
  std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  std::vector<std::uint8_t> blocked(static_cast<std::size_t>(g.num_edges()), 0);

  for (int r : order) {
    const Request& req = instance.request(r);
    // Block edges that cannot carry the demand; route min-hop on the rest.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      blocked[static_cast<std::size_t>(e)] =
          residual[static_cast<std::size_t>(e)] + 1e-9 < req.demand ? 1 : 0;
    }
    Path path;
    const double hops =
        engine.shortest_path(unit, req.source, req.target, &path, blocked);
    if (hops >= kInf) continue;
    for (EdgeId e : path) residual[static_cast<std::size_t>(e)] -= req.demand;
    solution.assign(r, std::move(path));
  }
  return solution;
}

MucaSolution greedy_muca(const MucaInstance& instance, GreedyRanking ranking) {
  const int R = instance.num_requests();
  std::vector<int> order(static_cast<std::size_t>(R));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const MucaRequest& ra = instance.request(a);
    const MucaRequest& rb = instance.request(b);
    const double ka = ranking == GreedyRanking::kByValue
                          ? ra.value
                          : ra.value / static_cast<double>(ra.bundle.size());
    const double kb = ranking == GreedyRanking::kByValue
                          ? rb.value
                          : rb.value / static_cast<double>(rb.bundle.size());
    if (ka != kb) return ka > kb;
    return a < b;
  });

  MucaSolution solution(R);
  std::vector<int> residual = instance.multiplicities();
  for (int r : order) {
    const MucaRequest& req = instance.request(r);
    bool fits = true;
    for (int u : req.bundle) {
      if (residual[static_cast<std::size_t>(u)] < 1) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    for (int u : req.bundle) --residual[static_cast<std::size_t>(u)];
    solution.select(r);
  }
  return solution;
}

}  // namespace tufp
