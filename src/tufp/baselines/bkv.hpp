// BKV-style baseline: the predecessor primal-dual mechanism of
// Briest, Krysta and Vöcking (STOC'05), reconstructed.
//
// The reproduced paper describes Algorithm 1 as being "in the spirit of"
// BKV's Garg-Könemann-motivated monotone primal-dual, whose guarantee
// approaches e; the SPAA'07 improvement to e/(e-1) comes from the tighter
// duality accounting that credits already-satisfied requests through the
// z_r variables (Claim 3.6). No implementation or full pseudocode of BKV
// is available, so this baseline reconstructs the *analysis* difference
// exactly and keeps the algorithmic skeleton shared (DESIGN.md §5):
//
//   - the run itself performs the same monotone iterative selection;
//   - the reported certificate is the *coarse* one available without the
//     z-credit: UB_bkv = min_i D1(i) / alphaAll(i), where alphaAll ranges
//     over ALL requests (selected ones included). That vector y/alphaAll is
//     feasible for the dual of the repetitions relaxation (Figure 5),
//     which contains the UFP polytope, so UB_bkv soundly bounds OPT — it
//     is simply weaker, by exactly the factor the SPAA'07 analysis
//     recovers (~ (e-1) in the limit; bench E9 measures the gap).
//
// Reported per run: the solution, the coarse certificate, and the tight
// certificate for comparison.
#pragma once

#include "tufp/ufp/bounded_ufp.hpp"

namespace tufp {

struct BkvResult {
  UfpSolution solution;
  int iterations = 0;
  double coarse_upper_bound = 0.0;  // min_i D1(i)/alphaAll(i) — BKV-style
  double tight_upper_bound = 0.0;   // min_i D1(i)/alphaRem(i) + P(i) — SPAA'07
  bool stopped_by_threshold = false;
};

BkvResult bkv_ufp(const UfpInstance& instance, const BoundedUfpConfig& config = {});

// Hot-path entry point over a persistent residual view (base-graph edge
// ids, blocked edges excluded); see bounded_ufp's view overload for the
// contract. Bitwise identical with or without a workspace.
BkvResult bkv_ufp(const ResidualView& view, std::span<const Request> requests,
                  const BoundedUfpConfig& config = {},
                  UfpWorkspace* workspace = nullptr);

}  // namespace tufp
