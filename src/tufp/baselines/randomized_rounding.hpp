// LP randomized rounding — the classical (1+eps) technique the paper's
// introduction rules out for mechanism design.
//
// Solves the Figure-1 relaxation exactly (path-enumerated simplex), scales
// the fractional solution by a safety factor, samples one path per request
// with the scaled marginals, then repairs any capacity violations by
// dropping offending low-value requests. In the B = Omega(ln m) regime the
// repair step almost never fires (Chernoff), so the value tracks the
// fractional optimum — but the allocation is NOT monotone in the declared
// types, which the monotonicity auditor demonstrates (bench E8): this is
// the paper's motivation for a deterministic primal-dual mechanism.
//
// The rounding is a deterministic function of (instance, seed): the
// "mechanism" formed from it with critical payments is well defined, just
// not truthful. The seed is an explicit call parameter — the entire state
// of the coin flips — and the implementation draws from a local
// Xoshiro256** stream with no shared or global state, so concurrent calls
// (e.g. the lab's OpenMP beta sweeps) are race-free and reproducible
// per-call.
#pragma once

#include <cstdint>

#include "tufp/graph/path_enum.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp {

struct RoundingConfig {
  double scale = 0.98;  // multiplies the fractional marginals before sampling
  PathEnumOptions path_enum;
};

struct RoundingResult {
  UfpSolution solution;
  double fractional_optimum = 0.0;
  int sampled = 0;   // requests drawn before repair
  int dropped = 0;   // requests removed by the feasibility repair
};

RoundingResult randomized_rounding_ufp(const UfpInstance& instance,
                                       std::uint64_t seed,
                                       const RoundingConfig& config = {});

}  // namespace tufp
