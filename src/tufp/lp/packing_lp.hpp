// Sparse packing linear programs: max c.x  s.t.  Ax <= b, x >= 0,
// with all data non-negative.
//
// Both LPs in the paper are of this shape: Figure 1's relaxation (rows =
// edges + requests, vars = paths) and its MUCA specialization (rows =
// items + requests, vars = bundles). The model is sparse; the simplex
// densifies on solve (exact optima are only computed on small instances —
// DESIGN.md §5).
#pragma once

#include <vector>

namespace tufp {

class PackingLp {
 public:
  // Adds a variable with objective coefficient c_j >= 0; returns its index.
  int add_variable(double objective);

  // Adds a constraint row with right-hand side b_i >= 0; returns its index.
  int add_row(double rhs);

  // Sets A[row, var] += coeff (coeff > 0).
  void add_coefficient(int row, int var, double coeff);

  int num_vars() const { return static_cast<int>(objective_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }

  double objective(int var) const;
  double rhs(int row) const;

  struct Coefficient {
    int var;
    double value;
  };
  const std::vector<Coefficient>& row(int i) const;

 private:
  std::vector<double> objective_;
  std::vector<double> rhs_;
  std::vector<std::vector<Coefficient>> rows_;
};

}  // namespace tufp
