// Dense tableau simplex for packing LPs.
//
// max c.x  s.t.  Ax <= b, x >= 0 with b >= 0, so the all-slack basis is
// feasible and no phase-1 is needed. Bland's rule guarantees termination
// under degeneracy. Returns primal values, objective, and the dual vector
// (reduced costs of the slack columns), which downstream code uses both
// for weak-duality checks (Figure 1 vs its dual) and as certified upper
// bounds in the branch-and-bound solver.
//
// Complexity is O(rows * cols) per pivot on a dense tableau: intended for
// the small exact-baseline instances only (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "tufp/lp/packing_lp.hpp"

namespace tufp {

struct SimplexOptions {
  std::int64_t max_pivots = 200000;
  double tolerance = 1e-9;
};

struct LpSolution {
  enum class Status { kOptimal, kPivotLimit };
  Status status = Status::kOptimal;
  double objective = 0.0;
  std::vector<double> x;      // primal values, size num_vars
  std::vector<double> duals;  // row duals, size num_rows, >= 0
  std::int64_t pivots = 0;
};

LpSolution solve_packing_lp(const PackingLp& lp, const SimplexOptions& options = {});

}  // namespace tufp
