#include "tufp/lp/garg_konemann.hpp"

#include <algorithm>
#include <cmath>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

GkResult garg_konemann_fractional_ufp(const UfpInstance& instance,
                                      const GkConfig& config) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 0.5,
               "GK epsilon outside (0, 0.5]");
  const Graph& g = instance.graph();
  const int m = g.num_edges();
  const int R = instance.num_requests();
  const double eps = config.epsilon;

  GkResult result;
  result.request_totals.assign(static_cast<std::size_t>(R), 0.0);
  if (R == 0) return result;

  // Values are normalized to (0, 1] internally so the pricing threshold
  // ("ratio >= 1") caps the duals uniformly; the objective is reported in
  // the original units.
  double v_max = 0.0;
  for (const Request& req : instance.requests()) v_max = std::max(v_max, req.value);
  TUFP_CHECK(v_max > 0.0, "values are positive by instance validation");

  // delta = (1+eps) * ((1+eps)N)^{-1/eps} with N rows (edges + budgets).
  const double N = static_cast<double>(m + R);
  const double delta =
      (1.0 + eps) * std::pow((1.0 + eps) * N, -1.0 / eps);

  std::vector<double> y(static_cast<std::size_t>(m));  // edge duals
  for (EdgeId e = 0; e < m; ++e) y[static_cast<std::size_t>(e)] = delta / g.capacity(e);
  std::vector<double> w(static_cast<std::size_t>(R), delta);  // budget duals

  // Raw (pre-scaling) accumulators.
  std::vector<GkFlow> raw_flows;
  std::vector<double> raw_totals(static_cast<std::size_t>(R), 0.0);

  ShortestPathEngine engine(g);
  Path path;

  while (result.iterations < config.max_iterations) {
    // Price the cheapest column: min over (r, s) of
    // (d_r * len_y(s) + w_r) / v_r.
    int best = -1;
    double best_ratio = kInf;
    Path best_path;
    for (int r = 0; r < R; ++r) {
      const Request& req = instance.request(r);
      const double len = engine.shortest_path(y, req.source, req.target, &path);
      if (len >= kInf) continue;
      const double ratio = (req.demand * len + w[static_cast<std::size_t>(r)]) /
                           (req.value / v_max);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = r;
        best_path = path;
      }
    }
    // Dual feasibility reached (all columns priced out): done.
    if (best < 0 || best_ratio >= 1.0) break;

    ++result.iterations;
    const Request& req = instance.request(best);
    // Width: the budget row caps theta at 1; each edge at c_e/d_r.
    double theta = 1.0;
    for (EdgeId e : best_path) {
      theta = std::min(theta, g.capacity(e) / req.demand);
    }
    raw_totals[static_cast<std::size_t>(best)] += theta;
    raw_flows.push_back({best, best_path, theta});
    // Multiplicative dual updates: row i grows by (1 + eps*load_i/b_i).
    for (EdgeId e : best_path) {
      y[static_cast<std::size_t>(e)] *=
          1.0 + eps * (req.demand * theta) / g.capacity(e);
    }
    w[static_cast<std::size_t>(best)] *= 1.0 + eps * theta;
  }
  result.converged = result.iterations < config.max_iterations;

  // Scale down to feasibility. The theoretical scale
  // 1 + log_{1+eps}(1/delta) covers the budget rows; edge rows can exceed
  // it by a demand-dependent sliver, so the final scale is the maximum of
  // the theory value and the *measured* worst row overload — feasibility
  // then holds by construction and the scale is never larger than what the
  // run actually requires.
  double scale = 1.0 + std::log(1.0 / delta) / std::log(1.0 + eps);
  {
    std::vector<double> raw_loads(static_cast<std::size_t>(m), 0.0);
    for (const GkFlow& flow : raw_flows) {
      const double d = instance.request(flow.request).demand;
      for (EdgeId e : flow.path) {
        raw_loads[static_cast<std::size_t>(e)] += d * flow.amount;
      }
    }
    for (EdgeId e = 0; e < m; ++e) {
      scale = std::max(scale, raw_loads[static_cast<std::size_t>(e)] /
                                  g.capacity(e));
    }
    for (int r = 0; r < R; ++r) {
      scale = std::max(scale, raw_totals[static_cast<std::size_t>(r)]);
    }
  }
  TUFP_CHECK(scale > 0.0, "GK scale must be positive");

  result.flows.reserve(raw_flows.size());
  double objective = 0.0;
  for (GkFlow& flow : raw_flows) {
    flow.amount /= scale;
    objective += flow.amount * instance.request(flow.request).value;
    result.flows.push_back(std::move(flow));
  }
  for (int r = 0; r < R; ++r) {
    result.request_totals[static_cast<std::size_t>(r)] =
        raw_totals[static_cast<std::size_t>(r)] / scale;
  }
  result.objective = objective;
  result.edge_duals = std::move(y);
  return result;
}

}  // namespace tufp
