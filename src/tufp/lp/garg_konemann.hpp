// Garg-Konemann fractional unsplittable flow (the multicommodity
// substrate, paper refs [9] Garg-Konemann'98 / [8] Fleischer'99).
//
// The paper's motivation leans on the fractional problem (Figure 1's
// relaxation) admitting combinatorial (1+eps)-approximations by exactly
// this primal-dual width machinery — indeed Algorithm 1 is "motivated by"
// it. This implementation solves the profit version column-generation
// style: rows are edge capacities plus the per-request unit budgets;
// columns (request, path) are priced by Dijkstra under the exponential
// row duals; the cheapest column is augmented by its bottleneck width and
// the touched duals inflate by (1+eps * load/capacity). Scaling the
// accumulated primal by 1 + log_{1+eps}(1/delta) restores feasibility and
// loses only a (1+O(eps)) factor against the fractional optimum.
//
// Used as (i) a scalable fractional baseline where the exact path LP is
// out of reach, and (ii) the reproduction of the paper's claim that the
// fractional problem is "easy" — see bench_lp_duality part (c).
#pragma once

#include <cstdint>
#include <vector>

#include "tufp/graph/path.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp {

struct GkConfig {
  double epsilon = 0.1;  // in (0, 0.5]
  std::int64_t max_iterations = 2'000'000;
};

// One fractional routing decision (amounts are post-scaling).
struct GkFlow {
  int request = -1;
  Path path;
  double amount = 0.0;
};

struct GkResult {
  // Feasible fractional objective value (lower bound on the Figure-1 LP
  // optimum; >= (1 - O(eps)) of it when converged).
  double objective = 0.0;
  std::vector<GkFlow> flows;
  // Per-request routed fraction, sum over paths; <= 1 each.
  std::vector<double> request_totals;
  // Final row duals y_e, one per edge, strictly positive. Any such vector
  // rescales into a feasible dual certificate (ufp/dual_certificate.hpp),
  // so best_dual_bound(instance, edge_duals) is a certified *upper* bound
  // on the fractional optimum — the bracket [objective, bound] pins the LP
  // value without solving it exactly (lab/upper_bound.hpp). Empty only for
  // request-free instances.
  std::vector<double> edge_duals;
  std::int64_t iterations = 0;
  bool converged = true;  // false only when max_iterations was exhausted
};

GkResult garg_konemann_fractional_ufp(const UfpInstance& instance,
                                      const GkConfig& config = {});

}  // namespace tufp
