#include "tufp/lp/packing_lp.hpp"

#include "tufp/util/assert.hpp"

namespace tufp {

int PackingLp::add_variable(double objective) {
  TUFP_REQUIRE(objective >= 0.0, "packing LP objective must be non-negative");
  objective_.push_back(objective);
  return num_vars() - 1;
}

int PackingLp::add_row(double rhs) {
  TUFP_REQUIRE(rhs >= 0.0, "packing LP rhs must be non-negative");
  rhs_.push_back(rhs);
  rows_.emplace_back();
  return num_rows() - 1;
}

void PackingLp::add_coefficient(int row, int var, double coeff) {
  TUFP_REQUIRE(row >= 0 && row < num_rows(), "row index out of range");
  TUFP_REQUIRE(var >= 0 && var < num_vars(), "var index out of range");
  TUFP_REQUIRE(coeff > 0.0, "packing LP coefficients must be positive");
  rows_[static_cast<std::size_t>(row)].push_back({var, coeff});
}

double PackingLp::objective(int var) const {
  TUFP_REQUIRE(var >= 0 && var < num_vars(), "var index out of range");
  return objective_[static_cast<std::size_t>(var)];
}

double PackingLp::rhs(int row) const {
  TUFP_REQUIRE(row >= 0 && row < num_rows(), "row index out of range");
  return rhs_[static_cast<std::size_t>(row)];
}

const std::vector<PackingLp::Coefficient>& PackingLp::row(int i) const {
  TUFP_REQUIRE(i >= 0 && i < num_rows(), "row index out of range");
  return rows_[static_cast<std::size_t>(i)];
}

}  // namespace tufp
