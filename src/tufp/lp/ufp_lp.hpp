// The Figure-1 linear programming relaxation over enumerated paths.
//
//   max sum_r v_r sum_{s in S_r} x_s
//   s.t. sum_{s : e in s} d_s x_s <= c_e        for every edge e
//        sum_{s in S_r} x_s      <= 1           for every request r
//        x >= 0
//
// Solving this exactly (dense simplex over exhaustively enumerated S_r)
// gives the fractional optimum — the multicommodity-flow value the paper's
// motivation section compares against — plus the dual variables (y_e, z_r)
// used by the weak-duality experiments (bench E12).
#pragma once

#include <vector>

#include "tufp/graph/path_enum.hpp"
#include "tufp/lp/simplex.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp {

struct UfpLpOptions {
  PathEnumOptions path_enum;
  SimplexOptions simplex;
};

struct UfpFractionalSolution {
  double objective = 0.0;  // fractional OPT
  // x[r][k]: weight on the k-th enumerated path of request r.
  std::vector<std::vector<double>> x;
  std::vector<std::vector<Path>> paths;  // enumerated S_r, same layout as x
  std::vector<double> edge_duals;        // y_e, one per edge
  std::vector<double> request_duals;     // z_r, one per request
  bool solved_to_optimality = true;
};

// Throws when path enumeration truncates (exact solves refuse incomplete
// S_r) — shrink the instance or raise the limits.
UfpFractionalSolution solve_ufp_lp(const UfpInstance& instance,
                                   const UfpLpOptions& options = {});

}  // namespace tufp
