// Exact integral optimum of small UFP instances by branch and bound.
//
// Depth-first search over requests in declaration order; at each request
// the solver branches on "route along candidate path k" (for every
// enumerated simple path that fits the residual capacities) and "skip".
// Pruning uses the residual-value bound (current value + total value of
// the undecided suffix) and optionally the exact LP relaxation at the
// root. The result is the true OPT — the denominator of every measured
// approximation ratio on small instances.
#pragma once

#include <cstdint>

#include "tufp/graph/path_enum.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp {

struct UfpExactOptions {
  PathEnumOptions path_enum;
  std::int64_t max_nodes = 50'000'000;
  bool use_lp_root_bound = true;  // prune with the Figure-1 relaxation
};

struct UfpExactResult {
  double optimal_value = 0.0;
  UfpSolution solution;
  std::int64_t nodes = 0;
  // False when max_nodes was exhausted: optimal_value is then only the
  // best incumbent found (a lower bound on OPT).
  bool proven_optimal = true;
};

UfpExactResult solve_ufp_exact(const UfpInstance& instance,
                               const UfpExactOptions& options = {});

}  // namespace tufp
