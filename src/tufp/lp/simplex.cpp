#include "tufp/lp/simplex.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

// Dense tableau with columns [vars | slacks | rhs]. Row 0..m-1 are
// constraints; the objective (reduced cost) row is kept separately.
class Tableau {
 public:
  Tableau(const PackingLp& lp)
      : m_(lp.num_rows()), n_(lp.num_vars()), width_(n_ + m_ + 1) {
    data_.assign(static_cast<std::size_t>(m_) * width_, 0.0);
    reduced_.assign(static_cast<std::size_t>(width_), 0.0);
    basis_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      for (const auto& [var, coeff] : lp.row(i)) at(i, var) += coeff;
      at(i, n_ + i) = 1.0;  // slack
      at(i, n_ + m_) = lp.rhs(i);
      basis_[static_cast<std::size_t>(i)] = n_ + i;
    }
    for (int j = 0; j < n_; ++j) reduced_[static_cast<std::size_t>(j)] = -lp.objective(j);
  }

  double& at(int row, int col) {
    return data_[static_cast<std::size_t>(row) * width_ + col];
  }
  double at(int row, int col) const {
    return data_[static_cast<std::size_t>(row) * width_ + col];
  }

  // Bland's rule: entering = lowest-index column with negative reduced
  // cost; leaving = ratio-test winner with the lowest basis variable index.
  // Returns false when optimal.
  bool pivot_step(double tol) {
    int entering = -1;
    for (int j = 0; j < n_ + m_; ++j) {
      if (reduced_[static_cast<std::size_t>(j)] < -tol) {
        entering = j;
        break;
      }
    }
    if (entering < 0) return false;

    int leaving = -1;
    double best_ratio = kInf;
    for (int i = 0; i < m_; ++i) {
      const double a = at(i, entering);
      if (a <= tol) continue;
      const double ratio = at(i, n_ + m_) / a;
      if (ratio < best_ratio - tol ||
          (ratio < best_ratio + tol &&
           (leaving < 0 || basis_[static_cast<std::size_t>(i)] <
                               basis_[static_cast<std::size_t>(leaving)]))) {
        best_ratio = std::min(best_ratio, ratio);
        leaving = i;
      }
    }
    // Packing LPs with non-negative A are always bounded (x_j is capped by
    // any row containing it; columns with no rows would make the LP
    // unbounded only if their objective is positive — caught here).
    TUFP_CHECK(leaving >= 0, "packing LP unbounded: variable has no binding row");

    pivot(leaving, entering);
    return true;
  }

  void pivot(int row, int col) {
    const double p = at(row, col);
    for (int j = 0; j < width_; ++j) at(row, j) /= p;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = at(i, col);
      if (factor == 0.0) continue;
      for (int j = 0; j < width_; ++j) at(i, j) -= factor * at(row, j);
    }
    const double rfactor = reduced_[static_cast<std::size_t>(col)];
    if (rfactor != 0.0) {
      for (int j = 0; j < width_; ++j) {
        reduced_[static_cast<std::size_t>(j)] -= rfactor * at(row, j);
      }
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  LpSolution extract(const PackingLp& lp) const {
    LpSolution sol;
    sol.x.assign(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int var = basis_[static_cast<std::size_t>(i)];
      if (var < n_) sol.x[static_cast<std::size_t>(var)] = at(i, n_ + m_);
    }
    sol.duals.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      sol.duals[static_cast<std::size_t>(i)] =
          std::max(0.0, reduced_[static_cast<std::size_t>(n_ + i)]);
    }
    sol.objective = 0.0;
    for (int j = 0; j < n_; ++j) {
      sol.objective += lp.objective(j) * sol.x[static_cast<std::size_t>(j)];
    }
    return sol;
  }

 private:
  int m_, n_, width_;
  std::vector<double> data_;
  std::vector<double> reduced_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_packing_lp(const PackingLp& lp, const SimplexOptions& options) {
  TUFP_REQUIRE(lp.num_vars() > 0, "LP has no variables");
  Tableau tableau(lp);
  std::int64_t pivots = 0;
  while (tableau.pivot_step(options.tolerance)) {
    if (++pivots >= options.max_pivots) {
      LpSolution sol = tableau.extract(lp);
      sol.status = LpSolution::Status::kPivotLimit;
      sol.pivots = pivots;
      return sol;
    }
  }
  LpSolution sol = tableau.extract(lp);
  sol.status = LpSolution::Status::kOptimal;
  sol.pivots = pivots;
  return sol;
}

}  // namespace tufp
