#include "tufp/lp/ufp_lp.hpp"

#include "tufp/util/assert.hpp"

namespace tufp {

UfpFractionalSolution solve_ufp_lp(const UfpInstance& instance,
                                   const UfpLpOptions& options) {
  const Graph& g = instance.graph();
  const int R = instance.num_requests();
  const int m = g.num_edges();

  UfpFractionalSolution out;
  out.paths.resize(static_cast<std::size_t>(R));

  PackingLp lp;
  // Rows 0..m-1: edge capacities. Rows m..m+R-1: per-request selection.
  for (EdgeId e = 0; e < m; ++e) lp.add_row(g.capacity(e));
  for (int r = 0; r < R; ++r) lp.add_row(1.0);

  struct VarRef {
    int request;
    int path_index;
  };
  std::vector<VarRef> var_refs;

  for (int r = 0; r < R; ++r) {
    const Request& req = instance.request(r);
    PathEnumResult enumerated = enumerate_simple_paths(
        g, req.source, req.target, options.path_enum);
    TUFP_REQUIRE(!enumerated.truncated,
                 "path enumeration truncated: exact LP requires full S_r");
    auto& per_request = out.paths[static_cast<std::size_t>(r)];
    per_request = std::move(enumerated.paths);
    for (int k = 0; k < static_cast<int>(per_request.size()); ++k) {
      const int var = lp.add_variable(req.value);
      var_refs.push_back({r, k});
      lp.add_coefficient(m + r, var, 1.0);
      for (EdgeId e : per_request[static_cast<std::size_t>(k)]) {
        lp.add_coefficient(e, var, req.demand);
      }
    }
  }

  if (lp.num_vars() == 0) {
    // Every request is unreachable: the optimum is trivially 0.
    out.objective = 0.0;
    out.edge_duals.assign(static_cast<std::size_t>(m), 0.0);
    out.request_duals.assign(static_cast<std::size_t>(R), 0.0);
    out.x.resize(static_cast<std::size_t>(R));
    return out;
  }

  const LpSolution sol = solve_packing_lp(lp, options.simplex);
  out.solved_to_optimality = sol.status == LpSolution::Status::kOptimal;
  out.objective = sol.objective;

  out.x.resize(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    out.x[static_cast<std::size_t>(r)].assign(
        out.paths[static_cast<std::size_t>(r)].size(), 0.0);
  }
  for (int j = 0; j < lp.num_vars(); ++j) {
    const VarRef ref = var_refs[static_cast<std::size_t>(j)];
    out.x[static_cast<std::size_t>(ref.request)]
         [static_cast<std::size_t>(ref.path_index)] =
        sol.x[static_cast<std::size_t>(j)];
  }
  out.edge_duals.assign(sol.duals.begin(), sol.duals.begin() + m);
  out.request_duals.assign(sol.duals.begin() + m, sol.duals.end());
  return out;
}

}  // namespace tufp
