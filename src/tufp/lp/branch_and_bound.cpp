#include "tufp/lp/branch_and_bound.hpp"

#include <algorithm>
#include <vector>

#include "tufp/lp/ufp_lp.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

constexpr double kBoundSlack = 1e-9;

struct SearchState {
  const UfpInstance* instance;
  const std::vector<std::vector<Path>>* paths;
  std::vector<double> residual;
  std::vector<double> suffix_value;  // sum of values of requests >= index
  double lp_bound = kInf;

  // Fractional-knapsack node bound: relax the per-edge constraints to one
  // aggregate capacity (sum of residuals) and charge each request its
  // cheapest possible footprint d_r * min_hops_r. Sound because every
  // feasible completion consumes at least that much aggregate capacity.
  struct KnapsackItem {
    int request;
    double weight;  // d_r * min-hop path length
    double value;
  };
  std::vector<KnapsackItem> by_density;  // sorted by value/weight desc
  double residual_total = 0.0;

  double current_value = 0.0;
  std::vector<int> chosen;  // per request: path index or -1

  double best_value = 0.0;
  std::vector<int> best_chosen;

  std::int64_t nodes = 0;
  std::int64_t max_nodes = 0;
  bool aborted = false;
};

double knapsack_bound(const SearchState& st, int from_request) {
  double capacity = st.residual_total;
  double bound = 0.0;
  for (const auto& item : st.by_density) {
    if (item.request < from_request) continue;
    if (capacity <= 0.0) break;
    if (item.weight <= capacity) {
      bound += item.value;
      capacity -= item.weight;
    } else {
      bound += item.value * (capacity / item.weight);
      break;
    }
  }
  return bound;
}

bool fits(const Path& path, const std::vector<double>& residual, double demand) {
  for (EdgeId e : path) {
    if (residual[static_cast<std::size_t>(e)] + 1e-9 < demand) return false;
  }
  return true;
}

void dfs(SearchState& st, int r) {
  if (st.aborted) return;
  if (++st.nodes > st.max_nodes) {
    st.aborted = true;
    return;
  }
  const int R = st.instance->num_requests();
  if (r == R) {
    if (st.current_value > st.best_value + kBoundSlack) {
      st.best_value = st.current_value;
      st.best_chosen = st.chosen;
    }
    return;
  }
  // Bound: nothing decided from r onwards can add more than the suffix
  // value or the aggregate-capacity knapsack relaxation, and the whole
  // solution can never beat the LP relaxation.
  const double optimistic =
      std::min(st.current_value + st.suffix_value[static_cast<std::size_t>(r)],
               st.lp_bound);
  if (optimistic <= st.best_value + kBoundSlack) return;
  if (st.current_value + knapsack_bound(st, r) <= st.best_value + kBoundSlack) {
    return;
  }

  const Request& req = st.instance->request(r);
  // Route first (greedy-style incumbents early), then skip.
  const auto& candidates = (*st.paths)[static_cast<std::size_t>(r)];
  for (int k = 0; k < static_cast<int>(candidates.size()); ++k) {
    const Path& path = candidates[static_cast<std::size_t>(k)];
    if (!fits(path, st.residual, req.demand)) continue;
    const double consumed = req.demand * static_cast<double>(path.size());
    for (EdgeId e : path) st.residual[static_cast<std::size_t>(e)] -= req.demand;
    st.residual_total -= consumed;
    st.current_value += req.value;
    st.chosen[static_cast<std::size_t>(r)] = k;
    dfs(st, r + 1);
    st.chosen[static_cast<std::size_t>(r)] = -1;
    st.current_value -= req.value;
    st.residual_total += consumed;
    for (EdgeId e : path) st.residual[static_cast<std::size_t>(e)] += req.demand;
    if (st.aborted) return;
  }
  dfs(st, r + 1);
}

}  // namespace

UfpExactResult solve_ufp_exact(const UfpInstance& instance,
                               const UfpExactOptions& options) {
  const Graph& g = instance.graph();
  const int R = instance.num_requests();

  std::vector<std::vector<Path>> paths(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const Request& req = instance.request(r);
    PathEnumResult enumerated =
        enumerate_simple_paths(g, req.source, req.target, options.path_enum);
    TUFP_REQUIRE(!enumerated.truncated,
                 "path enumeration truncated: exact solve requires full S_r");
    paths[static_cast<std::size_t>(r)] = std::move(enumerated.paths);
  }

  SearchState st;
  st.instance = &instance;
  st.paths = &paths;
  st.residual.assign(g.capacities().begin(), g.capacities().end());
  st.suffix_value.assign(static_cast<std::size_t>(R) + 1, 0.0);
  for (int r = R - 1; r >= 0; --r) {
    st.suffix_value[static_cast<std::size_t>(r)] =
        st.suffix_value[static_cast<std::size_t>(r) + 1] +
        instance.request(r).value;
  }
  st.chosen.assign(static_cast<std::size_t>(R), -1);
  st.best_chosen = st.chosen;
  st.max_nodes = options.max_nodes;
  for (double cap : st.residual) st.residual_total += cap;
  for (int r = 0; r < R; ++r) {
    const auto& candidates = paths[static_cast<std::size_t>(r)];
    if (candidates.empty()) continue;
    std::size_t min_hops = candidates.front().size();
    for (const Path& p : candidates) min_hops = std::min(min_hops, p.size());
    st.by_density.push_back({r,
                             instance.request(r).demand *
                                 static_cast<double>(min_hops),
                             instance.request(r).value});
  }
  std::sort(st.by_density.begin(), st.by_density.end(),
            [](const SearchState::KnapsackItem& a,
               const SearchState::KnapsackItem& b) {
              return a.value * b.weight > b.value * a.weight;
            });

  if (options.use_lp_root_bound) {
    UfpLpOptions lp_options;
    lp_options.path_enum = options.path_enum;
    const UfpFractionalSolution lp = solve_ufp_lp(instance, lp_options);
    if (lp.solved_to_optimality) st.lp_bound = lp.objective + kBoundSlack;
  }

  dfs(st, 0);

  UfpExactResult result{0.0, UfpSolution(R), st.nodes, !st.aborted};
  result.optimal_value = st.best_value;
  for (int r = 0; r < R; ++r) {
    const int k = st.best_chosen[static_cast<std::size_t>(r)];
    if (k >= 0) {
      result.solution.assign(
          r, paths[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)]);
    }
  }
  return result;
}

}  // namespace tufp
