// Streaming and batch statistics used by benches and the auditors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tufp {

// Welford's online mean/variance; numerically stable for long streams.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;           // sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch percentile (linear interpolation between order statistics).
// q in [0,1]; q=0.5 is the median. Copies and sorts: intended for bench
// result post-processing, not hot paths.
double percentile(std::vector<double> values, double q);

// Geometric mean of strictly positive values (ratio aggregation).
double geometric_mean(const std::vector<double>& values);

// "mean ± stddev" formatting for bench tables.
std::string format_mean_std(const RunningStats& s, int precision = 4);

}  // namespace tufp
