// Checked assertions for library invariants.
//
// TUFP_REQUIRE is for precondition violations by the caller (throws
// std::invalid_argument); TUFP_CHECK is for internal invariants that must
// hold if the library is correct (throws std::logic_error). Both are always
// on: the algorithms here back *mechanisms* whose truthfulness depends on
// exact adherence to the paper's selection rules, so silently continuing
// after a broken invariant would corrupt payments, not just performance.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tufp {

namespace detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "tufp precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "tufp invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

#define TUFP_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::tufp::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define TUFP_CHECK(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) ::tufp::detail::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

}  // namespace tufp
