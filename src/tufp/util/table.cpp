#include "tufp/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TUFP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  TUFP_REQUIRE(cells.size() == headers_.size(),
               "row arity must match header arity");
  rows_.push_back(std::move(cells));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(const char* s) {
  cells_.emplace_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(double v) {
  cells_.push_back(format_double(v, table_.precision()));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::size_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string Table::format_double(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace tufp
