// Canonical JSON formatting for the telemetry layer (DESIGN.md §11).
//
// Every JSON byte the system emits — telemetry events, histogram
// snapshots, the tufp_engine --json summary — goes through these helpers,
// so "byte-identical across threads/kernels/machines" reduces to "the
// underlying doubles are identical", which the deterministic channel
// guarantees. One formatter, one drift surface:
//   * doubles print as %.17g (shortest form that round-trips IEEE-754
//     exactly in the worst case; locale-independent via snprintf on the
//     "C"-numeric formats the repo never changes);
//   * non-finite doubles print as quoted strings ("inf"/"-inf"/"nan") —
//     JSON has no literals for them and silently emitting `null` would
//     make a missing field and an infinite lease indistinguishable;
//   * strings escape the JSON control set and nothing else;
//   * objects serialize fields in insertion order (schema order is part
//     of the byte-exact contract, tests diff whole lines).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace tufp {

// %.17g rendering of a finite double; "inf"/"-inf"/"nan" (unquoted —
// callers quote) otherwise.
std::string json_double(double value);

// Escapes backslash, quote and control characters; returns the body
// without surrounding quotes.
std::string json_escape(std::string_view text);

// Insertion-ordered JSON object builder. Values are rendered immediately;
// str() just wraps the accumulated body in braces, so a builder can be
// reused as the value of a raw() field in an enclosing object.
class JsonObject {
 public:
  JsonObject& field(std::string_view name, std::string_view text);
  JsonObject& field(std::string_view name, const char* text) {
    return field(name, std::string_view(text));
  }
  JsonObject& field(std::string_view name, double value);
  JsonObject& field(std::string_view name, std::int64_t value);
  JsonObject& field(std::string_view name, int value) {
    return field(name, static_cast<std::int64_t>(value));
  }
  JsonObject& field(std::string_view name, bool value);
  // Pre-rendered JSON value (array, nested object) inserted verbatim.
  JsonObject& raw(std::string_view name, std::string_view json);

  std::string str() const;

 private:
  void key(std::string_view name);
  std::ostringstream body_;
  bool first_ = true;
};

}  // namespace tufp
