// Epoch-arena primitives: O(1) logical resets for per-epoch scratch.
//
// The serving hot path (graph/residual_csr.hpp, ufp/detail/sp_cache.hpp)
// re-enters the same data structures every epoch. Rebuilding or
// memset-ing them costs O(universe) per epoch — exactly the
// snapshot-recompile overhead the persistent residual graph removes — so
// the per-epoch scratch follows one rule instead: a *generation counter*
// is bumped in O(1) and every slot whose recorded generation is stale
// reads as the reset value. ShortestPathEngine's label arrays
// (graph/dijkstra.hpp) apply the same rule in-place with their
// query-epoch counter; the helpers here package it for the other
// epoch-scoped structures:
//
//   * GenerationMap<T> — a flat array with lazy generation-stamped
//     entries. advance() is the whole reset; reads of untouched slots
//     return the reset value without the array ever being rewritten.
//     Used for the source->shard map rebuilt per epoch over a 10^5-vertex
//     universe with only O(batch) distinct sources.
//   * BumpArena — a chunked bump allocator for trivially-destructible
//     records. reset() rewinds every chunk in O(chunks) and keeps the
//     memory; the cross-epoch source-tree cache stores its settled-tree
//     records here and evicts wholesale by arena reset + generation bump
//     (no per-tree free lists).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "tufp/util/assert.hpp"

namespace tufp {

// Flat map over a fixed universe [0, size) with O(1) bulk reset. A slot
// is "set" only in the current generation; stale slots read as the reset
// value. The generation counter wrap (once per 2^32 advances) triggers a
// hard re-stamp, so correctness never depends on the counter's width.
template <typename T>
class GenerationMap {
 public:
  GenerationMap() = default;
  GenerationMap(std::size_t size, T reset_value) {
    reset(size, reset_value);
  }

  // Resizes the universe and starts a fresh generation. O(size) only when
  // the universe actually grows (vector resize); otherwise O(1).
  void reset(std::size_t size, T reset_value) {
    reset_value_ = reset_value;
    if (values_.size() != size) {
      values_.assign(size, reset_value);
      stamps_.assign(size, 0);
      current_ = 1;
      return;
    }
    advance();
  }

  // Starts a new generation: every slot logically holds the reset value
  // again. O(1) except once per 2^32 calls (counter wrap re-stamp).
  void advance() {
    if (++current_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      current_ = 1;
    }
  }

  const T& get(std::size_t i) const {
    return stamps_[i] == current_ ? values_[i] : reset_value_;
  }

  void set(std::size_t i, const T& value) {
    values_[i] = value;
    stamps_[i] = current_;
  }

  std::size_t size() const { return values_.size(); }

 private:
  std::vector<T> values_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t current_ = 0;
  T reset_value_{};
};

// Chunked bump allocator for trivially-destructible records. allocate()
// never invalidates previously returned spans; reset() rewinds all chunks
// in O(chunks) keeping their memory. No per-allocation free: the owner
// evicts everything at once (the generation-reset eviction rule).
class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes) {
    TUFP_REQUIRE(chunk_bytes_ > 0, "arena chunk size must be positive");
  }

  template <typename T>
  std::span<T> allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena never runs destructors");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    void* p = raw_allocate(bytes, alignof(T));
    return {static_cast<T*>(p), count};
  }

  // Rewinds every chunk; all outstanding spans become invalid.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
    allocated_bytes_ = 0;
  }

  // Bytes handed out since the last reset (live payload, not capacity).
  // An order-independent sum over the outstanding allocations, so limit
  // checks keyed on it are deterministic even when the allocations were
  // made from differently-scheduled threads.
  std::size_t bytes_allocated() const { return allocated_bytes_; }

  // Total chunk capacity currently held (survives reset(): the memory is
  // kept for reuse). The high-water figure resident-memory telemetry
  // wants, as opposed to the live payload above.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.capacity;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void* raw_allocate(std::size_t bytes, std::size_t align) {
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t start = (c.used + align - 1) / align * align;
      if (start + bytes <= c.capacity) {
        c.used = start + bytes;
        allocated_bytes_ += bytes;
        return c.data.get() + start;
      }
      ++active_;
    }
    const std::size_t capacity = std::max(chunk_bytes_, bytes + align);
    chunks_.push_back({std::make_unique<std::byte[]>(capacity), capacity, 0});
    active_ = chunks_.size() - 1;
    return raw_allocate(bytes, align);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t allocated_bytes_ = 0;
};

}  // namespace tufp
