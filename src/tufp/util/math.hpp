// Numeric helpers and the constants the paper's bounds are phrased in.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace tufp {

// e/(e-1) ~= 1.5819767..., the approximation ratio of Bounded-UFP and the
// lower bound for reasonable iterative path-minimizing algorithms (Thm 3.11).
inline constexpr double kE = 2.718281828459045235360287471352662498;
inline constexpr double kEOverEMinus1 = kE / (kE - 1.0);

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative/absolute tolerance comparison for accumulated floating point.
inline bool approx_eq(double a, double b, double rel = 1e-9, double abs = 1e-12) {
  return std::fabs(a - b) <= std::max(abs, rel * std::max(std::fabs(a), std::fabs(b)));
}

inline bool approx_le(double a, double b, double rel = 1e-9, double abs = 1e-12) {
  return a <= b + std::max(abs, rel * std::max(std::fabs(a), std::fabs(b)));
}

// The largest exponent x for which e^x stays comfortably inside double
// range. Bounded-UFP drives edge weights up to e^{eps*B}/c_e and compares
// the dual value against e^{eps*(B-1)}; callers must keep eps*B below this.
inline constexpr double kMaxSafeExponent = 700.0;

// Value of the Figure-2 staircase bound Bl*(1 - (B/(B+1))^B): the maximum
// value any reasonable iterative path-minimizing algorithm extracts from
// the staircase instance, pre integrality correction (Thm 3.11).
inline double staircase_alg_value(int l, int B) {
  const double base = static_cast<double>(B) / (B + 1);
  return static_cast<double>(B) * l * (1.0 - std::pow(base, B));
}

// The ratio the staircase forces in the limit: 1/(1-(B/(B+1))^B) -> e/(e-1).
inline double staircase_ratio(int B) {
  const double base = static_cast<double>(B) / (B + 1);
  return 1.0 / (1.0 - std::pow(base, B));
}

}  // namespace tufp
