#include "tufp/util/json.hpp"

#include <cmath>
#include <cstdio>

namespace tufp {

std::string json_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(std::string_view name) {
  if (!first_) body_ << ',';
  first_ = false;
  body_ << '"' << json_escape(name) << "\":";
}

JsonObject& JsonObject::field(std::string_view name, std::string_view text) {
  key(name);
  body_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonObject& JsonObject::field(std::string_view name, double value) {
  key(name);
  if (std::isfinite(value)) {
    body_ << json_double(value);
  } else {
    body_ << '"' << json_double(value) << '"';
  }
  return *this;
}

JsonObject& JsonObject::field(std::string_view name, std::int64_t value) {
  key(name);
  body_ << value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view name, bool value) {
  key(name);
  body_ << (value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::raw(std::string_view name, std::string_view json) {
  key(name);
  body_ << json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_.str() + "}"; }

}  // namespace tufp
