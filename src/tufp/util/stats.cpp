#include "tufp/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  TUFP_REQUIRE(n_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  TUFP_REQUIRE(n_ > 0, "max of empty stats");
  return max_;
}

double percentile(std::vector<double> values, double q) {
  TUFP_REQUIRE(!values.empty(), "percentile of empty sample");
  TUFP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  TUFP_REQUIRE(!values.empty(), "geometric mean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    TUFP_REQUIRE(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string format_mean_std(const RunningStats& s, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << s.mean() << " ± " << s.stddev();
  return os.str();
}

}  // namespace tufp
