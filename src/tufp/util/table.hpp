// Aligned console tables with optional CSV export.
//
// Every experiment binary in bench/ regenerates one paper
// figure/theorem-shaped series and prints it through this writer, so all
// reproduction output has a uniform, machine-extractable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tufp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row cells: doubles are formatted with the table precision; strings and
  // integers verbatim.
  Table& add_row(std::vector<std::string> cells);

  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(const char* s);
    RowBuilder& cell(double v);
    RowBuilder& cell(int v);
    RowBuilder& cell(long v);
    RowBuilder& cell(long long v);
    RowBuilder& cell(std::size_t v);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  // Returns a builder that commits the row on destruction.
  RowBuilder row() { return RowBuilder(*this); }

  void set_precision(int digits) { precision_ = digits; }
  int precision() const { return precision_; }

  // Pretty-print with column alignment and a header rule.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  static std::string format_double(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 4;
};

}  // namespace tufp
