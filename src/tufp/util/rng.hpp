// Deterministic pseudo-random number generation.
//
// Everything stochastic in tufp (workload generators, misreport sampling,
// randomized rounding) flows through Xoshiro256StarStar seeded via
// SplitMix64, so every experiment is reproducible from a single uint64
// seed. The generators satisfy UniformRandomBitGenerator and can be used
// with <random> distributions, but we provide bias-free helpers directly
// so results do not depend on the standard library's unspecified
// distribution algorithms.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tufp/util/assert.hpp"

namespace tufp {

// SplitMix64: used to expand a single seed into xoshiro's 256-bit state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna — fast, high quality, 2^256-1 period.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound) by rejection (Lemire-style widening).
  std::uint64_t next_below(std::uint64_t bound) {
    TUFP_REQUIRE(bound > 0, "next_below bound must be positive");
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    TUFP_REQUIRE(lo <= hi, "next_int empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : next_below(span));
  }

  // Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    TUFP_REQUIRE(lo <= hi, "next_double empty range");
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Derive an independent child stream (for per-thread / per-agent use).
  Xoshiro256StarStar split() {
    return Xoshiro256StarStar((*this)() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

using Rng = Xoshiro256StarStar;

// Zipf-distributed integer in [1, n] with exponent s, via inverse CDF over
// precomputed weights. Small-n use only (workload value skew).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cdf_(static_cast<std::size_t>(n)) {
    TUFP_REQUIRE(n >= 1, "Zipf support must be non-empty");
    TUFP_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
    double total = 0.0;
    for (int k = 1; k <= n; ++k) {
      total += 1.0 / pow_int(k, s);
      cdf_[static_cast<std::size_t>(k - 1)] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  int sample(Rng& rng) const {
    const double u = rng.next_double();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return static_cast<int>(lo) + 1;
  }

 private:
  static double pow_int(int k, double s) {
    double r = 1.0;
    // std::pow is fine; wrapped to keep a single call site.
    r = std::pow(static_cast<double>(k), s);
    return r;
  }

  std::vector<double> cdf_;
};

}  // namespace tufp
