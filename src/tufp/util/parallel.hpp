// OpenMP capability queries, usable from builds with and without it.
//
// The library degrades to (identical-output) serial loops when OpenMP is
// absent, but tools must be able to *report* that honestly: silently
// serializing a --threads request would misrepresent a benchmark run.
#pragma once

#if defined(TUFP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tufp {

inline bool openmp_available() {
#if defined(TUFP_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

// Threads a parallel region would use for the given request (0 = runtime
// default). Always 1 without OpenMP.
inline int effective_num_threads(int requested) {
#if defined(TUFP_HAVE_OPENMP)
  return requested > 0 ? requested : omp_get_max_threads();
#else
  (void)requested;
  return 1;
#endif
}

}  // namespace tufp
