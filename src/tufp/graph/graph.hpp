// Capacitated directed/undirected multigraph in CSR form.
//
// The graph is the substrate of the unsplittable flow problem (paper §1):
// edges carry positive capacities c_e; B = min_e c_e is the bound the
// paper's Omega(ln m) regime is phrased in. Undirected edges are stored as
// two arcs sharing one EdgeId, so flow/weight state is per logical edge —
// exactly the y_e / f_e indexing the paper's primal-dual machinery uses.
//
// Usage: construct with a vertex count, add_edge() repeatedly, finalize()
// once, then query. Finalization builds the CSR adjacency; mutating after
// finalize() or querying before it is a precondition violation.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace tufp {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

// A directed arc in the CSR adjacency. For undirected graphs each logical
// edge contributes two arcs with the same `edge` id.
struct Arc {
  VertexId to;
  EdgeId edge;
};

class Graph {
 public:
  static Graph directed(int num_vertices);
  static Graph undirected(int num_vertices);

  // Adds edge u->v (or u--v when undirected) with positive capacity.
  // Parallel edges and distinct capacities are allowed; self loops are not.
  EdgeId add_edge(VertexId u, VertexId v, double capacity);

  void finalize();
  bool finalized() const { return finalized_; }
  bool is_directed() const { return directed_; }

  int num_vertices() const { return num_vertices_; }
  // Logical edge count m (undirected edges counted once).
  int num_edges() const { return static_cast<int>(endpoints_.size()); }
  // Arc count (2m for undirected, m for directed).
  int num_arcs() const { return static_cast<int>(arcs_.size()); }

  std::span<const Arc> arcs_from(VertexId v) const;

  double capacity(EdgeId e) const;
  std::pair<VertexId, VertexId> endpoints(EdgeId e) const;

  // Given an edge incident to `from`, the vertex at the other end.
  // For directed graphs this requires from == tail. Precondition violation
  // if the edge is not traversable from `from`.
  VertexId traverse(VertexId from, EdgeId e) const;

  // B = min_e c_e (paper's normalization: the problem is "B-bounded").
  double min_capacity() const;
  double max_capacity() const;

  std::span<const double> capacities() const { return capacities_; }

 private:
  explicit Graph(int num_vertices, bool directed);

  void require_vertex(VertexId v) const;

  int num_vertices_ = 0;
  bool directed_ = true;
  bool finalized_ = false;

  std::vector<std::pair<VertexId, VertexId>> endpoints_;
  std::vector<double> capacities_;

  // CSR built by finalize().
  std::vector<std::int64_t> offsets_;
  std::vector<Arc> arcs_;
};

}  // namespace tufp
