// Path representation shared by all solvers.
//
// A Path is the ordered EdgeId sequence from source to target. For
// undirected graphs the traversal direction of each edge is inferred from
// the walk, so one representation serves both orientations.
#pragma once

#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"

namespace tufp {

using Path = std::vector<EdgeId>;

// Length of `path` under per-edge weights (the paper's |p| = sum_e y_e).
double path_length(const Path& path, std::span<const double> weights);

// True iff `path` is a walk from s to t using existing, directionally valid
// edges that visits no vertex twice (the paper's S_r contains simple paths
// only).
bool is_simple_path(const Graph& graph, const Path& path, VertexId s, VertexId t);

// Vertices visited by the walk starting at s (size = path.size() + 1).
// Precondition: path is traversable from s.
std::vector<VertexId> path_vertices(const Graph& graph, const Path& path, VertexId s);

// Minimum residual capacity along the path.
double path_bottleneck(const Path& path, std::span<const double> residual);

}  // namespace tufp
