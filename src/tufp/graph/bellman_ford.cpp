#include "tufp/graph/bellman_ford.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

// Relax every edge once: next[v] = min(cur[v], cur[u] + w(u,v)).
void relax_all(const Graph& graph, std::span<const double> weights,
               const std::vector<double>& cur, std::vector<double>& next) {
  next = cur;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [u, v] = graph.endpoints(e);
    const double w = weights[static_cast<std::size_t>(e)];
    TUFP_REQUIRE(w >= 0.0, "negative weights are not supported");
    const auto ui = static_cast<std::size_t>(u), vi = static_cast<std::size_t>(v);
    if (cur[ui] + w < next[vi]) next[vi] = cur[ui] + w;
    if (!graph.is_directed() && cur[vi] + w < next[ui]) next[ui] = cur[vi] + w;
  }
}

}  // namespace

std::vector<double> bellman_ford(const Graph& graph,
                                 std::span<const double> weights,
                                 VertexId source) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  TUFP_REQUIRE(weights.size() == static_cast<std::size_t>(graph.num_edges()),
               "weight vector size must equal edge count");
  std::vector<double> cur(static_cast<std::size_t>(graph.num_vertices()), kInf);
  cur[static_cast<std::size_t>(source)] = 0.0;
  std::vector<double> next;
  for (int round = 0; round + 1 < graph.num_vertices(); ++round) {
    relax_all(graph, weights, cur, next);
    if (next == cur) break;
    cur.swap(next);
  }
  return cur;
}

std::vector<std::vector<double>> hop_profile(const Graph& graph,
                                             std::span<const double> weights,
                                             VertexId source, int max_hops) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  TUFP_REQUIRE(max_hops >= 0, "max_hops must be non-negative");
  std::vector<std::vector<double>> profile;
  profile.reserve(static_cast<std::size_t>(max_hops) + 1);
  std::vector<double> row(static_cast<std::size_t>(graph.num_vertices()), kInf);
  row[static_cast<std::size_t>(source)] = 0.0;
  profile.push_back(row);
  for (int k = 1; k <= max_hops; ++k) {
    std::vector<double> next;
    relax_all(graph, weights, profile.back(), next);
    profile.push_back(std::move(next));
  }
  return profile;
}

Path hop_profile_path(const Graph& graph, std::span<const double> weights,
                      const std::vector<std::vector<double>>& profile,
                      VertexId source, VertexId target, int hops) {
  TUFP_REQUIRE(hops >= 0 && static_cast<std::size_t>(hops) < profile.size(),
               "hops outside profile");
  if (profile[static_cast<std::size_t>(hops)][static_cast<std::size_t>(target)] >=
      kInf) {
    return {};
  }
  Path path;
  VertexId v = target;
  int k = hops;
  while (!(v == source && k == 0)) {
    TUFP_CHECK(k > 0, "hop profile walk ran out of budget");
    const double dv = profile[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
    // Prefer staying (same distance with fewer hops) so the reconstructed
    // path is minimal in hops among equal-weight paths.
    if (profile[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(v)] == dv) {
      --k;
      continue;
    }
    bool stepped = false;
    for (EdgeId e = 0; e < graph.num_edges() && !stepped; ++e) {
      const auto [a, b] = graph.endpoints(e);
      const double w = weights[static_cast<std::size_t>(e)];
      const auto consider = [&](VertexId u) {
        const double du =
            profile[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(u)];
        if (du + w == dv) {
          path.push_back(e);
          v = u;
          --k;
          stepped = true;
        }
      };
      if (b == v) consider(a);
      if (!stepped && !graph.is_directed() && a == v) consider(b);
    }
    TUFP_CHECK(stepped, "hop profile walk found no predecessor");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace tufp
