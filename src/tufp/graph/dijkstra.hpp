// Single-pair shortest paths under per-edge weights.
//
// This is the inner loop of every algorithm in the paper: Bounded-UFP
// computes, each iteration, the shortest s_r -> t_r path for every
// remaining request under the dual weights y_e (Alg. 1 line 7). The engine
// owns its workspace and reuses it across queries with an epoch-versioned
// label array, so a query costs O(touched vertices) to set up instead of
// O(n). One engine per thread; the solvers keep a pool for the OpenMP
// parallel per-request loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/graph/path.hpp"

namespace tufp {

class ShortestPathEngine {
 public:
  explicit ShortestPathEngine(const Graph& graph);

  // Shortest path s->t under `weights` (indexed by EdgeId, all >= 0).
  // Returns +inf and leaves *path untouched when t is unreachable.
  // When `blocked` is non-empty, edges with blocked[e] != 0 are skipped
  // (used by capacity-guarded and residual-feasible searches).
  double shortest_path(std::span<const double> weights, VertexId source,
                       VertexId target, Path* path = nullptr,
                       std::span<const std::uint8_t> blocked = {});

  const Graph& graph() const { return *graph_; }

 private:
  struct HeapItem {
    double dist;
    VertexId vertex;
  };

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  bool touch(VertexId v);  // lazily reset labels for this query's epoch

  const Graph* graph_;
  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<VertexId> parent_vertex_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t current_epoch_ = 0;
  std::vector<HeapItem> heap_;  // 4-ary, lazy deletion
};

}  // namespace tufp
