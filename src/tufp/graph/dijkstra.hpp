// Single-source shortest paths under per-edge weights, behind one
// ShortestPathEngine interface with two interchangeable kernels.
//
// This is the inner loop of every algorithm in the paper: Bounded-UFP
// computes, each iteration, the shortest s_r -> t_r path for every
// remaining request under the dual weights y_e (Alg. 1 line 7). Two
// kernels implement the search (DESIGN.md §6):
//
//   * kHeap    — 4-ary binary heap with lazy deletion; works for any
//                non-negative weights. The general-purpose fallback.
//   * kBucket  — monotone bucket queue (Dial's algorithm) with bucket
//                width Δ = the smallest positive weight. Eligible when
//                every weight is strictly positive and the key range
//                max_w/Δ fits in kMaxBuckets buckets — which is exactly
//                the regime of the exponential length function y_e =
//                e^{εB f_e/c_e}/c_e before saturation spreads the
//                weights. O(1) push/pop, no comparisons.
//
// Both kernels realize the same *canonical* search semantics, so results
// are byte-identical regardless of kernel (and of any processing order):
//   1. every vertex v with dist(v) <= D is settled and relaxed, where D
//      is the largest target distance (instead of breaking at the first
//      target pop, which would make the relaxation set depend on the
//      queue's tie order);
//   2. the parent of v is the lexicographically smallest (u, e) among
//      positive-weight shortest predecessors (dist(u) + w_e == dist(v)).
//      Relaxation order cannot matter: min is commutative. Positive
//      weight keeps the parent forest acyclic; with zero weights present
//      only the heap kernel runs and falls back to first-discovery order.
// The reconstructed path is therefore the lexicographically minimal
// shortest path read as a predecessor sequence from the target — the
// deterministic tie-break the solvers and the sharded refresh rely on.
//
// The engine owns its workspace and reuses it across queries with an
// epoch-versioned label array, so a query costs O(touched vertices) to
// set up instead of O(n). One engine per thread; the solvers keep a pool
// for the OpenMP parallel per-source loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/graph/path.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

// Which queue discipline shortest_path uses. kAuto picks the bucket
// queue whenever a supplied WeightProfile proves it eligible, the heap
// otherwise (in particular always when no profile is supplied). kBucket
// means "bucket whenever eligible": it scans the weights itself when no
// profile is supplied, but still degrades to the heap on ineligible
// weights (zero/negative entries or a key range past kMaxBuckets),
// because the bucket layout cannot represent them — check
// last_used_kernel() when the distinction matters. kHeap always heaps.
enum class SpKernel { kAuto, kHeap, kBucket };

// Cheap summary of a weight vector that decides bucket-queue
// eligibility. Callers that mutate weights monotonically (Bounded-UFP
// only ever inflates y) can keep a profile current with include()
// instead of rescanning: a stale-but-smaller min_positive and a
// stale-but-larger max_weight are conservative (they can only veto the
// bucket kernel or widen its bucket count, never break correctness).
struct WeightProfile {
  // Defaults are the neutral elements of include(), so a profile may be
  // built by folding weights into a default-constructed instance; it
  // must end up describing every weight the query will see.
  double min_positive = kInf;  // smallest strictly positive weight
  double max_weight = 0.0;     // largest weight
  bool all_positive = true;    // no zero/negative entries

  static WeightProfile scan(std::span<const double> weights);

  // Folds one (possibly updated) weight into the profile.
  void include(double w);
};

class ShortestPathEngine {
 public:
  // Bucket-queue eligibility cap: ceil(max_weight / min_positive) + slack
  // circular buckets must fit. Beyond this the dial layout stops paying
  // for itself and the engine falls back to the heap.
  static constexpr std::int64_t kMaxBuckets = 4096;

  explicit ShortestPathEngine(const Graph& graph,
                              SpKernel kernel = SpKernel::kAuto);

  // Shortest path s->t under `weights` (indexed by EdgeId, all >= 0).
  // Returns +inf and leaves *path untouched when t is unreachable.
  // When `blocked` is non-empty, edges with blocked[e] != 0 are skipped
  // (used by capacity-guarded and residual-feasible searches).
  // `profile`, when given, enables the bucket kernel under kAuto.
  double shortest_path(std::span<const double> weights, VertexId source,
                       VertexId target, Path* path = nullptr,
                       std::span<const std::uint8_t> blocked = {},
                       const WeightProfile* profile = nullptr);

  // One slot of a multi-target tree query: `vertex` in, `length`/`path`
  // out. Unreachable targets end with length == kInf and *path untouched.
  struct TreeTarget {
    VertexId vertex = kInvalidVertex;
    double length = 0.0;  // out
    Path* path = nullptr;  // out, filled when non-null and reachable
  };

  // Shortest paths from `source` to every target in one search — the
  // per-source tree the sharded cache refresh is built on. Costs one
  // Dijkstra run bounded by the farthest target instead of one run per
  // target. Duplicate target vertices are allowed.
  void shortest_tree(std::span<const double> weights, VertexId source,
                     std::span<TreeTarget> targets,
                     std::span<const std::uint8_t> blocked = {},
                     const WeightProfile* profile = nullptr);

  void set_kernel(SpKernel kernel) { kernel_ = kernel; }
  SpKernel kernel() const { return kernel_; }

  // Settled-tree export, consumed by the cross-epoch source-tree cache
  // (graph/residual_csr.hpp). When enabled, each query records every
  // vertex it settles (exactly one non-stale pop per reached vertex, so
  // the list is duplicate-free); the label accessors below then expose
  // the canonical tree. Off by default: recording costs one push_back
  // per settled vertex and nothing else.
  void set_record_settled(bool on) { record_settled_ = on; }
  bool record_settled() const { return record_settled_; }

  // Vertices settled by the most recent query, in settle order (source
  // first). Valid until the next query. The bucket kernel drains its
  // last bucket fully and may settle a few vertices past the farthest
  // target; filter with settled_radius() for a kernel-invariant set.
  std::span<const VertexId> settled_vertices() const { return settled_; }

  // Largest finite target distance of the most recent query, or kInf
  // when any target was unreachable (the search then exhausted the
  // entire reachable set, identically under both kernels).
  double settled_radius() const { return settled_radius_; }

  // Labels of the most recent query, valid for settled vertices only.
  double settled_dist(VertexId v) const {
    return dist_[static_cast<std::size_t>(v)];
  }
  VertexId settled_parent_vertex(VertexId v) const {
    return parent_vertex_[static_cast<std::size_t>(v)];
  }
  EdgeId settled_parent_edge(VertexId v) const {
    return parent_edge_[static_cast<std::size_t>(v)];
  }

  // Kernel the most recent query actually ran (kAuto resolved).
  SpKernel last_used_kernel() const { return last_used_; }

  const Graph& graph() const { return *graph_; }

 private:
  struct HeapItem {
    double dist;
    VertexId vertex;
  };

  void run(std::span<const double> weights, VertexId source,
           std::span<TreeTarget> targets,
           std::span<const std::uint8_t> blocked,
           const WeightProfile* profile);
  void run_heap(std::span<const double> weights, VertexId source, int pending,
                std::span<const std::uint8_t> blocked);
  void run_bucket(std::span<const double> weights, VertexId source,
                  int pending, std::span<const std::uint8_t> blocked,
                  double delta, std::int64_t num_buckets);

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  bool touch(VertexId v);  // lazily reset labels for this query's epoch

  // Canonical relaxation (both kernels): strict improvement updates dist
  // and parent; an exact tie updates the parent only when the edge weight
  // is positive and (u, e) is lexicographically smaller. Returns whether
  // the vertex needs (re-)queueing.
  bool relax(VertexId u, double du, const Arc& arc, double w);

  const Graph* graph_;
  SpKernel kernel_;
  SpKernel last_used_ = SpKernel::kHeap;

  bool record_settled_ = false;
  std::vector<VertexId> settled_;
  double settled_radius_ = kInf;

  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<VertexId> parent_vertex_;
  std::vector<std::uint32_t> epoch_;
  std::vector<std::uint32_t> target_epoch_;  // target markers, same epochs
  std::uint32_t current_epoch_ = 0;

  std::vector<HeapItem> heap_;  // 4-ary, lazy deletion

  // Dial kernel state: circular buckets indexed by floor(dist/Δ) mod C,
  // live window provably spans < C buckets (DESIGN.md §6).
  std::vector<std::vector<HeapItem>> buckets_;
  std::vector<std::int32_t> dirty_slots_;
};

}  // namespace tufp
