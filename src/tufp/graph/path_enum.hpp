// Exhaustive simple-path enumeration.
//
// The exact LP/ILP baselines (Figure 1's program) are built over the full
// path sets S_r; this enumerator materializes them for small instances.
// Enumeration is bounded by max_paths/max_hops so runaway instances fail
// loudly (truncated=true) instead of exhausting memory.
#pragma once

#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/graph/path.hpp"

namespace tufp {

struct PathEnumResult {
  std::vector<Path> paths;
  bool truncated = false;  // hit max_paths before exhausting S_r
};

struct PathEnumOptions {
  std::size_t max_paths = 100000;
  int max_hops = -1;  // -1: up to n-1 (all simple paths)
};

PathEnumResult enumerate_simple_paths(const Graph& graph, VertexId source,
                                      VertexId target,
                                      const PathEnumOptions& options = {});

}  // namespace tufp
