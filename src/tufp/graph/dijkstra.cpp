#include "tufp/graph/dijkstra.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {
constexpr int kHeapArity = 4;
}

ShortestPathEngine::ShortestPathEngine(const Graph& graph) : graph_(&graph) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  dist_.assign(n, kInf);
  parent_edge_.assign(n, kInvalidEdge);
  parent_vertex_.assign(n, kInvalidVertex);
  epoch_.assign(n, 0);
}

bool ShortestPathEngine::touch(VertexId v) {
  auto& ep = epoch_[static_cast<std::size_t>(v)];
  if (ep == current_epoch_) return false;
  ep = current_epoch_;
  dist_[static_cast<std::size_t>(v)] = kInf;
  parent_edge_[static_cast<std::size_t>(v)] = kInvalidEdge;
  parent_vertex_[static_cast<std::size_t>(v)] = kInvalidVertex;
  return true;
}

void ShortestPathEngine::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (heap_[parent].dist <= heap_[i].dist) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

ShortestPathEngine::HeapItem ShortestPathEngine::heap_pop() {
  const HeapItem top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t first_child = i * kHeapArity + 1;
    const std::size_t last_child = std::min(first_child + kHeapArity, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      if (heap_[c].dist < heap_[best].dist) best = c;
    }
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

double ShortestPathEngine::shortest_path(std::span<const double> weights,
                                         VertexId source, VertexId target,
                                         Path* path,
                                         std::span<const std::uint8_t> blocked) {
  TUFP_REQUIRE(weights.size() == static_cast<std::size_t>(graph_->num_edges()),
               "weight vector size must equal edge count");
  TUFP_REQUIRE(blocked.empty() ||
                   blocked.size() == static_cast<std::size_t>(graph_->num_edges()),
               "blocked mask size must equal edge count");
  TUFP_REQUIRE(source >= 0 && source < graph_->num_vertices(), "bad source");
  TUFP_REQUIRE(target >= 0 && target < graph_->num_vertices(), "bad target");
  TUFP_REQUIRE(source != target, "source == target: S_r holds simple paths only");

  ++current_epoch_;
  if (current_epoch_ == 0) {
    // Epoch counter wrapped: hard-reset all labels once per 2^32 queries.
    std::fill(epoch_.begin(), epoch_.end(), 0);
    current_epoch_ = 1;
  }
  heap_.clear();

  touch(source);
  dist_[static_cast<std::size_t>(source)] = 0.0;
  heap_push({0.0, source});

  while (!heap_.empty()) {
    const HeapItem item = heap_pop();
    const auto u = static_cast<std::size_t>(item.vertex);
    if (item.dist > dist_[u]) continue;  // stale heap entry
    if (item.vertex == target) break;    // settled: done
    for (const Arc& arc : graph_->arcs_from(item.vertex)) {
      const auto e = static_cast<std::size_t>(arc.edge);
      if (!blocked.empty() && blocked[e]) continue;
      const double w = weights[e];
      TUFP_REQUIRE(w >= 0.0, "Dijkstra requires non-negative weights");
      const double cand = item.dist + w;
      touch(arc.to);
      auto& dv = dist_[static_cast<std::size_t>(arc.to)];
      if (cand < dv) {
        dv = cand;
        parent_edge_[static_cast<std::size_t>(arc.to)] = arc.edge;
        parent_vertex_[static_cast<std::size_t>(arc.to)] = item.vertex;
        heap_push({cand, arc.to});
      }
    }
  }

  touch(target);
  const double result = dist_[static_cast<std::size_t>(target)];
  if (path != nullptr && result < kInf) {
    path->clear();
    for (VertexId v = target; v != source;
         v = parent_vertex_[static_cast<std::size_t>(v)]) {
      path->push_back(parent_edge_[static_cast<std::size_t>(v)]);
    }
    std::reverse(path->begin(), path->end());
  }
  return result;
}

}  // namespace tufp
