#include "tufp/graph/dijkstra.hpp"

#include <algorithm>
#include <cmath>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {
constexpr int kHeapArity = 4;
}

WeightProfile WeightProfile::scan(std::span<const double> weights) {
  WeightProfile p;  // defaults are include()'s neutral elements
  for (const double w : weights) {
    if (!(w > 0.0)) {
      p.all_positive = false;
      continue;
    }
    p.min_positive = std::min(p.min_positive, w);
    p.max_weight = std::max(p.max_weight, w);
  }
  return p;
}

void WeightProfile::include(double w) {
  if (!(w > 0.0)) {
    all_positive = false;
    return;
  }
  min_positive = std::min(min_positive, w);
  max_weight = std::max(max_weight, w);
}

ShortestPathEngine::ShortestPathEngine(const Graph& graph, SpKernel kernel)
    : graph_(&graph), kernel_(kernel) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  dist_.assign(n, kInf);
  parent_edge_.assign(n, kInvalidEdge);
  parent_vertex_.assign(n, kInvalidVertex);
  epoch_.assign(n, 0);
  target_epoch_.assign(n, 0);
}

bool ShortestPathEngine::touch(VertexId v) {
  auto& ep = epoch_[static_cast<std::size_t>(v)];
  if (ep == current_epoch_) return false;
  ep = current_epoch_;
  dist_[static_cast<std::size_t>(v)] = kInf;
  parent_edge_[static_cast<std::size_t>(v)] = kInvalidEdge;
  parent_vertex_[static_cast<std::size_t>(v)] = kInvalidVertex;
  return true;
}

bool ShortestPathEngine::relax(VertexId u, double du, const Arc& arc,
                               double w) {
  const double cand = du + w;
  const auto to = static_cast<std::size_t>(arc.to);
  touch(arc.to);
  double& dv = dist_[to];
  if (cand < dv) {
    dv = cand;
    parent_vertex_[to] = u;
    parent_edge_[to] = arc.edge;
    return true;
  }
  if (cand == dv && cand < kInf && w > 0.0) {
    // Canonical tie-break: the lexicographically smallest (u, e) among
    // positive-weight shortest predecessors wins, independent of the
    // order relaxations arrive in. Positive weight keeps the parent
    // forest acyclic (a tie cycle would need total weight zero).
    if (u < parent_vertex_[to] ||
        (u == parent_vertex_[to] && arc.edge < parent_edge_[to])) {
      parent_vertex_[to] = u;
      parent_edge_[to] = arc.edge;
    }
  }
  return false;
}

void ShortestPathEngine::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (heap_[parent].dist <= heap_[i].dist) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

ShortestPathEngine::HeapItem ShortestPathEngine::heap_pop() {
  const HeapItem top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t first_child = i * kHeapArity + 1;
    const std::size_t last_child = std::min(first_child + kHeapArity, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      if (heap_[c].dist < heap_[best].dist) best = c;
    }
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void ShortestPathEngine::run_heap(std::span<const double> weights,
                                  VertexId source, int pending,
                                  std::span<const std::uint8_t> blocked) {
  heap_.clear();
  heap_push({0.0, source});
  // Once every target is settled this becomes D = the largest target
  // distance; the loop then keeps draining equal keys (canonical settled
  // set {v : dist(v) <= D}) and stops at the first strictly larger one.
  double stop_dist = kInf;
  while (!heap_.empty()) {
    const HeapItem item = heap_pop();
    if (item.dist > stop_dist) break;
    const auto u = static_cast<std::size_t>(item.vertex);
    if (item.dist > dist_[u]) continue;  // stale heap entry
    if (record_settled_) settled_.push_back(item.vertex);
    if (target_epoch_[u] == current_epoch_) {
      target_epoch_[u] = current_epoch_ - 1;  // settled
      if (--pending == 0) stop_dist = item.dist;
    }
    for (const Arc& arc : graph_->arcs_from(item.vertex)) {
      const auto e = static_cast<std::size_t>(arc.edge);
      if (!blocked.empty() && blocked[e]) continue;
      const double w = weights[e];
      TUFP_REQUIRE(w >= 0.0, "Dijkstra requires non-negative weights");
      if (relax(item.vertex, item.dist, arc, w)) {
        heap_push({dist_[static_cast<std::size_t>(arc.to)], arc.to});
      }
    }
  }
}

void ShortestPathEngine::run_bucket(std::span<const double> weights,
                                    VertexId source, int pending,
                                    std::span<const std::uint8_t> blocked,
                                    double delta, std::int64_t num_buckets) {
  const double inv_delta = 1.0 / delta;
  const std::int64_t C = num_buckets;
  if (buckets_.size() < static_cast<std::size_t>(C)) {
    buckets_.resize(static_cast<std::size_t>(C));
  }
  dirty_slots_.clear();

  std::int64_t cur = 0;  // absolute bucket id currently draining
  std::size_t live = 0;

  const auto push_item = [&](double key, VertexId v) {
    const auto id = static_cast<std::int64_t>(key * inv_delta);
    // All live keys sit in [current key, current key + max_weight], so
    // the id lands inside the circular window of C slots; the check
    // guards the floating-point slack argument.
    TUFP_CHECK(id >= cur && id < cur + C, "bucket window overflow");
    auto& bucket = buckets_[static_cast<std::size_t>(id % C)];
    if (bucket.empty()) {
      dirty_slots_.push_back(static_cast<std::int32_t>(id % C));
    }
    bucket.push_back({key, v});
    ++live;
  };

  push_item(0.0, source);
  while (live > 0) {
    auto& bucket = buckets_[static_cast<std::size_t>(cur % C)];
    while (!bucket.empty()) {
      const HeapItem item = bucket.back();
      bucket.pop_back();
      --live;
      const auto u = static_cast<std::size_t>(item.vertex);
      if (item.dist > dist_[u]) continue;  // stale entry
      if (record_settled_) settled_.push_back(item.vertex);
      if (target_epoch_[u] == current_epoch_) {
        target_epoch_[u] = current_epoch_ - 1;  // settled
        --pending;
      }
      for (const Arc& arc : graph_->arcs_from(item.vertex)) {
        const auto e = static_cast<std::size_t>(arc.edge);
        if (!blocked.empty() && blocked[e]) continue;
        const double w = weights[e];
        TUFP_REQUIRE(w >= 0.0, "Dijkstra requires non-negative weights");
        if (relax(item.vertex, item.dist, arc, w)) {
          push_item(dist_[static_cast<std::size_t>(arc.to)], arc.to);
        }
      }
    }
    // The bucket holding the last target must drain fully — its keys are
    // all <= the bucket's upper edge, covering the canonical settled set
    // — but nothing later can matter (later keys cannot improve, nor
    // tie-update, anything at distance <= D).
    if (pending == 0) break;
    if (live == 0) break;  // remaining targets unreachable
    std::int64_t steps = 0;
    do {
      ++cur;
      ++steps;
      TUFP_CHECK(steps <= C, "no live bucket inside the circular window");
    } while (buckets_[static_cast<std::size_t>(cur % C)].empty());
  }

  for (const std::int32_t slot : dirty_slots_) {
    buckets_[static_cast<std::size_t>(slot)].clear();
  }
}

void ShortestPathEngine::run(std::span<const double> weights, VertexId source,
                             std::span<TreeTarget> targets,
                             std::span<const std::uint8_t> blocked,
                             const WeightProfile* profile) {
  TUFP_REQUIRE(weights.size() == static_cast<std::size_t>(graph_->num_edges()),
               "weight vector size must equal edge count");
  TUFP_REQUIRE(blocked.empty() ||
                   blocked.size() == static_cast<std::size_t>(graph_->num_edges()),
               "blocked mask size must equal edge count");
  TUFP_REQUIRE(source >= 0 && source < graph_->num_vertices(), "bad source");
  if (targets.empty()) return;  // nothing to settle toward

  ++current_epoch_;
  if (current_epoch_ == 0) {
    // Epoch counter wrapped: hard-reset all labels once per 2^32 queries.
    std::fill(epoch_.begin(), epoch_.end(), 0);
    std::fill(target_epoch_.begin(), target_epoch_.end(), 0);
    current_epoch_ = 1;
  }

  int pending = 0;
  for (const TreeTarget& t : targets) {
    TUFP_REQUIRE(t.vertex >= 0 && t.vertex < graph_->num_vertices(),
                 "bad target");
    TUFP_REQUIRE(t.vertex != source,
                 "source == target: S_r holds simple paths only");
    auto& mark = target_epoch_[static_cast<std::size_t>(t.vertex)];
    if (mark != current_epoch_) {
      mark = current_epoch_;
      ++pending;
    }
  }

  touch(source);
  dist_[static_cast<std::size_t>(source)] = 0.0;

  // Resolve the kernel: the bucket queue needs a profile proving every
  // weight positive with a key range that fits the bucket cap.
  WeightProfile scanned;
  if (profile == nullptr && kernel_ == SpKernel::kBucket) {
    scanned = WeightProfile::scan(weights);
    profile = &scanned;
  }
  SpKernel use = SpKernel::kHeap;
  double delta = 0.0;
  std::int64_t num_buckets = 0;
  if (kernel_ != SpKernel::kHeap && profile != nullptr &&
      profile->all_positive && profile->min_positive > 0.0 &&
      profile->min_positive < kInf && profile->max_weight < kInf) {
    delta = profile->min_positive;
    // Compare the key range in double before any integer cast: the dual
    // weights can spread to e^700-ish ratios, far past int64.
    const double ratio = profile->max_weight / delta;
    if (ratio <= static_cast<double>(kMaxBuckets - 4)) {
      num_buckets = static_cast<std::int64_t>(ratio) + 4;
      use = SpKernel::kBucket;
    }
  }
  last_used_ = use;

  if (record_settled_) {
    settled_.clear();
    settled_radius_ = kInf;
  }

  if (use == SpKernel::kBucket) {
    run_bucket(weights, source, pending, blocked, delta, num_buckets);
  } else {
    run_heap(weights, source, pending, blocked);
  }

  double radius = 0.0;
  for (TreeTarget& t : targets) {
    const auto v = static_cast<std::size_t>(t.vertex);
    if (epoch_[v] != current_epoch_ || dist_[v] >= kInf) {
      t.length = kInf;
      radius = kInf;
      continue;  // unreachable: path stays untouched
    }
    t.length = dist_[v];
    radius = std::max(radius, dist_[v]);
    if (t.path == nullptr) continue;
    t.path->clear();
    int steps = 0;
    for (VertexId walk = t.vertex; walk != source;
         walk = parent_vertex_[static_cast<std::size_t>(walk)]) {
      t.path->push_back(parent_edge_[static_cast<std::size_t>(walk)]);
      TUFP_CHECK(++steps <= graph_->num_vertices(),
                 "parent chain cycle in shortest-path extraction");
    }
    std::reverse(t.path->begin(), t.path->end());
  }
  if (record_settled_) settled_radius_ = radius;
}

double ShortestPathEngine::shortest_path(std::span<const double> weights,
                                         VertexId source, VertexId target,
                                         Path* path,
                                         std::span<const std::uint8_t> blocked,
                                         const WeightProfile* profile) {
  TreeTarget t;
  t.vertex = target;
  t.path = path;  // run() touches it only when the target is reachable
  run(weights, source, {&t, 1}, blocked, profile);
  return t.length;
}

void ShortestPathEngine::shortest_tree(std::span<const double> weights,
                                       VertexId source,
                                       std::span<TreeTarget> targets,
                                       std::span<const std::uint8_t> blocked,
                                       const WeightProfile* profile) {
  run(weights, source, targets, blocked, profile);
}

}  // namespace tufp
