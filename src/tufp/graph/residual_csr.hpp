// Persistent residual graph: the serving hot path without per-epoch
// snapshot recompiles.
//
// The legacy epoch cycle (engine/snapshot.hpp) compiles a fresh value-copy
// subgraph — new CSR, new edge ids, new solver caches — every epoch, an
// O(n + m) rebuild that dominates steady-state serving and caps the engine
// at toy scale (ROADMAP's top open item). This subsystem keeps ONE
// struct-of-arrays edge store per world, built once over the base graph's
// CSR, and updates it in place:
//
//   residual_[e]  live residual capacity, decremented by admissions
//                 (clamped at 0, the engine's commit rule) and restored by
//                 timer-wheel reclaims writing through mutable_residual();
//   stamp_[e]     the epoch-clock value of edge e's last change — admits
//                 AND reclaims both stamp (the direction-agnostic stamp
//                 invariant of DESIGN.md §10/§12), so "stamp unchanged"
//                 certifies "weight and blocked status unchanged";
//   blocked_[e]   per-epoch activity mask (residual < min_usable floor),
//                 recomputed by open_epoch() — the moral equivalent of the
//                 snapshot's edge filter, as a mask instead of a rebuild.
//
// Solvers access the store through the narrow ResidualView interface:
// read residuals/stamps/blocked, commit admissions atomically; no copies,
// no edge-id translation (base ids are solver ids). Byte-identity with
// the legacy snapshot path holds because the compiled snapshot's arc
// lists are subsequences of the base arc lists in the same order, so the
// canonical lexicographic tie-breaks (graph/dijkstra.hpp) coincide — the
// `residual-differential` sim oracle enforces this byte-for-byte.
//
// On top sits SourceTreeCache, the cross-epoch half of sp_cache: settled
// shortest-path trees keyed by source vertex survive epoch boundaries and
// are revalidated against base-edge stamps (the §12 argument: admissions
// only increase dual weights, so an unstamped stored path is still the
// canonical shortest path; any weight *decrease* — a reclaim — bumps
// last_decrease()). Reclaims are cache-cooperative: instead of dropping
// every tree, revalidate_after_reclaim() intersects each tree's settled
// set with the reclaimed edges' endpoints and keeps the trees the reclaim
// provably cannot touch (the §12 per-tree survival criterion). Tree
// records live in a BumpArena (util/arena.hpp) and are evicted by
// generation reset, never freed piecemeal.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/graph.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/arena.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

class ResidualGraph;

// Narrow hot-path interface the solvers and the engine program against.
// A view is a non-owning handle onto one ResidualGraph; copying it is
// free and does not copy state. Reads are epoch-consistent between
// open_epoch() calls; commit_admission() applies a whole path's
// decrement + stamping as one unit (single-writer discipline: the epoch
// engine is the only committer, solvers only read).
class ResidualView {
 public:
  const Graph& base() const;
  const std::shared_ptr<const Graph>& base_shared() const;

  // Epoch-start residuals: the capacities the current epoch's solve is
  // priced against (frozen by open_epoch, unaffected by commits).
  std::span<const double> capacities() const;
  // Live residuals, updated by commits and reclaims.
  std::span<const double> residual() const;
  std::span<const std::uint8_t> blocked() const;
  std::span<const std::int64_t> stamps() const;
  int num_active() const;
  // B = min residual over active edges; kInf when no edge is active.
  double bound_B() const;
  std::int64_t clock() const;
  std::int64_t last_decrease() const;

  void commit_admission(std::span<const EdgeId> path, double demand) const;

  // Materializes a UfpInstance over the base graph for offline consumers
  // (lab baselines, exact solvers). Requires every edge active — the
  // blocked mask cannot be expressed in an instance.
  UfpInstance make_instance(std::span<const Request> requests) const;

  // The owning store (warm-start wiring in the solver internals).
  const ResidualGraph& owner() const { return *rg_; }

 private:
  friend class ResidualGraph;
  explicit ResidualView(ResidualGraph* rg) : rg_(rg) {}

  ResidualGraph* rg_;
};

// Shard-local window onto a ResidualGraph: the read interface a region
// shard (shard/partition.hpp) gets over the slice of the edge space it
// owns. A window is a sub-span view — no copy, no edge-id translation
// (window offsets are base ids minus begin) — and is how the sharded
// admission layer (engine/sharded_engine.hpp) audits its own replicated
// per-shard residual store against the global one: per-edge `==`, not a
// tolerance, since both sides apply bitwise-identical update sequences.
class ResidualWindow {
 public:
  EdgeId begin_edge() const { return begin_; }
  EdgeId end_edge() const { return end_; }
  int size() const { return static_cast<int>(end_ - begin_); }
  bool contains(EdgeId e) const { return e >= begin_ && e < end_; }

  // Live residual / base capacity of base edge `e` (must be in-window).
  double residual(EdgeId e) const;
  double capacity(EdgeId e) const;
  std::span<const double> residual_span() const;

 private:
  friend class ResidualGraph;
  ResidualWindow(const ResidualGraph* rg, EdgeId begin, EdgeId end)
      : rg_(rg), begin_(begin), end_(end) {}

  const ResidualGraph* rg_;
  EdgeId begin_;
  EdgeId end_;
};

// The persistent per-world edge store. Owns the residual/stamp/blocked
// arrays for the lifetime of a world; the engine opens an epoch, solves
// against view(), commits winners, and lets the lease ledger write
// reclaims back through mutable_residual() + note_reclaimed().
class ResidualGraph {
 public:
  // `min_usable_capacity` is the activity floor: edges with residual
  // below it are blocked for the epoch (they cannot fit any normalized
  // demand d <= 1 <= floor). Opens the first epoch immediately.
  explicit ResidualGraph(std::shared_ptr<const Graph> base,
                         double min_usable_capacity = 1.0);

  const Graph& base() const { return *base_; }
  const std::shared_ptr<const Graph>& base_shared() const { return base_; }

  // Rescans the activity mask against the floor and freezes epoch-start
  // capacities. O(m) with no allocation — the whole per-epoch cost that
  // replaces the snapshot recompile. Clean-epoch fast path: when the
  // stamp clock has not moved since the previous open (no admission, no
  // reclaim), every derived field is provably unchanged and the call is
  // O(1). Sound because both mutation paths (commit_admission,
  // note_reclaimed) tick the clock — the mutable_residual() contract
  // requires writers to follow up with note_reclaimed().
  void open_epoch();

  // Atomically applies one admitted path: residual[e] = max(0, r - d)
  // (the engine's clamp rule) and stamps every path edge at a fresh
  // clock tick.
  void commit_admission(std::span<const EdgeId> path, double demand);

  // Records that `edges` changed by a reclaim (or any residual
  // *increase*): stamps them at a fresh tick and bumps last_decrease(),
  // since a residual increase is a dual-weight decrease — the one
  // direction a stamped-path check cannot certify against (§12). Also
  // closes the mutable_residual() dirty window — even for an empty span,
  // which is the idiom for "the writer is done and touched nothing".
  void note_reclaimed(std::span<const EdgeId> edges);

  // Raw residual array for the lease ledger's reclaim write-back. Any
  // writer other than commit_admission must follow up with
  // note_reclaimed() on the touched edges (an empty span when none were).
  // The contract is enforced, not advisory: taking the span opens a
  // dirty window, and open_epoch() refuses to start a solve while it is
  // still open — a driver that forgot the stamp would otherwise serve
  // stale negative fit verdicts (the admit → expire → re-admit
  // starvation of DESIGN.md §10).
  std::span<double> mutable_residual() {
    reclaim_window_open_ = true;
    return residual_;
  }

  std::span<const double> residual() const { return residual_; }
  std::span<const double> epoch_capacities() const { return epoch_capacity_; }
  std::span<const std::uint8_t> blocked() const { return blocked_; }
  std::span<const std::int64_t> stamps() const { return stamp_; }
  int num_active() const { return num_active_; }
  int num_saturated() const { return base_->num_edges() - num_active_; }
  double min_residual() const { return min_residual_; }
  double min_usable_capacity() const { return floor_; }
  std::int64_t clock() const { return clock_; }
  std::int64_t last_decrease() const { return last_decrease_; }

  // Restores base capacities and re-opens a fresh epoch. Cross-epoch
  // tree caches over this graph must be cleared alongside (the clock
  // restarts).
  void reset();

  ResidualView view() { return ResidualView(this); }

  // Shard-local read window over [begin, end) of the base edge space.
  // Requires 0 <= begin <= end <= num_edges.
  ResidualWindow window(EdgeId begin, EdgeId end) const;

 private:
  std::shared_ptr<const Graph> base_;
  double floor_;

  std::vector<double> residual_;
  std::vector<double> epoch_capacity_;
  std::vector<std::uint8_t> blocked_;
  std::vector<std::int64_t> stamp_;
  std::int64_t clock_ = 0;
  std::int64_t last_decrease_ = 0;
  // Clock value at the last full open_epoch() rescan; -1 forces a rescan
  // (initial state, and reset() re-arms it because the clock restarts).
  std::int64_t opened_at_clock_ = -1;
  int num_active_ = 0;
  double min_residual_ = kInf;
  // Dirty window of the mutable_residual() contract: opened by handing
  // out the raw span, closed by note_reclaimed(). open_epoch() checks it.
  bool reclaim_window_open_ = false;
};

inline double ResidualWindow::residual(EdgeId e) const {
  return rg_->residual()[static_cast<std::size_t>(e)];
}
inline double ResidualWindow::capacity(EdgeId e) const {
  return rg_->base().capacities()[static_cast<std::size_t>(e)];
}
inline std::span<const double> ResidualWindow::residual_span() const {
  return rg_->residual().subspan(static_cast<std::size_t>(begin_),
                                 static_cast<std::size_t>(end_ - begin_));
}

// Cross-epoch settled-tree cache: the per-source shortest-path trees the
// sharded sp_cache refresh computes at each epoch's first refresh, kept
// across epoch boundaries and revalidated by base-edge stamps.
//
// Validity argument (DESIGN.md §12): a stored tree was computed under the
// epoch-start weights y_e = 1/residual_e at clock C. Serving target t
// from it is sound when (a) last_decrease() <= max(C, validated_clock) —
// no weight the tree can see has decreased since — and (b) every edge on
// the stored s->t path has stamp <= C. Then the stored path's edge
// weights are bitwise unchanged, every alternative path's length only
// grew, and the canonical tie sets can only have shrunk while still
// containing the stored parents — so a fresh search would reproduce the
// stored path, lengths and tie-breaks bitwise identical. An absent
// target in a radius-exhausted tree (radius == kInf) certifies
// unreachability under (a) alone, because unblocking an edge requires a
// residual increase.
//
// Reclaim survival (§12): a reclaim decreases weights only on its own
// edges. revalidate_after_reclaim() keeps a tree whose settled set is
// disjoint from the reclaimed edges' usable endpoints (tails for
// directed graphs, both endpoints for undirected — the two arcs share
// one EdgeId): any path from the tree's source that uses a reclaimed
// edge must first leave the settled set, and its prefix — over
// non-decreased edges — is already strictly longer than every stored
// distance, so neither stored paths nor stored unreachability verdicts
// can change. Survivors get validated_clock bumped to the post-reclaim
// clock so check (a) keeps passing.
//
// Storage: one record block per tree in a BumpArena, vertices sorted by
// id for binary-search lookup. Eviction is wholesale — when the tree
// count or arena high-water crosses its limit, enforce_limits() resets
// the arena and bumps its generation (the arena generation-reset rule);
// there is no per-tree free path. store() itself NEVER evicts: it runs
// on OpenMP refresh workers, and an eviction there would make the
// surviving tree set depend on thread schedule. enforce_limits() must be
// called from a serial point (sp_cache does, at each warm epoch start),
// which keeps the tree set — and the reclaim-survival counters over it —
// deterministic for every thread count.
//
// Thread contract: store() is internally locked and safe from the OpenMP
// refresh workers; lookup() is locked too, but the returned pointer is
// only stable until the next store() — callers consume it in the serial
// classification pass before any store of the same refresh.
// revalidate_after_reclaim() and enforce_limits() lock too, but callers
// invoke them only from serial points (between solves / at epoch start).
class SourceTreeCache {
 public:
  struct Limits {
    int max_trees = 4096;
    std::size_t max_bytes = std::size_t{96} << 20;
  };

  struct Tree {
    VertexId source = kInvalidVertex;
    std::int64_t computed_clock = 0;
    // Latest clock at which the tree was proven untouched by every
    // weight decrease so far (== computed_clock until a reclaim
    // revalidation keeps it). The serve condition checks
    // last_decrease() <= max(computed_clock, validated_clock).
    std::int64_t validated_clock = 0;
    double radius = 0.0;  // kInf when the tree exhausted the reachable set
    std::span<const VertexId> vertices;  // sorted ascending
    std::span<const double> dist;
    std::span<const VertexId> parent_vertex;
    std::span<const EdgeId> parent_edge;

    // Index of `v` in the sorted record block, -1 when absent.
    int index_of(VertexId v) const;
  };

  // Outcome of one reclaim revalidation pass, in trees.
  struct ReclaimRevalidation {
    std::int64_t kept = 0;
    std::int64_t dropped = 0;
  };

  SourceTreeCache();
  explicit SourceTreeCache(Limits limits);

  // Tree stored for `source`, or nullptr. Pointer stable until the next
  // store()/clear()/revalidate_after_reclaim()/enforce_limits().
  const Tree* lookup(VertexId source) const;

  // Snapshots the engine's most recent query (set_record_settled must
  // have been on) as the tree for `source`, replacing any previous one.
  // Vertices past the query radius are dropped so the stored set is
  // kernel-invariant. Thread-safe; never evicts (see header comment).
  void store(VertexId source, const ShortestPathEngine& engine,
             std::int64_t computed_clock);

  // Per-tree reclaim revalidation: drops every tree whose settled set
  // meets a reclaimed edge's usable endpoints and bumps the survivors'
  // validated_clock to `clock_after` (the residual graph's clock after
  // the reclaim stamps). Serial point only.
  ReclaimRevalidation revalidate_after_reclaim(
      const Graph& base, std::span<const EdgeId> reclaimed,
      std::int64_t clock_after);

  // Generation-reset eviction when the limits are crossed; call from a
  // serial point (the limits are soft within an epoch — store() defers
  // to this).
  void enforce_limits();

  // Drops every tree: arena reset + generation bump.
  void clear();

  std::int64_t generation() const;
  std::int64_t stores() const;
  std::int64_t evictions() const;
  std::size_t num_trees() const;

 private:
  void clear_locked();

  Limits limits_;
  mutable std::mutex mu_;
  BumpArena arena_;
  std::vector<Tree> trees_;
  std::unordered_map<VertexId, std::size_t> by_source_;
  std::vector<VertexId> scratch_;  // store()'s sort buffer, mutex-guarded
  std::int64_t generation_ = 0;
  std::int64_t stores_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace tufp
