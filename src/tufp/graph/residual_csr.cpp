#include "tufp/graph/residual_csr.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"

namespace tufp {

const Graph& ResidualView::base() const { return rg_->base(); }

const std::shared_ptr<const Graph>& ResidualView::base_shared() const {
  return rg_->base_shared();
}

std::span<const double> ResidualView::capacities() const {
  return rg_->epoch_capacities();
}

std::span<const double> ResidualView::residual() const {
  return rg_->residual();
}

std::span<const std::uint8_t> ResidualView::blocked() const {
  return rg_->blocked();
}

std::span<const std::int64_t> ResidualView::stamps() const {
  return rg_->stamps();
}

int ResidualView::num_active() const { return rg_->num_active(); }

double ResidualView::bound_B() const { return rg_->min_residual(); }

std::int64_t ResidualView::clock() const { return rg_->clock(); }

std::int64_t ResidualView::last_decrease() const {
  return rg_->last_decrease();
}

void ResidualView::commit_admission(std::span<const EdgeId> path,
                                    double demand) const {
  rg_->commit_admission(path, demand);
}

UfpInstance ResidualView::make_instance(
    std::span<const Request> requests) const {
  TUFP_REQUIRE(rg_->num_active() == rg_->base().num_edges(),
               "make_instance requires every edge active: a UfpInstance "
               "cannot express the blocked mask");
  return UfpInstance(rg_->base_shared(),
                     std::vector<Request>(requests.begin(), requests.end()));
}

ResidualGraph::ResidualGraph(std::shared_ptr<const Graph> base,
                             double min_usable_capacity)
    : base_(std::move(base)), floor_(min_usable_capacity) {
  TUFP_REQUIRE(base_ != nullptr, "residual graph needs a base graph");
  TUFP_REQUIRE(base_->finalized(), "base graph must be finalized");
  TUFP_REQUIRE(floor_ > 0.0, "min usable capacity must be positive");
  const auto m = static_cast<std::size_t>(base_->num_edges());
  residual_.assign(base_->capacities().begin(), base_->capacities().end());
  epoch_capacity_.assign(m, 0.0);
  blocked_.assign(m, 0);
  stamp_.assign(m, 0);
  open_epoch();
}

void ResidualGraph::open_epoch() {
  // The mutable_residual() contract (DESIGN.md §10): a solve must never
  // start while reclaimed-but-unstamped writes are pending, or cached
  // fit verdicts silently outlive the capacity change they were judged
  // under. The check is cheap enough to keep in every build.
  TUFP_CHECK(!reclaim_window_open_,
             "open_epoch() while a mutable_residual() write-back is pending: "
             "the writer must call note_reclaimed() on the touched edges "
             "(an empty span when none were) before the next solve");
  // Clean epoch: no stamp tick since the last rescan means no residual
  // moved, so the mask, frozen capacities, count and min are all exact.
  if (opened_at_clock_ == clock_) return;
  const auto m = static_cast<std::size_t>(base_->num_edges());
  num_active_ = 0;
  min_residual_ = kInf;
  for (std::size_t e = 0; e < m; ++e) {
    const double r = residual_[e];
    epoch_capacity_[e] = r;
    if (r >= floor_) {
      blocked_[e] = 0;
      ++num_active_;
      min_residual_ = std::min(min_residual_, r);
    } else {
      blocked_[e] = 1;
    }
  }
  opened_at_clock_ = clock_;
}

void ResidualGraph::commit_admission(std::span<const EdgeId> path,
                                     double demand) {
  TUFP_REQUIRE(demand > 0.0, "admitted demand must be positive");
  ++clock_;
  for (const EdgeId e : path) {
    const auto idx = static_cast<std::size_t>(e);
    TUFP_REQUIRE(idx < residual_.size(), "path edge out of range");
    residual_[idx] = std::max(0.0, residual_[idx] - demand);
    stamp_[idx] = clock_;
  }
}

void ResidualGraph::note_reclaimed(std::span<const EdgeId> edges) {
  // Closing the dirty window happens even for an empty span — that is
  // how a writer that drained nothing reports "done, touched nothing".
  reclaim_window_open_ = false;
  if (edges.empty()) return;
  ++clock_;
  for (const EdgeId e : edges) {
    const auto idx = static_cast<std::size_t>(e);
    TUFP_REQUIRE(idx < residual_.size(), "reclaimed edge out of range");
    stamp_[idx] = clock_;
  }
  last_decrease_ = clock_;
}

void ResidualGraph::reset() {
  std::copy(base_->capacities().begin(), base_->capacities().end(),
            residual_.begin());
  std::fill(stamp_.begin(), stamp_.end(), 0);
  clock_ = 0;
  last_decrease_ = 0;
  reclaim_window_open_ = false;
  opened_at_clock_ = -1;  // the clock restarted; the fast path must not fire
  open_epoch();
}

int SourceTreeCache::Tree::index_of(VertexId v) const {
  const auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return -1;
  return static_cast<int>(it - vertices.begin());
}

SourceTreeCache::SourceTreeCache() : SourceTreeCache(Limits()) {}

SourceTreeCache::SourceTreeCache(Limits limits) : limits_(limits) {
  TUFP_REQUIRE(limits_.max_trees > 0, "tree cache needs room for a tree");
}

const SourceTreeCache::Tree* SourceTreeCache::lookup(VertexId source) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_source_.find(source);
  if (it == by_source_.end()) return nullptr;
  return &trees_[it->second];
}

void SourceTreeCache::store(VertexId source, const ShortestPathEngine& engine,
                            std::int64_t computed_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  const double radius = engine.settled_radius();
  // The bucket kernel drains its final bucket past the last target;
  // filtering at the radius keeps the stored set kernel-invariant.
  scratch_.clear();
  for (const VertexId v : engine.settled_vertices()) {
    if (engine.settled_dist(v) <= radius) scratch_.push_back(v);
  }
  std::sort(scratch_.begin(), scratch_.end());

  // No eviction here: store() runs on OpenMP refresh workers, and an
  // eviction would make the surviving tree set a function of the thread
  // schedule. The limits are enforced at the serial enforce_limits()
  // point instead (sp_cache calls it at every warm epoch start), so the
  // caps are soft within one refresh but the tree set stays
  // deterministic for every thread count.
  const std::size_t k = scratch_.size();
  auto vertices = arena_.allocate<VertexId>(k);
  auto dist = arena_.allocate<double>(k);
  auto parent_vertex = arena_.allocate<VertexId>(k);
  auto parent_edge = arena_.allocate<EdgeId>(k);
  for (std::size_t i = 0; i < k; ++i) {
    const VertexId v = scratch_[i];
    vertices[i] = v;
    dist[i] = engine.settled_dist(v);
    parent_vertex[i] = engine.settled_parent_vertex(v);
    parent_edge[i] = engine.settled_parent_edge(v);
  }

  Tree tree;
  tree.source = source;
  tree.computed_clock = computed_clock;
  tree.validated_clock = computed_clock;
  tree.radius = radius;
  tree.vertices = vertices;
  tree.dist = dist;
  tree.parent_vertex = parent_vertex;
  tree.parent_edge = parent_edge;

  const auto it = by_source_.find(source);
  if (it != by_source_.end()) {
    // Replace in place; the old record block stays allocated in the
    // arena until the next generation reset (bounded by max_bytes).
    trees_[it->second] = tree;
  } else {
    by_source_.emplace(source, trees_.size());
    trees_.push_back(tree);
  }
  ++stores_;
}

SourceTreeCache::ReclaimRevalidation SourceTreeCache::revalidate_after_reclaim(
    const Graph& base, std::span<const EdgeId> reclaimed,
    std::int64_t clock_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ReclaimRevalidation out;
  if (trees_.empty() || reclaimed.empty()) return out;

  // The usable endpoints of the reclaimed edges: the vertices from which
  // a search could enter a decreased edge. Tails only for directed
  // graphs; both endpoints for undirected ones, where the two arc
  // orientations share one EdgeId.
  scratch_.clear();
  const bool directed = base.is_directed();
  for (const EdgeId e : reclaimed) {
    const auto [tail, head] = base.endpoints(e);
    scratch_.push_back(tail);
    if (!directed) scratch_.push_back(head);
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());

  // Keep a tree iff its settled set avoids every usable endpoint (the
  // §12 survival criterion — see the class comment). Intersection test
  // walks the smaller side, binary-searching the larger.
  std::size_t write = 0;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    Tree& tree = trees_[i];
    bool touched = false;
    if (tree.vertices.size() <= scratch_.size()) {
      for (const VertexId v : tree.vertices) {
        if (std::binary_search(scratch_.begin(), scratch_.end(), v)) {
          touched = true;
          break;
        }
      }
    } else {
      for (const VertexId v : scratch_) {
        if (tree.index_of(v) >= 0) {
          touched = true;
          break;
        }
      }
    }
    if (touched) {
      // Drop: compact over the record (the arena block stays allocated
      // until the next generation reset, like a store() replacement).
      by_source_.erase(tree.source);
      ++out.dropped;
      continue;
    }
    tree.validated_clock = clock_after;
    ++out.kept;
    if (write != i) {
      trees_[write] = tree;
      by_source_[tree.source] = write;
    }
    ++write;
  }
  trees_.resize(write);
  return out;
}

void SourceTreeCache::enforce_limits() {
  std::lock_guard<std::mutex> lock(mu_);
  if (trees_.size() > static_cast<std::size_t>(limits_.max_trees) ||
      arena_.bytes_allocated() > limits_.max_bytes) {
    // Wholesale generation-reset eviction: rewind the arena, drop every
    // tree, and start a new generation (no per-tree free path exists).
    clear_locked();
    ++evictions_;
  }
}

void SourceTreeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  clear_locked();
}

void SourceTreeCache::clear_locked() {
  trees_.clear();
  by_source_.clear();
  arena_.reset();
  ++generation_;
}

std::int64_t SourceTreeCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::int64_t SourceTreeCache::stores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}

std::int64_t SourceTreeCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t SourceTreeCache::num_trees() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trees_.size();
}

ResidualWindow ResidualGraph::window(EdgeId begin, EdgeId end) const {
  TUFP_REQUIRE(begin >= 0 && begin <= end && end <= base_->num_edges(),
               "shard window outside the base edge space");
  return ResidualWindow(this, begin, end);
}

}  // namespace tufp
