#include "tufp/graph/path_enum.hpp"

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

struct EnumState {
  const Graph* graph;
  VertexId target;
  std::size_t max_paths;
  int max_hops;
  std::vector<bool> on_path;
  Path current;
  PathEnumResult* out;
};

// Iterative-friendly depth is small here (simple paths <= n); recursion is
// bounded by the vertex count.
void dfs(EnumState& st, VertexId v) {
  if (st.out->truncated) return;
  if (v == st.target) {
    if (st.out->paths.size() >= st.max_paths) {
      st.out->truncated = true;
      return;
    }
    st.out->paths.push_back(st.current);
    return;
  }
  if (static_cast<int>(st.current.size()) >= st.max_hops) return;
  for (const Arc& arc : st.graph->arcs_from(v)) {
    if (st.on_path[static_cast<std::size_t>(arc.to)]) continue;
    st.on_path[static_cast<std::size_t>(arc.to)] = true;
    st.current.push_back(arc.edge);
    dfs(st, arc.to);
    st.current.pop_back();
    st.on_path[static_cast<std::size_t>(arc.to)] = false;
    if (st.out->truncated) return;
  }
}

}  // namespace

PathEnumResult enumerate_simple_paths(const Graph& graph, VertexId source,
                                      VertexId target,
                                      const PathEnumOptions& options) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  TUFP_REQUIRE(source >= 0 && source < graph.num_vertices(), "bad source");
  TUFP_REQUIRE(target >= 0 && target < graph.num_vertices(), "bad target");
  TUFP_REQUIRE(source != target, "source == target");

  PathEnumResult result;
  EnumState st{&graph, target, options.max_paths,
               options.max_hops < 0 ? graph.num_vertices() - 1 : options.max_hops,
               std::vector<bool>(static_cast<std::size_t>(graph.num_vertices()), false),
               {},
               &result};
  st.on_path[static_cast<std::size_t>(source)] = true;
  dfs(st, source);
  return result;
}

}  // namespace tufp
