// Generic graph topologies for workloads and tests.
//
// The paper-specific lower-bound constructions (Figure 2 staircase,
// Figure 3 gadget, Figure 4 auction) live in workload/lower_bounds.hpp;
// this header holds the neutral topologies benchmarks randomize over.
#pragma once

#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/util/rng.hpp"

namespace tufp {

// rows x cols 4-neighbour mesh. Directed grids carry one edge per
// direction (so every undirected adjacency becomes two directed edges);
// ISP-style benches use the undirected form.
Graph grid_graph(int rows, int cols, double capacity, bool directed = false);

// Cycle 0-1-...-n-1-0.
Graph ring_graph(int n, double capacity, bool directed = false);

// Random connected multigraph-free graph: a uniform spanning tree first
// (guaranteeing connectivity; bidirectional pairs when directed so every
// pair is mutually reachable), then extra distinct edges up to num_edges.
// Capacities uniform in [cap_min, cap_max].
Graph random_graph(int n, int num_edges, double cap_min, double cap_max,
                   bool directed, Rng& rng);

// DAG of `layers` layers of `width` vertices; every vertex points to
// `fanout` random vertices of the next layer. Vertex ids are
// layer*width+slot. Models the left-to-right routing meshes used in
// on-chip/backbone evaluations.
Graph layered_graph(int layers, int width, int fanout, double cap_min,
                    double cap_max, Rng& rng);

// BFS reachability from `source` (respects direction).
std::vector<bool> reachable_from(const Graph& graph, VertexId source);

}  // namespace tufp
