// Bellman–Ford single-source shortest paths.
//
// O(nm) reference oracle used by the test suite to cross-check the Dijkstra
// engine, and by the hop-bounded searches the h1 reasonable function needs
// (minimize over k of score(sum, k), which requires per-hop-count distance
// profiles — see ufp/reasonable.hpp).
#pragma once

#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"
#include "tufp/graph/path.hpp"

namespace tufp {

// Distances from `source` to every vertex (kInf when unreachable).
std::vector<double> bellman_ford(const Graph& graph,
                                 std::span<const double> weights,
                                 VertexId source);

// dist[k][v] = min weight of a walk source->v with at most k edges,
// for k = 0..max_hops. Row max_hops+1 rows. Walks, not simple paths; with
// non-negative weights minimal walks are simple, matching S_r.
std::vector<std::vector<double>> hop_profile(const Graph& graph,
                                             std::span<const double> weights,
                                             VertexId source, int max_hops);

// Reconstructs one min-weight path with at most `hops` edges from the
// profile by greedy backward walking. Returns empty path if unreachable.
Path hop_profile_path(const Graph& graph, std::span<const double> weights,
                      const std::vector<std::vector<double>>& profile,
                      VertexId source, VertexId target, int hops);

}  // namespace tufp
