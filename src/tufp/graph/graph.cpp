#include "tufp/graph/graph.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

Graph::Graph(int num_vertices, bool directed)
    : num_vertices_(num_vertices), directed_(directed) {
  TUFP_REQUIRE(num_vertices >= 0, "vertex count must be non-negative");
}

Graph Graph::directed(int num_vertices) { return Graph(num_vertices, true); }
Graph Graph::undirected(int num_vertices) { return Graph(num_vertices, false); }

void Graph::require_vertex(VertexId v) const {
  TUFP_REQUIRE(v >= 0 && v < num_vertices_, "vertex id out of range");
}

EdgeId Graph::add_edge(VertexId u, VertexId v, double capacity) {
  TUFP_REQUIRE(!finalized_, "add_edge after finalize()");
  require_vertex(u);
  require_vertex(v);
  TUFP_REQUIRE(u != v, "self loops are not allowed");
  TUFP_REQUIRE(capacity > 0.0, "edge capacity must be positive");
  const auto id = static_cast<EdgeId>(endpoints_.size());
  endpoints_.emplace_back(u, v);
  capacities_.push_back(capacity);
  return id;
}

void Graph::finalize() {
  TUFP_REQUIRE(!finalized_, "finalize() called twice");
  std::vector<std::int64_t> degree(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const auto& [u, v] : endpoints_) {
    ++degree[static_cast<std::size_t>(u) + 1];
    if (!directed_) ++degree[static_cast<std::size_t>(v) + 1];
  }
  offsets_.assign(degree.begin(), degree.end());
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  arcs_.resize(static_cast<std::size_t>(offsets_.back()));
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto [u, v] = endpoints_[static_cast<std::size_t>(e)];
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = Arc{v, e};
    if (!directed_) {
      arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = Arc{u, e};
    }
  }
  finalized_ = true;
}

std::span<const Arc> Graph::arcs_from(VertexId v) const {
  TUFP_REQUIRE(finalized_, "arcs_from before finalize()");
  require_vertex(v);
  const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto hi = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  return {arcs_.data() + lo, hi - lo};
}

double Graph::capacity(EdgeId e) const {
  TUFP_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return capacities_[static_cast<std::size_t>(e)];
}

std::pair<VertexId, VertexId> Graph::endpoints(EdgeId e) const {
  TUFP_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return endpoints_[static_cast<std::size_t>(e)];
}

VertexId Graph::traverse(VertexId from, EdgeId e) const {
  const auto [u, v] = endpoints(e);
  if (u == from) return v;
  TUFP_REQUIRE(!directed_ && v == from, "edge not traversable from vertex");
  return u;
}

double Graph::min_capacity() const {
  TUFP_REQUIRE(num_edges() > 0, "min_capacity of edgeless graph");
  return *std::min_element(capacities_.begin(), capacities_.end());
}

double Graph::max_capacity() const {
  TUFP_REQUIRE(num_edges() > 0, "max_capacity of edgeless graph");
  return *std::max_element(capacities_.begin(), capacities_.end());
}

}  // namespace tufp
