#include "tufp/graph/path.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

double path_length(const Path& path, std::span<const double> weights) {
  double total = 0.0;
  for (EdgeId e : path) {
    TUFP_REQUIRE(e >= 0 && static_cast<std::size_t>(e) < weights.size(),
                 "path edge id outside weight vector");
    total += weights[static_cast<std::size_t>(e)];
  }
  return total;
}

bool is_simple_path(const Graph& graph, const Path& path, VertexId s, VertexId t) {
  if (s == t) return false;  // S_r excludes trivial "paths" (s != t requests)
  std::vector<bool> seen(static_cast<std::size_t>(graph.num_vertices()), false);
  VertexId cur = s;
  seen[static_cast<std::size_t>(cur)] = true;
  for (EdgeId e : path) {
    if (e < 0 || e >= graph.num_edges()) return false;
    const auto [u, v] = graph.endpoints(e);
    VertexId next;
    if (u == cur) {
      next = v;
    } else if (!graph.is_directed() && v == cur) {
      next = u;
    } else {
      return false;
    }
    if (seen[static_cast<std::size_t>(next)]) return false;
    seen[static_cast<std::size_t>(next)] = true;
    cur = next;
  }
  return cur == t;
}

std::vector<VertexId> path_vertices(const Graph& graph, const Path& path, VertexId s) {
  std::vector<VertexId> vertices;
  vertices.reserve(path.size() + 1);
  vertices.push_back(s);
  VertexId cur = s;
  for (EdgeId e : path) {
    cur = graph.traverse(cur, e);
    vertices.push_back(cur);
  }
  return vertices;
}

double path_bottleneck(const Path& path, std::span<const double> residual) {
  double bottleneck = kInf;
  for (EdgeId e : path) {
    TUFP_REQUIRE(e >= 0 && static_cast<std::size_t>(e) < residual.size(),
                 "path edge id outside residual vector");
    bottleneck = std::min(bottleneck, residual[static_cast<std::size_t>(e)]);
  }
  return bottleneck;
}

}  // namespace tufp
