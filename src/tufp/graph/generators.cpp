#include "tufp/graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "tufp/util/assert.hpp"

namespace tufp {

Graph grid_graph(int rows, int cols, double capacity, bool directed) {
  TUFP_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  const int n = rows * cols;
  Graph g = directed ? Graph::directed(n) : Graph::undirected(n);
  const auto id = [cols](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.add_edge(id(r, c), id(r, c + 1), capacity);
        if (directed) g.add_edge(id(r, c + 1), id(r, c), capacity);
      }
      if (r + 1 < rows) {
        g.add_edge(id(r, c), id(r + 1, c), capacity);
        if (directed) g.add_edge(id(r + 1, c), id(r, c), capacity);
      }
    }
  }
  g.finalize();
  return g;
}

Graph ring_graph(int n, double capacity, bool directed) {
  TUFP_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  Graph g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<VertexId>(i);
    const auto v = static_cast<VertexId>((i + 1) % n);
    g.add_edge(u, v, capacity);
    if (directed) g.add_edge(v, u, capacity);
  }
  g.finalize();
  return g;
}

Graph random_graph(int n, int num_edges, double cap_min, double cap_max,
                   bool directed, Rng& rng) {
  TUFP_REQUIRE(n >= 2, "random graph needs at least 2 vertices");
  TUFP_REQUIRE(cap_min > 0.0 && cap_min <= cap_max, "bad capacity range");
  Graph g = directed ? Graph::directed(n) : Graph::undirected(n);

  std::set<std::pair<VertexId, VertexId>> used;
  const auto add = [&](VertexId u, VertexId v) {
    g.add_edge(u, v, rng.next_double(cap_min, cap_max));
    used.emplace(u, v);
    if (!directed) used.emplace(v, u);
  };

  // Random spanning tree: attach vertex i to a uniformly random earlier
  // vertex after a random relabeling, so the tree shape is not a path.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = static_cast<VertexId>(i);
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[static_cast<std::size_t>(rng.next_below(i + 1))]);
  }
  for (int i = 1; i < n; ++i) {
    const VertexId u = order[static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(i)))];
    const VertexId v = order[static_cast<std::size_t>(i)];
    add(u, v);
    if (directed) add(v, u);  // mutual reachability along the tree
  }

  const int target = std::max(num_edges, g.num_edges());
  int attempts = 0;
  const int max_attempts = 50 * target + 1000;
  while (g.num_edges() < target && attempts++ < max_attempts) {
    const auto u = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || used.contains({u, v})) continue;
    add(u, v);
  }
  g.finalize();
  return g;
}

Graph layered_graph(int layers, int width, int fanout, double cap_min,
                    double cap_max, Rng& rng) {
  TUFP_REQUIRE(layers >= 2 && width >= 1, "layered graph needs >= 2 layers");
  TUFP_REQUIRE(fanout >= 1 && fanout <= width, "fanout outside [1, width]");
  TUFP_REQUIRE(cap_min > 0.0 && cap_min <= cap_max, "bad capacity range");
  Graph g = Graph::directed(layers * width);
  std::vector<int> slots(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) slots[static_cast<std::size_t>(i)] = i;
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int slot = 0; slot < width; ++slot) {
      // Partial Fisher-Yates: first `fanout` entries become the targets.
      for (int k = 0; k < fanout; ++k) {
        const auto j = static_cast<std::size_t>(
            k + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(width - k))));
        std::swap(slots[static_cast<std::size_t>(k)], slots[j]);
      }
      const auto u = static_cast<VertexId>(layer * width + slot);
      for (int k = 0; k < fanout; ++k) {
        const auto v = static_cast<VertexId>((layer + 1) * width +
                                             slots[static_cast<std::size_t>(k)]);
        g.add_edge(u, v, rng.next_double(cap_min, cap_max));
      }
    }
  }
  g.finalize();
  return g;
}

std::vector<bool> reachable_from(const Graph& graph, VertexId source) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  TUFP_REQUIRE(source >= 0 && source < graph.num_vertices(), "bad source");
  std::vector<bool> seen(static_cast<std::size_t>(graph.num_vertices()), false);
  std::vector<VertexId> stack{source};
  seen[static_cast<std::size_t>(source)] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const Arc& arc : graph.arcs_from(v)) {
      if (!seen[static_cast<std::size_t>(arc.to)]) {
        seen[static_cast<std::size_t>(arc.to)] = true;
        stack.push_back(arc.to);
      }
    }
  }
  return seen;
}

}  // namespace tufp
