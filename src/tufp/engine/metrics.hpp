// Engine observability: counters plus latency/throughput distributions.
//
// Two kinds of numbers come out of the engine and they must not be mixed:
//   * deterministic load metrics (request/admission counters, revenue,
//     virtual-clock queueing delay) — identical across runs and thread
//     counts, safe to assert on in tests and to diff across machines;
//   * wall-clock performance metrics (epoch solve time, throughput) —
//     machine-dependent, reported separately.
// EngineMetrics keeps both but the report printers only put the first kind
// on the deterministic channel (see tools/tufp_engine.cpp).
//
// The histogram is fixed-bucket geometric: cheap O(1) record, mergeable,
// and percentile queries that never allocate on the hot path — the shape
// hdrhistogram-style serving systems use, sized down to what the bench
// actually reads out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tufp/util/stats.hpp"

namespace tufp {

// Geometric-bucket histogram over positive values. Bucket i covers
// [min_value * growth^i, min_value * growth^(i+1)); underflow clamps to
// bucket 0, overflow to the last bucket.
class GeometricHistogram {
 public:
  GeometricHistogram(double min_value = 1e-6, double growth = 2.0,
                     int num_buckets = 40);

  void record(double value);
  void merge(const GeometricHistogram& other);

  std::int64_t count() const { return total_; }
  // Percentile estimate (upper edge of the bucket holding rank q*count).
  // q in [0,1]; 0 on an empty histogram.
  double percentile(double q) const;
  const RunningStats& stats() const { return stats_; }

  // JSON snapshot for the telemetry layer (DESIGN.md §11): total count
  // plus the occupied buckets as [lower edge, upper edge, count] triples
  // in bucket order. Rendered through util/json.hpp's canonical %.17g
  // formatter, so two histograms with identical contents serialize
  // byte-identically — across thread counts, kernels and machines (no
  // printf-formatting drift; the unit tests pin t1 == t4).
  std::string to_json() const;

 private:
  double min_value_;
  double log_growth_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
  RunningStats stats_;
};

// Monotone counters aggregated over the engine's lifetime. All values are
// deterministic functions of the request stream and engine config.
struct EngineCounters {
  std::int64_t epochs = 0;
  std::int64_t requests_seen = 0;    // pulled from the stream
  std::int64_t queue_dropped = 0;    // shed by the bounded queue
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;         // offered to an auction, not allocated
  std::int64_t invalid_rejected = 0; // malformed bids shed before any auction

  // Per-outcome split of `rejected` (DESIGN.md §14): every valid-but-
  // rejected request is classified at the solver's serial exit into
  // exactly one bucket, so no_path + capacity_blocked + lost_auction +
  // shard_conflict == rejected. Deterministic across kernels, thread
  // counts and shard layouts; gated exactly by tools/check_trend.py.
  std::int64_t no_path = 0;
  std::int64_t capacity_blocked = 0;
  std::int64_t lost_auction = 0;
  std::int64_t shard_conflict = 0;
  double offered_value = 0.0;        // sum of bids offered to auctions
  double admitted_value = 0.0;       // sum of winning bids
  double revenue = 0.0;              // sum of payments charged
  std::int64_t solver_iterations = 0;
  std::int64_t sp_computations = 0;
  std::int64_t sp_tree_runs = 0;  // Dijkstra trees behind sp_computations

  // Temporal lease churn (DESIGN.md §10). finite_leases counts admissions
  // with a finite duration; leases_expired counts reclamations. Both stay
  // zero on an all-infinite workload, which is what keeps the summary
  // output of pre-temporal runs byte-identical.
  std::int64_t finite_leases = 0;
  std::int64_t leases_expired = 0;

  // Warm-tree reclaim cooperation (DESIGN.md §12): at every reclaim
  // batch, cross-epoch trees proven untouched by the reclaimed edges are
  // kept warm, the rest dropped. Deterministic for any thread count (the
  // tree set is; the residual-differential oracle pins it across legs).
  // Both stay zero without churn or without the persistent store, which
  // keeps pre-churn summaries byte-identical.
  std::int64_t trees_kept_on_reclaim = 0;
  std::int64_t trees_dropped_on_reclaim = 0;
};

class EngineMetrics {
 public:
  EngineCounters& counters() { return counters_; }
  const EngineCounters& counters() const { return counters_; }

  // Virtual-clock time from a request's arrival to the close of the epoch
  // that decided it (deterministic).
  GeometricHistogram& admission_delay() { return admission_delay_; }
  const GeometricHistogram& admission_delay() const { return admission_delay_; }

  // Wall-clock seconds per epoch solve (machine-dependent).
  GeometricHistogram& solve_seconds() { return solve_seconds_; }
  const GeometricHistogram& solve_seconds() const { return solve_seconds_; }

  // Wall-clock seconds per epoch-boundary lease reclaim (machine-
  // dependent). The steady-state bench reads this to show expiry
  // processing stays amortized O(1) as the horizon grows.
  GeometricHistogram& reclaim_seconds() { return reclaim_seconds_; }
  const GeometricHistogram& reclaim_seconds() const {
    return reclaim_seconds_;
  }

  RunningStats& batch_sizes() { return batch_sizes_; }
  const RunningStats& batch_sizes() const { return batch_sizes_; }

  double admitted_fraction() const;

  // Lease gauges, refreshed by the engine after every reclaim/admission
  // round: currently active leases and occupancy = leased capacity /
  // total base capacity. Deterministic.
  void set_lease_gauges(std::int64_t active_leases, double occupancy) {
    active_leases_ = active_leases;
    occupancy_ = occupancy;
  }
  std::int64_t active_leases() const { return active_leases_; }
  double occupancy() const { return occupancy_; }

  // Multi-line human-readable dump. Deterministic block only unless
  // `include_wall_clock`.
  std::string summary(bool include_wall_clock) const;

 private:
  EngineCounters counters_;
  GeometricHistogram admission_delay_;
  GeometricHistogram solve_seconds_;
  GeometricHistogram reclaim_seconds_;
  RunningStats batch_sizes_;
  std::int64_t active_leases_ = 0;
  double occupancy_ = 0.0;
};

}  // namespace tufp
