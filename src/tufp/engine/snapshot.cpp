#include "tufp/engine/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

GraphSnapshot GraphSnapshot::compile(std::shared_ptr<const Graph> base,
                                     std::span<const double> residual,
                                     double min_usable_capacity) {
  TUFP_REQUIRE(base != nullptr && base->finalized(),
               "snapshot requires a finalized base graph");
  TUFP_REQUIRE(static_cast<int>(residual.size()) == base->num_edges(),
               "residual vector size must match base edge count");
  TUFP_REQUIRE(min_usable_capacity > 0.0,
               "min_usable_capacity must be positive");

  GraphSnapshot snap;
  snap.base_ = std::move(base);
  snap.min_residual_ = kInf;

  const Graph& b = *snap.base_;
  Graph g = b.is_directed() ? Graph::directed(b.num_vertices())
                            : Graph::undirected(b.num_vertices());
  snap.edge_map_.reserve(residual.size());
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const double r = residual[static_cast<std::size_t>(e)];
    TUFP_REQUIRE(r <= b.capacity(e) + 1e-9,
                 "residual exceeds base capacity");
    if (r < min_usable_capacity) {
      ++snap.num_saturated_;
      continue;
    }
    const auto [u, v] = b.endpoints(e);
    g.add_edge(u, v, r);
    snap.edge_map_.push_back(e);
    snap.min_residual_ = std::min(snap.min_residual_, r);
  }
  g.finalize();
  snap.graph_ = std::make_shared<const Graph>(std::move(g));
  return snap;
}

}  // namespace tufp
