#include "tufp/engine/sharded_engine.hpp"

#include <algorithm>
#include <utility>

#include "tufp/obs/trace.hpp"
#include "tufp/util/assert.hpp"

namespace tufp {

ShardedEpochEngine::ShardedEpochEngine(std::shared_ptr<const Graph> base_graph,
                                       EpochEngineConfig config,
                                       int num_shards)
    : engine_(std::make_unique<EpochEngine>(base_graph, std::move(config))),
      plan_(base_graph->num_edges(), num_shards) {
  shards_.reserve(static_cast<std::size_t>(plan_.num_shards()));
  for (int s = 0; s < plan_.num_shards(); ++s) {
    shards_.emplace_back(s, plan_.window(s), base_graph->capacities());
  }
  shard_edges_.resize(static_cast<std::size_t>(plan_.num_shards()));
  epoch_base_.resize(static_cast<std::size_t>(plan_.num_shards()));
  engine_->set_admission_observer(this);
}

ShardedEpochEngine::~ShardedEpochEngine() {
  engine_->set_admission_observer(nullptr);
}

shard::ShardCounters ShardedEpochEngine::totals() const {
  shard::ShardCounters t;
  for (const shard::ShardEngine& s : shards_) {
    const shard::ShardCounters& c = s.counters();
    t.reservations += c.reservations;
    t.conflicts += c.conflicts;
    t.aborts += c.aborts;
    t.commits += c.commits;
    t.releases += c.releases;
    t.reclaims += c.reclaims;
  }
  return t;
}

void ShardedEpochEngine::split_by_shard(std::span<const EdgeId> base_edges) {
  shard_seq_.clear();
  for (const EdgeId e : base_edges) {
    const int s = plan_.shard_of(e);
    auto& bucket = shard_edges_[static_cast<std::size_t>(s)];
    if (bucket.empty()) shard_seq_.push_back(s);
    bucket.push_back(e);
  }
  // Canonical acquisition order: ascending shard id (the global lock
  // order of the protocol), whatever order the path visits regions in.
  std::sort(shard_seq_.begin(), shard_seq_.end());
}

bool ShardedEpochEngine::try_admit(std::int64_t epoch,
                                   std::span<const EdgeId> base_edges,
                                   double demand) {
  TUFP_SPAN("shard_admit");
  split_by_shard(base_edges);
  // Phase 1: reserve in canonical shard order.
  for (std::size_t k = 0; k < shard_seq_.size(); ++k) {
    const int s = shard_seq_[k];
    shard::ShardEngine& eng = shards_[static_cast<std::size_t>(s)];
    if (!eng.reserve(epoch, shard_edges_[static_cast<std::size_t>(s)],
                     demand)) {
      // Abort: release the acquired shards in reverse order, charge the
      // refusing shard.
      for (std::size_t j = k; j-- > 0;) {
        const int r = shard_seq_[j];
        shards_[static_cast<std::size_t>(r)].release(
            shard_edges_[static_cast<std::size_t>(r)], demand);
      }
      eng.note_abort();
      for (const int cleanup : shard_seq_) {
        shard_edges_[static_cast<std::size_t>(cleanup)].clear();
      }
      return false;
    }
  }
  // Phase 2: commit in the same order.
  for (const int s : shard_seq_) {
    shards_[static_cast<std::size_t>(s)].commit(
        shard_edges_[static_cast<std::size_t>(s)], demand);
  }
  if (shard_seq_.size() > 1) ++epoch_cross_shard_winners_;
  for (const int s : shard_seq_) {
    shard_edges_[static_cast<std::size_t>(s)].clear();
  }
  return true;
}

void ShardedEpochEngine::on_epoch_start(int epoch, double /*close_time*/) {
  current_epoch_ = epoch;
  epoch_cross_shard_winners_ = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    epoch_base_[s] = shards_[s].counters();
  }
}

void ShardedEpochEngine::on_winner(std::int64_t /*sequence*/,
                                   std::span<const EdgeId> base_edges,
                                   double demand, double /*close_time*/,
                                   double /*expires_at*/) {
  ++winners_;
  const bool committed = try_admit(current_epoch_, base_edges, demand);
  // A genuine solver winner set is jointly feasible (capacity guard), so
  // a refusal here means shard state diverged from the decider's — fail
  // loudly rather than serve inconsistent shards.
  TUFP_CHECK(committed,
             "two-phase admission aborted for a decider-selected winner");
  if (shard_seq_.size() > 1) ++cross_shard_winners_;
}

void ShardedEpochEngine::on_reclaimed(
    std::span<const temporal::Lease> drained) {
  TUFP_SPAN("shard_reclaim");
  for (const temporal::Lease& lease : drained) {
    split_by_shard(lease.edges);
    for (const int s : shard_seq_) {
      shards_[static_cast<std::size_t>(s)].drain(
          lease.demand, shard_edges_[static_cast<std::size_t>(s)]);
      shard_edges_[static_cast<std::size_t>(s)].clear();
    }
  }
}

void ShardedEpochEngine::on_epoch_end(const AdmissionReport& report) {
  ShardEpochReport out;
  out.epoch = report.epoch;
  out.cross_shard_winners = epoch_cross_shard_winners_;
  out.per_shard.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const shard::ShardCounters& now = shards_[s].counters();
    const shard::ShardCounters& base = epoch_base_[s];
    shard::ShardCounters& d = out.per_shard[s];
    d.reservations = now.reservations - base.reservations;
    d.conflicts = now.conflicts - base.conflicts;
    d.aborts = now.aborts - base.aborts;
    d.commits = now.commits - base.commits;
    d.releases = now.releases - base.releases;
    d.reclaims = now.reclaims - base.reclaims;
  }
  epoch_reports_.push_back(std::move(out));
}

std::vector<std::string> ShardedEpochEngine::verify() const {
  std::vector<std::string> out;
  for (const shard::ShardEngine& s : shards_) {
    s.verify_against(engine_->residual(), engine_->lease_ledger(), &out);
  }
  // Global conservation of the protocol counters: every admitted winner
  // commits exactly once per shard its path touches, so the commit total
  // is winners + cross-shard surplus; reservations can only exceed
  // commits by released (aborted) acquisitions.
  const shard::ShardCounters t = totals();
  std::int64_t expected_commits = 0;
  for (const ShardEpochReport& r : epoch_reports_) {
    for (const shard::ShardCounters& c : r.per_shard) {
      expected_commits += c.commits;
    }
  }
  if (t.commits != expected_commits) {
    out.push_back("commit total " + std::to_string(t.commits) +
                  " != merged per-epoch total " +
                  std::to_string(expected_commits));
  }
  // Each winner commits once per touched shard, so the surplus over one
  // commit per winner is exactly the extra shards of cross-shard paths:
  // at least one per cross-shard winner, zero when there are none.
  const std::int64_t surplus = t.commits - winners_;
  if (surplus < cross_shard_winners_ ||
      (cross_shard_winners_ == 0 && surplus != 0)) {
    out.push_back("commit total " + std::to_string(t.commits) +
                  " inconsistent with winner accounting (winners " +
                  std::to_string(winners_) + ", cross-shard " +
                  std::to_string(cross_shard_winners_) + ")");
  }
  // Releases happen only on abort rollbacks.
  if (t.aborts == 0 && t.releases != 0) {
    out.push_back("releases " + std::to_string(t.releases) +
                  " without any abort");
  }
  return out;
}

void ShardedEpochEngine::reset() {
  engine_->reset();
  for (shard::ShardEngine& s : shards_) s.reset();
  for (auto& bucket : shard_edges_) bucket.clear();
  epoch_reports_.clear();
  for (shard::ShardCounters& c : epoch_base_) c = shard::ShardCounters();
  current_epoch_ = -1;
  winners_ = 0;
  cross_shard_winners_ = 0;
  epoch_cross_shard_winners_ = 0;
}

}  // namespace tufp
