#include "tufp/engine/epoch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "tufp/mechanism/allocation_rule.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/timer.hpp"

namespace tufp {

namespace {

// Canonical trace-lattice width: shard_conflict decision records name
// the owner of the bottleneck edge under a fixed 8-way ShardPlan, never
// the runtime --shards layout (DESIGN.md §14).
constexpr int kTraceLatticeShards = 8;

// Solver-exit reject reason -> wire outcome. kCapacityRace is the
// cross-shard vocabulary: the request fit the epoch-start residual but
// lost the intra-epoch capacity race to earlier winners.
obs::DecisionOutcome outcome_of(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNoPath: return obs::DecisionOutcome::kNoPath;
    case RejectReason::kBlockedAtStart:
      return obs::DecisionOutcome::kCapacityBlocked;
    case RejectReason::kCapacityRace:
      return obs::DecisionOutcome::kShardConflict;
    case RejectReason::kLostAuction:
      return obs::DecisionOutcome::kLostAuction;
  }
  return obs::DecisionOutcome::kLostAuction;
}

}  // namespace

EpochEngine::EpochEngine(std::shared_ptr<const Graph> base_graph,
                         EpochEngineConfig config)
    : base_(std::move(base_graph)),
      config_(std::move(config)),
      trace_lattice_(base_ != nullptr ? base_->num_edges() : 1,
                     kTraceLatticeShards) {
  TUFP_REQUIRE(base_ != nullptr && base_->finalized(),
               "engine requires a finalized base graph");
  TUFP_REQUIRE(base_->num_edges() >= 1, "engine requires a non-empty graph");
  TUFP_REQUIRE(config_.max_batch >= 1, "max_batch must be positive");
  TUFP_REQUIRE(config_.epoch_duration >= 0.0, "negative epoch duration");
  TUFP_REQUIRE(config_.min_usable_capacity >= 1.0,
               "min_usable_capacity must cover the maximum normalized demand "
               "(>= 1), or epochs can violate bounded_ufp's B >= 1 precondition");
  TUFP_REQUIRE(config_.solver.capacity_guard,
               "the engine requires the capacity guard: residual carry-over "
               "is unsound on infeasible epoch outputs");
  residual_.assign(base_->capacities().begin(), base_->capacities().end());
  for (const double c : base_->capacities()) total_capacity_ += c;
  if (config_.persistent_residual) {
    rgraph_ =
        std::make_unique<ResidualGraph>(base_, config_.min_usable_capacity);
    workspace_ = std::make_unique<UfpWorkspace>();
  }
  if (config_.track_leases) {
    ledger_ = std::make_unique<temporal::LeaseLedger>(
        base_->num_edges(),
        temporal::LeaseLedgerConfig{config_.lease_tick_seconds});
  }
}

void EpochEngine::reset() {
  residual_.assign(base_->capacities().begin(), base_->capacities().end());
  if (rgraph_) {
    rgraph_->reset();
    // The stamp clock restarted: every cached tree's computed_clock is
    // now meaningless, so the workspace must be dropped wholesale.
    workspace_->clear();
  }
  metrics_ = EngineMetrics();
  if (ledger_) ledger_->clear();
  epoch_ = 0;
}

const EpochEngine::BaseBfsTree& EpochEngine::base_bfs(VertexId source) {
  const auto it = base_bfs_trees_.find(source);
  if (it != base_bfs_trees_.end()) return it->second;
  // Canonical parent tree: plain queue BFS in CSR arc order, a pure
  // function of the topology — every run, kernel, thread count and shard
  // layout walks the same route for a given terminal pair.
  BaseBfsTree tree;
  const auto n = static_cast<std::size_t>(base_->num_vertices());
  tree.parent_vertex.assign(n, kInvalidVertex);
  tree.parent_edge.assign(n, kInvalidEdge);
  tree.parent_vertex[static_cast<std::size_t>(source)] = source;
  std::vector<VertexId> queue;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (const Arc& arc : base_->arcs_from(v)) {
      VertexId& parent = tree.parent_vertex[static_cast<std::size_t>(arc.to)];
      if (parent != kInvalidVertex) continue;
      parent = v;
      tree.parent_edge[static_cast<std::size_t>(arc.to)] = arc.edge;
      queue.push_back(arc.to);
    }
  }
  return base_bfs_trees_.emplace(source, std::move(tree)).first->second;
}

EpochEngine::BaseRouteProbe EpochEngine::probe_base_route(VertexId source,
                                                          VertexId target) {
  BaseRouteProbe probe;
  const BaseBfsTree& tree = base_bfs(source);
  if (tree.parent_vertex[static_cast<std::size_t>(target)] == kInvalidVertex) {
    return probe;  // disconnected in the base topology: a true no_path
  }
  probe.reachable = true;
  // Reconstruct target -> source, then scan source -> target for the
  // first edge the live residual holds below the usable floor. One must
  // exist whenever the solver reported no path: a route entirely at or
  // above the floor would have been in the epoch's active subgraph, and
  // its shortest-path pass would have reached the target.
  route_scratch_.clear();
  for (VertexId v = target; v != source;
       v = tree.parent_vertex[static_cast<std::size_t>(v)]) {
    route_scratch_.push_back(tree.parent_edge[static_cast<std::size_t>(v)]);
  }
  const std::span<const double> res = residual();
  for (auto it = route_scratch_.rbegin(); it != route_scratch_.rend(); ++it) {
    if (res[static_cast<std::size_t>(*it)] < config_.min_usable_capacity) {
      probe.bottleneck = *it;
      break;
    }
  }
  return probe;
}

void EpochEngine::refresh_lease_gauges() {
  if (!ledger_) return;
  metrics_.set_lease_gauges(
      ledger_->active_count(),
      total_capacity_ > 0.0 ? ledger_->leased_capacity() / total_capacity_
                            : 0.0);
}

int EpochEngine::reclaim_expired(double now) {
  if (!ledger_) return 0;
  TUFP_SPAN("reclaim");
  // The ledger clock never runs backwards; a stale `now` (e.g. an
  // explicit run_epoch() with an older batch) reclaims at the frontier.
  const double effective = std::max(now, ledger_->now());
  const std::span<double> residual =
      rgraph_ ? rgraph_->mutable_residual() : std::span<double>(residual_);
  int expired = 0;
  // The persistent store needs the drained leases back: every edge a
  // reclaim touched must be stamped (and last_decrease bumped) or the
  // cross-epoch tree cache could serve a path priced before the capacity
  // returned (residual_csr.hpp).
  if (config_.inject_reclaim_leak > 0.0 || rgraph_ || observer_ != nullptr ||
      trace_ != nullptr) {
    std::vector<temporal::Lease> drained;
    expired = ledger_->reclaim_until(effective, base_->capacities(), residual,
                                     &drained);
    if (config_.inject_reclaim_leak > 0.0) {
      // Oracle-bite fault (see the config field): after the ledger returns
      // an expired lease's capacity — snap rule included — "lose" a
      // fraction of it again on every edge the lease crossed. Conservation
      // (leased + residual == capacity) now fails, which is exactly what
      // the in-service sanity checks must catch.
      for (const temporal::Lease& lease : drained) {
        for (const EdgeId e : lease.edges) {
          auto& r = residual[static_cast<std::size_t>(e)];
          r = std::max(0.0, r - config_.inject_reclaim_leak * lease.demand);
        }
      }
    }
    if (rgraph_) {
      reclaimed_scratch_.clear();
      for (const temporal::Lease& lease : drained) {
        rgraph_->note_reclaimed(lease.edges);
        reclaimed_scratch_.insert(reclaimed_scratch_.end(),
                                  lease.edges.begin(), lease.edges.end());
      }
      if (drained.empty()) {
        // Nothing drained, but mutable_residual() was handed out above:
        // close the dirty window explicitly (the contract's empty-span
        // idiom; open_epoch() aborts the next solve otherwise).
        rgraph_->note_reclaimed({});
      } else if (workspace_) {
        // Cache-cooperative reclaim: keep every cross-epoch tree the
        // drained edges provably cannot touch (residual_csr.hpp survival
        // criterion), validated through the post-reclaim clock.
        const UfpWorkspace::ReclaimRevalidation r =
            workspace_->revalidate_warm_trees(*base_, reclaimed_scratch_,
                                              rgraph_->clock());
        metrics_.counters().trees_kept_on_reclaim += r.kept;
        metrics_.counters().trees_dropped_on_reclaim += r.dropped;
      }
    }
    // Observers see the drained leases in ledger drain order — the same
    // serial event stream the residual restore above applied.
    if (observer_ != nullptr && !drained.empty()) {
      observer_->on_reclaimed(drained);
    }
    if (trace_ != nullptr && !drained.empty()) {
      // One lease_expired record per drained lease, in drain order,
      // attributed to the epoch whose boundary (or horizon drain)
      // triggered the reclaim.
      const std::int64_t epoch = trace_epoch_ >= 0 ? trace_epoch_ : epoch_;
      for (const temporal::Lease& lease : drained) {
        obs::DecisionRecord rec;
        rec.sequence = lease.sequence;
        rec.epoch = epoch;
        rec.outcome = obs::DecisionOutcome::kLeaseExpired;
        rec.close_time = effective;
        rec.demand = lease.demand;
        rec.path.assign(lease.edges.begin(), lease.edges.end());
        rec.admitted_at = lease.admitted_at;
        rec.expires_at = lease.expires_at;
        trace_->record(rec);
      }
    }
  } else {
    expired = ledger_->reclaim_until(effective, base_->capacities(), residual);
  }
  if (expired > 0) {
    metrics_.counters().leases_expired += expired;
    refresh_lease_gauges();
  }
  return expired;
}

EngineSummary EpochEngine::run(
    RequestStream& stream,
    const std::function<void(const AdmissionReport&)>& on_epoch) {
  WallTimer timer;
  const bool time_based = config_.epoch_duration > 0.0;
  // Count-based epochs have no time pressure, so shedding load because the
  // queue is smaller than one batch would be a silent config footgun; the
  // queue is sized to hold at least a full batch. Time-based mode keeps
  // the configured capacity — there, overflow drops are the (open-loop)
  // semantics.
  const std::size_t queue_capacity =
      time_based ? config_.queue_capacity
                 : std::max(config_.queue_capacity,
                            static_cast<std::size_t>(config_.max_batch));
  BoundedRequestQueue queue(queue_capacity);
  const std::int64_t dropped_before = metrics_.counters().queue_dropped;
  double epoch_end = time_based ? config_.epoch_duration : kInf;

  TimedRequest pending;
  bool has_pending = false;
  bool stream_done = false;

  while (true) {
    // Ingest arrivals for this epoch window. Time-based epochs take every
    // arrival before the window closes (open loop: the queue sheds what
    // does not fit); count-based epochs fill at most one batch.
    while (!stream_done &&
           (time_based || queue.size() < static_cast<std::size_t>(
                                             config_.max_batch))) {
      if (!has_pending) {
        if (!stream.next(&pending)) {
          stream_done = true;
          break;
        }
        has_pending = true;
        ++metrics_.counters().requests_seen;
      }
      if (time_based && pending.arrival_time >= epoch_end) break;
      queue.push(pending);
      has_pending = false;
    }
    metrics_.counters().queue_dropped = dropped_before + queue.dropped();

    if (queue.empty()) {
      if (stream_done && !has_pending) break;
      // Idle window: skip ahead to the window containing the next arrival
      // instead of clearing empty auctions.
      if (time_based && has_pending) {
        const double t = config_.epoch_duration;
        epoch_end = (std::floor(pending.arrival_time / t) + 1.0) * t;
      }
      continue;
    }

    std::vector<TimedRequest> batch;
    batch.reserve(static_cast<std::size_t>(config_.max_batch));
    TimedRequest item;
    while (static_cast<int>(batch.size()) < config_.max_batch &&
           queue.pop(&item)) {
      batch.push_back(std::move(item));
    }

    const double close_time =
        time_based ? epoch_end : batch.back().arrival_time;
    AdmissionReport report = clear_epoch(batch, close_time);
    report.queue_depth = static_cast<std::int64_t>(queue.size());
    if (on_epoch) on_epoch(report);
    if (time_based) epoch_end += config_.epoch_duration;
  }

  EngineSummary summary;
  summary.counters = metrics_.counters();
  summary.admitted_fraction = metrics_.admitted_fraction();
  if (ledger_) {
    summary.active_leases = ledger_->active_count();
    summary.occupancy = metrics_.occupancy();
  }
  summary.wall_seconds = timer.elapsed_seconds();
  summary.requests_per_second =
      summary.wall_seconds > 0.0
          ? static_cast<double>(summary.counters.requests_seen) /
                summary.wall_seconds
          : 0.0;
  return summary;
}

AdmissionReport EpochEngine::run_epoch(const std::vector<TimedRequest>& batch) {
  const double close_time = batch.empty() ? 0.0 : batch.back().arrival_time;
  return clear_epoch(batch, close_time);
}

AdmissionReport EpochEngine::run_epoch(const std::vector<TimedRequest>& batch,
                                       double close_time) {
  for (const TimedRequest& t : batch) {
    TUFP_REQUIRE(t.arrival_time <= close_time,
                 "epoch close time precedes an arrival in its batch");
  }
  return clear_epoch(batch, close_time);
}

AdmissionReport EpochEngine::clear_epoch(const std::vector<TimedRequest>& batch,
                                         double close_time) {
  TUFP_SPAN("epoch");
  WallTimer timer;
  AdmissionReport report;
  report.epoch = epoch_++;
  trace_epoch_ = report.epoch;
  report.batch_size = static_cast<int>(batch.size());
  report.close_time = close_time;
  ++metrics_.counters().epochs;
  metrics_.batch_sizes().add(static_cast<double>(batch.size()));
  // Before the boundary reclaim, so the epoch's drains are attributed to
  // the epoch whose clear triggered them.
  if (observer_ != nullptr) observer_->on_epoch_start(report.epoch, close_time);

  // Epoch boundary: return expired leases' capacity *before* compiling
  // the residual snapshot, so this auction runs over the residual left by
  // expired and active leases. The reclaim may only *increase* residuals;
  // the snapshot (and with it every per-epoch sp_cache) is compiled
  // fresh below, which is what keeps cached negative fit verdicts from
  // outliving a capacity increase (DESIGN.md §10, sp_cache.hpp).
  {
    WallTimer reclaim_timer;
    report.expired_leases = reclaim_expired(close_time);
    report.reclaim_seconds = reclaim_timer.elapsed_seconds();
    if (ledger_) metrics_.reclaim_seconds().record(report.reclaim_seconds);
  }

  // Malformed bids (a zero-value bid, an out-of-range endpoint, an
  // un-normalized demand) must not poison the epoch: they are shed here,
  // counted as invalid, and the auction runs over the valid remainder.
  // batch_index maps instance request ids back to batch positions.
  std::vector<Request> requests;
  std::vector<int> batch_index;
  requests.reserve(batch.size());
  batch_index.reserve(batch.size());
  const int n = base_->num_vertices();
  {
    TUFP_SPAN("validate");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const TimedRequest& t = batch[i];
      const double delay = std::max(0.0, close_time - t.arrival_time);
      metrics_.admission_delay().record(delay);
      report.max_admission_delay = std::max(report.max_admission_delay, delay);

      const Request& req = t.request;
      // Durations must be positive; kInf (permanent) is the default. A NaN
      // or non-positive duration is a malformed bid like a zero value.
      const bool valid =
          std::isfinite(req.demand) && std::isfinite(req.value) &&
          req.demand > 0.0 && req.demand <= 1.0 && req.value > 0.0 &&
          req.source >= 0 && req.source < n && req.target >= 0 &&
          req.target < n && req.source != req.target && t.duration > 0.0 &&
          !std::isnan(t.duration);
      if (!valid) {
        ++report.invalid_rejected;
        ++metrics_.counters().invalid_rejected;
        if (trace_ != nullptr) {
          obs::DecisionRecord rec;
          rec.sequence = t.sequence;
          rec.epoch = report.epoch;
          rec.outcome = obs::DecisionOutcome::kInvalid;
          rec.close_time = close_time;
          rec.value = req.value;
          rec.demand = req.demand;
          trace_->record(rec);
        }
        continue;
      }
      report.offered_value += req.value;
      requests.push_back(req);
      batch_index.push_back(static_cast<int>(i));
    }
  }
  metrics_.counters().offered_value += report.offered_value;

  // Epoch residual view. Persistent mode rescans the activity mask in
  // place (O(m), no allocation); snapshot mode compiles the legacy
  // value-copy subgraph. Both report identical active/saturated/min
  // fields: the active sets coincide (residual >= floor) and min over
  // the same set of doubles is exact.
  const bool persistent = rgraph_ != nullptr;
  std::optional<GraphSnapshot> snapshot;
  {
    TUFP_SPAN("snapshot");
    if (persistent) {
      rgraph_->open_epoch();
      report.active_edges = rgraph_->num_active();
      report.saturated_edges = rgraph_->num_saturated();
      report.min_residual =
          rgraph_->num_active() > 0 ? rgraph_->min_residual() : 0.0;
    } else {
      snapshot.emplace(GraphSnapshot::compile(base_, residual_,
                                              config_.min_usable_capacity));
      report.active_edges = snapshot->num_active_edges();
      report.saturated_edges = snapshot->num_saturated_edges();
      report.min_residual =
          snapshot->num_active_edges() > 0 ? snapshot->min_residual() : 0.0;
    }
  }

  if (requests.empty() || report.active_edges == 0) {
    // Fully saturated network (or nothing valid to clear): every valid bid
    // is rejected without an auction. Lease gauges still report — on a
    // churning workload a saturated epoch is exactly when occupancy is
    // the number worth watching.
    metrics_.counters().rejected += static_cast<std::int64_t>(requests.size());
    // No snapshot, no SP run: the whole network is below the usable
    // floor. A bid whose terminals the base topology never connected is
    // still a true no_path; every other one is capacity-blocked, with
    // the first below-floor edge on its canonical base-BFS route as the
    // bottleneck (here that is the route's first edge).
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const Request& req = requests[r];
      const BaseRouteProbe probe = probe_base_route(req.source, req.target);
      if (probe.reachable) {
        ++report.capacity_blocked;
        ++metrics_.counters().capacity_blocked;
      } else {
        ++report.no_path;
        ++metrics_.counters().no_path;
      }
      if (trace_ != nullptr) {
        const TimedRequest& timed =
            batch[static_cast<std::size_t>(batch_index[r])];
        obs::DecisionRecord rec;
        rec.sequence = timed.sequence;
        rec.epoch = report.epoch;
        rec.outcome = probe.reachable ? obs::DecisionOutcome::kCapacityBlocked
                                      : obs::DecisionOutcome::kNoPath;
        rec.close_time = close_time;
        rec.value = requests[r].value;
        rec.demand = requests[r].demand;
        rec.bottleneck_edge = probe.bottleneck;
        trace_->record(rec);
      }
    }
    if (ledger_) {
      report.active_leases = ledger_->active_count();
      report.occupancy = metrics_.occupancy();
    }
    report.solve_seconds = timer.elapsed_seconds();
    metrics_.solve_seconds().record(report.solve_seconds);
    trace_epoch_ = -1;
    if (observer_ != nullptr) observer_->on_epoch_end(report);
    return report;
  }

  // Keep the weight exponent in double range whatever the epoch bound B
  // is; epsilon only trades approximation quality, not feasibility.
  BoundedUfpConfig solver_cfg = config_.solver;
  const double B =
      persistent ? rgraph_->min_residual() : snapshot->min_residual();
  solver_cfg.epsilon = std::min(solver_cfg.epsilon, kMaxSafeExponent / B);
  // The engine never reads the final duals; skipping the export keeps a
  // clean epoch (nothing admitted) free of O(m) work in both modes.
  solver_cfg.export_duals = false;
  if (config_.payments == PaymentPolicy::kDualPrice) {
    solver_cfg.record_trace = true;  // admission-time alpha per winner
  }
  // Always on: the per-outcome counters (no_path/capacity_blocked/
  // lost_auction/shard_conflict) feed the det telemetry whether or not
  // a DecisionTrace is attached.
  solver_cfg.classify_rejections = true;

  // Persistent mode solves over the residual view (base edge ids, warm
  // workspace); snapshot mode over the compiled epoch instance. Same
  // algorithm, byte-identical output — the residual-differential oracle
  // pins this.
  std::optional<UfpInstance> instance;
  const BoundedUfpResult run = [&]() -> BoundedUfpResult {
    TUFP_SPAN("solve");
    if (persistent) {
      return bounded_ufp(rgraph_->view(), requests, solver_cfg,
                         workspace_.get());
    }
    instance.emplace(snapshot->graph(), requests);
    return bounded_ufp(*instance, solver_cfg);
  }();
  report.solver_iterations = run.iterations;
  report.sp_computations = run.sp_computations;
  report.sp_tree_runs = run.sp_tree_runs;
  report.dual_upper_bound = run.dual_upper_bound;
  metrics_.counters().solver_iterations += run.iterations;
  metrics_.counters().sp_computations += run.sp_computations;
  metrics_.counters().sp_tree_runs += run.sp_tree_runs;

  std::vector<double> payments(requests.size(), 0.0);
  {
    TUFP_SPAN("payments");
    apply_payments(requests, instance ? &*instance : nullptr, run, solver_cfg,
                   &payments);
  }

  TUFP_SPAN("commit");
  // run.rejections is ascending by request index, matching this loop:
  // one cursor walks both sequences in lockstep.
  std::size_t rej = 0;
  for (int r = 0; r < static_cast<int>(requests.size()); ++r) {
    if (!run.solution.is_selected(r)) {
      ++metrics_.counters().rejected;
      while (rej < run.rejections.size() && run.rejections[rej].request < r) {
        ++rej;
      }
      if (rej < run.rejections.size() && run.rejections[rej].request == r) {
        const RejectionRecord& rr = run.rejections[rej];
        obs::DecisionOutcome outcome = outcome_of(rr.reason);
        // Bottlenecks are snapshot ids in legacy mode: translate to base
        // ids so records are mode-invariant.
        std::int64_t bottleneck =
            rr.bottleneck >= 0
                ? static_cast<std::int64_t>(
                      persistent ? rr.bottleneck
                                 : snapshot->base_edge(rr.bottleneck))
                : -1;
        if (outcome == obs::DecisionOutcome::kNoPath) {
          // The solver's "no path" only means no route over edges above
          // the residual floor. When the base topology still connects
          // the terminals, the request was really capacity-blocked:
          // saturation cut every route, and the first below-floor edge
          // on the canonical base-BFS route names the cut.
          const Request& req = requests[static_cast<std::size_t>(r)];
          const BaseRouteProbe probe =
              probe_base_route(req.source, req.target);
          if (probe.reachable) {
            outcome = obs::DecisionOutcome::kCapacityBlocked;
            bottleneck = probe.bottleneck;
          }
        }
        switch (outcome) {
          case obs::DecisionOutcome::kNoPath:
            ++report.no_path;
            ++metrics_.counters().no_path;
            break;
          case obs::DecisionOutcome::kCapacityBlocked:
            ++report.capacity_blocked;
            ++metrics_.counters().capacity_blocked;
            break;
          case obs::DecisionOutcome::kShardConflict:
            ++report.shard_conflict;
            ++metrics_.counters().shard_conflict;
            break;
          default:
            ++report.lost_auction;
            ++metrics_.counters().lost_auction;
            break;
        }
        if (trace_ != nullptr) {
          const TimedRequest& timed =
              batch[static_cast<std::size_t>(batch_index[r])];
          obs::DecisionRecord rec;
          rec.sequence = timed.sequence;
          rec.epoch = report.epoch;
          rec.outcome = outcome;
          rec.close_time = close_time;
          rec.value = requests[static_cast<std::size_t>(r)].value;
          rec.demand = requests[static_cast<std::size_t>(r)].demand;
          rec.density = rr.density;
          rec.warm_tree = static_cast<std::size_t>(r) < run.warm.size() &&
                          run.warm[static_cast<std::size_t>(r)] != 0;
          rec.path.reserve(rr.path.size());
          for (const EdgeId e : rr.path) {
            rec.path.push_back(persistent ? e : snapshot->base_edge(e));
          }
          rec.bottleneck_edge = bottleneck;
          if (outcome == obs::DecisionOutcome::kShardConflict &&
              bottleneck >= 0) {
            rec.conflict_shard =
                trace_lattice_.shard_of(static_cast<EdgeId>(bottleneck));
          }
          trace_->record(rec);
        }
      }
      continue;
    }
    const Path& path = *run.solution.path_of(r);
    const double demand = requests[static_cast<std::size_t>(r)].demand;
    const double bid = requests[static_cast<std::size_t>(r)].value;
    const int bi = batch_index[static_cast<std::size_t>(r)];
    const TimedRequest& timed = batch[static_cast<std::size_t>(bi)];
    // The lease starts at the epoch close (the decision instant), not
    // the arrival: a request cannot hold capacity it was not yet
    // granted. Permanent (kInf) leases are recorded for occupancy but
    // never scheduled.
    const double expires =
        timed.duration < kInf ? close_time + timed.duration : kInf;
    // Both the ledger and the observer speak base edge ids; in snapshot
    // mode the path's snapshot ids are translated first.
    std::vector<EdgeId> base_edges;
    const bool need_base =
        ledger_ != nullptr || observer_ != nullptr || trace_ != nullptr;
    if (need_base) {
      base_edges.reserve(path.size());
      if (persistent) {
        base_edges.assign(path.begin(), path.end());
      } else {
        for (EdgeId e : path) base_edges.push_back(snapshot->base_edge(e));
      }
    }
    // Reservation point: the observer sees the winner before its
    // decrement lands (the reserve half of a two-phase protocol).
    if (observer_ != nullptr) {
      observer_->on_winner(timed.sequence, base_edges, demand, close_time,
                           expires);
    }
    if (trace_ != nullptr) {
      obs::DecisionRecord rec;
      rec.sequence = timed.sequence;
      rec.epoch = report.epoch;
      rec.outcome = obs::DecisionOutcome::kAdmitted;
      rec.close_time = close_time;
      rec.value = bid;
      rec.demand = demand;
      rec.path.assign(base_edges.begin(), base_edges.end());
      rec.payment = payments[static_cast<std::size_t>(r)];
      rec.warm_tree = static_cast<std::size_t>(r) < run.warm.size() &&
                      run.warm[static_cast<std::size_t>(r)] != 0;
      rec.admitted_at = close_time;
      rec.expires_at = expires;
      trace_->record(rec);
    }
    if (persistent) {
      // The solver already speaks base edge ids: commit the decrement +
      // stamp in place, no translation.
      rgraph_->commit_admission(path, demand);
    } else {
      for (EdgeId e : path) {
        const auto base_e = static_cast<std::size_t>(snapshot->base_edge(e));
        residual_[base_e] = std::max(0.0, residual_[base_e] - demand);
      }
    }
    if (ledger_) {
      ledger_->admit(timed.sequence, demand, std::move(base_edges),
                     close_time, expires);
      if (timed.duration < kInf) ++metrics_.counters().finite_leases;
    }
    ++metrics_.counters().admitted;
    ++report.admitted;
    report.admitted_value += bid;
    report.revenue += payments[static_cast<std::size_t>(r)];
    if (config_.record_allocations) {
      report.allocations.push_back(
          {timed.sequence, bi, bid, payments[static_cast<std::size_t>(r)],
           static_cast<int>(path.size())});
    }
  }
  metrics_.counters().admitted_value += report.admitted_value;
  metrics_.counters().revenue += report.revenue;
  if (ledger_) {
    refresh_lease_gauges();
    report.active_leases = metrics_.active_leases();
    report.occupancy = metrics_.occupancy();
  }

  report.solve_seconds = timer.elapsed_seconds();
  metrics_.solve_seconds().record(report.solve_seconds);
  trace_epoch_ = -1;
  if (observer_ != nullptr) observer_->on_epoch_end(report);
  return report;
}

void EpochEngine::apply_payments(std::span<const Request> requests,
                                 const UfpInstance* instance,
                                 const BoundedUfpResult& run,
                                 const BoundedUfpConfig& solver_cfg,
                                 std::vector<double>* payments) {
  switch (config_.payments) {
    case PaymentPolicy::kNone:
      return;
    case PaymentPolicy::kDualPrice: {
      // alpha_r = (d_r/v_r)*|p_r|_y at selection time, recorded in the
      // trace. pay = v * min(1, alpha): the congestion price of the
      // admitted path, capped at the bid for individual rationality.
      for (const IterationRecord& it : run.trace) {
        const double bid = requests[static_cast<std::size_t>(it.request)].value;
        (*payments)[static_cast<std::size_t>(it.request)] =
            bid * std::min(1.0, it.alpha);
      }
      return;
    }
    case PaymentPolicy::kCritical: {
      // The bisection probes need an epoch instance. Persistent mode has
      // none — compile it here from the frozen epoch-start residuals
      // (live residuals are untouched until the winner loop below, so
      // this is bit-for-bit the snapshot the legacy path would have
      // built, and with it the payments are byte-identical too). The
      // critical path is documented as the expensive policy; one compile
      // per *paying* epoch keeps the no-payment hot path allocation-free.
      std::optional<UfpInstance> local;
      if (instance == nullptr) {
        const GraphSnapshot snap = GraphSnapshot::compile(
            base_, rgraph_->epoch_capacities(), config_.min_usable_capacity);
        local.emplace(snap.graph(),
                      std::vector<Request>(requests.begin(), requests.end()));
        instance = &*local;
      }
      // Winner shard of the epoch clear: each winner's critical-value
      // bisection is an independent re-solve against the same immutable
      // epoch instance, so winners fan out across OpenMP threads and the
      // results land in per-winner slots — byte-identical for any thread
      // count, read back in arrival order by the allocation loop. The
      // probe solves run serial (identical output): parallelism lives at
      // the winner level here, and a parallel inner config would only
      // allocate engine pools a nested region cannot use — or
      // oversubscribe when nested OpenMP is enabled.
      BoundedUfpConfig probe_cfg = solver_cfg;
      probe_cfg.parallel = false;
      const UfpRule rule = make_bounded_ufp_rule(probe_cfg);
      std::vector<int> winners;
      for (int r = 0; r < instance->num_requests(); ++r) {
        if (run.solution.is_selected(r)) winners.push_back(r);
      }
      const auto price_winner = [&](int r) {
        const double critical =
            ufp_critical_value(*instance, rule, r, config_.payment_options);
        (*payments)[static_cast<std::size_t>(r)] =
            std::min(critical, instance->request(r).value);
      };
#if defined(TUFP_HAVE_OPENMP)
      if (config_.solver.parallel && winners.size() > 1) {
        const int pool = effective_num_threads(config_.solver.num_threads);
#pragma omp parallel for schedule(dynamic, 1) num_threads(pool)
        for (std::size_t i = 0; i < winners.size(); ++i) {
          price_winner(winners[i]);
        }
        return;
      }
#endif
      for (const int r : winners) price_winner(r);
      return;
    }
  }
}

}  // namespace tufp
