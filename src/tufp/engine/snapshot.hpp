// GraphSnapshot — the immutable per-epoch view of the network.
//
// The streaming engine never mutates the base topology. Each epoch it
// compiles the base graph plus the residual capacities carried over from
// all previous epochs into a fresh snapshot: a finalized CSR `tufp::Graph`
// holding only the edges that can still carry a full-size request, with
// capacity equal to the remaining headroom. Solving Bounded-UFP on the
// snapshot is therefore solving the residual instance, and the paper's
// preconditions hold by construction: demands are normalized to (0,1] and
// every snapshot edge has capacity >= min_usable_capacity (default 1.0,
// the normalized maximum demand), so B >= 1 (DESIGN.md §7).
//
// Edges whose residual drops below the floor are *saturated*: they leave
// the snapshot entirely rather than shipping a tiny capacity that would
// drag B below 1. This is conservative — a 0.7-residual edge could still
// serve a 0.3-demand request — but it is what keeps every epoch a valid
// B-bounded instance, and in the paper's large-capacity regime the lost
// fraction is at most 1/B of the edge. Vertex ids are shared with the base
// graph, so requests need no translation; edge ids are remapped and
// `base_edge()` translates snapshot paths back for the residual update.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tufp/graph/graph.hpp"

namespace tufp {

class GraphSnapshot {
 public:
  // Compiles the residual view. `residual` is indexed by base EdgeId and
  // must match base->num_edges(); entries must not exceed the base
  // capacities. The snapshot keeps base edges with
  // residual >= min_usable_capacity.
  static GraphSnapshot compile(std::shared_ptr<const Graph> base,
                               std::span<const double> residual,
                               double min_usable_capacity = 1.0);

  // The compiled residual graph. Finalized; may have zero edges when the
  // network is fully saturated (then it cannot back a UfpInstance and the
  // epoch must be skipped — see EpochEngine).
  const std::shared_ptr<const Graph>& graph() const { return graph_; }
  const std::shared_ptr<const Graph>& base() const { return base_; }

  // Translates a snapshot edge id back to the base edge id.
  EdgeId base_edge(EdgeId snapshot_edge) const {
    return edge_map_[static_cast<std::size_t>(snapshot_edge)];
  }
  std::span<const EdgeId> edge_map() const { return edge_map_; }

  int num_active_edges() const { return static_cast<int>(edge_map_.size()); }
  int num_saturated_edges() const { return num_saturated_; }

  // min residual over active edges — the epoch's bound B. +inf when no
  // edge is active.
  double min_residual() const { return min_residual_; }

 private:
  GraphSnapshot() = default;

  std::shared_ptr<const Graph> base_;
  std::shared_ptr<const Graph> graph_;
  std::vector<EdgeId> edge_map_;
  int num_saturated_ = 0;
  double min_residual_ = 0.0;
};

}  // namespace tufp
