#include "tufp/engine/request_stream.hpp"

#include <cmath>
#include <utility>

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

// Exponential inter-arrival sample via inverse CDF. next_double() is in
// [0,1); flip to (0,1] so log() never sees zero.
double exponential_gap(Rng& rng, double rate) {
  return -std::log(1.0 - rng.next_double()) / rate;
}

// Private seed stream for the duration sampler: distinct from both the
// body RNG (raw seed) and the arrival RNG (~seed), so adding or removing
// durations never shifts what the other two draw.
std::uint64_t duration_seed(std::uint64_t seed) {
  return SplitMix64(seed ^ 0x7e3a9c155d2f8b41ULL).next();
}

}  // namespace

PoissonStream::PoissonStream(std::shared_ptr<const Graph> graph,
                             const RequestGenConfig& config, double rate,
                             std::int64_t limit, std::uint64_t seed,
                             const DurationConfig& durations)
    : graph_(std::move(graph)),
      sampler_(*graph_, config),
      rng_(seed),
      arrival_rng_(SplitMix64(~seed).next()),
      durations_(durations, duration_seed(seed)),
      rate_(rate),
      limit_(limit) {
  TUFP_REQUIRE(rate > 0.0, "Poisson rate must be positive");
  TUFP_REQUIRE(limit >= 0, "negative stream limit");
}

bool PoissonStream::next(TimedRequest* out) {
  TUFP_REQUIRE(out != nullptr, "next() needs an output slot");
  if (emitted_ >= limit_) return false;
  clock_ += exponential_gap(arrival_rng_, rate_);
  out->arrival_time = clock_;
  out->sequence = emitted_++;
  out->duration = durations_.sample(clock_);
  out->request = sampler_.sample(rng_);
  return true;
}

BurstStream::BurstStream(std::shared_ptr<const Graph> graph,
                         const RequestGenConfig& config, double period,
                         int burst_size, std::int64_t limit,
                         std::uint64_t seed,
                         const DurationConfig& durations)
    : graph_(std::move(graph)),
      sampler_(*graph_, config),
      rng_(seed),
      durations_(durations, duration_seed(seed)),
      period_(period),
      burst_size_(burst_size),
      limit_(limit) {
  TUFP_REQUIRE(period > 0.0, "burst period must be positive");
  TUFP_REQUIRE(burst_size >= 1, "burst size must be positive");
  TUFP_REQUIRE(limit >= 0, "negative stream limit");
}

bool BurstStream::next(TimedRequest* out) {
  TUFP_REQUIRE(out != nullptr, "next() needs an output slot");
  if (emitted_ >= limit_) return false;
  const std::int64_t burst_index = emitted_ / burst_size_;
  out->arrival_time = static_cast<double>(burst_index) * period_;
  out->sequence = emitted_++;
  out->duration = durations_.sample(out->arrival_time);
  out->request = sampler_.sample(rng_);
  return true;
}

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity)
    : capacity_(capacity) {
  TUFP_REQUIRE(capacity >= 1, "queue capacity must be positive");
}

bool BoundedRequestQueue::push(const TimedRequest& request) {
  if (queue_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  queue_.push_back(request);
  return true;
}

bool BoundedRequestQueue::pop(TimedRequest* out) {
  TUFP_REQUIRE(out != nullptr, "pop() needs an output slot");
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  return true;
}

}  // namespace tufp
