#include "tufp/engine/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tufp/util/assert.hpp"
#include "tufp/util/json.hpp"
#include "tufp/util/table.hpp"

namespace tufp {

GeometricHistogram::GeometricHistogram(double min_value, double growth,
                                       int num_buckets)
    : min_value_(min_value),
      log_growth_(std::log(growth)),
      buckets_(static_cast<std::size_t>(num_buckets), 0) {
  TUFP_REQUIRE(min_value > 0.0, "histogram min_value must be positive");
  TUFP_REQUIRE(growth > 1.0, "histogram growth must exceed 1");
  TUFP_REQUIRE(num_buckets >= 1, "histogram needs at least one bucket");
}

void GeometricHistogram::record(double value) {
  TUFP_REQUIRE(value >= 0.0, "histogram values must be non-negative");
  std::size_t index = 0;
  if (value > min_value_) {
    const double raw = std::log(value / min_value_) / log_growth_;
    index = std::min(buckets_.size() - 1,
                     static_cast<std::size_t>(std::max(0.0, raw)));
  }
  ++buckets_[index];
  ++total_;
  stats_.add(value);
}

void GeometricHistogram::merge(const GeometricHistogram& other) {
  TUFP_REQUIRE(buckets_.size() == other.buckets_.size() &&
                   min_value_ == other.min_value_ &&
                   log_growth_ == other.log_growth_,
               "histogram merge requires identical bucket layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  stats_.merge(other.stats_);
}

double GeometricHistogram::percentile(double q) const {
  TUFP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  if (total_ == 0) return 0.0;
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return min_value_ * std::exp(log_growth_ * static_cast<double>(i + 1));
    }
  }
  return min_value_ *
         std::exp(log_growth_ * static_cast<double>(buckets_.size()));
}

std::string GeometricHistogram::to_json() const {
  // Empty histograms short-circuit to a pinned literal: no bucket-edge
  // arithmetic, no RunningStats reads — nothing that could push a nan or
  // inf through the %.17g formatter into a det event
  // (GeometricHistogram.EmptyHistogramSerializesCleanly).
  if (total_ == 0) {
    JsonObject empty;
    empty.field("count", std::int64_t{0}).raw("buckets", "[]");
    return empty.str();
  }
  std::ostringstream buckets;
  buckets << '[';
  bool first = true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    // Edges recomputed exactly as percentile() does: min * growth^i.
    const double lo =
        min_value_ * std::exp(log_growth_ * static_cast<double>(i));
    const double hi =
        min_value_ * std::exp(log_growth_ * static_cast<double>(i + 1));
    if (!first) buckets << ',';
    first = false;
    buckets << '[' << json_double(lo) << ',' << json_double(hi) << ','
            << buckets_[i] << ']';
  }
  buckets << ']';
  JsonObject obj;
  obj.field("count", total_).raw("buckets", buckets.str());
  return obj.str();
}

double EngineMetrics::admitted_fraction() const {
  const std::int64_t offered = counters_.admitted + counters_.rejected;
  return offered > 0
             ? static_cast<double>(counters_.admitted) / static_cast<double>(offered)
             : 0.0;
}

std::string EngineMetrics::summary(bool include_wall_clock) const {
  std::ostringstream os;
  const EngineCounters& c = counters_;
  os << "epochs=" << c.epochs << " requests=" << c.requests_seen
     << " queue_dropped=" << c.queue_dropped << " admitted=" << c.admitted
     << " rejected=" << c.rejected << " invalid=" << c.invalid_rejected
     << "\n"
     << "rejects: no_path=" << c.no_path
     << " capacity_blocked=" << c.capacity_blocked
     << " lost_auction=" << c.lost_auction
     << " shard_conflict=" << c.shard_conflict << "\n"
     << "admitted_fraction=" << Table::format_double(admitted_fraction(), 4)
     << " offered_value=" << Table::format_double(c.offered_value, 2)
     << " admitted_value=" << Table::format_double(c.admitted_value, 2)
     << " revenue=" << Table::format_double(c.revenue, 2) << "\n"
     << "solver_iterations=" << c.solver_iterations
     << " sp_computations=" << c.sp_computations
     << " sp_tree_runs=" << c.sp_tree_runs << " admission_delay_p50="
     << Table::format_double(admission_delay_.percentile(0.5), 4)
     << " p99=" << Table::format_double(admission_delay_.percentile(0.99), 4)
     << "\n";
  // Lease line only when the run actually used finite durations: an
  // all-infinite workload prints exactly the pre-temporal summary (the
  // committed golden traces rely on this).
  if (c.finite_leases > 0 || c.leases_expired > 0) {
    os << "leases_finite=" << c.finite_leases
       << " leases_expired=" << c.leases_expired
       << " active_leases=" << active_leases_
       << " occupancy=" << Table::format_double(occupancy_, 4) << "\n";
  }
  // Same discipline for the warm-tree reclaim counters: only runs where
  // a reclaim actually met a populated tree cache print the line.
  if (c.trees_kept_on_reclaim > 0 || c.trees_dropped_on_reclaim > 0) {
    os << "trees_kept_on_reclaim=" << c.trees_kept_on_reclaim
       << " trees_dropped_on_reclaim=" << c.trees_dropped_on_reclaim << "\n";
  }
  if (include_wall_clock && solve_seconds_.count() > 0) {
    os << "solve_seconds_mean="
       << Table::format_double(solve_seconds_.stats().mean(), 6)
       << " p99=" << Table::format_double(solve_seconds_.percentile(0.99), 6)
       << " max=" << Table::format_double(solve_seconds_.stats().max(), 6)
       << "\n";
  }
  return os.str();
}

}  // namespace tufp
