// ShardedEpochEngine — N region shards behind one deterministic decider
// (DESIGN.md §13).
//
// Architecture: the epoch clear stays a single global Bounded-UFP solve —
// the decider — which fixes the winner set and its canonical order
// exactly as the single-engine path does (same code, byte-identical
// reports by construction; the sharded-differential oracle pins it). The
// sharding is real at the state-of-record layer: the base edge space is
// partitioned into contiguous CSR windows (shard/partition.hpp), each
// owned by a ShardEngine holding its own residual store, change clock and
// lease book, and every admission flows through a two-phase
// reserve/commit protocol along the winner's shard sequence:
//
//   phase 1  reservations acquired shard-by-shard in ascending shard id
//            (the canonical lock order — no deadlock, no
//            interleaving-dependence); a second winner reserving an
//            already-reserved edge is a counted CONFLICT, resolved by the
//            decider's lex-min/value-density winner order;
//   phase 2  commits applied in the same shard order; on any phase-1
//            refusal the acquired shards release in reverse order and the
//            round is a counted ABORT (provably dead for genuine winner
//            sets — the capacity guard admits only jointly feasible sets
//            — so the coordinator treats one as an invariant breach).
//
// The coordinator subscribes to the engine's AdmissionObserver hooks, all
// of which fire on the serial commit loop in canonical order, so every
// shard's state is a pure function of the admission history: independent
// of thread count, SP kernel, and message interleaving. verify() audits
// shard state against the global stores with exact (==) comparisons; the
// shard-conserve oracle runs it every epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tufp/engine/epoch_engine.hpp"
#include "tufp/shard/partition.hpp"
#include "tufp/shard/shard_engine.hpp"

namespace tufp {

// One epoch's per-shard protocol activity: counter deltas over the
// epoch, merged deterministically (ascending shard id) from the shard
// engines when the epoch's report closes.
struct ShardEpochReport {
  int epoch = -1;
  // Winners whose path crossed more than one shard this epoch.
  std::int64_t cross_shard_winners = 0;
  std::vector<shard::ShardCounters> per_shard;  // ascending shard id
};

class ShardedEpochEngine final : public AdmissionObserver {
 public:
  ShardedEpochEngine(std::shared_ptr<const Graph> base_graph,
                     EpochEngineConfig config, int num_shards);
  ~ShardedEpochEngine() override;

  ShardedEpochEngine(const ShardedEpochEngine&) = delete;
  ShardedEpochEngine& operator=(const ShardedEpochEngine&) = delete;

  // The decider. Drive it exactly like a plain EpochEngine (run,
  // run_epoch, reclaim_expired, metrics, ...); the shard layer observes
  // every admission through the hooks regardless of entry point.
  EpochEngine& engine() { return *engine_; }
  const EpochEngine& engine() const { return *engine_; }

  const shard::ShardPlan& plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards(); }
  const shard::ShardEngine& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  // Lifetime totals across shards (sums of per-shard counters) plus
  // coordinator-level winner accounting.
  shard::ShardCounters totals() const;
  std::int64_t winners() const { return winners_; }
  std::int64_t cross_shard_winners() const { return cross_shard_winners_; }

  // Per-epoch activity, one entry per cleared epoch, in epoch order.
  const std::vector<ShardEpochReport>& epoch_reports() const {
    return epoch_reports_;
  }

  // Runs one winner through the two-phase protocol against the current
  // shard state. The engine hook calls this and requires success;
  // exposed so the abort/release path can be exercised directly with an
  // infeasible demand (tests only — a direct call advances shard state
  // past the engine's).
  bool try_admit(std::int64_t epoch, std::span<const EdgeId> base_edges,
                 double demand);

  // Exact (==) audit of every shard against the engine's residual store
  // and lease ledger. Empty means consistent.
  std::vector<std::string> verify() const;

  // Resets the decider and every shard to the fresh-world state.
  void reset();

  // AdmissionObserver (engine-facing; do not call directly).
  void on_epoch_start(int epoch, double close_time) override;
  void on_winner(std::int64_t sequence, std::span<const EdgeId> base_edges,
                 double demand, double close_time,
                 double expires_at) override;
  void on_reclaimed(std::span<const temporal::Lease> drained) override;
  void on_epoch_end(const AdmissionReport& report) override;

 private:
  // Splits `base_edges` by owning shard into shard_edges_ scratch,
  // filling shard_seq_ with the canonical (ascending, deduplicated)
  // shard sequence.
  void split_by_shard(std::span<const EdgeId> base_edges);

  std::unique_ptr<EpochEngine> engine_;
  shard::ShardPlan plan_;
  std::vector<shard::ShardEngine> shards_;

  // Scratch for one winner/lease: per-shard in-window edge lists (path
  // order) and the canonical shard sequence. Reused across calls.
  std::vector<std::vector<EdgeId>> shard_edges_;
  std::vector<int> shard_seq_;

  std::vector<ShardEpochReport> epoch_reports_;
  std::vector<shard::ShardCounters> epoch_base_;  // totals at epoch start
  std::int64_t current_epoch_ = -1;
  std::int64_t winners_ = 0;
  std::int64_t cross_shard_winners_ = 0;
  std::int64_t epoch_cross_shard_winners_ = 0;
};

}  // namespace tufp
