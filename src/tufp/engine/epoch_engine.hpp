// EpochEngine — epoch-batched online UFP auctions over graph snapshots.
//
// The serving layer on top of the paper's one-shot mechanism. Bids arrive
// continuously (engine/request_stream.hpp); the engine batches them into
// epochs and clears each epoch as a Bounded-UFP auction on the *residual*
// network: a GraphSnapshot compiled from the base topology minus the
// capacity held by every currently *leased* request. An admission is a
// lease (temporal/lease_ledger.hpp): requests carry a duration, infinite
// by default — which reproduces the historical hold-forever semantics
// byte-for-byte — and finite otherwise, in which case the lease's
// capacity returns to the residual when it expires. Expiries are drained
// at every epoch boundary, before the epoch's snapshot is compiled, in
// deterministic (expiry time, lease id) order off a hierarchical timer
// wheel, so the per-epoch reclaim cost is amortized O(1) per expiry and
// the admission history stays byte-identical across thread counts. Each
// epoch remains a per-auction application of the paper's mechanism over
// the residual left by expired *and* active leases, so the monotonicity/
// exactness guarantees are untouched (§5's repeated-auction view, now
// with the good genuinely recurring).
//
// Each epoch is deterministic: Bounded-UFP with the capacity guard is
// deterministic for any OpenMP thread count (detail/sp_cache.hpp), the
// stream adapters are seed-deterministic, and the engine adds no other
// randomness — so the full admission history is byte-identical across
// thread counts and runs (the determinism tests pin this).
//
// Payments per epoch (DESIGN.md §7):
//   * kCritical — the paper's critical-value payment computed by bisection
//     against the epoch instance. Truthful (Thm 2.3) but each winner costs
//     O(log(1/tol)) full re-solves; intended for moderate epoch sizes.
//   * kDualPrice — posted congestion price frozen at admission time:
//     pay_r = v_r * min(1, alpha_r) where alpha_r = (d_r/v_r)*|p_r|_y is
//     the normalized dual length of the winning path at selection. Cheap
//     (read off the solver trace), individually rational by the cap, but
//     only an approximation of the critical value — the throughput
//     setting's trade-off.
//   * kNone — allocation only, all payments zero.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "tufp/engine/metrics.hpp"
#include "tufp/engine/request_stream.hpp"
#include "tufp/engine/snapshot.hpp"
#include "tufp/graph/residual_csr.hpp"
#include "tufp/mechanism/critical_payment.hpp"
#include "tufp/shard/partition.hpp"
#include "tufp/temporal/lease_ledger.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/workspace.hpp"

namespace tufp {

namespace obs {
class DecisionTrace;  // obs/trace.hpp
}

enum class PaymentPolicy { kNone, kDualPrice, kCritical };

struct EpochEngineConfig {
  // Admissions per epoch are capped at max_batch requests. With
  // epoch_duration > 0 epochs close on the virtual clock (multiples of
  // epoch_duration seconds) and the bounded queue carries overflow between
  // windows; with epoch_duration == 0 epochs close by count alone.
  int max_batch = 4096;
  double epoch_duration = 0.0;
  // In count-based mode the effective capacity is at least max_batch
  // (nothing is shed when there is no time pressure).
  std::size_t queue_capacity = 1 << 16;

  // Residual floor below which an edge leaves the snapshot. Must be >= 1
  // (the maximum normalized demand) so every epoch keeps B >= 1; the
  // constructor rejects smaller values.
  double min_usable_capacity = 1.0;

  PaymentPolicy payments = PaymentPolicy::kDualPrice;
  PaymentOptions payment_options;  // kCritical bisection control

  // Per-epoch solver settings. The engine forces capacity_guard on
  // (residual carry-over is meaningless without feasible epochs) and
  // lowers epsilon to kMaxSafeExponent / B when an epoch's residual bound
  // B would overflow the weight exponent. run_to_saturation defaults on:
  // epochs run far outside the Omega(ln m) regime once the network fills,
  // and the faithful threshold would stop admitting long before capacity
  // is actually exhausted.
  BoundedUfpConfig solver = [] {
    BoundedUfpConfig cfg;
    cfg.capacity_guard = true;
    cfg.run_to_saturation = true;
    return cfg;
  }();

  // Temporal leases (DESIGN.md §10). On: every admission is recorded in
  // the lease ledger, finite-duration admissions return their capacity at
  // expiry, and expiries drain at each epoch boundary. Off: the ledger is
  // never built and requests' durations are ignored — the pre-temporal
  // code path, kept as the baseline the temporal-infinite differential
  // oracle diffs against.
  bool track_leases = true;
  // Timer-wheel tick (virtual seconds). Performance knob only; expiry
  // comparisons stay exact at any tick.
  double lease_tick_seconds = 0.05;

  // Persistent residual graph (DESIGN.md §12). On (the default) the
  // engine keeps ONE struct-of-arrays residual store for the life of the
  // world and clears each epoch against it through the ResidualView hot
  // path: open_epoch() rescans the activity mask in place, the solver
  // reads base edge ids directly (no snapshot compile, no edge-id
  // translation), and a cross-epoch UfpWorkspace carries the sp_cache's
  // engine pool, shard plan and stamp-validated shortest-path trees
  // between epochs. Off: the legacy GraphSnapshot-per-epoch path, kept
  // as the differential baseline — the residual-differential sim oracle
  // proves both modes byte-identical.
  bool persistent_residual = true;

  // Keep per-request AdmissionRecords in each report (tests, small runs).
  bool record_allocations = false;

  // FAULT INJECTION — never set outside oracle-bite tests. Fraction of
  // each expired lease's per-edge demand that the reclaim path "loses"
  // instead of returning to the residual: the engine-side twin of the sim
  // suite's kLeakExpiredCapacity (sim/oracles.hpp), breaking lease
  // conservation so the in-service sanity checks (obs/sanity.hpp) and
  // tufp_serve --sanity can prove they catch a real reclaim bug.
  double inject_reclaim_leak = 0.0;
};

// One admitted request, reported with its clearing price.
struct AdmissionRecord {
  std::int64_t sequence = -1;  // stream sequence number
  int request = -1;            // index within the epoch batch
  double bid = 0.0;
  double payment = 0.0;
  int path_edges = 0;
};

// Outcome of one epoch's auction. Every field except solve_seconds is a
// deterministic function of stream seed + engine config.
struct AdmissionReport {
  int epoch = -1;
  int batch_size = 0;
  int admitted = 0;
  // Malformed bids in this batch (non-positive value/demand, demand > 1,
  // bad endpoints): shed before the auction instead of poisoning it.
  int invalid_rejected = 0;
  // Per-outcome rejection split (DESIGN.md §14): every rejected valid
  // request lands in exactly one bucket, classified at the solver's
  // serial exit (bounded_ufp.hpp RejectReason) — deterministic across
  // kernels, thread counts and shard layouts, so telemetry gates on them
  // exactly. no_path + capacity_blocked + lost_auction + shard_conflict
  // == batch_size - invalid_rejected - admitted.
  int no_path = 0;
  int capacity_blocked = 0;
  int lost_auction = 0;
  int shard_conflict = 0;
  double close_time = 0.0;       // virtual clock at which the epoch cleared
  double offered_value = 0.0;
  double admitted_value = 0.0;
  double revenue = 0.0;
  double dual_upper_bound = 0.0;  // Claim 3.6 bound for the epoch instance
  int active_edges = 0;           // snapshot size
  int saturated_edges = 0;
  double min_residual = 0.0;      // epoch bound B (over active edges)
  int solver_iterations = 0;
  std::int64_t sp_computations = 0;
  std::int64_t sp_tree_runs = 0;  // Dijkstra tree searches (source shards)
  // Lease churn at this epoch boundary (deterministic): expiries drained
  // before the snapshot was compiled, the active lease count and the
  // occupancy (leased capacity / total base capacity) after the clear.
  int expired_leases = 0;
  std::int64_t active_leases = 0;
  double occupancy = 0.0;
  // Requests still queued when this epoch's batch was drawn (run() fills
  // it; external drivers clearing explicit batches set it themselves).
  // Deterministic: the queue is a pure function of the stream and config.
  std::int64_t queue_depth = 0;
  double max_admission_delay = 0.0;  // virtual seconds, deterministic
  double solve_seconds = 0.0;        // wall clock — NOT deterministic
  double reclaim_seconds = 0.0;      // wall clock — NOT deterministic
  std::vector<AdmissionRecord> allocations;  // when record_allocations
};

// Serial observation points on the engine's admission path, the hook
// surface the sharded admission layer (engine/sharded_engine.hpp) builds
// on. Every callback fires on the engine's single-threaded commit loop,
// in canonical order — epochs in sequence, winners of an epoch in
// request-index (lex-min tie-broken) order, reclaims in the ledger's
// (expiry, lease id) drain order — so an observer's state is a pure
// function of the admission history, independent of thread count and
// kernel. Observers must not mutate the engine; the byte-identity
// guarantee (sharded == single, residual-differential) depends on it.
class AdmissionObserver {
 public:
  virtual ~AdmissionObserver() = default;
  // Entry of every epoch clear, before the boundary reclaim.
  virtual void on_epoch_start(int epoch, double close_time) = 0;
  // One winner, immediately BEFORE its residual decrement is committed —
  // the reservation point of a two-phase protocol. `base_edges` is the
  // winning path in base edge ids (translated in snapshot mode);
  // `expires_at` is kInf for permanent admissions.
  virtual void on_winner(std::int64_t sequence,
                         std::span<const EdgeId> base_edges, double demand,
                         double close_time, double expires_at) = 0;
  // Leases drained at a reclaim point, in drain order. Never empty.
  virtual void on_reclaimed(std::span<const temporal::Lease> drained) = 0;
  // Exit of every epoch clear, report complete.
  virtual void on_epoch_end(const AdmissionReport& report) = 0;
};

// Lifetime aggregate returned by run().
struct EngineSummary {
  EngineCounters counters;
  double admitted_fraction = 0.0;
  // Final lease gauges (deterministic; zero without track_leases).
  std::int64_t active_leases = 0;
  double occupancy = 0.0;
  double wall_seconds = 0.0;          // NOT deterministic
  double requests_per_second = 0.0;   // NOT deterministic
};

class EpochEngine {
 public:
  EpochEngine(std::shared_ptr<const Graph> base_graph,
              EpochEngineConfig config);

  // Drains `stream` to exhaustion, clearing epochs as configured.
  // `on_epoch` (optional) observes every report as it is produced.
  EngineSummary run(
      RequestStream& stream,
      const std::function<void(const AdmissionReport&)>& on_epoch = {});

  // Clears one epoch over an explicit batch against the current residual
  // state. Building block of run(); exposed for tests and custom drivers.
  // The single-argument form closes at the last arrival in the batch; the
  // two-argument form closes at an explicit virtual time >= every arrival
  // (what a time- or occupancy-triggered driver like tufp_serve needs:
  // the decision instant is the trigger, not the last arrival).
  AdmissionReport run_epoch(const std::vector<TimedRequest>& batch);
  AdmissionReport run_epoch(const std::vector<TimedRequest>& batch,
                            double close_time);

  // Current residual capacity per base EdgeId (whichever store is live:
  // the persistent graph or the legacy vector).
  std::span<const double> residual() const {
    return rgraph_ ? rgraph_->residual()
                   : std::span<const double>(residual_);
  }
  const Graph& base_graph() const { return *base_; }
  const EngineMetrics& metrics() const { return metrics_; }
  const EpochEngineConfig& config() const { return config_; }
  int epochs_run() const { return epoch_; }

  // Drains every lease expired by virtual time `now` (clamped to the
  // ledger clock, which never runs backwards), returning their capacity
  // to the residual. Epoch boundaries call this automatically; exposed
  // for drivers that advance the clock past the last arrival (the
  // `--horizon` flag, the temporal-no-leak oracle). Returns the number of
  // leases reclaimed; always 0 without track_leases.
  int reclaim_expired(double now);

  // The lease ledger, or nullptr without track_leases.
  const temporal::LeaseLedger* lease_ledger() const { return ledger_.get(); }

  // The persistent residual store / cross-epoch solver workspace, or
  // nullptr when persistent_residual is off (tests, telemetry).
  const ResidualGraph* residual_graph() const { return rgraph_.get(); }
  const UfpWorkspace* workspace() const { return workspace_.get(); }

  // Stream-level ingestion counters for external drivers (tufp_serve)
  // that batch their own queue instead of going through run(): requests
  // pulled from the wire and requests shed by the driver's bounded queue.
  // run() maintains these itself; mixing run() with external accounting
  // in one engine would double-count.
  void record_ingest(std::int64_t requests_seen, std::int64_t queue_dropped) {
    metrics_.counters().requests_seen += requests_seen;
    metrics_.counters().queue_dropped += queue_dropped;
  }

  // Wire-level malformed input shed by an external driver before it could
  // become a request (framing errors: oversized or truncated lines).
  // Folded into the same invalid_rejected counter the per-epoch bid
  // validation feeds — invalid is invalid, whichever layer catches it.
  void record_invalid(std::int64_t n) {
    metrics_.counters().invalid_rejected += n;
  }

  // Attaches the admission observer (nullptr to detach). At most one;
  // the engine does not own it.
  void set_admission_observer(AdmissionObserver* observer) {
    observer_ = observer;
  }

  // Attaches a decision-provenance trace (obs/trace.hpp; nullptr to
  // detach, not owned). Every request offered to the engine then
  // terminates in exactly one DecisionRecord, emitted on the serial
  // commit path in canonical order: reclaim drains first, then invalid
  // sheds in batch order, then per-request outcomes in ascending request
  // order. Per-outcome counters fill with or without a trace attached.
  void set_decision_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  // Forgets all admissions: residual back to base capacities, metrics,
  // leases and epoch counter to zero.
  void reset();

 private:
  AdmissionReport clear_epoch(const std::vector<TimedRequest>& batch,
                              double close_time);
  // `instance` is the epoch instance in snapshot mode, nullptr in
  // persistent mode (kCritical compiles one lazily — see the .cpp).
  void apply_payments(std::span<const Request> requests,
                      const UfpInstance* instance, const BoundedUfpResult& run,
                      const BoundedUfpConfig& solver_cfg,
                      std::vector<double>* payments);
  void refresh_lease_gauges();

  // no_path -> capacity_blocked refinement (DESIGN.md §14). The solver's
  // "no path" verdict means no route over edges above the residual floor;
  // whether the terminals are connected AT ALL is a property of the base
  // topology. probe_base_route() answers both: reachable == false is a
  // true no_path (the terminals are disconnected however empty the
  // network is), reachable == true reclassifies the rejection as
  // capacity_blocked with the first edge on the canonical base-BFS route
  // the live residual holds below the floor as its bottleneck.
  struct BaseBfsTree {
    std::vector<VertexId> parent_vertex;  // kInvalidVertex = unvisited
    std::vector<EdgeId> parent_edge;
  };
  struct BaseRouteProbe {
    bool reachable = false;        // in the base topology
    std::int64_t bottleneck = -1;  // first edge below the usable floor
  };
  const BaseBfsTree& base_bfs(VertexId source);
  BaseRouteProbe probe_base_route(VertexId source, VertexId target);

  std::shared_ptr<const Graph> base_;
  EpochEngineConfig config_;
  std::vector<double> residual_;  // legacy-mode store; unused when rgraph_
  // Reclaim batch scratch: the epoch's drained lease edges, concatenated
  // for the warm-tree revalidation pass (allocation-free steady state).
  std::vector<EdgeId> reclaimed_scratch_;
  std::unique_ptr<ResidualGraph> rgraph_;
  std::unique_ptr<UfpWorkspace> workspace_;
  std::unique_ptr<temporal::LeaseLedger> ledger_;
  double total_capacity_ = 0.0;
  EngineMetrics metrics_;
  AdmissionObserver* observer_ = nullptr;
  obs::DecisionTrace* trace_ = nullptr;
  // Canonical trace lattice: shard_conflict records name the shard that
  // owns the bottleneck edge under this FIXED 8-way partition of the
  // base edge space — a pure function of the topology, deliberately
  // independent of the runtime `--shards N` layout so decision records
  // stay byte-identical across shard counts (DESIGN.md §14).
  shard::ShardPlan trace_lattice_;
  // Memoized base-topology BFS parent trees, one per distinct rejected
  // source. The base graph is immutable, so trees never invalidate; only
  // the bottleneck scan reads live residual state.
  std::map<VertexId, BaseBfsTree> base_bfs_trees_;
  std::vector<EdgeId> route_scratch_;  // probe path reconstruction
  // Epoch id decision records are attributed to while clear_epoch is on
  // the stack; -1 between epochs (an external reclaim_expired drain —
  // the --horizon path — then attributes to the next epoch id).
  std::int64_t trace_epoch_ = -1;
  int epoch_ = 0;
};

}  // namespace tufp
