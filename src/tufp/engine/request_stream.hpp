// Request streams — the ingestion side of the admission engine.
//
// A RequestStream yields timestamped bid requests in arrival order on a
// virtual clock (seconds since stream start). The adapters below are
// *open-loop*: arrival times are drawn from the traffic model independently
// of how fast the engine drains them, which is the honest way to load-test
// an admission system (a closed loop would throttle offered load to match
// capacity and hide saturation). Request bodies are drawn from
// workload/request_gen over the base graph, so a streaming workload with
// seed s offers exactly the requests the batch generator would produce
// with the same seed.
//
// BoundedRequestQueue is the buffer between ingestion and the epoch loop:
// FIFO with a hard capacity and tail-drop overflow, the standard router
// discipline. Everything here is deterministic given the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "tufp/temporal/duration.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {

struct TimedRequest {
  double arrival_time = 0.0;   // virtual seconds since stream start
  std::int64_t sequence = 0;   // 0-based arrival index, unique per stream
  // Requested lease duration in virtual seconds (temporal/duration.hpp);
  // kInf holds the capacity forever — the pre-temporal semantics.
  double duration = kInf;
  Request request;
};

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  // Yields the next request in nondecreasing arrival-time order. Returns
  // false when the stream is exhausted (*out untouched).
  virtual bool next(TimedRequest* out) = 0;
};

// Poisson process: exponential inter-arrival times at `rate` requests per
// virtual second, `limit` requests total. The arrival clock draws from its
// own RNG stream (derived from the seed), so request bodies consume the
// seed exactly like the batch generator and the offered-workload
// equivalence above holds.
// Both adapters accept a DurationConfig: each emitted request carries a
// lease duration drawn by a DurationSampler from its *own* RNG stream
// (derived from the seed), so the request/arrival sampling is untouched —
// the default kInfinite profile consumes no randomness and the stream is
// byte-identical to its pre-temporal self.
class PoissonStream final : public RequestStream {
 public:
  PoissonStream(std::shared_ptr<const Graph> graph,
                const RequestGenConfig& config, double rate,
                std::int64_t limit, std::uint64_t seed,
                const DurationConfig& durations = {});

  bool next(TimedRequest* out) override;

 private:
  std::shared_ptr<const Graph> graph_;
  RequestSampler sampler_;
  Rng rng_;
  Rng arrival_rng_;
  DurationSampler durations_;
  double rate_;
  std::int64_t limit_;
  std::int64_t emitted_ = 0;
  double clock_ = 0.0;
};

// Burst process: every `period` virtual seconds, `burst_size` requests
// arrive simultaneously — the flash-crowd / top-of-the-hour pattern that
// stresses the bounded queue.
class BurstStream final : public RequestStream {
 public:
  BurstStream(std::shared_ptr<const Graph> graph,
              const RequestGenConfig& config, double period, int burst_size,
              std::int64_t limit, std::uint64_t seed,
              const DurationConfig& durations = {});

  bool next(TimedRequest* out) override;

 private:
  std::shared_ptr<const Graph> graph_;
  RequestSampler sampler_;
  Rng rng_;
  DurationSampler durations_;
  double period_;
  int burst_size_;
  std::int64_t limit_;
  std::int64_t emitted_ = 0;
};

// FIFO buffer with a hard capacity. push() on a full queue rejects the
// newcomer (tail drop) and counts it; the engine reports the drop count as
// queue-level load shedding, distinct from auction rejection.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(std::size_t capacity);

  // False when the queue is full (the request is dropped and counted).
  bool push(const TimedRequest& request);
  // False when the queue is empty.
  bool pop(TimedRequest* out);

  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return queue_.empty(); }
  std::int64_t dropped() const { return dropped_; }

 private:
  std::deque<TimedRequest> queue_;
  std::size_t capacity_;
  std::int64_t dropped_ = 0;
};

}  // namespace tufp
