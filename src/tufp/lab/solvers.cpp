#include "tufp/lab/solvers.hpp"

#include <algorithm>
#include <stdexcept>

#include "tufp/baselines/bkv.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/baselines/randomized_rounding.hpp"
#include "tufp/lab/upper_bound.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/assert.hpp"

namespace tufp::lab {

namespace {

// The one definition of "the lab's primal-dual config": identical to the
// config certified bounds are computed under, so every cell is solved
// under the same configuration its bound certifies (and the sweep may
// reuse the certifying run's solution for the `bounded` entry).
BoundedUfpConfig primal_dual_config(const LabSolveConfig& config) {
  return certifying_solver_config(config.epsilon);
}

LabSolve from_solution(const UfpSolution& solution,
                       const UfpInstance& instance) {
  LabSolve out;
  out.ran = true;
  out.value = solution.total_value(instance);
  out.selected = solution.num_selected();
  return out;
}

LabSolve solve_bounded(const UfpInstance& instance,
                       const LabSolveConfig& config) {
  return from_solution(bounded_ufp(instance, primal_dual_config(config)).solution,
                       instance);
}

LabSolve solve_bkv(const UfpInstance& instance, const LabSolveConfig& config) {
  return from_solution(bkv_ufp(instance, primal_dual_config(config)).solution,
                       instance);
}

LabSolve solve_greedy_value(const UfpInstance& instance,
                            const LabSolveConfig&) {
  return from_solution(greedy_ufp(instance, GreedyRanking::kByValue), instance);
}

LabSolve solve_greedy_density(const UfpInstance& instance,
                              const LabSolveConfig&) {
  return from_solution(greedy_ufp(instance, GreedyRanking::kByDensity),
                       instance);
}

LabSolve solve_rounding(const UfpInstance& instance,
                        const LabSolveConfig& config) {
  if (instance.num_requests() > config.rounding_max_requests) {
    return {false, 0.0, 0, false, "gated: needs the exact path LP"};
  }
  RoundingConfig rounding;
  // max_paths only: the hop cutoff would silently drop long paths without
  // flagging truncation, quietly solving a different relaxation.
  rounding.path_enum.max_paths = 800;
  try {
    const RoundingResult result =
        randomized_rounding_ufp(instance, config.rounding_seed, rounding);
    return from_solution(result.solution, instance);
  } catch (const std::exception&) {
    return {false, 0.0, 0, false, "gated: path enumeration truncated"};
  }
}

LabSolve solve_exact(const UfpInstance& instance,
                     const LabSolveConfig& config) {
  if (instance.num_requests() > config.exact_max_requests) {
    return {false, 0.0, 0, false, "gated: instance too large for B&B"};
  }
  UfpExactOptions options;
  // Tight budgets: the lab wants OPT where it is cheap (staircases, small
  // sparse worlds) and a fast, graceful decline where branching explodes
  // (meshes) — a sweep cell must never stall the whole OpenMP round.
  // max_paths only (it flags truncation and B&B then refuses); a hop
  // cutoff would shrink the search space silently and fake proven
  // optimality below the true OPT.
  options.path_enum.max_paths = 600;
  options.max_nodes = 500'000;
  try {
    const UfpExactResult result = solve_ufp_exact(instance, options);
    LabSolve out = from_solution(result.solution, instance);
    out.proven_optimal = result.proven_optimal;
    if (!result.proven_optimal) out.note = "node cap hit: value is a lower bound";
    return out;
  } catch (const std::exception&) {
    return {false, 0.0, 0, false, "gated: path enumeration truncated"};
  }
}

constexpr LabSolverEntry kCatalogue[] = {
    {"bounded", "Algorithm 1 Bounded-UFP (guard + saturation)", solve_bounded},
    {"bkv", "BKV-style predecessor primal-dual", solve_bkv},
    {"greedy-value", "one-pass greedy, value-descending", solve_greedy_value},
    {"greedy-density", "one-pass greedy, LOS density ranking",
     solve_greedy_density},
    {"rounding", "LP randomized rounding (small instances)", solve_rounding},
    {"exact", "branch-and-bound integral optimum (small instances)",
     solve_exact},
};

}  // namespace

std::span<const LabSolverEntry> solver_catalogue() { return kCatalogue; }

const LabSolverEntry* find_solver(const std::string& name) {
  for (const LabSolverEntry& entry : kCatalogue) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace tufp::lab
