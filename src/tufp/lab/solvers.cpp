#include "tufp/lab/solvers.hpp"

#include <algorithm>
#include <stdexcept>

#include "tufp/baselines/bkv.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/baselines/randomized_rounding.hpp"
#include "tufp/lab/upper_bound.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/assert.hpp"

namespace tufp::lab {

namespace {

// The one definition of "the lab's primal-dual config": identical to the
// config certified bounds are computed under, so every cell is solved
// under the same configuration its bound certifies (and the sweep may
// reuse the certifying run's solution for the `bounded` entry).
BoundedUfpConfig primal_dual_config(const LabSolveConfig& config) {
  BoundedUfpConfig cfg = certifying_solver_config(config.epsilon);
  cfg.sp_kernel = config.sp_kernel;
  return cfg;
}

LabSolve from_solution(const UfpSolution& solution,
                       std::span<const Request> requests) {
  LabSolve out;
  out.ran = true;
  double total = 0.0;
  for (int r = 0; r < static_cast<int>(requests.size()); ++r) {
    if (solution.is_selected(r)) {
      total += requests[static_cast<std::size_t>(r)].value;
    }
  }
  out.value = total;
  out.selected = solution.num_selected();
  return out;
}

LabSolve solve_bounded(const ResidualView& view,
                       std::span<const Request> requests,
                       const LabSolveConfig& config) {
  return from_solution(
      bounded_ufp(view, requests, primal_dual_config(config)).solution,
      requests);
}

LabSolve solve_bkv(const ResidualView& view, std::span<const Request> requests,
                   const LabSolveConfig& config) {
  return from_solution(
      bkv_ufp(view, requests, primal_dual_config(config)).solution, requests);
}

LabSolve solve_greedy_value(const ResidualView& view,
                            std::span<const Request> requests,
                            const LabSolveConfig&) {
  return from_solution(
      greedy_ufp(view.make_instance(requests), GreedyRanking::kByValue),
      requests);
}

LabSolve solve_greedy_density(const ResidualView& view,
                              std::span<const Request> requests,
                              const LabSolveConfig&) {
  return from_solution(
      greedy_ufp(view.make_instance(requests), GreedyRanking::kByDensity),
      requests);
}

LabSolve solve_rounding(const ResidualView& view,
                        std::span<const Request> requests,
                        const LabSolveConfig& config) {
  if (static_cast<int>(requests.size()) > config.rounding_max_requests) {
    return {false, 0.0, 0, false, "gated: needs the exact path LP"};
  }
  RoundingConfig rounding;
  // max_paths only: the hop cutoff would silently drop long paths without
  // flagging truncation, quietly solving a different relaxation.
  rounding.path_enum.max_paths = 800;
  try {
    const RoundingResult result = randomized_rounding_ufp(
        view.make_instance(requests), config.rounding_seed, rounding);
    return from_solution(result.solution, requests);
  } catch (const std::exception&) {
    return {false, 0.0, 0, false, "gated: path enumeration truncated"};
  }
}

LabSolve solve_exact(const ResidualView& view, std::span<const Request> requests,
                     const LabSolveConfig& config) {
  if (static_cast<int>(requests.size()) > config.exact_max_requests) {
    return {false, 0.0, 0, false, "gated: instance too large for B&B"};
  }
  UfpExactOptions options;
  // Tight budgets: the lab wants OPT where it is cheap (staircases, small
  // sparse worlds) and a fast, graceful decline where branching explodes
  // (meshes) — a sweep cell must never stall the whole OpenMP round.
  // max_paths only (it flags truncation and B&B then refuses); a hop
  // cutoff would shrink the search space silently and fake proven
  // optimality below the true OPT.
  options.path_enum.max_paths = 600;
  options.max_nodes = 500'000;
  try {
    const UfpExactResult result =
        solve_ufp_exact(view.make_instance(requests), options);
    LabSolve out = from_solution(result.solution, requests);
    out.proven_optimal = result.proven_optimal;
    if (!result.proven_optimal) out.note = "node cap hit: value is a lower bound";
    return out;
  } catch (const std::exception&) {
    return {false, 0.0, 0, false, "gated: path enumeration truncated"};
  }
}

constexpr LabSolverEntry kCatalogue[] = {
    {"bounded", "Algorithm 1 Bounded-UFP (guard + saturation)", solve_bounded},
    {"bkv", "BKV-style predecessor primal-dual", solve_bkv},
    {"greedy-value", "one-pass greedy, value-descending", solve_greedy_value},
    {"greedy-density", "one-pass greedy, LOS density ranking",
     solve_greedy_density},
    {"rounding", "LP randomized rounding (small instances)", solve_rounding},
    {"exact", "branch-and-bound integral optimum (small instances)",
     solve_exact},
};

}  // namespace

std::span<const LabSolverEntry> solver_catalogue() { return kCatalogue; }

const LabSolverEntry* find_solver(const std::string& name) {
  for (const LabSolverEntry& entry : kCatalogue) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

LabSolve run_solver_on_instance(const LabSolverEntry& entry,
                                const UfpInstance& instance,
                                const LabSolveConfig& config) {
  // Floor at the graph's min capacity so residual >= floor holds on every
  // edge: nothing is blocked and make_instance-backed members stay legal.
  ResidualGraph rgraph(instance.shared_graph(),
                       instance.graph().min_capacity());
  return entry.fn(rgraph.view(), instance.requests(), config);
}

}  // namespace tufp::lab
