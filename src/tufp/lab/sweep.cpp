#include "tufp/lab/sweep.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tufp/lab/upper_bound.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/scenarios.hpp"

#if defined(TUFP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tufp::lab {

namespace {

// 17 significant digits: round-trips doubles exactly, so serialized
// artifacts are byte-comparable across runs and thread counts.
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// World seed for (family, world index), independent of which subset of
// families/worlds a run selects — lab cells are addressable across
// configs the way fuzz worlds are addressable across budgets.
std::uint64_t world_seed_for(std::uint64_t run_seed, sim::WorldFamily family,
                             int world_index) {
  SplitMix64 sm(run_seed ^
                (static_cast<std::uint64_t>(family) + 1) * 0xa24baed4963ee407ULL ^
                (static_cast<std::uint64_t>(world_index) + 1) *
                    0x9fb21c651e98df25ULL);
  return sm.next();
}

struct WorldTask {
  sim::WorldFamily family{};
  int world_index = 0;
  std::uint64_t world_seed = 0;
  double beta = 0.0;
};

std::vector<const LabSolverEntry*> resolve_solvers(
    const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (find_solver(name) == nullptr) {
      throw std::invalid_argument("unknown lab solver: " + name);
    }
  }
  // Canonical catalogue order regardless of how the caller listed them.
  std::vector<const LabSolverEntry*> solvers;
  for (const LabSolverEntry& entry : solver_catalogue()) {
    if (names.empty() ||
        std::find(names.begin(), names.end(), entry.name) != names.end()) {
      solvers.push_back(&entry);
    }
  }
  return solvers;
}

std::vector<SweepCell> run_task(
    const WorldTask& task, const SweepConfig& config,
    std::span<const std::unique_ptr<UpperBoundProvider>> providers,
    std::span<const LabSolverEntry* const> solvers) {
  const sim::SimWorld world =
      sim::generate_world({task.family, task.world_seed});
  // Normalize so d_max = 1 exactly, then dial the minimum capacity to
  // beta: afterwards beta = B/d_max holds by construction. The 1e-12
  // nudge keeps c_min * factor from rounding below Bounded-UFP's B >= 1
  // precondition at beta = 1.
  const UfpInstance normalized = world.instance.normalized();
  const UfpInstance instance = normalized.with_capacity_scale(
      task.beta / normalized.bound_B() * (1.0 + 1e-12));

  // The cell's residual view: a fresh ResidualGraph per world wrapping
  // the scaled instance, every edge active (c_min = beta >= 1 by the
  // scaling above, so the default floor blocks nothing). All solver
  // entries run through this view — the lab exercises the same hot-path
  // API the engine serves through.
  ResidualGraph rgraph(instance.shared_graph());
  const std::span<const Request> requests = instance.requests();

  // One certifying run per cell: it yields the claim36 bound AND the
  // `bounded` solver's answer (primal_dual_config == the certifying
  // config by construction, see lab/solvers.cpp). `providers` holds only
  // the optional tighteners (packing-lp, gk-dual); claim36 always
  // answers, so ties keep the earlier provider exactly as before.
  BoundedUfpConfig certifying_cfg =
      certifying_solver_config(config.solve.epsilon);
  certifying_cfg.sp_kernel = config.solve.sp_kernel;
  const BoundedUfpResult certifying_run =
      bounded_ufp(rgraph.view(), requests, certifying_cfg);
  UpperBound bound = best_upper_bound(providers, instance);
  const double claim36 = claim36_upper_bound(instance, certifying_run);
  if (!bound.available || claim36 < bound.value) {
    bound = {claim36, true, "claim36"};
  }

  std::vector<SweepCell> cells;
  cells.reserve(solvers.size());
  double exact_opt = -1.0;
  for (const LabSolverEntry* entry : solvers) {
    LabSolve solve;
    if (std::string(entry->name) == "bounded") {
      solve.ran = true;
      solve.value = certifying_run.solution.total_value(instance);
      solve.selected = certifying_run.solution.num_selected();
    } else {
      solve = entry->fn(rgraph.view(), requests, config.solve);
    }
    SweepCell cell;
    cell.family = task.family;
    cell.world_index = task.world_index;
    cell.world_seed = task.world_seed;
    cell.beta = task.beta;
    cell.requests = instance.num_requests();
    cell.edges = instance.graph().num_edges();
    cell.solver = entry->name;
    cell.in_regime =
        task.beta >=
        regime_capacity(instance.graph().num_edges(), config.solve.epsilon);
    cell.ran = solve.ran;
    cell.value = solve.value;
    cell.selected = solve.selected;
    cell.upper_bound = bound.value;
    cell.bound_method = bound.method;
    if (solve.ran && solve.value > 0.0) {
      cell.certified_ratio = bound.value / solve.value;
    }
    if (std::string(entry->name) == "exact" && solve.ran &&
        solve.proven_optimal) {
      exact_opt = solve.value;
    }
    cells.push_back(std::move(cell));
  }
  for (SweepCell& cell : cells) {
    cell.exact_opt = exact_opt;
    if (exact_opt >= 0.0 && cell.ran && cell.value > 0.0) {
      cell.measured_ratio = exact_opt / cell.value;
    }
  }
  return cells;
}

}  // namespace

SweepResult run_beta_sweep(const SweepConfig& config) {
  TUFP_REQUIRE(!config.betas.empty(), "beta grid must not be empty");
  for (const double beta : config.betas) {
    if (beta < 1.0) {
      throw std::invalid_argument(
          "beta < 1 leaves B below d_max, outside Bounded-UFP's domain");
    }
  }
  TUFP_REQUIRE(config.worlds_per_family >= 1,
               "worlds_per_family must be >= 1");

  const std::vector<sim::WorldFamily> families =
      config.families.empty()
          ? std::vector<sim::WorldFamily>(std::begin(sim::kAllFamilies),
                                          std::end(sim::kAllFamilies))
          : config.families;
  const std::vector<const LabSolverEntry*> solvers =
      resolve_solvers(config.solvers);
  // Optional tighteners only — the always-answering claim36 bound comes
  // from each cell's certifying run (run_task).
  std::vector<std::unique_ptr<UpperBoundProvider>> providers;
  providers.push_back(make_packing_lp_provider());
  providers.push_back(make_gk_dual_provider());

  std::vector<WorldTask> tasks;
  for (const sim::WorldFamily family : families) {
    for (int w = 0; w < config.worlds_per_family; ++w) {
      const std::uint64_t seed = world_seed_for(config.seed, family, w);
      for (const double beta : config.betas) {
        tasks.push_back({family, w, seed, beta});
      }
    }
  }

  // Every task is a pure function of its WorldTask; slots are disjoint, so
  // the merged result is schedule-invariant (the golden determinism check
  // compares --threads 1 vs 4 byte-for-byte).
  std::vector<std::vector<SweepCell>> slots(tasks.size());
#if defined(TUFP_HAVE_OPENMP)
  const int threads = effective_num_threads(config.num_threads);
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(tasks.size()); ++t) {
    slots[static_cast<std::size_t>(t)] =
        run_task(tasks[static_cast<std::size_t>(t)], config, providers,
                 solvers);
  }

  SweepResult result;
  result.seed = config.seed;
  result.betas = config.betas;
  for (std::vector<SweepCell>& slot : slots) {
    result.cells.insert(result.cells.end(),
                        std::make_move_iterator(slot.begin()),
                        std::make_move_iterator(slot.end()));
  }

  for (const sim::WorldFamily family : families) {
    for (const LabSolverEntry* entry : solvers) {
      for (const double beta : config.betas) {
        SweepSummaryRow row;
        row.family = family;
        row.solver = entry->name;
        row.beta = beta;
        double total = 0.0;
        for (const SweepCell& cell : result.cells) {
          if (cell.family != family || cell.beta != beta ||
              cell.solver != entry->name || cell.certified_ratio < 0.0) {
            continue;
          }
          ++row.cells;
          total += cell.certified_ratio;
          row.worst_ratio = std::max(row.worst_ratio, cell.certified_ratio);
        }
        if (row.cells > 0) row.mean_ratio = total / row.cells;
        result.summary.push_back(std::move(row));
      }
    }
  }
  return result;
}

std::string sweep_to_json(const SweepResult& result) {
  std::ostringstream os;
  os << "{\n  \"sweep\": \"beta\",\n  \"seed\": " << result.seed
     << ",\n  \"betas\": [";
  for (std::size_t i = 0; i < result.betas.size(); ++i) {
    os << (i ? ", " : "") << fmt(result.betas[i]);
  }
  os << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const SweepCell& c = result.cells[i];
    os << "    {\"family\": \"" << sim::family_name(c.family)
       << "\", \"world\": " << c.world_index
       << ", \"world_seed\": " << c.world_seed << ", \"beta\": " << fmt(c.beta)
       << ", \"requests\": " << c.requests << ", \"edges\": " << c.edges
       << ", \"solver\": \"" << c.solver << "\", \"in_regime\": "
       << (c.in_regime ? "true" : "false") << ", \"ran\": "
       << (c.ran ? "true" : "false") << ", \"value\": " << fmt(c.value)
       << ", \"selected\": " << c.selected
       << ", \"upper_bound\": " << fmt(c.upper_bound)
       << ", \"bound_method\": \"" << c.bound_method << "\"";
    if (c.certified_ratio >= 0.0) {
      os << ", \"certified_ratio\": " << fmt(c.certified_ratio);
    }
    if (c.exact_opt >= 0.0) os << ", \"exact_opt\": " << fmt(c.exact_opt);
    if (c.measured_ratio >= 0.0) {
      os << ", \"measured_ratio\": " << fmt(c.measured_ratio);
    }
    os << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"summary\": [\n";
  for (std::size_t i = 0; i < result.summary.size(); ++i) {
    const SweepSummaryRow& row = result.summary[i];
    os << "    {\"family\": \"" << sim::family_name(row.family)
       << "\", \"solver\": \"" << row.solver
       << "\", \"beta\": " << fmt(row.beta) << ", \"cells\": " << row.cells;
    if (row.cells > 0) {
      os << ", \"mean_ratio\": " << fmt(row.mean_ratio)
         << ", \"worst_ratio\": " << fmt(row.worst_ratio);
    }
    os << "}" << (i + 1 < result.summary.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Table summary_table(const SweepResult& result) {
  Table table(
      {"family", "solver", "beta", "worlds", "mean_ratio", "worst_ratio"});
  for (const SweepSummaryRow& row : result.summary) {
    auto r = table.row();
    r.cell(sim::family_name(row.family)).cell(row.solver).cell(row.beta)
        .cell(row.cells);
    if (row.cells > 0) {
      r.cell(row.mean_ratio).cell(row.worst_ratio);
    } else {
      r.cell("-").cell("-");
    }
  }
  return table;
}

void sweep_to_csv(const SweepResult& result, std::ostream& os) {
  os << "family,world,world_seed,beta,requests,edges,solver,in_regime,ran,"
        "value,selected,upper_bound,bound_method,certified_ratio,exact_opt,"
        "measured_ratio\n";
  for (const SweepCell& c : result.cells) {
    os << sim::family_name(c.family) << ',' << c.world_index << ','
       << c.world_seed << ',' << fmt(c.beta) << ',' << c.requests << ','
       << c.edges << ',' << c.solver << ',' << (c.in_regime ? 1 : 0) << ','
       << (c.ran ? 1 : 0) << ','
       << fmt(c.value) << ',' << c.selected << ',' << fmt(c.upper_bound)
       << ',' << c.bound_method << ',' << fmt(c.certified_ratio) << ','
       << fmt(c.exact_opt) << ',' << fmt(c.measured_ratio) << '\n';
  }
}

}  // namespace tufp::lab
