// Transitional shim for pre-ResidualView lab call sites.
//
// PR "million-request serving core" moved the solver registry from
// LabSolve(const UfpInstance&, const LabSolveConfig&) to the hot-path
// signature LabSolve(const ResidualView&, std::span<const Request>,
// const LabSolveConfig&). Old call sites that still hold a bare
// UfpInstance keep compiling through this header: the wrapper builds a
// throwaway all-edges-active ResidualGraph around the instance's graph
// and forwards. It is deliberately [[deprecated]] — migrate to
// run_solver_on_instance (one-off solves) or keep a ResidualGraph per
// world (sweeps, engines) and call entry.fn(view, requests, config)
// directly; this header will be removed once no caller needs it.
#pragma once

#include "tufp/lab/solvers.hpp"

namespace tufp::lab {

[[deprecated(
    "lab solvers take (ResidualView, requests, config) now; wrap the "
    "instance in a ResidualGraph or call run_solver_on_instance")]]
inline LabSolve run_solver(const LabSolverEntry& entry,
                           const UfpInstance& instance,
                           const LabSolveConfig& config) {
  return run_solver_on_instance(entry, instance, config);
}

}  // namespace tufp::lab
