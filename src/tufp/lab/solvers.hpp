// The lab's solver registry: every UFP allocation algorithm in the tree
// behind one name -> run interface, so the sweep driver (sweep.hpp), the
// tufp_lab CLI and the ratio benches enumerate solvers instead of
// hard-coding call sites.
//
// Members: the paper's Bounded-UFP (Algorithm 1), the BKV predecessor
// baseline, the two greedy orderings, LP randomized rounding, and the
// exact branch-and-bound optimum. Expensive members gate themselves
// (`ran = false`) instead of throwing: `exact` and `rounding` need
// complete path enumeration and run only on small instances, which is
// precisely the subset where the measured ratio can be compared against
// the true OPT.
//
// Every solver is a pure function of (instance, config) — `rounding`
// includes its explicit seed in the config — so lab sweeps are
// deterministic under any OpenMP schedule.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "tufp/graph/residual_csr.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp::lab {

// All lab solves run strictly serial regardless of this config: the sweep
// parallelizes across cells and must not nest OpenMP regions.
struct LabSolveConfig {
  // Accuracy parameter for the primal-dual solvers (bounded, bkv) and for
  // the claim36 certifying run, which uses the identical configuration.
  double epsilon = 1.0 / 6.0;
  std::uint64_t rounding_seed = 0xd1ce;
  // Shortest-path queue for the primal-dual members (bounded, bkv, and
  // the sweep's certifying run). Kernel choice never changes results —
  // the thread/kernel-diff oracles pin that — only the wall clock.
  SpKernel sp_kernel = SpKernel::kAuto;
  // Gates for the enumeration-backed members.
  int exact_max_requests = 14;
  int rounding_max_requests = 14;
};

struct LabSolve {
  bool ran = false;  // false: solver gated off on this instance
  double value = 0.0;
  int selected = 0;
  // For `exact`: true when branch and bound proved optimality, so `value`
  // is the true OPT (the denominator of a *measured* ratio).
  bool proven_optimal = false;
  std::string note;  // deterministic diagnostics (gating reason, ...)
};

// Lab solvers run over the redesigned hot-path surface: a ResidualView
// plus the request batch (graph/residual_csr.hpp). The primal-dual
// members (bounded, bkv) solve on the view directly; enumeration-backed
// members materialize a UfpInstance via view.make_instance(), which
// requires every edge active — the lab always wraps a fresh, fully
// usable world, so the blocked mask is empty by construction.
using LabSolverFn = LabSolve (*)(const ResidualView&,
                                 std::span<const Request>,
                                 const LabSolveConfig&);

struct LabSolverEntry {
  const char* name;
  const char* summary;
  LabSolverFn fn;
};

// Fixed canonical order: bounded, bkv, greedy-value, greedy-density,
// rounding, exact.
std::span<const LabSolverEntry> solver_catalogue();

// nullptr on an unknown name.
const LabSolverEntry* find_solver(const std::string& name);

// Runs `entry` over a standalone instance by wrapping its graph in a
// throwaway ResidualGraph with every edge active (the activity floor is
// dropped to the graph's min capacity, so nothing is blocked). The
// one-off ad-hoc path; sweeps keep a ResidualGraph per world instead.
LabSolve run_solver_on_instance(const LabSolverEntry& entry,
                                const UfpInstance& instance,
                                const LabSolveConfig& config);

}  // namespace tufp::lab
