// Certified upper bounds on the UFP optimum — the denominator of every
// empirical approximation ratio the evaluation lab reports (DESIGN.md §9).
//
// A bound is *certified* when it provably dominates the true integral
// optimum of the instance. The lab's hierarchy, cheapest-sound to
// tightest:
//
//   * claim36    — Claim 3.6's primal-dual bound min_i D1(i)/alpha(i) +
//                  P(i) observed along a Bounded-UFP run, tightened by the
//                  best rescaled certificate of the run's final weights
//                  (ufp/dual_certificate.hpp). Always available; the same
//                  implementation the sim oracle suite checks solver
//                  output against (sim/oracles.cpp), so the lab and the
//                  fuzzer can never disagree about what "within the dual
//                  bound" means.
//   * gk-dual    — weak LP duality over the Garg-Könemann run's final row
//                  duals, again rescaled through best_dual_bound. GK's
//                  primal objective lower-bounds the fractional optimum
//                  and this certificate upper-bounds it, so the pair
//                  brackets the LP value without ever solving it exactly.
//                  Scales to instances far beyond the simplex.
//   * packing-lp — the exact Figure-1 fractional optimum (dense simplex
//                  over exhaustively enumerated paths). The tightest
//                  polynomial certificate, but only on instances whose
//                  path sets enumerate completely; the provider gates on
//                  request count and reports "unavailable" (never throws)
//                  when enumeration truncates.
//
// Every provider is a pure function of the instance: identical inputs
// yield identical bounds, which is what makes the lab's OpenMP sweep
// deterministic and its JSON artifacts byte-comparable across runs.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tufp/graph/path_enum.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/dual_certificate.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp::lab {

struct UpperBound {
  double value = 0.0;   // meaningful only when available
  bool available = false;
  std::string method;   // provider name that produced the value
};

class UpperBoundProvider {
 public:
  virtual ~UpperBoundProvider() = default;
  virtual const char* name() const = 0;
  // Unavailable (not an exception) when the provider does not apply to
  // this instance — too many requests, truncated path enumeration, ...
  virtual UpperBound bound(const UfpInstance& instance) const = 0;
};

// The solver configuration certified bounds are computed under: paper
// epsilon, capacity guard on, run to saturation (so out-of-regime
// instances still produce non-trivial duals), strictly serial — providers
// run inside the sweep's OpenMP region and must not nest parallelism.
BoundedUfpConfig certifying_solver_config(double epsilon = 1.0 / 6.0);

// The shared Claim 3.6 implementation lives in ufp/dual_certificate.hpp
// (the sim oracles depend on it too, and sim must not reach up into
// lab); re-exported here because it is the lab's always-available bound.
using tufp::claim36_upper_bound;

struct PackingLpBoundOptions {
  int max_requests = 20;  // gate before touching path enumeration
  // Declining must be cheap, not just loud: failing instances give up
  // after max_paths (instead of enumerating the default 100k first), and
  // the pivot cap stops the dense simplex from grinding on wide tableaus
  // — a tight mesh at small beta can otherwise burn minutes before
  // answering. When either budget trips the provider declines and the
  // sweep falls through to gk-dual/claim36.
  //
  // max_hops stays unrestricted: the hop cutoff drops long paths without
  // setting `truncated`, which would silently shrink the LP below the
  // true optimum — fatal for a bound that claims certification. Only
  // max_paths (which does flag truncation) may bound the enumeration.
  PathEnumOptions path_enum{.max_paths = 800, .max_hops = -1};
  std::int64_t max_pivots = 20000;
};

std::unique_ptr<UpperBoundProvider> make_claim36_provider(
    const BoundedUfpConfig& config);
std::unique_ptr<UpperBoundProvider> make_gk_dual_provider(
    double epsilon = 0.1, int max_requests = 4096);
std::unique_ptr<UpperBoundProvider> make_packing_lp_provider(
    const PackingLpBoundOptions& options = {});

// The full hierarchy above, in fixed canonical order.
std::vector<std::unique_ptr<UpperBoundProvider>> standard_providers(
    double epsilon = 1.0 / 6.0);

// Tightest available bound across `providers` (ties keep the earlier
// provider, so the result is order-deterministic). Unavailable only when
// every provider declined — impossible for the standard hierarchy, whose
// claim36 member always answers.
UpperBound best_upper_bound(
    std::span<const std::unique_ptr<UpperBoundProvider>> providers,
    const UfpInstance& instance);

}  // namespace tufp::lab
