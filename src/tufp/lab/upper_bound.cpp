#include "tufp/lab/upper_bound.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "tufp/lp/garg_konemann.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/dual_certificate.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp::lab {

namespace {

class Claim36Provider final : public UpperBoundProvider {
 public:
  explicit Claim36Provider(BoundedUfpConfig config)
      : config_(std::move(config)) {}

  const char* name() const override { return "claim36"; }

  UpperBound bound(const UfpInstance& instance) const override {
    return {claim36_upper_bound(instance, config_), true, name()};
  }

 private:
  BoundedUfpConfig config_;
};

class GkDualProvider final : public UpperBoundProvider {
 public:
  GkDualProvider(double epsilon, int max_requests)
      : epsilon_(epsilon), max_requests_(max_requests) {}

  const char* name() const override { return "gk-dual"; }

  UpperBound bound(const UfpInstance& instance) const override {
    if (instance.num_requests() == 0 ||
        instance.num_requests() > max_requests_) {
      return {};
    }
    GkConfig config;
    config.epsilon = epsilon_;
    const GkResult run = garg_konemann_fractional_ufp(instance, config);
    // A non-converged run's duals are still strictly positive, hence still
    // a sound certificate after rescaling — just a looser one.
    if (run.edge_duals.empty()) return {};
    const DualCertificate cert = best_dual_bound(instance, run.edge_duals);
    return {cert.upper_bound, true, name()};
  }

 private:
  double epsilon_;
  int max_requests_;
};

class PackingLpProvider final : public UpperBoundProvider {
 public:
  explicit PackingLpProvider(PackingLpBoundOptions options)
      : options_(options) {}

  const char* name() const override { return "packing-lp"; }

  UpperBound bound(const UfpInstance& instance) const override {
    if (instance.num_requests() == 0 ||
        instance.num_requests() > options_.max_requests) {
      return {};
    }
    UfpLpOptions lp_options;
    lp_options.path_enum = options_.path_enum;
    lp_options.simplex.max_pivots = options_.max_pivots;
    try {
      const UfpFractionalSolution lp = solve_ufp_lp(instance, lp_options);
      if (!lp.solved_to_optimality) return {};
      return {lp.objective, true, name()};
    } catch (const std::exception&) {
      // Truncated path enumeration (or a degenerate simplex): the exact
      // relaxation is out of reach here, fall through to the dual bounds.
      return {};
    }
  }

 private:
  PackingLpBoundOptions options_;
};

}  // namespace

BoundedUfpConfig certifying_solver_config(double epsilon) {
  BoundedUfpConfig config;
  config.epsilon = epsilon;
  config.capacity_guard = true;
  config.run_to_saturation = true;
  config.parallel = false;
  return config;
}

std::unique_ptr<UpperBoundProvider> make_claim36_provider(
    const BoundedUfpConfig& config) {
  return std::make_unique<Claim36Provider>(config);
}

std::unique_ptr<UpperBoundProvider> make_gk_dual_provider(double epsilon,
                                                          int max_requests) {
  TUFP_REQUIRE(epsilon > 0.0 && epsilon <= 0.5,
               "gk-dual epsilon outside (0, 0.5]");
  return std::make_unique<GkDualProvider>(epsilon, max_requests);
}

std::unique_ptr<UpperBoundProvider> make_packing_lp_provider(
    const PackingLpBoundOptions& options) {
  return std::make_unique<PackingLpProvider>(options);
}

std::vector<std::unique_ptr<UpperBoundProvider>> standard_providers(
    double epsilon) {
  std::vector<std::unique_ptr<UpperBoundProvider>> providers;
  providers.push_back(make_packing_lp_provider());
  providers.push_back(make_gk_dual_provider());
  providers.push_back(make_claim36_provider(certifying_solver_config(epsilon)));
  return providers;
}

UpperBound best_upper_bound(
    std::span<const std::unique_ptr<UpperBoundProvider>> providers,
    const UfpInstance& instance) {
  UpperBound best;
  for (const auto& provider : providers) {
    const UpperBound candidate = provider->bound(instance);
    if (!candidate.available) continue;
    if (!best.available || candidate.value < best.value) best = candidate;
  }
  return best;
}

}  // namespace tufp::lab
