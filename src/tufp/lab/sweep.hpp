// The approximation-ratio lab: large-capacity regime sweeps with
// certified upper bounds (DESIGN.md §9).
//
// The paper's headline claim is that Bounded-UFP's quality improves as
// the capacity-to-demand ratio beta = c_min/d_max grows. This driver
// measures that curve empirically: for every configured sim world family
// it regenerates deterministic worlds (sim/world_gen), normalizes them so
// d_max = 1, rescales edge capacities to hit each beta on the sweep grid,
// runs every configured solver, and certifies the outcome against the
// tightest available upper bound from lab/upper_bound.hpp. A cell's
//
//   certified_ratio = upper_bound / value  (>= 1, lower is better)
//
// dominates the true ratio OPT/value, so the reported curve is a sound
// *pessimistic* estimate of solver quality; where the exact solver proves
// OPT the measured ratio OPT/value is reported alongside and is always
// <= the certified one.
//
// Determinism: each cell is a pure function of (run seed, family, world
// index, beta, solver); cells fan out across OpenMP threads into
// preallocated slots and are emitted in fixed task order, so JSON/CSV
// artifacts are byte-identical for any --threads value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tufp/lab/solvers.hpp"
#include "tufp/sim/world.hpp"
#include "tufp/util/table.hpp"

namespace tufp::lab {

struct SweepConfig {
  std::uint64_t seed = 1;
  std::vector<sim::WorldFamily> families;  // empty = full matrix
  std::vector<std::string> solvers;        // empty = whole catalogue
  std::vector<double> betas = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  int worlds_per_family = 3;
  int num_threads = 0;  // 0 = runtime default; OpenMP across cells
  // solve.epsilon doubles as the certifying epsilon: bounds are computed
  // under exactly the config the bounded/bkv solvers run, so one
  // Bounded-UFP run per cell both certifies and answers `bounded`.
  LabSolveConfig solve;
};

struct SweepCell {
  sim::WorldFamily family{};
  int world_index = 0;          // 0..worlds_per_family-1
  std::uint64_t world_seed = 0; // sim::WorldSpec seed (regenerates exactly)
  double beta = 0.0;
  int requests = 0;
  int edges = 0;
  std::string solver;
  // True when beta clears ln(m)/eps^2 — the Omega(ln m) regime where
  // Theorem 3.1's guarantee formally applies (workload/scenarios.hpp's
  // regime_capacity); empirical ratios typically collapse to ~1 well
  // before this threshold.
  bool in_regime = false;
  bool ran = false;
  double value = 0.0;
  int selected = 0;
  double upper_bound = 0.0;     // certified; always available (claim36)
  std::string bound_method;
  double certified_ratio = -1.0;  // upper_bound/value; -1 when value == 0
  double exact_opt = -1.0;        // proven OPT of the cell's instance, else -1
  double measured_ratio = -1.0;   // exact_opt/value when both available
};

// Aggregate over the worlds of one (family, solver, beta) point.
struct SweepSummaryRow {
  sim::WorldFamily family{};
  std::string solver;
  double beta = 0.0;
  int cells = 0;          // cells where the solver ran with value > 0
  double mean_ratio = -1.0;   // mean certified ratio; -1 when cells == 0
  double worst_ratio = -1.0;  // max certified ratio
};

struct SweepResult {
  std::uint64_t seed = 0;
  std::vector<double> betas;
  std::vector<SweepCell> cells;          // fixed deterministic order
  std::vector<SweepSummaryRow> summary;  // family x solver x beta order
};

// Throws std::invalid_argument on an unknown solver name, empty beta grid
// or beta < 1 (the rescaled instance must keep B >= d_max for Bounded-UFP).
SweepResult run_beta_sweep(const SweepConfig& config);

// Deterministic serializations (fixed field order, 17 significant digits),
// byte-identical across thread counts for identical configs.
std::string sweep_to_json(const SweepResult& result);
void sweep_to_csv(const SweepResult& result, std::ostream& os);

// The human-facing summary (family / solver / beta / worlds / mean and
// worst certified ratio), one renderer for the CLI and the E13 bench.
Table summary_table(const SweepResult& result);

}  // namespace tufp::lab
