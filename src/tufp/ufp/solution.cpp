#include "tufp/ufp/solution.hpp"

#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

// Shared feasibility core: check loads vs capacities and path validity.
FeasibilityReport check_core(const UfpInstance& instance,
                             const std::vector<double>& loads,
                             const std::vector<std::pair<int, const Path*>>& walks,
                             double tol) {
  const Graph& g = instance.graph();
  for (const auto& [r, path] : walks) {
    const Request& req = instance.request(r);
    if (!is_simple_path(g, *path, req.source, req.target)) {
      std::ostringstream os;
      os << "request " << r << " path is not a simple s->t path";
      return {false, os.str()};
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double cap = g.capacity(e);
    const double load = loads[static_cast<std::size_t>(e)];
    if (load > cap + tol) {
      std::ostringstream os;
      os << "edge " << e << " overloaded: load " << load << " > capacity " << cap;
      return {false, os.str()};
    }
  }
  return {true, {}};
}

}  // namespace

UfpSolution::UfpSolution(int num_requests)
    : paths_(static_cast<std::size_t>(num_requests)) {
  TUFP_REQUIRE(num_requests >= 0, "negative request count");
}

void UfpSolution::assign(int r, Path path) {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  TUFP_REQUIRE(!paths_[static_cast<std::size_t>(r)].has_value(),
               "request already selected (exactness: one path per request)");
  TUFP_REQUIRE(!path.empty(), "allocation path must be non-empty");
  paths_[static_cast<std::size_t>(r)] = std::move(path);
  ++num_selected_;
}

bool UfpSolution::is_selected(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  return paths_[static_cast<std::size_t>(r)].has_value();
}

const Path* UfpSolution::path_of(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  const auto& p = paths_[static_cast<std::size_t>(r)];
  return p.has_value() ? &*p : nullptr;
}

std::vector<int> UfpSolution::selected_requests() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_selected_));
  for (int r = 0; r < num_requests(); ++r) {
    if (paths_[static_cast<std::size_t>(r)].has_value()) out.push_back(r);
  }
  return out;
}

double UfpSolution::total_value(const UfpInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests(),
               "solution/instance request count mismatch");
  double total = 0.0;
  for (int r = 0; r < num_requests(); ++r) {
    if (is_selected(r)) total += instance.request(r).value;
  }
  return total;
}

std::vector<double> UfpSolution::edge_loads(const UfpInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests(),
               "solution/instance request count mismatch");
  std::vector<double> loads(static_cast<std::size_t>(instance.graph().num_edges()),
                            0.0);
  for (int r = 0; r < num_requests(); ++r) {
    const Path* p = path_of(r);
    if (p == nullptr) continue;
    for (EdgeId e : *p) loads[static_cast<std::size_t>(e)] += instance.request(r).demand;
  }
  return loads;
}

FeasibilityReport UfpSolution::check_feasibility(const UfpInstance& instance,
                                                 double tol) const {
  std::vector<std::pair<int, const Path*>> walks;
  for (int r = 0; r < num_requests(); ++r) {
    if (const Path* p = path_of(r)) walks.emplace_back(r, p);
  }
  return check_core(instance, edge_loads(instance), walks, tol);
}

UfpMultiSolution::UfpMultiSolution(int num_requests)
    : num_requests_(num_requests),
      repetition_count_(static_cast<std::size_t>(num_requests), 0) {
  TUFP_REQUIRE(num_requests >= 0, "negative request count");
}

void UfpMultiSolution::add(int r, Path path) {
  TUFP_REQUIRE(r >= 0 && r < num_requests_, "request index out of range");
  TUFP_REQUIRE(!path.empty(), "allocation path must be non-empty");
  allocations_.push_back({r, std::move(path)});
  ++repetition_count_[static_cast<std::size_t>(r)];
}

int UfpMultiSolution::repetitions_of(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests_, "request index out of range");
  return repetition_count_[static_cast<std::size_t>(r)];
}

double UfpMultiSolution::total_value(const UfpInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests_,
               "solution/instance request count mismatch");
  double total = 0.0;
  for (const auto& alloc : allocations_) {
    total += instance.request(alloc.request).value;
  }
  return total;
}

std::vector<double> UfpMultiSolution::edge_loads(const UfpInstance& instance) const {
  TUFP_REQUIRE(instance.num_requests() == num_requests_,
               "solution/instance request count mismatch");
  std::vector<double> loads(static_cast<std::size_t>(instance.graph().num_edges()),
                            0.0);
  for (const auto& alloc : allocations_) {
    for (EdgeId e : alloc.path) {
      loads[static_cast<std::size_t>(e)] += instance.request(alloc.request).demand;
    }
  }
  return loads;
}

FeasibilityReport UfpMultiSolution::check_feasibility(const UfpInstance& instance,
                                                      double tol) const {
  std::vector<std::pair<int, const Path*>> walks;
  walks.reserve(allocations_.size());
  for (const auto& alloc : allocations_) {
    walks.emplace_back(alloc.request, &alloc.path);
  }
  return check_core(instance, edge_loads(instance), walks, tol);
}

}  // namespace tufp
