// Solutions of the unsplittable flow problem, single-shot and repeated.
//
// UfpSolution encodes an *exact* allocation (Definition 2.2): a request is
// either routed with its full demand along exactly one path or not at all.
// UfpMultiSolution is the "with repetitions" variant of §5 where a request
// may be satisfied several times over possibly different paths.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tufp/graph/path.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp {

struct FeasibilityReport {
  bool feasible = true;
  std::string message;  // first violation found, empty when feasible
};

class UfpSolution {
 public:
  explicit UfpSolution(int num_requests);

  // Routes request `r` along `path`. Each request at most once (exactness).
  void assign(int r, Path path);

  bool is_selected(int r) const;
  // Null when the request is not selected.
  const Path* path_of(int r) const;

  int num_requests() const { return static_cast<int>(paths_.size()); }
  int num_selected() const { return num_selected_; }
  std::vector<int> selected_requests() const;

  double total_value(const UfpInstance& instance) const;
  std::vector<double> edge_loads(const UfpInstance& instance) const;

  // Capacity constraints hold (within tol) and every selected path is a
  // simple s_r -> t_r path (Lemma 3.3's contract).
  FeasibilityReport check_feasibility(const UfpInstance& instance,
                                      double tol = 1e-9) const;

 private:
  std::vector<std::optional<Path>> paths_;
  int num_selected_ = 0;
};

// Allocation entry of the repetitions variant: request r routed once along
// `path` (the same request may appear in many entries).
struct RepeatedAllocation {
  int request = -1;
  Path path;
};

class UfpMultiSolution {
 public:
  explicit UfpMultiSolution(int num_requests);

  void add(int r, Path path);

  const std::vector<RepeatedAllocation>& allocations() const { return allocations_; }
  int num_requests() const { return num_requests_; }
  int repetitions_of(int r) const;

  double total_value(const UfpInstance& instance) const;
  std::vector<double> edge_loads(const UfpInstance& instance) const;
  FeasibilityReport check_feasibility(const UfpInstance& instance,
                                      double tol = 1e-9) const;

 private:
  int num_requests_ = 0;
  std::vector<RepeatedAllocation> allocations_;
  std::vector<int> repetition_count_;
};

}  // namespace tufp
