// Algorithm 3: Bounded-UFP-Repeat(eps) — unsplittable flow with
// repetitions (paper §5).
//
// Identical primal-dual skeleton to Algorithm 1 except requests are never
// removed: the same request may be satisfied many times over possibly
// different paths, and the profit is proportional to the number of
// satisfactions. In sharp contrast to the e/(e-1) barrier of the
// no-repetition problem, this variant achieves (1+eps)-approximation
// (Theorem 5.1); the run time is polynomial in m and c_max/d_min because
// every iteration inflates some y_e by at least e^{eps*B*d_min/c_max}.
#pragma once

#include <vector>

#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp {

struct BoundedUfpRepeatConfig {
  double epsilon = 1.0 / 6.0;
  bool capacity_guard = true;   // same semantics as BoundedUfpConfig
  bool lazy_shortest_paths = true;
  bool parallel = true;
  int num_threads = 0;
  SpKernel sp_kernel = SpKernel::kAuto;  // same semantics as BoundedUfpConfig
  bool record_trace = false;
  // Hard stop on iteration count (defense against tiny d_min blowing up
  // the m*c_max/d_min bound); 0 disables.
  std::int64_t max_iterations = 0;
};

struct BoundedUfpRepeatResult {
  UfpMultiSolution solution;
  std::int64_t iterations = 0;
  double final_dual_sum = 0.0;
  std::vector<double> y;
  // min_i D(i)/alpha(i) (Claim 5.2): upper bound on the fractional OPT of
  // Figure 5's relaxation.
  double dual_upper_bound = 0.0;
  bool stopped_by_threshold = false;
  bool hit_iteration_cap = false;
  // Dijkstra computations performed (see BoundedUfpResult::sp_computations).
  std::int64_t sp_computations = 0;
  std::vector<IterationRecord> trace;
};

BoundedUfpRepeatResult bounded_ufp_repeat(
    const UfpInstance& instance, const BoundedUfpRepeatConfig& config = {});

// Hot-path entry point over a persistent residual view (base-graph edge
// ids, blocked edges excluded); see bounded_ufp's view overload for the
// contract. Bitwise identical with or without a workspace.
BoundedUfpRepeatResult bounded_ufp_repeat(
    const ResidualView& view, std::span<const Request> requests,
    const BoundedUfpRepeatConfig& config = {},
    UfpWorkspace* workspace = nullptr);

}  // namespace tufp
