// Generic reasonable iterative path-minimizing algorithm (Definition 3.10).
//
// Repeatedly selects, over all candidate paths of unselected requests that
// still fit the residual capacities, the one minimizing a reasonable
// function; routes it; repeats until nothing fits. This is the algorithm
// family Theorems 3.11/3.12 lower-bound, and the engine behind the
// Figure 2/Figure 3 reproductions.
//
// Candidate paths are enumerated exhaustively per distinct (s, t) pair
// (the lower-bound gadgets and ratio experiments are small), which lets
// arbitrary — including non-additive — reasonable functions and exact,
// auditable tie-breaking schedules be used. The paper's adversarial
// tie-breaks ("select (s_i, v_j, t) with i minimal, j maximal") are
// supplied as a TieScore: among priority-equal candidates the lowest
// tie score wins, with (request id, path index) as the final resolver.
#pragma once

#include <functional>
#include <vector>

#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/reasonable.hpp"
#include "tufp/ufp/solution.hpp"

namespace tufp {

// Lower value = preferred on exact priority ties.
using TieScore = std::function<double(int request, const Path& path)>;

struct IterativeMinimizerConfig {
  const ReasonableFunction* function = nullptr;  // required, non-owning
  TieScore tie_score;                            // optional
  std::size_t max_paths_per_pair = 200000;
  int max_hops = -1;  // -1: all simple paths
  bool record_trace = false;
};

struct MinimizerIteration {
  int request = -1;
  double score = 0.0;
};

struct IterativeMinimizerResult {
  UfpSolution solution;
  int iterations = 0;
  std::vector<MinimizerIteration> trace;
};

// Throws if some (s,t) pair exceeds max_paths_per_pair (the enumeration-
// based engine refuses to run on silently truncated path sets).
IterativeMinimizerResult reasonable_iterative_minimizer(
    const UfpInstance& instance, const IterativeMinimizerConfig& config);

}  // namespace tufp
