// Dual-feasible upper bounds on the fractional UFP optimum.
//
// Weak LP duality (Figure 1): any feasible assignment of the dual
// variables (y_e, z_r) upper-bounds the fractional — hence also the
// integral — optimum. Given an arbitrary positive weight vector y (for
// instance a snapshot from a primal-dual run) the *best rescaled*
// certificate is
//     UB = min_{alpha>0} [ (1/alpha) sum_e c_e y_e + sum_r z_r(alpha) ],
//     z_r(alpha) = max(0, v_r - (d_r/alpha) * sp_r(y)),
// where sp_r(y) is the shortest s_r->t_r distance under y (shortest
// suffices: every other path in S_r is longer, so its constraint is
// slacker). The objective is convex piecewise-linear in 1/alpha, so the
// minimum sits on a kink; we sweep the kinks in O(R log R).
//
// This is how the reproduction measures approximation ratios on instances
// too large for the exact ILP: value/UB is a sound lower bound on the true
// quality of a run.
#pragma once

#include <span>
#include <vector>

#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp {

struct DualCertificate {
  double upper_bound = 0.0;  // feasible dual objective value
  double alpha = 0.0;        // chosen rescaling (0 encodes alpha = infinity)
  std::vector<double> z;     // per-request dual variables at the optimum
};

// Preconditions: y has one strictly positive entry per edge.
DualCertificate best_dual_bound(const UfpInstance& instance,
                                std::span<const double> y);

// Claim 3.6 along a Bounded-UFP run under `config`, tightened by the best
// rescaled certificate of the run's final weights. The single shared
// implementation of "the dual upper bound": the sim oracle suite checks
// solver output against it and the evaluation lab certifies ratios with
// it (lab/upper_bound.hpp re-exports it), so the two can never disagree.
double claim36_upper_bound(const UfpInstance& instance,
                           const BoundedUfpConfig& config);

// Same bound read off an already-completed run (no re-solve): callers
// that hold the run anyway — the lab sweep certifies with the same run
// whose solution answers its `bounded` solver — pay for Bounded-UFP once.
double claim36_upper_bound(const UfpInstance& instance,
                           const BoundedUfpResult& run);

}  // namespace tufp
