#include "tufp/ufp/iterative_minimizer.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "tufp/graph/path_enum.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

constexpr double kFitSlack = 1e-9;

bool path_fits(const Path& path, const std::vector<double>& flows,
               std::span<const double> capacities, double demand) {
  for (EdgeId e : path) {
    const auto ei = static_cast<std::size_t>(e);
    if (flows[ei] + demand > capacities[ei] + kFitSlack) return false;
  }
  return true;
}

}  // namespace

IterativeMinimizerResult reasonable_iterative_minimizer(
    const UfpInstance& instance, const IterativeMinimizerConfig& config) {
  TUFP_REQUIRE(config.function != nullptr, "a reasonable function is required");
  const Graph& g = instance.graph();
  const int R = instance.num_requests();

  // Enumerate S_r once per distinct terminal pair; duplicated requests
  // (the lower-bound gadgets use B identical copies) share the path set.
  std::map<std::pair<VertexId, VertexId>, std::size_t> pair_index;
  std::vector<std::vector<Path>> path_sets;
  std::vector<std::size_t> request_paths(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const Request& req = instance.request(r);
    const auto key = std::make_pair(req.source, req.target);
    auto it = pair_index.find(key);
    if (it == pair_index.end()) {
      PathEnumOptions opts;
      opts.max_paths = config.max_paths_per_pair;
      opts.max_hops = config.max_hops;
      PathEnumResult enumerated =
          enumerate_simple_paths(g, req.source, req.target, opts);
      TUFP_REQUIRE(!enumerated.truncated,
                   "path enumeration exceeded max_paths_per_pair");
      it = pair_index.emplace(key, path_sets.size()).first;
      path_sets.push_back(std::move(enumerated.paths));
    }
    request_paths[static_cast<std::size_t>(r)] = it->second;
  }

  IterativeMinimizerResult result{UfpSolution(R)};
  std::vector<double> flows(static_cast<std::size_t>(g.num_edges()), 0.0);
  const std::span<const double> capacities = g.capacities();

  std::vector<int> remaining(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) remaining[static_cast<std::size_t>(r)] = r;

  while (!remaining.empty()) {
    int best_request = -1;
    const Path* best_path = nullptr;
    double best_score = kInf;
    double best_tie = kInf;

    for (int r : remaining) {
      const Request& req = instance.request(r);
      const auto& paths = path_sets[request_paths[static_cast<std::size_t>(r)]];
      for (const Path& path : paths) {
        if (!path_fits(path, flows, capacities, req.demand)) continue;
        const double score = config.function->evaluate(req.demand, req.value,
                                                       path, flows, capacities);
        if (score > best_score) continue;
        if (score < best_score) {
          best_score = score;
          best_tie = config.tie_score ? config.tie_score(r, path) : 0.0;
          best_request = r;
          best_path = &path;
          continue;
        }
        // Exact priority tie: defer to the tie score; keep the earlier
        // (request id, path index) candidate on a full tie.
        if (config.tie_score) {
          const double tie = config.tie_score(r, path);
          if (tie < best_tie) {
            best_tie = tie;
            best_request = r;
            best_path = &path;
          }
        }
      }
    }

    if (best_request < 0) break;  // nothing fits: the algorithm stops

    const Request& req = instance.request(best_request);
    for (EdgeId e : *best_path) flows[static_cast<std::size_t>(e)] += req.demand;
    result.solution.assign(best_request, *best_path);
    ++result.iterations;
    remaining.erase(
        std::find(remaining.begin(), remaining.end(), best_request));
    if (config.record_trace) {
      result.trace.push_back({best_request, best_score});
    }
  }

  return result;
}

}  // namespace tufp
