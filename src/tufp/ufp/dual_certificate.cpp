#include "tufp/ufp/dual_certificate.hpp"

#include <algorithm>
#include <cmath>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

DualCertificate best_dual_bound(const UfpInstance& instance,
                                std::span<const double> y) {
  const Graph& g = instance.graph();
  TUFP_REQUIRE(y.size() == static_cast<std::size_t>(g.num_edges()),
               "weight vector size must equal edge count");
  for (double w : y) TUFP_REQUIRE(w > 0.0, "certificate weights must be positive");

  const int R = instance.num_requests();
  ShortestPathEngine engine(g);

  // sp_r under y; unreachable requests have empty S_r (no dual constraint).
  std::vector<double> sp(static_cast<std::size_t>(R), kInf);
  for (int r = 0; r < R; ++r) {
    const Request& req = instance.request(r);
    sp[static_cast<std::size_t>(r)] =
        engine.shortest_path(y, req.source, req.target);
  }

  double weight_sum = 0.0;  // sum_e c_e y_e
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weight_sum += g.capacity(e) * y[static_cast<std::size_t>(e)];
  }

  // With t = 1/alpha the objective is f(t) = weight_sum * t +
  // sum_r max(0, v_r - d_r sp_r t): convex piecewise linear, kinks at
  // t_r = v_r/(d_r sp_r). Sweep kinks in increasing order, maintaining the
  // set of still-active (positive z) requests.
  struct Kink {
    double t;
    double value;  // v_r
    double slope;  // d_r * sp_r
  };
  std::vector<Kink> kinks;
  kinks.reserve(static_cast<std::size_t>(R));
  double active_value = 0.0;  // sum of v_r over active requests
  double active_slope = 0.0;  // sum of d_r sp_r over active requests
  for (int r = 0; r < R; ++r) {
    const double s = sp[static_cast<std::size_t>(r)];
    if (s >= kInf) continue;  // no constraint
    const Request& req = instance.request(r);
    TUFP_CHECK(s > 0.0, "positive weights imply positive path lengths");
    kinks.push_back({req.value / (req.demand * s), req.value, req.demand * s});
    active_value += req.value;
    active_slope += req.demand * s;
  }
  std::sort(kinks.begin(), kinks.end(),
            [](const Kink& a, const Kink& b) { return a.t < b.t; });

  // t = 0 (alpha -> infinity): z_r = v_r for every request.
  DualCertificate best;
  best.upper_bound = active_value;
  best.alpha = 0.0;

  double best_t = 0.0;
  for (const Kink& k : kinks) {
    const double f = weight_sum * k.t + (active_value - active_slope * k.t);
    if (f < best.upper_bound) {
      best.upper_bound = f;
      best_t = k.t;
    }
    // Past its kink the request's z clamps to 0.
    active_value -= k.value;
    active_slope -= k.slope;
  }

  best.alpha = best_t > 0.0 ? 1.0 / best_t : 0.0;
  best.z.assign(static_cast<std::size_t>(R), 0.0);
  for (int r = 0; r < R; ++r) {
    const double s = sp[static_cast<std::size_t>(r)];
    if (s >= kInf) continue;
    const Request& req = instance.request(r);
    best.z[static_cast<std::size_t>(r)] =
        std::max(0.0, req.value - req.demand * s * best_t);
  }
  return best;
}

double claim36_upper_bound(const UfpInstance& instance,
                           const BoundedUfpConfig& config) {
  BoundedUfpConfig run_config = config;
  run_config.record_trace = false;
  return claim36_upper_bound(instance, bounded_ufp(instance, run_config));
}

double claim36_upper_bound(const UfpInstance& instance,
                           const BoundedUfpResult& run) {
  double bound = run.dual_upper_bound;
  // The final weights are one more feasible dual snapshot; the best
  // rescaled certificate over them can only tighten Claim 3.6's running
  // minimum (and caps the bound at the total declared value).
  if (!run.y.empty()) {
    bound = std::min(bound, best_dual_bound(instance, run.y).upper_bound);
  }
  return bound;
}

}  // namespace tufp
