// Cross-epoch solver workspace: the state a resident driver keeps alive
// between solves so each epoch starts warm instead of from scratch.
//
// One UfpWorkspace owns, behind an opaque pimpl:
//   * the sharded shortest-path cache (detail/sp_cache.hpp) — engine
//     pool and source-shard plan reused across epochs via rebind();
//   * the cross-epoch settled-tree cache (graph/residual_csr.hpp) that
//     lets an epoch's first refresh skip Dijkstra runs whose stored
//     trees are still stamp-valid.
//
// Passing a workspace to the ResidualView solver overloads is purely an
// optimization: results are bitwise identical with or without one (the
// residual-differential sim oracle enforces this). The engine keeps one
// workspace per world; standalone callers may simply pass nullptr.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "tufp/graph/graph.hpp"

namespace tufp {

namespace detail {
class WorkspaceAccess;
}

class UfpWorkspace {
 public:
  UfpWorkspace();
  ~UfpWorkspace();
  UfpWorkspace(UfpWorkspace&&) noexcept;
  UfpWorkspace& operator=(UfpWorkspace&&) noexcept;
  UfpWorkspace(const UfpWorkspace&) = delete;
  UfpWorkspace& operator=(const UfpWorkspace&) = delete;

  // Drops all cached state (caches, trees, counters). Required whenever
  // the underlying residual graph is reset (its stamp clock restarts).
  void clear();

  // Per-tree reclaim revalidation over the cross-epoch tree cache
  // (graph/residual_csr.hpp survival criterion): drops the stored trees
  // the reclaimed edges can touch, keeps the rest warm through the
  // weight decrease. The engine calls this right after stamping a
  // reclaim batch, with `clock_after` the residual graph's clock once
  // every reclaim is stamped. Returns the kept/dropped tree counts for
  // the deterministic telemetry channel.
  struct ReclaimRevalidation {
    std::int64_t kept = 0;
    std::int64_t dropped = 0;
  };
  ReclaimRevalidation revalidate_warm_trees(const Graph& base,
                                            std::span<const EdgeId> reclaimed,
                                            std::int64_t clock_after);

  // Telemetry (monotone over the workspace lifetime, zeroed by clear()).
  std::int64_t warm_tree_hits() const;      // shards served from stored trees
  std::int64_t warm_entries_served() const; // entries those shards covered
  std::int64_t shard_plan_builds() const;
  std::int64_t shard_plan_reuses() const;

 private:
  friend class detail::WorkspaceAccess;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tufp
