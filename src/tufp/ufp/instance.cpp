#include "tufp/ufp/instance.hpp"

#include <algorithm>
#include <cmath>

#include "tufp/util/assert.hpp"

namespace tufp {

UfpInstance::UfpInstance(Graph graph, std::vector<Request> requests)
    : UfpInstance(std::make_shared<const Graph>(std::move(graph)),
                  std::move(requests)) {}

UfpInstance::UfpInstance(std::shared_ptr<const Graph> graph,
                         std::vector<Request> requests)
    : graph_(std::move(graph)), requests_(std::move(requests)) {
  TUFP_REQUIRE(graph_ != nullptr, "instance graph must not be null");
  TUFP_REQUIRE(graph_->finalized(), "instance graph must be finalized");
  TUFP_REQUIRE(graph_->num_edges() > 0, "instance graph must have edges");
  for (const Request& r : requests_) {
    TUFP_REQUIRE(r.source >= 0 && r.source < graph_->num_vertices(),
                 "request source out of range");
    TUFP_REQUIRE(r.target >= 0 && r.target < graph_->num_vertices(),
                 "request target out of range");
    TUFP_REQUIRE(r.source != r.target, "request source == target");
    TUFP_REQUIRE(r.demand > 0.0, "request demand must be positive");
    TUFP_REQUIRE(r.value > 0.0, "request value must be positive");
  }
}

const Request& UfpInstance::request(int r) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  return requests_[static_cast<std::size_t>(r)];
}

double UfpInstance::max_demand() const {
  TUFP_REQUIRE(!requests_.empty(), "max_demand of empty request set");
  return std::max_element(requests_.begin(), requests_.end(),
                          [](const Request& a, const Request& b) {
                            return a.demand < b.demand;
                          })
      ->demand;
}

double UfpInstance::min_demand() const {
  TUFP_REQUIRE(!requests_.empty(), "min_demand of empty request set");
  return std::min_element(requests_.begin(), requests_.end(),
                          [](const Request& a, const Request& b) {
                            return a.demand < b.demand;
                          })
      ->demand;
}

double UfpInstance::total_value() const {
  double total = 0.0;
  for (const Request& r : requests_) total += r.value;
  return total;
}

bool UfpInstance::is_normalized(double tol) const {
  for (const Request& r : requests_) {
    if (r.demand > 1.0 + tol) return false;
  }
  return true;
}

bool UfpInstance::in_large_capacity_regime(double eps) const {
  TUFP_REQUIRE(eps > 0.0 && eps <= 1.0, "eps outside (0,1]");
  const double m = static_cast<double>(graph_->num_edges());
  return bound_B() >= std::log(m) / (eps * eps);
}

UfpInstance UfpInstance::normalized() const {
  TUFP_REQUIRE(!requests_.empty(), "cannot normalize an empty request set");
  const double scale = 1.0 / max_demand();
  Graph g = graph_->is_directed() ? Graph::directed(graph_->num_vertices())
                                  : Graph::undirected(graph_->num_vertices());
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const auto [u, v] = graph_->endpoints(e);
    g.add_edge(u, v, graph_->capacity(e) * scale);
  }
  g.finalize();
  std::vector<Request> reqs = requests_;
  for (Request& r : reqs) r.demand *= scale;
  return UfpInstance(std::move(g), std::move(reqs));
}

UfpInstance UfpInstance::with_capacity_scale(double factor) const {
  TUFP_REQUIRE(factor > 0.0, "capacity scale must be positive");
  Graph g = graph_->is_directed() ? Graph::directed(graph_->num_vertices())
                                  : Graph::undirected(graph_->num_vertices());
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const auto [u, v] = graph_->endpoints(e);
    g.add_edge(u, v, graph_->capacity(e) * factor);
  }
  g.finalize();
  return UfpInstance(std::move(g), requests_);
}

UfpInstance UfpInstance::with_request(int r, const Request& declared) const {
  TUFP_REQUIRE(r >= 0 && r < num_requests(), "request index out of range");
  const Request& original = requests_[static_cast<std::size_t>(r)];
  TUFP_REQUIRE(declared.source == original.source &&
                   declared.target == original.target,
               "terminals are public knowledge and cannot be redeclared");
  std::vector<Request> reqs = requests_;
  reqs[static_cast<std::size_t>(r)] = declared;
  return UfpInstance(graph_, std::move(reqs));
}

}  // namespace tufp
