// Solver substrate (internal header): the one description of an epoch's
// problem that Bounded-UFP, Bounded-UFP-Repeat and BKV all run against.
//
// The solvers used to consume a UfpInstance — a value-copied compiled
// subgraph per epoch. Under the persistent residual graph they instead
// see the base graph plus a blocked mask (graph/residual_csr.hpp), with
// base edge ids as solver edge ids. This struct is the common
// denominator: both entry points (UfpInstance and ResidualView) lower to
// it, and each solver's core loop is written once against it. The two
// lowerings are byte-equivalent on the active edge set — the compiled
// snapshot's arc lists are order-preserving subsequences of the base arc
// lists, so the canonical searches, tie-breaks and dual arithmetic agree
// bitwise (enforced end-to-end by the residual-differential sim oracle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/residual_csr.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp::detail {

struct Substrate {
  const Graph* graph = nullptr;
  // Per base edge; for a view these are the epoch-start residuals.
  std::span<const double> capacities;
  std::span<const Request> requests;
  // Empty means every edge is active (the instance lowering).
  std::span<const std::uint8_t> blocked;
  double B = 0.0;  // min active capacity, the paper's bound
  int num_active = 0;
  // The owning ResidualGraph's stamp clock at lowering time (-1 for the
  // instance lowering). An unchanged clock certifies that capacities and
  // blocked mask are bitwise what they were — the key for the
  // workspace's epoch-start solve-state cache (workspace_access.hpp).
  std::int64_t clock = -1;
};

inline Substrate substrate_of(const UfpInstance& instance) {
  Substrate s;
  s.graph = &instance.graph();
  s.capacities = instance.graph().capacities();
  s.requests = instance.requests();
  s.B = instance.bound_B();
  s.num_active = instance.graph().num_edges();
  return s;
}

inline Substrate substrate_of(const ResidualView& view,
                              std::span<const Request> requests) {
  Substrate s;
  s.graph = &view.base();
  s.capacities = view.capacities();
  s.requests = requests;
  s.blocked = view.blocked();
  s.B = view.bound_B();
  s.num_active = view.num_active();
  s.clock = view.clock();
  return s;
}

inline bool edge_active(const Substrate& s, std::size_t e) {
  return s.blocked.empty() || !s.blocked[e];
}

// The validation the UfpInstance constructor performs, applied to a raw
// request span for the view entry points; plus the normalized-demand
// precondition all three solvers share.
inline void validate_requests(const Substrate& s) {
  const int n = s.graph->num_vertices();
  for (const Request& r : s.requests) {
    TUFP_REQUIRE(r.source >= 0 && r.source < n && r.target >= 0 &&
                     r.target < n,
                 "request endpoint out of range");
    TUFP_REQUIRE(r.source != r.target, "request with source == target");
    TUFP_REQUIRE(r.demand > 0.0 && r.value > 0.0,
                 "request with non-positive demand or value");
    TUFP_REQUIRE(r.demand <= 1.0 + 1e-12,
                 "solvers require normalized demands in (0,1]");
  }
}

// Line 4 of Alg. 1 over the active edge set: y_e = 1/c_e on active edges
// and 0 on blocked ones (never read — searches skip blocked edges before
// reading their weight), D1(0) = sum_e c_e y_e = |active|, and the
// weight profile folded over active weights only (so bucket-queue
// eligibility matches the compiled-subgraph baseline exactly).
inline void init_duals(const Substrate& s, std::vector<double>* y,
                       double* dual_sum, WeightProfile* profile) {
  const std::size_t m = s.capacities.size();
  y->assign(m, 0.0);
  for (std::size_t e = 0; e < m; ++e) {
    if (!edge_active(s, e)) continue;
    (*y)[e] = 1.0 / s.capacities[e];
    profile->include((*y)[e]);
  }
  *dual_sum = static_cast<double>(s.num_active);
}

}  // namespace tufp::detail
