// Per-request shortest-path cache shared by Bounded-UFP and
// Bounded-UFP-Repeat (internal header).
//
// Both algorithms need, every iteration, the shortest s_r -> t_r path under
// the current dual weights y for every live request (Alg. 1 lines 6-8,
// Alg. 3 lines 4-6). Two facts make caching sound:
//   1. y only ever increases, so path lengths only grow;
//   2. an update touches exactly the edges of one selected path.
// Hence a cached shortest path whose edges were not updated since it was
// computed is still shortest: its own length is unchanged while every
// competitor is at least as long as before. We track a per-edge update
// stamp and recompute only requests whose cached path intersects edges
// stamped after the cache entry.
//
// Recomputation is embarrassingly parallel across requests; with OpenMP
// each thread drives its own ShortestPathEngine. Results are bitwise
// deterministic regardless of thread count (entries are independent).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

#if defined(TUFP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tufp::detail {

class SpCache {
 public:
  struct Entry {
    Path path;
    double length = kInf;
    std::int64_t computed_at = -1;  // stamp epoch of the computation
    bool reachable = true;
  };

  SpCache(const UfpInstance& instance, bool parallel, int num_threads)
      : instance_(&instance),
        entries_(static_cast<std::size_t>(instance.num_requests())),
        parallel_(parallel),
        num_threads_(num_threads) {
    int pool = 1;
#if defined(TUFP_HAVE_OPENMP)
    if (parallel_) pool = num_threads_ > 0 ? num_threads_ : omp_get_max_threads();
#endif
    engines_.reserve(static_cast<std::size_t>(pool));
    for (int i = 0; i < pool; ++i) {
      engines_.push_back(std::make_unique<ShortestPathEngine>(instance.graph()));
    }
  }

  // Ensures entries for `active` are shortest paths under `y`, where
  // edge_stamp[e] is the iteration at which e's weight last changed and
  // `now` the current iteration. With lazy=false everything recomputes.
  void refresh(std::span<const double> y, std::span<const std::int64_t> edge_stamp,
               std::int64_t now, std::span<const int> active, bool lazy) {
    stale_.clear();
    for (int r : active) {
      Entry& entry = entries_[static_cast<std::size_t>(r)];
      if (!entry.reachable) continue;  // graph is static: stays unreachable
      if (lazy && entry.computed_at >= 0 && is_current(entry, edge_stamp)) continue;
      stale_.push_back(r);
    }

    const auto work = [&](std::size_t idx, int engine_id) {
      const int r = stale_[idx];
      Entry& entry = entries_[static_cast<std::size_t>(r)];
      const Request& req = instance_->request(r);
      entry.length = engines_[static_cast<std::size_t>(engine_id)]->shortest_path(
          y, req.source, req.target, &entry.path);
      entry.computed_at = now;
      if (entry.length >= kInf) {
        entry.reachable = false;
        entry.path.clear();
        entry.computed_at = std::numeric_limits<std::int64_t>::max();
      }
    };

#if defined(TUFP_HAVE_OPENMP)
    if (parallel_ && stale_.size() > 1) {
      const int pool = static_cast<int>(engines_.size());
#pragma omp parallel for schedule(dynamic, 4) num_threads(pool)
      for (std::size_t i = 0; i < stale_.size(); ++i) {
        work(i, omp_get_thread_num());
      }
      return;
    }
#endif
    for (std::size_t i = 0; i < stale_.size(); ++i) work(i, 0);
  }

  const Entry& entry(int r) const {
    return entries_[static_cast<std::size_t>(r)];
  }

  std::size_t recomputed_last_refresh() const { return stale_.size(); }

 private:
  static bool is_current(const Entry& entry,
                         std::span<const std::int64_t> edge_stamp) {
    for (EdgeId e : entry.path) {
      // An edge stamped *at* the entry's epoch was updated after that
      // refresh ran (refresh happens at the top of an iteration, the
      // selected path's update at its bottom), so >= — not > — is the
      // staleness condition.
      if (edge_stamp[static_cast<std::size_t>(e)] >= entry.computed_at) {
        return false;
      }
    }
    return true;
  }

  const UfpInstance* instance_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<ShortestPathEngine>> engines_;
  std::vector<int> stale_;
  bool parallel_;
  int num_threads_;
};

}  // namespace tufp::detail
