// Incremental shortest-path cache shared by Bounded-UFP, Bounded-UFP-
// Repeat and BKV (internal header).
//
// All three algorithms need, every iteration, the shortest s_r -> t_r
// path under the current dual weights y for every live request (Alg. 1
// lines 6-8, Alg. 3 lines 4-6). Two facts make caching sound:
//   1. y only ever increases, so path lengths only grow;
//   2. an update touches exactly the edges of one selected path.
// Hence a cached shortest path whose edges were not updated since it was
// computed is still shortest: its own length is unchanged while every
// competitor is at least as long as before. We track a per-edge update
// stamp and recompute only requests whose cached path intersects edges
// stamped after the cache entry.
//
// Capacity-guard invalidation rides the same stamps (DESIGN.md §6): the
// solvers decrement residual capacity on exactly the edges they stamp,
// so an entry's fit status ("does the path still clear the residual
// capacities at this request's demand?") can only change when the entry
// itself goes stale. refresh() therefore evaluates the guard once per
// recomputation and caches it in Entry::fits; the selection loops read a
// bool instead of rescanning the path every iteration.
//
// The invariant callers that pass `residual` must uphold is DIRECTION-
// AGNOSTIC: *every* residual change on an edge — decrement on admission
// AND increment on reclamation (temporal lease expiry, DESIGN.md §10) —
// must be accompanied by a stamp on that edge at the same iteration.
// A decrement without a stamp leaves stale positive verdicts (infeasible
// output); an increment without a stamp leaves stale NEGATIVE verdicts:
// Entry::fits == false outlives the shortage that caused it and the
// request is starved even though its path now fits — the admit → expire →
// re-admit bug class. The solvers below never increase residuals
// mid-run, and the engine reclaims only between epochs, each of which
// compiles a fresh snapshot (and hence a fresh cache) — but any future
// driver that reclaims capacity against a live cache must bump the edge
// stamps of every reclaimed edge (pinned by
// test_sp_cache.ReclaimedCapacityNeedsAStampToUnstickNegativeFits).
//
// Recomputation is sharded by source vertex: requests sharing a source
// are answered from one Dijkstra tree (ShortestPathEngine::shortest_tree)
// instead of one search per request. Shards are embarrassingly parallel
// across OpenMP threads — each thread drives its own engine and writes
// only the entries of its own sources — and every tree is canonical
// (dijkstra.hpp), so entries are bitwise identical for any thread count
// and any shard schedule; consumers then read them in arrival order.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

#if defined(TUFP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tufp::detail {

// Margin for "path fits residual capacity" checks under the guard; keeps
// accumulated floating point from rejecting exactly-full edges.
inline constexpr double kFitSlack = 1e-9;

inline bool path_fits(const Path& path, std::span<const double> residual,
                      double demand) {
  for (const EdgeId e : path) {
    if (residual[static_cast<std::size_t>(e)] + kFitSlack < demand) {
      return false;
    }
  }
  return true;
}

class SpCache {
 public:
  struct Entry {
    Path path;
    double length = kInf;
    std::int64_t computed_at = -1;  // stamp epoch of the computation
    bool reachable = true;
    // Capacity-guard status as of the last recomputation; stays valid
    // until the entry goes stale (see header comment). Always true when
    // refresh() runs without a residual vector.
    bool fits = true;
  };

  SpCache(const UfpInstance& instance, bool parallel, int num_threads,
          SpKernel kernel = SpKernel::kAuto)
      : instance_(&instance),
        entries_(static_cast<std::size_t>(instance.num_requests())),
        parallel_(parallel),
        num_threads_(num_threads) {
    int pool = 1;
#if defined(TUFP_HAVE_OPENMP)
    if (parallel_) pool = num_threads_ > 0 ? num_threads_ : omp_get_max_threads();
#endif
    engines_.reserve(static_cast<std::size_t>(pool));
    for (int i = 0; i < pool; ++i) {
      engines_.push_back(
          std::make_unique<ShortestPathEngine>(instance.graph(), kernel));
    }
    scratch_targets_.resize(static_cast<std::size_t>(pool));

    // Source-vertex shards: one Dijkstra tree per shard per refresh.
    std::vector<int> group_of_source(
        static_cast<std::size_t>(instance.graph().num_vertices()), -1);
    group_of_request_.resize(static_cast<std::size_t>(instance.num_requests()));
    for (int r = 0; r < instance.num_requests(); ++r) {
      const auto s = static_cast<std::size_t>(instance.request(r).source);
      if (group_of_source[s] < 0) {
        group_of_source[s] = static_cast<int>(groups_.size());
        groups_.push_back({instance.request(r).source, {}});
      }
      group_of_request_[static_cast<std::size_t>(r)] = group_of_source[s];
    }
  }

  // Ensures entries for `active` are shortest paths under `y`, where
  // edge_stamp[e] is the iteration at which e's weight last changed and
  // `now` the current iteration. With lazy=false everything recomputes.
  // A non-empty `residual` additionally refreshes Entry::fits against the
  // per-request demand. `profile`, when given, lets per-shard engines use
  // the bucket kernel (kAuto); it must be current for `y`.
  void refresh(std::span<const double> y,
               std::span<const std::int64_t> edge_stamp, std::int64_t now,
               std::span<const int> active, bool lazy,
               std::span<const double> residual = {},
               const WeightProfile* profile = nullptr) {
    stale_count_ = 0;
    tree_runs_last_refresh_ = 0;
    for (Group& g : groups_) g.stale.clear();
    touched_groups_.clear();
    for (const int r : active) {
      Entry& entry = entries_[static_cast<std::size_t>(r)];
      if (!entry.reachable) continue;  // graph is static: stays unreachable
      if (lazy && entry.computed_at >= 0 && is_current(entry, edge_stamp)) {
        continue;
      }
      Group& g = groups_[static_cast<std::size_t>(
          group_of_request_[static_cast<std::size_t>(r)])];
      if (g.stale.empty()) {
        touched_groups_.push_back(
            group_of_request_[static_cast<std::size_t>(r)]);
      }
      g.stale.push_back(r);
      ++stale_count_;
    }
    if (touched_groups_.empty()) return;
    tree_runs_last_refresh_ =
        static_cast<std::int64_t>(touched_groups_.size());

    const auto work = [&](std::size_t idx, int engine_id) {
      const Group& g = groups_[static_cast<std::size_t>(touched_groups_[idx])];
      // Per-engine (= per-thread) scratch keeps the steady-state refresh
      // loop allocation-free.
      std::vector<ShortestPathEngine::TreeTarget>& targets =
          scratch_targets_[static_cast<std::size_t>(engine_id)];
      targets.clear();
      targets.resize(g.stale.size());
      for (std::size_t i = 0; i < g.stale.size(); ++i) {
        const int r = g.stale[i];
        targets[i].vertex = instance_->request(r).target;
        targets[i].path = &entries_[static_cast<std::size_t>(r)].path;
      }
      engines_[static_cast<std::size_t>(engine_id)]->shortest_tree(
          y, g.source, targets, /*blocked=*/{}, profile);
      for (std::size_t i = 0; i < g.stale.size(); ++i) {
        const int r = g.stale[i];
        Entry& entry = entries_[static_cast<std::size_t>(r)];
        entry.length = targets[i].length;
        entry.computed_at = now;
        if (entry.length >= kInf) {
          entry.reachable = false;
          entry.fits = false;
          entry.path.clear();
          entry.computed_at = std::numeric_limits<std::int64_t>::max();
          continue;
        }
        entry.fits = residual.empty() ||
                     path_fits(entry.path, residual,
                               instance_->request(r).demand);
      }
    };

#if defined(TUFP_HAVE_OPENMP)
    if (parallel_ && touched_groups_.size() > 1) {
      const int pool = static_cast<int>(engines_.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(pool)
      for (std::size_t i = 0; i < touched_groups_.size(); ++i) {
        work(i, omp_get_thread_num());
      }
      return;
    }
#endif
    for (std::size_t i = 0; i < touched_groups_.size(); ++i) work(i, 0);
  }

  const Entry& entry(int r) const {
    return entries_[static_cast<std::size_t>(r)];
  }

  // Entries recomputed by the last refresh (the algorithmic
  // shortest-path count the solvers report).
  std::size_t recomputed_last_refresh() const { return stale_count_; }

  // Dijkstra tree searches the last refresh actually ran — one per
  // source shard with at least one stale entry.
  std::int64_t tree_runs_last_refresh() const {
    return tree_runs_last_refresh_;
  }

 private:
  struct Group {
    VertexId source;
    std::vector<int> stale;  // stale requests this refresh, arrival order
  };

  static bool is_current(const Entry& entry,
                         std::span<const std::int64_t> edge_stamp) {
    for (EdgeId e : entry.path) {
      // An edge stamped *at* the entry's epoch was updated after that
      // refresh ran (refresh happens at the top of an iteration, the
      // selected path's update at its bottom), so >= — not > — is the
      // staleness condition.
      if (edge_stamp[static_cast<std::size_t>(e)] >= entry.computed_at) {
        return false;
      }
    }
    return true;
  }

  const UfpInstance* instance_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<ShortestPathEngine>> engines_;
  std::vector<std::vector<ShortestPathEngine::TreeTarget>> scratch_targets_;
  std::vector<Group> groups_;
  std::vector<int> group_of_request_;
  std::vector<int> touched_groups_;
  std::size_t stale_count_ = 0;
  std::int64_t tree_runs_last_refresh_ = 0;
  bool parallel_;
  int num_threads_;
};

}  // namespace tufp::detail
