// Incremental shortest-path cache shared by Bounded-UFP, Bounded-UFP-
// Repeat and BKV (internal header).
//
// All three algorithms need, every iteration, the shortest s_r -> t_r
// path under the current dual weights y for every live request (Alg. 1
// lines 6-8, Alg. 3 lines 4-6). Two facts make caching sound:
//   1. y only ever increases, so path lengths only grow;
//   2. an update touches exactly the edges of one selected path.
// Hence a cached shortest path whose edges were not updated since it was
// computed is still shortest: its own length is unchanged while every
// competitor is at least as long as before. We track a per-edge update
// stamp and recompute only requests whose cached path intersects edges
// stamped after the cache entry.
//
// Capacity-guard invalidation rides the same stamps (DESIGN.md §6): the
// solvers decrement residual capacity on exactly the edges they stamp,
// so an entry's fit status ("does the path still clear the residual
// capacities at this request's demand?") can only change when the entry
// itself goes stale. refresh() therefore evaluates the guard once per
// recomputation and caches it in Entry::fits; the selection loops read a
// bool instead of rescanning the path every iteration.
//
// The invariant callers that pass `residual` must uphold is DIRECTION-
// AGNOSTIC: *every* residual change on an edge — decrement on admission
// AND increment on reclamation (temporal lease expiry, DESIGN.md §10) —
// must be accompanied by a stamp on that edge at the same iteration.
// A decrement without a stamp leaves stale positive verdicts (infeasible
// output); an increment without a stamp leaves stale NEGATIVE verdicts:
// Entry::fits == false outlives the shortage that caused it and the
// request is starved even though its path now fits — the admit → expire →
// re-admit bug class. The solvers below never increase residuals
// mid-run, and the engine reclaims only between epochs — but any future
// driver that reclaims capacity against a live cache must bump the edge
// stamps of every reclaimed edge (pinned by
// test_sp_cache.ReclaimedCapacityNeedsAStampToUnstickNegativeFits).
//
// Recomputation is sharded by source vertex: requests sharing a source
// are answered from one Dijkstra tree (ShortestPathEngine::shortest_tree)
// instead of one search per request. Shards are embarrassingly parallel
// across OpenMP threads — each thread drives its own engine and writes
// only the entries of its own sources — and every tree is canonical
// (dijkstra.hpp), so entries are bitwise identical for any thread count
// and any shard schedule; consumers then read them in arrival order.
//
// The cache is built for reuse across epochs (ufp/workspace.hpp): it is
// bound to a graph once and rebind()s to each epoch's request batch,
// keeping the engine pool and — when the source sequence is unchanged —
// the source-shard plan (per-entry state always resets: computation
// stamps are epoch-local). With a warm context (set_warm_context) the
// epoch's FIRST refresh additionally consults the cross-epoch
// SourceTreeCache: a stored settled tree whose path edges are unstamped
// since it was computed (graph/residual_csr.hpp §12 argument) serves its
// whole shard without a Dijkstra run, bitwise identical to a fresh
// search — reachable targets from the stored predecessor chain,
// unreachable verdicts from an exhausted radius. Trees survive reclaims
// when the engine's per-tree revalidation proves the reclaimed edges
// cannot touch them (validated_clock; residual_csr.hpp survival
// criterion). Warm consultation is restricted to the first refresh
// because only there the duals are still the epoch-start weights
// y = 1/c_e the trees were stored under.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/residual_csr.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/arena.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

#if defined(TUFP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tufp::detail {

// Margin for "path fits residual capacity" checks under the guard; keeps
// accumulated floating point from rejecting exactly-full edges.
inline constexpr double kFitSlack = 1e-9;

inline bool path_fits(const Path& path, std::span<const double> residual,
                      double demand) {
  for (const EdgeId e : path) {
    if (residual[static_cast<std::size_t>(e)] + kFitSlack < demand) {
      return false;
    }
  }
  return true;
}

class SpCache {
 public:
  struct Entry {
    Path path;
    double length = kInf;
    std::int64_t computed_at = -1;  // stamp epoch of the computation
    bool reachable = true;
    // Capacity-guard status as of the last recomputation; stays valid
    // until the entry goes stale (see header comment). Always true when
    // refresh() runs without a residual vector.
    bool fits = true;
    // Provenance: the last (re)computation was served from the
    // cross-epoch SourceTreeCache rather than a fresh Dijkstra run.
    // Deterministic across thread counts — the warm/miss group split is
    // decided serially and the tree-cache content is a pure function of
    // the epochs so far — so decision traces may emit it on the det
    // channel (obs/trace.hpp).
    bool warm = false;
  };

  // Binds to a graph for the cache's lifetime and to an initial request
  // batch (rebind() repoints later). The request span must stay alive
  // through every refresh()/entry() call until the next rebind.
  SpCache(const Graph& graph, std::span<const Request> requests,
          bool parallel, int num_threads, SpKernel kernel = SpKernel::kAuto)
      : graph_(&graph), parallel_(parallel), num_threads_(num_threads) {
    int pool = 1;
#if defined(TUFP_HAVE_OPENMP)
    if (parallel_) pool = num_threads_ > 0 ? num_threads_ : omp_get_max_threads();
#endif
    engines_.reserve(static_cast<std::size_t>(pool));
    for (int i = 0; i < pool; ++i) {
      engines_.push_back(std::make_unique<ShortestPathEngine>(graph, kernel));
    }
    scratch_targets_.resize(static_cast<std::size_t>(pool));
    group_of_source_.reset(static_cast<std::size_t>(graph.num_vertices()), -1);
    rebind(requests);
  }

  SpCache(const UfpInstance& instance, bool parallel, int num_threads,
          SpKernel kernel = SpKernel::kAuto)
      : SpCache(instance.graph(), instance.requests(), parallel, num_threads,
                kernel) {}

  // Points the cache at a new request batch. Per-entry state always
  // resets (computation stamps and fit verdicts are epoch-local; the
  // blocked mask they were judged under changes between epochs). The
  // source-shard plan is reused when the new batch's source sequence is
  // identical to the previous one — the common steady-state case the
  // plan_reuses() counter pins — and rebuilt otherwise via a
  // generation-map over the vertex universe (O(batch), not O(V)).
  void rebind(std::span<const Request> requests) {
    requests_ = requests;
    if (entries_.size() != requests.size()) {
      entries_.resize(requests.size());
    }
    for (Entry& e : entries_) {
      e.path.clear();
      e.length = kInf;
      e.computed_at = -1;
      e.reachable = true;
      e.fits = true;
      e.warm = false;
    }
    bool same_plan = requests.size() == plan_sources_.size();
    if (same_plan) {
      for (std::size_t r = 0; r < requests.size(); ++r) {
        if (requests[r].source != plan_sources_[r]) {
          same_plan = false;
          break;
        }
      }
    }
    if (same_plan) {
      ++plan_reuses_;
      return;
    }
    build_plan();
  }

  // Enables cross-epoch warm starts: at each epoch's first refresh the
  // cache consults `trees` for stored settled trees over `graph`'s base
  // edges and stores the trees it computes fresh. Both pointers must
  // outlive the cache (the workspace owns all three).
  void set_warm_context(const ResidualGraph* graph, SourceTreeCache* trees) {
    warm_graph_ = graph;
    warm_trees_ = trees;
  }

  // Ensures entries for `active` are shortest paths under `y`, where
  // edge_stamp[e] is the iteration at which e's weight last changed and
  // `now` the current iteration. With lazy=false everything recomputes.
  // A non-empty `residual` additionally refreshes Entry::fits against the
  // per-request demand. `profile`, when given, lets per-shard engines use
  // the bucket kernel (kAuto); it must be current for `y`. A non-empty
  // `blocked` mask excludes edges from every search. `epoch_start` marks
  // the first refresh of a solve whose weights are the epoch-start duals
  // y = 1/c_e — the only point where the warm context may be consulted.
  void refresh(std::span<const double> y,
               std::span<const std::int64_t> edge_stamp, std::int64_t now,
               std::span<const int> active, bool lazy,
               std::span<const double> residual = {},
               const WeightProfile* profile = nullptr,
               std::span<const std::uint8_t> blocked = {},
               bool epoch_start = false) {
    TUFP_SPAN("sp_refresh");
    stale_count_ = 0;
    tree_runs_last_refresh_ = 0;
    warm_trees_last_refresh_ = 0;
    for (Group& g : groups_) g.stale.clear();
    touched_groups_.clear();
    for (const int r : active) {
      Entry& entry = entries_[static_cast<std::size_t>(r)];
      if (!entry.reachable) continue;  // blocked set is static within a solve
      if (lazy && entry.computed_at >= 0 && is_current(entry, edge_stamp)) {
        continue;
      }
      Group& g = groups_[static_cast<std::size_t>(
          group_of_request_[static_cast<std::size_t>(r)])];
      if (g.stale.empty()) {
        touched_groups_.push_back(
            group_of_request_[static_cast<std::size_t>(r)]);
      }
      g.stale.push_back(r);
      ++stale_count_;
    }
    if (touched_groups_.empty()) return;
    // Counter parity with the always-fresh baseline: a warm-served shard
    // still counts as a tree run and its entries as recomputations, so
    // the sp_computations/sp_tree_runs the solvers report are identical
    // whether or not the warm cache hits (goldens stay byte-stable).
    tree_runs_last_refresh_ =
        static_cast<std::int64_t>(touched_groups_.size());

    // Warm starts need strictly positive epoch-start weights: with a
    // zero weight present the engine falls back to first-discovery
    // parents, which are not canonical and must not be cached.
    const bool warm = epoch_start && warm_graph_ != nullptr &&
                      warm_trees_ != nullptr && profile != nullptr &&
                      profile->all_positive;
    miss_groups_.clear();
    if (warm) {
      // Serial point for the tree cache's generation-reset eviction:
      // store() itself never evicts (it runs on the OpenMP workers), so
      // the limits are enforced here, where the tree set is a
      // deterministic function of the epochs so far — identical for
      // every thread count.
      warm_trees_->enforce_limits();
      for (const int gi : touched_groups_) {
        if (serve_warm_group(groups_[static_cast<std::size_t>(gi)], residual,
                             now)) {
          ++warm_trees_last_refresh_;
          ++warm_trees_served_;
          warm_entries_served_ += static_cast<std::int64_t>(
              groups_[static_cast<std::size_t>(gi)].stale.size());
        } else {
          miss_groups_.push_back(gi);
        }
      }
      if (miss_groups_.empty()) return;
      for (auto& engine : engines_) engine->set_record_settled(true);
    } else {
      miss_groups_.assign(touched_groups_.begin(), touched_groups_.end());
    }
    const std::int64_t warm_clock = warm ? warm_graph_->clock() : 0;

    const auto work = [&](std::size_t idx, int engine_id) {
      const Group& g = groups_[static_cast<std::size_t>(miss_groups_[idx])];
      // Per-engine (= per-thread) scratch keeps the steady-state refresh
      // loop allocation-free.
      std::vector<ShortestPathEngine::TreeTarget>& targets =
          scratch_targets_[static_cast<std::size_t>(engine_id)];
      targets.clear();
      targets.resize(g.stale.size());
      for (std::size_t i = 0; i < g.stale.size(); ++i) {
        const int r = g.stale[i];
        targets[i].vertex = requests_[static_cast<std::size_t>(r)].target;
        targets[i].path = &entries_[static_cast<std::size_t>(r)].path;
      }
      ShortestPathEngine& engine =
          *engines_[static_cast<std::size_t>(engine_id)];
      engine.shortest_tree(y, g.source, targets, blocked, profile);
      if (warm) {
        // Store order across shards is thread-schedule dependent, but
        // every stored tree is canonical, so anything later served from
        // it is bitwise identical to a fresh search either way.
        warm_trees_->store(g.source, engine, warm_clock);
      }
      for (std::size_t i = 0; i < g.stale.size(); ++i) {
        const int r = g.stale[i];
        Entry& entry = entries_[static_cast<std::size_t>(r)];
        entry.length = targets[i].length;
        entry.computed_at = now;
        entry.warm = false;
        if (entry.length >= kInf) {
          entry.reachable = false;
          entry.fits = false;
          entry.path.clear();
          entry.computed_at = std::numeric_limits<std::int64_t>::max();
          continue;
        }
        entry.fits = residual.empty() ||
                     path_fits(entry.path, residual,
                               requests_[static_cast<std::size_t>(r)].demand);
      }
    };

#if defined(TUFP_HAVE_OPENMP)
    if (parallel_ && miss_groups_.size() > 1) {
      const int pool = static_cast<int>(engines_.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(pool)
      for (std::size_t i = 0; i < miss_groups_.size(); ++i) {
        work(i, omp_get_thread_num());
      }
    } else {
      for (std::size_t i = 0; i < miss_groups_.size(); ++i) work(i, 0);
    }
#else
    for (std::size_t i = 0; i < miss_groups_.size(); ++i) work(i, 0);
#endif
    if (warm) {
      for (auto& engine : engines_) engine->set_record_settled(false);
    }
  }

  const Entry& entry(int r) const {
    return entries_[static_cast<std::size_t>(r)];
  }

  // Entries recomputed by the last refresh (the algorithmic
  // shortest-path count the solvers report; warm-served entries count).
  std::size_t recomputed_last_refresh() const { return stale_count_; }

  // Dijkstra tree searches the last refresh accounted for — one per
  // source shard with at least one stale entry (warm-served shards
  // count; see the parity note in refresh()).
  std::int64_t tree_runs_last_refresh() const {
    return tree_runs_last_refresh_;
  }

  // Shard-plan bookkeeping (pinned by test_sp_cache): how often the
  // source-shard plan was rebuilt vs reused across rebind()s.
  std::int64_t plan_builds() const { return plan_builds_; }
  std::int64_t plan_reuses() const { return plan_reuses_; }

  // Cross-epoch warm-start telemetry (never part of solver reports).
  std::int64_t warm_trees_last_refresh() const {
    return warm_trees_last_refresh_;
  }
  std::int64_t warm_trees_served() const { return warm_trees_served_; }
  std::int64_t warm_entries_served() const { return warm_entries_served_; }

 private:
  struct Group {
    VertexId source;
    std::vector<int> stale;  // stale requests this refresh, arrival order
  };

  void build_plan() {
    groups_.clear();
    group_of_request_.resize(requests_.size());
    plan_sources_.resize(requests_.size());
    group_of_source_.advance();
    for (std::size_t r = 0; r < requests_.size(); ++r) {
      const VertexId s = requests_[r].source;
      plan_sources_[r] = s;
      int g = group_of_source_.get(static_cast<std::size_t>(s));
      if (g < 0) {
        g = static_cast<int>(groups_.size());
        group_of_source_.set(static_cast<std::size_t>(s), g);
        groups_.push_back({s, {}});
      }
      group_of_request_[r] = g;
    }
    ++plan_builds_;
  }

  static bool is_current(const Entry& entry,
                         std::span<const std::int64_t> edge_stamp) {
    for (EdgeId e : entry.path) {
      // An edge stamped *at* the entry's epoch was updated after that
      // refresh ran (refresh happens at the top of an iteration, the
      // selected path's update at its bottom), so >= — not > — is the
      // staleness condition.
      if (edge_stamp[static_cast<std::size_t>(e)] >= entry.computed_at) {
        return false;
      }
    }
    return true;
  }

  // Tries to serve every stale target of `g` from the cross-epoch tree
  // cache. All-or-nothing: on any failed validation the whole shard is
  // reported as a miss and recomputed fresh (entries partially filled
  // here are overwritten by the fresh run). Soundness: residual_csr.hpp
  // §12 header — unstamped path edges + no global weight decrease imply
  // a fresh canonical search would reproduce the stored tree bitwise.
  bool serve_warm_group(const Group& g, std::span<const double> residual,
                        std::int64_t now) {
    const SourceTreeCache::Tree* tree = warm_trees_->lookup(g.source);
    if (tree == nullptr) return false;
    // Weight decreases after max(computed, validated) are unaccounted
    // for; a reclaim revalidation that kept this tree bumped
    // validated_clock past the reclaim's last_decrease() tick
    // (residual_csr.hpp survival criterion), so surviving trees keep
    // serving. Per-edge stamp checks below stay against computed_clock:
    // a kept tree contains no reclaimed edge, so any later stamp on a
    // stored path edge is an admission — a weight increase the stored
    // path cannot certify against.
    const std::int64_t valid_through =
        std::max(tree->computed_clock, tree->validated_clock);
    if (warm_graph_->last_decrease() > valid_through) return false;
    const std::span<const std::int64_t> stamps = warm_graph_->stamps();
    for (const int r : g.stale) {
      Entry& entry = entries_[static_cast<std::size_t>(r)];
      const Request& req = requests_[static_cast<std::size_t>(r)];
      const int ti = tree->index_of(req.target);
      if (ti < 0) {
        // Absent target: conclusive only when the stored search
        // exhausted the entire reachable set.
        if (tree->radius < kInf) return false;
        entry.length = kInf;
        entry.reachable = false;
        entry.fits = false;
        entry.warm = true;
        entry.path.clear();
        entry.computed_at = std::numeric_limits<std::int64_t>::max();
        continue;
      }
      // Reconstruct the stored path while validating its stamps.
      entry.path.clear();
      int i = ti;
      VertexId v = req.target;
      while (v != g.source) {
        const EdgeId pe = tree->parent_edge[static_cast<std::size_t>(i)];
        if (stamps[static_cast<std::size_t>(pe)] > tree->computed_clock) {
          return false;
        }
        entry.path.push_back(pe);
        v = tree->parent_vertex[static_cast<std::size_t>(i)];
        i = tree->index_of(v);
        if (i < 0) return false;  // defensive: parents are always settled
      }
      std::reverse(entry.path.begin(), entry.path.end());
      entry.length = tree->dist[static_cast<std::size_t>(ti)];
      entry.reachable = true;
      entry.computed_at = now;
      entry.warm = true;
      entry.fits =
          residual.empty() || path_fits(entry.path, residual, req.demand);
    }
    return true;
  }

  const Graph* graph_;
  std::span<const Request> requests_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<ShortestPathEngine>> engines_;
  std::vector<std::vector<ShortestPathEngine::TreeTarget>> scratch_targets_;
  std::vector<Group> groups_;
  std::vector<int> group_of_request_;
  std::vector<VertexId> plan_sources_;  // source signature of the plan
  GenerationMap<int> group_of_source_;
  std::vector<int> touched_groups_;
  std::vector<int> miss_groups_;
  std::size_t stale_count_ = 0;
  std::int64_t tree_runs_last_refresh_ = 0;
  std::int64_t plan_builds_ = 0;
  std::int64_t plan_reuses_ = 0;
  std::int64_t warm_trees_last_refresh_ = 0;
  std::int64_t warm_trees_served_ = 0;
  std::int64_t warm_entries_served_ = 0;
  const ResidualGraph* warm_graph_ = nullptr;
  SourceTreeCache* warm_trees_ = nullptr;
  bool parallel_;
  int num_threads_;
};

}  // namespace tufp::detail
