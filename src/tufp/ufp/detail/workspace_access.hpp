// Internal backdoor into UfpWorkspace's pimpl (solver implementation
// files only). Public consumers see ufp/workspace.hpp's opaque surface;
// the solvers need the concrete SpCache/SourceTreeCache to wire warm
// starts up.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tufp/graph/residual_csr.hpp"
#include "tufp/ufp/detail/sp_cache.hpp"
#include "tufp/ufp/workspace.hpp"

namespace tufp {

namespace detail {

// Epoch-start solver state cached across solves (bounded_ufp.cpp). The
// arrays are exactly Algorithm 1's line-4 state: y_e = 1/c_e duals, the
// residual working copy (== epoch capacities at solve start) and the
// all-zero iteration stamps. They are only mutated by admissions, so a
// solve that admits nothing leaves them bitwise at their epoch-start
// values — and a later solve whose view shows the same stamp clock over
// the same capacity span may reuse them without the O(m) rebuild. That
// is the clean-epoch fast path: on a saturated steady state the solver
// setup drops from O(m) to O(1).
struct EpochSolveState {
  std::vector<double> y;
  std::vector<double> residual;
  std::vector<std::int64_t> edge_stamp;
  WeightProfile profile;
  double dual_sum = 0.0;

  // Reuse key: valid only for this owner at this stamp clock over this
  // exact capacity span. An engine reset() clears the whole workspace,
  // so a restarted clock can never alias a stale key.
  bool valid = false;
  const ResidualGraph* owner = nullptr;
  std::int64_t clock = -1;
  const double* cap_data = nullptr;
  std::size_t cap_size = 0;
};

}  // namespace detail

struct UfpWorkspace::Impl {
  std::unique_ptr<detail::SpCache> cache;
  SourceTreeCache trees;
  detail::EpochSolveState solve_state;

  // Construction parameters the cached SpCache was built with; a solve
  // with a different configuration rebuilds it.
  const Graph* graph = nullptr;
  bool parallel = false;
  int num_threads = 0;
  SpKernel kernel = SpKernel::kAuto;

  // Counter baselines from caches discarded by reconfiguration, so the
  // public telemetry stays monotone across rebuilds.
  std::int64_t retired_warm_trees = 0;
  std::int64_t retired_warm_entries = 0;
  std::int64_t retired_plan_builds = 0;
  std::int64_t retired_plan_reuses = 0;
};

namespace detail {

class WorkspaceAccess {
 public:
  static UfpWorkspace::Impl& impl(UfpWorkspace& ws) { return *ws.impl_; }

  // The workspace's SpCache bound to (graph, requests) under the given
  // parallelism/kernel configuration: rebinds the existing cache when
  // compatible, rebuilds it otherwise. The returned cache has its warm
  // context attached to the workspace's tree cache.
  static SpCache& bind_cache(UfpWorkspace& ws, const ResidualGraph& rgraph,
                             std::span<const Request> requests, bool parallel,
                             int num_threads, SpKernel kernel) {
    UfpWorkspace::Impl& state = *ws.impl_;
    const Graph* graph = &rgraph.base();
    if (state.cache == nullptr || state.graph != graph ||
        state.parallel != parallel || state.num_threads != num_threads ||
        state.kernel != kernel) {
      if (state.cache != nullptr) {
        state.retired_warm_trees += state.cache->warm_trees_served();
        state.retired_warm_entries += state.cache->warm_entries_served();
        state.retired_plan_builds += state.cache->plan_builds();
        state.retired_plan_reuses += state.cache->plan_reuses();
      }
      state.cache = std::make_unique<SpCache>(*graph, requests, parallel,
                                              num_threads, kernel);
      state.graph = graph;
      state.parallel = parallel;
      state.num_threads = num_threads;
      state.kernel = kernel;
    } else {
      state.cache->rebind(requests);
    }
    state.cache->set_warm_context(&rgraph, &state.trees);
    return *state.cache;
  }

  static EpochSolveState& solve_state(UfpWorkspace& ws) {
    return ws.impl_->solve_state;
  }
};

}  // namespace detail
}  // namespace tufp
