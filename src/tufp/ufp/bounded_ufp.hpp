// Algorithm 1: Bounded-UFP(eps) — the paper's primary contribution.
//
// A deterministic, monotone, exact primal-dual algorithm for the
// Omega(ln m)-bounded unsplittable flow problem achieving approximation
// (1+eps)*e/(e-1) (Theorem 3.1). Maintains dual weights y_e = (1/c_e) *
// e^{eps*B*f_e/c_e}; each iteration satisfies the request minimizing the
// normalized shortest-path length (d_r/v_r)*|p_r| and exponentially
// inflates the weights along the chosen path; stops when the dual value
// sum_e c_e*y_e crosses e^{eps*(B-1)}.
//
// Monotonicity (Lemma 3.4) + exactness (Def. 2.2) make the algorithm a
// truthful mechanism when combined with critical-value payments
// (Theorem 2.3; see mechanism/critical_payment.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/residual_csr.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/solution.hpp"
#include "tufp/ufp/workspace.hpp"

namespace tufp {

struct BoundedUfpConfig {
  // Accuracy parameter in (0,1]. Theorem 3.1 invokes the algorithm with
  // eps/6 to obtain the (1+eps)*e/(e-1) guarantee in the ln(m)/eps^2
  // regime; the config takes the raw algorithm parameter.
  double epsilon = 1.0 / 6.0;

  // Paper-faithful Algorithm 1 never checks residual capacity — Lemma 3.3
  // proves feasibility from the threshold alone, but only in the
  // B = Omega(ln m) regime. With the guard on, a request whose current
  // shortest path does not fit the residual capacities is skipped for the
  // round; this keeps outputs feasible on arbitrary instances and
  // preserves monotonicity and exactness (DESIGN.md §6).
  bool capacity_guard = true;

  // Reuse cached shortest paths whose edges were untouched since their
  // computation (provably equivalent; see detail/sp_cache.hpp). Off only
  // for the equivalence tests / ablation bench.
  bool lazy_shortest_paths = true;

  // Ignore the e^{eps(B-1)} stopping threshold and keep selecting while
  // anything fits. Off-paper convenience for out-of-regime instances
  // (where the faithful threshold can be below the initial dual value m
  // and the loop would exit immediately); requires capacity_guard, which
  // then solely enforces feasibility. The approximation guarantee of
  // Theorem 3.1 applies only to the faithful setting.
  bool run_to_saturation = false;

  // OpenMP-parallel per-source shortest-path trees. Deterministic for
  // any thread count.
  bool parallel = true;
  int num_threads = 0;  // 0: runtime default

  // Shortest-path queue discipline. kAuto runs the monotone bucket queue
  // while the dual weights' key range allows it and falls back to the
  // heap as saturation spreads them (DESIGN.md §6); kHeap/kBucket force
  // a kernel (tests, ablation benches).
  SpKernel sp_kernel = SpKernel::kAuto;

  // Record one IterationRecord per selection (tests/benches).
  bool record_trace = false;

  // Classify every unselected request at loop exit (result.rejections)
  // and export per-request warm-tree provenance (result.warm). The
  // classification reads only the solver's own deterministic exit state —
  // cached entries, the live residual, the epoch-start capacities — so
  // records are identical across kernels, thread counts and shard
  // layouts (the trace-differential oracle's contract, DESIGN.md §14).
  // Cost: O(rejected × path length) once per solve.
  bool classify_rejections = false;

  // Populate result.y with the final dual weights. Only dual-certificate
  // consumers need them; the epoch engine turns this off so a clean epoch
  // (nothing admitted) costs no O(m) export. Never changes the solution.
  bool export_duals = true;
};

struct IterationRecord {
  int request = -1;
  double alpha = 0.0;       // normalized length of the selected path, alpha(i)
  double dual_sum = 0.0;    // D1(i) = sum_e c_e y_e before the update
  double primal_value = 0.0;  // P(i+1), value routed after this selection
};

// Why an unselected request lost, judged at loop exit (DESIGN.md §14).
// The solver speaks capacity language only; the engine maps kCapacityRace
// onto its shard vocabulary (the request lost an intra-epoch capacity
// race to earlier winners — the cross-shard-contention outcome class).
enum class RejectReason {
  kNoPath,          // no residual-feasible route exists at all
  kBlockedAtStart,  // candidate path short of capacity even at epoch start
  kCapacityRace,    // fit at epoch start, displaced by this epoch's winners
  kLostAuction,     // path feasible at exit; density never won an iteration
};

struct RejectionRecord {
  int request = -1;
  RejectReason reason = RejectReason::kLostAuction;
  // (d_r/v_r)·|p_r|_y at exit — the density that kept losing (reachable
  // requests only; zero when no path was ever computed).
  double density = 0.0;
  // First candidate-path edge short of the relevant capacity vector
  // (kBlockedAtStart: epoch-start; kCapacityRace: live residual); -1
  // otherwise.
  EdgeId bottleneck = -1;
  // The cached candidate path the classification inspected.
  Path path;
};

struct BoundedUfpResult {
  UfpSolution solution;
  int iterations = 0;

  // sum_e c_e y_e when the loop exited.
  double final_dual_sum = 0.0;
  // Final dual weights y_e (inputs to dual_certificate / diagnostics).
  std::vector<double> y;

  // Best (smallest) dual-feasible upper bound on the *fractional* optimum
  // observed during the run: min_i D1(i)/alpha(i) + P(i) (Claim 3.6).
  // Always >= OPT >= solution value, so value/dual_upper_bound lower-bounds
  // the true approximation quality of this run.
  double dual_upper_bound = 0.0;

  // True when the loop exited because sum c_e y_e > e^{eps(B-1)}; false
  // when every request was routed (output provably optimal) or, under the
  // capacity guard, when no remaining request fit.
  bool stopped_by_threshold = false;

  // Total shortest-path recomputations (cache entries refilled). The
  // naive loop costs iterations * |remaining| of them; lazy invalidation
  // only recomputes requests whose cached path touched updated edges
  // (DESIGN.md §6).
  std::int64_t sp_computations = 0;

  // Dijkstra tree searches actually run: one per source shard with a
  // stale entry, so sp_tree_runs <= sp_computations with equality only
  // when no two stale requests ever share a source.
  std::int64_t sp_tree_runs = 0;

  std::vector<IterationRecord> trace;

  // classify_rejections only: one record per unselected request in
  // ascending request order, and per-request warm-tree provenance
  // (sp_cache Entry::warm at exit) for every request, winners included.
  std::vector<RejectionRecord> rejections;
  std::vector<std::uint8_t> warm;
};

// Preconditions: normalized instance (d_r <= 1), B >= 1, eps in (0,1],
// eps*B within safe double exponent range (util/math.hpp).
BoundedUfpResult bounded_ufp(const UfpInstance& instance,
                             const BoundedUfpConfig& config = {});

// Hot-path entry point: solves over a persistent residual view without
// compiling a per-epoch instance. Edge ids are base-graph ids; blocked
// edges are excluded from every search and carry y = 0 in result.y.
// Preconditions as above with B = the view's min active residual and at
// least one active edge. A non-null `workspace` reuses the shortest-path
// cache, shard plan and cross-epoch settled trees across calls — results
// are bitwise identical with or without it.
BoundedUfpResult bounded_ufp(const ResidualView& view,
                             std::span<const Request> requests,
                             const BoundedUfpConfig& config = {},
                             UfpWorkspace* workspace = nullptr);

}  // namespace tufp
