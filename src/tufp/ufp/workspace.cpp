#include "tufp/ufp/workspace.hpp"

#include "tufp/ufp/detail/workspace_access.hpp"

namespace tufp {

UfpWorkspace::UfpWorkspace() : impl_(std::make_unique<Impl>()) {}

UfpWorkspace::~UfpWorkspace() = default;

UfpWorkspace::UfpWorkspace(UfpWorkspace&&) noexcept = default;

UfpWorkspace& UfpWorkspace::operator=(UfpWorkspace&&) noexcept = default;

void UfpWorkspace::clear() { impl_ = std::make_unique<Impl>(); }

UfpWorkspace::ReclaimRevalidation UfpWorkspace::revalidate_warm_trees(
    const Graph& base, std::span<const EdgeId> reclaimed,
    std::int64_t clock_after) {
  const SourceTreeCache::ReclaimRevalidation r =
      impl_->trees.revalidate_after_reclaim(base, reclaimed, clock_after);
  return {r.kept, r.dropped};
}

std::int64_t UfpWorkspace::warm_tree_hits() const {
  return impl_->retired_warm_trees +
         (impl_->cache ? impl_->cache->warm_trees_served() : 0);
}

std::int64_t UfpWorkspace::warm_entries_served() const {
  return impl_->retired_warm_entries +
         (impl_->cache ? impl_->cache->warm_entries_served() : 0);
}

std::int64_t UfpWorkspace::shard_plan_builds() const {
  return impl_->retired_plan_builds +
         (impl_->cache ? impl_->cache->plan_builds() : 0);
}

std::int64_t UfpWorkspace::shard_plan_reuses() const {
  return impl_->retired_plan_reuses +
         (impl_->cache ? impl_->cache->plan_reuses() : 0);
}

}  // namespace tufp
