#include "tufp/ufp/bounded_ufp_repeat.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "tufp/ufp/detail/sp_cache.hpp"
#include "tufp/ufp/detail/substrate.hpp"
#include "tufp/ufp/detail/workspace_access.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

BoundedUfpRepeatResult run_repeat(const detail::Substrate& sub,
                                  const BoundedUfpRepeatConfig& config,
                                  detail::SpCache& cache, bool warm_start) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 1.0,
               "epsilon outside (0,1]");
  TUFP_REQUIRE(sub.num_active > 0,
               "Bounded-UFP-Repeat needs at least one active edge");
  const double B = sub.B;
  TUFP_REQUIRE(B >= 1.0, "Bounded-UFP-Repeat requires B >= 1");
  const double eps = config.epsilon;
  TUFP_REQUIRE(eps * B <= kMaxSafeExponent,
               "eps*B too large for double-range weights");

  const int R = static_cast<int>(sub.requests.size());

  BoundedUfpRepeatResult result{UfpMultiSolution(R)};
  result.dual_upper_bound = kInf;

  std::vector<double> y;
  double dual_sum = 0.0;
  WeightProfile profile;
  detail::init_duals(sub, &y, &dual_sum, &profile);
  const double threshold = std::exp(eps * (B - 1.0));

  std::vector<double> residual(sub.capacities.begin(), sub.capacities.end());
  std::vector<std::int64_t> edge_stamp(sub.capacities.size(), 0);
  std::int64_t now = 0;

  std::vector<int> live(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) live[static_cast<std::size_t>(r)] = r;

  const std::span<const double> guard_residual =
      config.capacity_guard ? std::span<const double>(residual)
                            : std::span<const double>();

  double primal_value = 0.0;

  // Line 3: while (sum c_e y_e <= e^{eps(B-1)}). L never shrinks here.
  while (dual_sum <= threshold) {
    if (config.max_iterations > 0 && result.iterations >= config.max_iterations) {
      result.hit_iteration_cap = true;
      break;
    }
    ++now;
    cache.refresh(y, edge_stamp, now, live, config.lazy_shortest_paths,
                  guard_residual, &profile, sub.blocked,
                  /*epoch_start=*/warm_start && now == 1);
    result.sp_computations +=
        static_cast<std::int64_t>(cache.recomputed_last_refresh());

    int best = -1;
    double best_priority = kInf;
    double alpha_cert = kInf;
    for (int r : live) {
      const auto& entry = cache.entry(r);
      if (!entry.reachable) continue;
      const Request& req = sub.requests[static_cast<std::size_t>(r)];
      const double priority = req.demand / req.value * entry.length;
      alpha_cert = std::min(alpha_cert, priority);
      // Cached guard verdict: sound while residual is monotone non-
      // increasing with stamped decrements (sp_cache.hpp). Note for the
      // repeated-auction reading of §5: capacity does NOT reset between
      // selections here — if a future variant restores it, the restored
      // edges must be stamped or this read keeps stale negative fits.
      if (config.capacity_guard && !entry.fits) continue;
      if (priority < best_priority) {
        best_priority = priority;
        best = r;
      }
    }

    if (alpha_cert < kInf && alpha_cert > 0.0) {
      // Claim 5.2: y/alpha is feasible for Figure 5's dual (no z terms).
      result.dual_upper_bound =
          std::min(result.dual_upper_bound, dual_sum / alpha_cert);
    }

    if (best < 0) break;  // no routable request at all

    const Request& req = sub.requests[static_cast<std::size_t>(best)];
    const auto& entry = cache.entry(best);
    const double dual_before = dual_sum;
    for (EdgeId e : entry.path) {
      const auto ei = static_cast<std::size_t>(e);
      const double cap = sub.capacities[ei];
      const double old_y = y[ei];
      y[ei] = old_y * std::exp(eps * B * req.demand / cap);
      dual_sum += cap * (y[ei] - old_y);
      edge_stamp[ei] = now;
      residual[ei] -= req.demand;
      profile.include(y[ei]);
    }
    result.solution.add(best, entry.path);
    primal_value += req.value;
    ++result.iterations;
    if (config.record_trace) {
      result.trace.push_back({best, best_priority, dual_before, primal_value});
    }
  }

  result.stopped_by_threshold = dual_sum > threshold;
  result.final_dual_sum = dual_sum;
  result.y = std::move(y);
  return result;
}

}  // namespace

BoundedUfpRepeatResult bounded_ufp_repeat(const UfpInstance& instance,
                                          const BoundedUfpRepeatConfig& config) {
  TUFP_REQUIRE(instance.is_normalized(),
               "Bounded-UFP-Repeat requires demands in (0,1]");
  const detail::Substrate sub = detail::substrate_of(instance);
  detail::SpCache cache(instance, config.parallel, config.num_threads,
                        config.sp_kernel);
  return run_repeat(sub, config, cache, /*warm_start=*/false);
}

BoundedUfpRepeatResult bounded_ufp_repeat(const ResidualView& view,
                                          std::span<const Request> requests,
                                          const BoundedUfpRepeatConfig& config,
                                          UfpWorkspace* workspace) {
  const detail::Substrate sub = detail::substrate_of(view, requests);
  detail::validate_requests(sub);
  if (workspace != nullptr) {
    detail::SpCache& cache = detail::WorkspaceAccess::bind_cache(
        *workspace, view.owner(), requests, config.parallel,
        config.num_threads, config.sp_kernel);
    return run_repeat(sub, config, cache, /*warm_start=*/true);
  }
  detail::SpCache cache(view.base(), requests, config.parallel,
                        config.num_threads, config.sp_kernel);
  return run_repeat(sub, config, cache, /*warm_start=*/false);
}

}  // namespace tufp
