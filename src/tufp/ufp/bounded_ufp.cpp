#include "tufp/ufp/bounded_ufp.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "tufp/ufp/detail/sp_cache.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

BoundedUfpResult bounded_ufp(const UfpInstance& instance,
                             const BoundedUfpConfig& config) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 1.0,
               "epsilon outside (0,1]");
  TUFP_REQUIRE(instance.is_normalized(),
               "Bounded-UFP requires demands in (0,1]; call normalized() first");
  const Graph& g = instance.graph();
  const double B = instance.bound_B();
  TUFP_REQUIRE(B >= 1.0, "Bounded-UFP requires B = min capacity >= 1");
  const double eps = config.epsilon;
  TUFP_REQUIRE(eps * B <= kMaxSafeExponent,
               "eps*B too large for double-range weights (see DESIGN.md §6)");
  TUFP_REQUIRE(!config.run_to_saturation || config.capacity_guard,
               "run_to_saturation requires the capacity guard");

  const int m = g.num_edges();
  const int R = instance.num_requests();

  BoundedUfpResult result{UfpSolution(R)};
  result.dual_upper_bound = kInf;

  // Line 4: y_e = 1/c_e, so D1(0) = sum_e c_e y_e = m.
  std::vector<double> y(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    y[static_cast<std::size_t>(e)] = 1.0 / g.capacity(e);
  }
  double dual_sum = static_cast<double>(m);
  const double threshold = std::exp(eps * (B - 1.0));

  std::vector<double> residual(g.capacities().begin(), g.capacities().end());
  std::vector<std::int64_t> edge_stamp(static_cast<std::size_t>(m), 0);
  std::int64_t now = 0;

  std::vector<int> remaining(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) remaining[static_cast<std::size_t>(r)] = r;

  detail::SpCache cache(instance, config.parallel, config.num_threads,
                        config.sp_kernel);
  // Kept current incrementally as y inflates: enables the bucket-queue
  // kernel while the key range stays bounded (DESIGN.md §6).
  WeightProfile profile = WeightProfile::scan(y);
  const std::span<const double> guard_residual =
      config.capacity_guard ? std::span<const double>(residual)
                            : std::span<const double>();

  double primal_value = 0.0;

  // Line 5: while (L != empty and sum c_e y_e <= e^{eps(B-1)}).
  while (!remaining.empty()) {
    if (!config.run_to_saturation && dual_sum > threshold) {
      result.stopped_by_threshold = true;
      break;
    }
    ++now;
    cache.refresh(y, edge_stamp, now, remaining, config.lazy_shortest_paths,
                  guard_residual, &profile);
    result.sp_computations +=
        static_cast<std::int64_t>(cache.recomputed_last_refresh());
    result.sp_tree_runs += cache.tree_runs_last_refresh();

    // Line 9: request minimizing (d_r/v_r)|p_r|; deterministic tie-break on
    // request id. alpha_cert tracks the minimum over *all* remaining
    // reachable requests (needed for the dual certificate regardless of
    // which requests the guard filters).
    int best = -1;
    double best_priority = kInf;
    double alpha_cert = kInf;
    for (int r : remaining) {
      const auto& entry = cache.entry(r);
      if (!entry.reachable) continue;
      const Request& req = instance.request(r);
      const double priority = req.demand / req.value * entry.length;
      alpha_cert = std::min(alpha_cert, priority);
      // Guard status is cached in the entry (sp_cache.hpp): it can only
      // change when the entry itself goes stale, so no per-iteration
      // path rescan. Sound here because this loop's residual is monotone
      // non-increasing and every decrement stamps its edge; a driver that
      // ever *returns* capacity mid-run (lease reclaim) must stamp the
      // reclaimed edges too, or this read serves stale negative verdicts.
      if (config.capacity_guard && !entry.fits) continue;
      if (priority < best_priority) {
        best_priority = priority;
        best = r;
      }
    }

    if (alpha_cert < kInf && alpha_cert > 0.0) {
      // Claim 3.6 machinery: (y/alpha, z) with z_r = v_r for selected
      // requests is dual feasible, so its value bounds the fractional OPT.
      result.dual_upper_bound = std::min(result.dual_upper_bound,
                                         dual_sum / alpha_cert + primal_value);
    }

    if (best < 0) break;  // nothing reachable (or nothing fits under guard)

    // Lines 10-12: inflate weights along the chosen path, commit request.
    const Request& req = instance.request(best);
    const auto& entry = cache.entry(best);
    const double dual_before = dual_sum;
    for (EdgeId e : entry.path) {
      const auto ei = static_cast<std::size_t>(e);
      const double cap = g.capacity(e);
      const double old_y = y[ei];
      y[ei] = old_y * std::exp(eps * B * req.demand / cap);
      dual_sum += cap * (y[ei] - old_y);
      edge_stamp[ei] = now;
      residual[ei] -= req.demand;
      profile.include(y[ei]);
    }
    result.solution.assign(best, entry.path);
    primal_value += req.value;
    ++result.iterations;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));

    if (config.record_trace) {
      result.trace.push_back({best, best_priority, dual_before, primal_value});
    }
  }

  // Everything routed: the solution is optimal, so its own value is a
  // valid (tight) upper bound.
  if (remaining.empty()) {
    result.dual_upper_bound = std::min(result.dual_upper_bound, primal_value);
  }

  result.final_dual_sum = dual_sum;
  result.y = std::move(y);
  return result;
}

}  // namespace tufp
