#include "tufp/ufp/bounded_ufp.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "tufp/ufp/detail/sp_cache.hpp"
#include "tufp/ufp/detail/substrate.hpp"
#include "tufp/ufp/detail/workspace_access.hpp"
#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

namespace {

void validate_config(const detail::Substrate& sub,
                     const BoundedUfpConfig& config) {
  TUFP_REQUIRE(config.epsilon > 0.0 && config.epsilon <= 1.0,
               "epsilon outside (0,1]");
  TUFP_REQUIRE(sub.num_active > 0, "Bounded-UFP needs at least one active edge");
  TUFP_REQUIRE(sub.B >= 1.0, "Bounded-UFP requires B = min capacity >= 1");
  TUFP_REQUIRE(config.epsilon * sub.B <= kMaxSafeExponent,
               "eps*B too large for double-range weights (see DESIGN.md §6)");
  TUFP_REQUIRE(!config.run_to_saturation || config.capacity_guard,
               "run_to_saturation requires the capacity guard");
}

// Algorithm 1's loop, written once against the substrate. `warm_start`
// marks a solve over a persistent residual view with a live workspace:
// the first refresh may then be served from cross-epoch settled trees
// (bitwise-equivalent; detail/sp_cache.hpp). A non-null `state` caches
// the O(m) epoch-start arrays across solves: they are reused verbatim
// when the view's stamp clock is unchanged — init_duals is
// deterministic over inputs the unchanged clock certifies as bitwise
// identical, so reuse is exact — and they stay reusable after the solve
// only when nothing was admitted (admissions are the sole mutation).
BoundedUfpResult run_bounded_ufp(const detail::Substrate& sub,
                                 const BoundedUfpConfig& config,
                                 detail::SpCache& cache, bool warm_start,
                                 detail::EpochSolveState* state = nullptr) {
  const double B = sub.B;
  const double eps = config.epsilon;
  const int R = static_cast<int>(sub.requests.size());

  BoundedUfpResult result{UfpSolution(R)};
  result.dual_upper_bound = kInf;

  detail::EpochSolveState local;
  detail::EpochSolveState& st = state != nullptr ? *state : local;
  const bool reused = state != nullptr && st.valid && sub.clock >= 0 &&
                      st.clock == sub.clock &&
                      st.cap_data == sub.capacities.data() &&
                      st.cap_size == sub.capacities.size();
  if (!reused) {
    // Line 4: y_e = 1/c_e on active edges, D1(0) = sum c_e y_e = |active|.
    // The profile is kept current incrementally as y inflates: enables
    // the bucket-queue kernel while the key range is bounded (§6).
    st.profile = WeightProfile();  // init_duals folds, it does not reset
    detail::init_duals(sub, &st.y, &st.dual_sum, &st.profile);
    st.residual.assign(sub.capacities.begin(), sub.capacities.end());
    st.edge_stamp.assign(sub.capacities.size(), 0);
  }
  std::vector<double>& y = st.y;
  std::vector<double>& residual = st.residual;
  std::vector<std::int64_t>& edge_stamp = st.edge_stamp;
  double dual_sum = st.dual_sum;
  WeightProfile profile = st.profile;
  const double threshold = std::exp(eps * (B - 1.0));
  std::int64_t now = 0;

  std::vector<int> remaining(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) remaining[static_cast<std::size_t>(r)] = r;

  const std::span<const double> guard_residual =
      config.capacity_guard ? std::span<const double>(residual)
                            : std::span<const double>();

  double primal_value = 0.0;

  // Line 5: while (L != empty and sum c_e y_e <= e^{eps(B-1)}).
  while (!remaining.empty()) {
    if (!config.run_to_saturation && dual_sum > threshold) {
      result.stopped_by_threshold = true;
      break;
    }
    ++now;
    // now == 1 is the only refresh whose weights are still the
    // epoch-start duals the cross-epoch trees were stored under.
    cache.refresh(y, edge_stamp, now, remaining, config.lazy_shortest_paths,
                  guard_residual, &profile, sub.blocked,
                  /*epoch_start=*/warm_start && now == 1);
    result.sp_computations +=
        static_cast<std::int64_t>(cache.recomputed_last_refresh());
    result.sp_tree_runs += cache.tree_runs_last_refresh();

    // Line 9: request minimizing (d_r/v_r)|p_r|; deterministic tie-break on
    // request id. alpha_cert tracks the minimum over *all* remaining
    // reachable requests (needed for the dual certificate regardless of
    // which requests the guard filters).
    int best = -1;
    double best_priority = kInf;
    double alpha_cert = kInf;
    for (int r : remaining) {
      const auto& entry = cache.entry(r);
      if (!entry.reachable) continue;
      const Request& req = sub.requests[static_cast<std::size_t>(r)];
      const double priority = req.demand / req.value * entry.length;
      alpha_cert = std::min(alpha_cert, priority);
      // Guard status is cached in the entry (sp_cache.hpp): it can only
      // change when the entry itself goes stale, so no per-iteration
      // path rescan. Sound here because this loop's residual is monotone
      // non-increasing and every decrement stamps its edge; a driver that
      // ever *returns* capacity mid-run (lease reclaim) must stamp the
      // reclaimed edges too, or this read serves stale negative verdicts.
      if (config.capacity_guard && !entry.fits) continue;
      if (priority < best_priority) {
        best_priority = priority;
        best = r;
      }
    }

    if (alpha_cert < kInf && alpha_cert > 0.0) {
      // Claim 3.6 machinery: (y/alpha, z) with z_r = v_r for selected
      // requests is dual feasible, so its value bounds the fractional OPT.
      result.dual_upper_bound = std::min(result.dual_upper_bound,
                                         dual_sum / alpha_cert + primal_value);
    }

    if (best < 0) break;  // nothing reachable (or nothing fits under guard)

    // Lines 10-12: inflate weights along the chosen path, commit request.
    const Request& req = sub.requests[static_cast<std::size_t>(best)];
    const auto& entry = cache.entry(best);
    const double dual_before = dual_sum;
    for (EdgeId e : entry.path) {
      const auto ei = static_cast<std::size_t>(e);
      const double cap = sub.capacities[ei];
      const double old_y = y[ei];
      y[ei] = old_y * std::exp(eps * B * req.demand / cap);
      dual_sum += cap * (y[ei] - old_y);
      edge_stamp[ei] = now;
      residual[ei] -= req.demand;
      profile.include(y[ei]);
    }
    result.solution.assign(best, entry.path);
    primal_value += req.value;
    ++result.iterations;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));

    if (config.record_trace) {
      result.trace.push_back({best, best_priority, dual_before, primal_value});
    }
  }

  // Everything routed: the solution is optimal, so its own value is a
  // valid (tight) upper bound.
  if (remaining.empty()) {
    result.dual_upper_bound = std::min(result.dual_upper_bound, primal_value);
  }

  if (config.classify_rejections) {
    // Serial exit-state classification (DESIGN.md §14): every input here —
    // cached entries, the live residual, the epoch-start capacities — is a
    // deterministic function of the admission history, so the records are
    // byte-identical across kernels, thread counts and shard layouts.
    // Staleness is benign AND deterministic: in saturation mode the loop
    // exits right after a refresh (entries fresh); under the faithful
    // threshold any still-fitting request is lost_auction regardless of
    // whether a late winner touched its path.
    result.warm.resize(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      result.warm[static_cast<std::size_t>(r)] =
          cache.entry(r).warm ? 1 : 0;
    }
    result.rejections.reserve(remaining.size());
    for (const int r : remaining) {  // ascending: erase() keeps the order
      const auto& entry = cache.entry(r);
      const Request& req = sub.requests[static_cast<std::size_t>(r)];
      RejectionRecord rec;
      rec.request = r;
      if (!entry.reachable) {
        rec.reason = RejectReason::kNoPath;
      } else if (entry.length >= kInf) {
        // Threshold crossed before the first refresh ever ran: nothing
        // was computed, the request simply never got an auction round.
        rec.reason = RejectReason::kLostAuction;
      } else {
        rec.density = req.demand / req.value * entry.length;
        rec.path = entry.path;
        if (detail::path_fits(entry.path, residual, req.demand)) {
          rec.reason = RejectReason::kLostAuction;
        } else {
          const std::span<const double> at_start = sub.capacities;
          rec.reason = detail::path_fits(entry.path, at_start, req.demand)
                           ? RejectReason::kCapacityRace
                           : RejectReason::kBlockedAtStart;
          const std::span<const double> judged =
              rec.reason == RejectReason::kCapacityRace
                  ? std::span<const double>(residual)
                  : at_start;
          for (const EdgeId e : entry.path) {
            if (judged[static_cast<std::size_t>(e)] + detail::kFitSlack <
                req.demand) {
              rec.bottleneck = e;
              break;
            }
          }
        }
      }
      result.rejections.push_back(std::move(rec));
    }
  }

  result.final_dual_sum = dual_sum;
  if (state != nullptr) {
    // Admissions mutated the arrays in place; only an untouched solve
    // leaves them at their epoch-start values for the next epoch.
    st.valid = result.iterations == 0;
    st.clock = sub.clock;
    st.cap_data = sub.capacities.data();
    st.cap_size = sub.capacities.size();
    if (config.export_duals) result.y = y;  // the cache keeps its copy
  } else if (config.export_duals) {
    result.y = std::move(y);
  }
  return result;
}

}  // namespace

BoundedUfpResult bounded_ufp(const UfpInstance& instance,
                             const BoundedUfpConfig& config) {
  TUFP_REQUIRE(instance.is_normalized(),
               "Bounded-UFP requires demands in (0,1]; call normalized() first");
  const detail::Substrate sub = detail::substrate_of(instance);
  validate_config(sub, config);
  detail::SpCache cache(instance, config.parallel, config.num_threads,
                        config.sp_kernel);
  return run_bounded_ufp(sub, config, cache, /*warm_start=*/false);
}

BoundedUfpResult bounded_ufp(const ResidualView& view,
                             std::span<const Request> requests,
                             const BoundedUfpConfig& config,
                             UfpWorkspace* workspace) {
  const detail::Substrate sub = detail::substrate_of(view, requests);
  detail::validate_requests(sub);
  validate_config(sub, config);
  if (workspace != nullptr) {
    detail::SpCache& cache = detail::WorkspaceAccess::bind_cache(
        *workspace, view.owner(), requests, config.parallel,
        config.num_threads, config.sp_kernel);
    detail::EpochSolveState& st =
        detail::WorkspaceAccess::solve_state(*workspace);
    if (st.owner != &view.owner()) {
      st.valid = false;  // a rebound workspace never reuses foreign state
      st.owner = &view.owner();
    }
    return run_bounded_ufp(sub, config, cache, /*warm_start=*/true, &st);
  }
  detail::SpCache cache(view.base(), requests, config.parallel,
                        config.num_threads, config.sp_kernel);
  return run_bounded_ufp(sub, config, cache, /*warm_start=*/false);
}

}  // namespace tufp
