#include "tufp/ufp/reasonable.hpp"

#include <cmath>
#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

ExponentialLengthFunction::ExponentialLengthFunction(double eps, double B)
    : eps_(eps), B_(B) {
  TUFP_REQUIRE(eps > 0.0 && eps <= 1.0, "eps outside (0,1]");
  TUFP_REQUIRE(B >= 1.0, "B must be >= 1");
}

std::string ExponentialLengthFunction::name() const {
  std::ostringstream os;
  os << "h(eps=" << eps_ << ",B=" << B_ << ")";
  return os.str();
}

double ExponentialLengthFunction::evaluate(
    double demand, double value, const Path& path, std::span<const double> flows,
    std::span<const double> capacities) const {
  double sum = 0.0;
  for (EdgeId e : path) {
    const auto ei = static_cast<std::size_t>(e);
    sum += (1.0 / capacities[ei]) * std::exp(eps_ * B_ * flows[ei] / capacities[ei]);
  }
  return demand / value * sum;
}

HopBiasedFunction::HopBiasedFunction(double eps, double B) : inner_(eps, B) {}

std::string HopBiasedFunction::name() const {
  return "h1=ln(1+hops)*" + inner_.name();
}

double HopBiasedFunction::evaluate(double demand, double value, const Path& path,
                                   std::span<const double> flows,
                                   std::span<const double> capacities) const {
  const double base = inner_.evaluate(demand, value, path, flows, capacities);
  return std::log(1.0 + static_cast<double>(path.size())) * base;
}

std::string FlowProductFunction::name() const { return "h2=prod(f/c)"; }

double FlowProductFunction::evaluate(double demand, double value, const Path& path,
                                     std::span<const double> flows,
                                     std::span<const double> capacities) const {
  double product = 1.0;
  for (EdgeId e : path) {
    const auto ei = static_cast<std::size_t>(e);
    product *= flows[ei] / capacities[ei];
    if (product == 0.0) break;
  }
  return demand / value * product;
}

}  // namespace tufp
