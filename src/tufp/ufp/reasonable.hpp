// Reasonable path-priority functions (Definition 3.9).
//
// A priority function g : S -> R is *reasonable* when, restricted to
// unit-demand/unit-value requests on identically-capacitated edges, it
// weakly prefers paths that are shorter (fewer edges) and carry pointwise
// less flow. The paper's inapproximability results (Theorems 3.11/3.12)
// hold for every iterative algorithm minimizing such a function; this
// header materializes the three examples the paper names:
//   h  (p) = d_p/v_p * sum_{e in p} (1/c_e) e^{eps*B*f_e/c_e}   (Alg. 1's rule)
//   h1 (p) = ln(1 + |p|) * h(p)                                  (hop biased)
//   h2 (p) = d_p/v_p * prod_{e in p} f_e/c_e                     (flow product)
// Functions are evaluated on explicit candidate paths by the enumeration-
// based minimizer (iterative_minimizer.hpp), so arbitrary non-additive
// shapes (h2) are supported uniformly.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "tufp/graph/path.hpp"

namespace tufp {

class ReasonableFunction {
 public:
  virtual ~ReasonableFunction() = default;

  virtual std::string name() const = 0;

  // Priority of routing a (demand, value) request along `path` given the
  // current per-edge flows. Lower is better.
  virtual double evaluate(double demand, double value, const Path& path,
                          std::span<const double> flows,
                          std::span<const double> capacities) const = 0;
};

// h — the rule Algorithm 1 minimizes (the paper notes Bounded-UFP is a
// reasonable iterative path-minimizing algorithm via exactly this form).
class ExponentialLengthFunction final : public ReasonableFunction {
 public:
  ExponentialLengthFunction(double eps, double B);
  std::string name() const override;
  double evaluate(double demand, double value, const Path& path,
                  std::span<const double> flows,
                  std::span<const double> capacities) const override;

  double eps() const { return eps_; }
  double B() const { return B_; }

 private:
  double eps_;
  double B_;
};

// h1 = ln(1 + |p|) * h(p): "mildly biased towards paths with less edges".
class HopBiasedFunction final : public ReasonableFunction {
 public:
  HopBiasedFunction(double eps, double B);
  std::string name() const override;
  double evaluate(double demand, double value, const Path& path,
                  std::span<const double> flows,
                  std::span<const double> capacities) const override;

 private:
  ExponentialLengthFunction inner_;
};

// h2 = d/v * prod_e f_e/c_e: the paper's "although it is not clear why
// anyone would like to use it" example; any path containing a flow-free
// edge scores 0.
class FlowProductFunction final : public ReasonableFunction {
 public:
  std::string name() const override;
  double evaluate(double demand, double value, const Path& path,
                  std::span<const double> flows,
                  std::span<const double> capacities) const override;
};

}  // namespace tufp
