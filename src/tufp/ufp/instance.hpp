// The B-bounded unsplittable flow problem instance (paper §1).
//
// An instance is an edge-capacitated graph plus connection requests
// (s_r, t_r, d_r, v_r). Following the paper's normalized formulation we
// work with B = min_e c_e and demands d_r in (0, 1]; `normalized()`
// rescales an arbitrary instance into that form. The large-capacity regime
// the theorems need is B >= ln(m)/eps^2 (`in_large_capacity_regime`).
//
// The graph is held by shared_ptr: the mechanism layer re-runs allocation
// rules against single-declaration variants (`with_request`) many times per
// payment computation, and those variants share the immutable topology.
#pragma once

#include <memory>
#include <vector>

#include "tufp/graph/graph.hpp"

namespace tufp {

struct Request {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  double demand = 0.0;  // d_r > 0
  double value = 0.0;   // v_r > 0
};

class UfpInstance {
 public:
  // Validates on construction: finalized graph with >= 1 edge, every
  // request with s != t in range and positive demand/value.
  UfpInstance(Graph graph, std::vector<Request> requests);
  UfpInstance(std::shared_ptr<const Graph> graph, std::vector<Request> requests);

  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& shared_graph() const { return graph_; }
  const std::vector<Request>& requests() const { return requests_; }
  const Request& request(int r) const;
  int num_requests() const { return static_cast<int>(requests_.size()); }

  // B in the paper's normalized formulation: min edge capacity.
  double bound_B() const { return graph_->min_capacity(); }

  double max_demand() const;
  double min_demand() const;
  double total_value() const;

  // All demands in (0, 1] (the formulation Algorithms 1-3 assume).
  bool is_normalized(double tol = 1e-12) const;

  // B >= ln(m)/eps^2, the Omega(ln m)-bounded regime of Theorems 3.1/4.1/5.1.
  bool in_large_capacity_regime(double eps) const;

  // Rescales demands and capacities by 1/max_demand so d_r in (0,1]
  // (the equivalence noted in the paper's problem definition). Values are
  // untouched; the optimal selection is invariant under this scaling.
  UfpInstance normalized() const;

  // Copy of the instance with request r's declaration replaced; shares the
  // graph. Source/target are the publicly known part of the type and must
  // stay fixed (paper §"The setting").
  UfpInstance with_request(int r, const Request& declared) const;

  // Copy with every edge capacity multiplied by `factor` > 0; demands and
  // values untouched. On a normalized instance this dials the
  // capacity-to-demand ratio beta = B/d_max directly — the knob the
  // evaluation lab sweeps (lab/sweep.hpp).
  UfpInstance with_capacity_scale(double factor) const;

 private:
  std::shared_ptr<const Graph> graph_;
  std::vector<Request> requests_;
};

}  // namespace tufp
