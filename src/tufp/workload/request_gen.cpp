#include "tufp/workload/request_gen.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

RequestSampler::RequestSampler(const Graph& graph,
                               const RequestGenConfig& config)
    : graph_(&graph),
      config_(config),
      engine_(graph),
      unit_weights_(static_cast<std::size_t>(graph.num_edges()), 1.0),
      zipf_(100, config.zipf_exponent) {
  TUFP_REQUIRE(graph.finalized(), "graph must be finalized");
  TUFP_REQUIRE(graph.num_vertices() >= 2, "graph too small for requests");
  TUFP_REQUIRE(config.demand_min > 0.0 && config.demand_min <= config.demand_max,
               "bad demand range");
  TUFP_REQUIRE(config.value_min > 0.0 && config.value_min <= config.value_max,
               "bad value range");
  TUFP_REQUIRE(!config.assume_connected ||
                   config.value_model != ValueModel::kProportional,
               "assume_connected drops the hop distance kProportional needs");
  TUFP_REQUIRE(config.source_pool >= 0 &&
                   config.source_pool <= graph.num_vertices(),
               "source_pool exceeds the vertex set");
  TUFP_REQUIRE(config.source_stride >= 1, "source_stride must be positive");
  TUFP_REQUIRE(config.source_stride == 1 || config.source_pool > 0,
               "source_stride needs a source pool to spread");
  TUFP_REQUIRE(config.source_pool == 0 ||
                   static_cast<std::int64_t>(config.source_stride) *
                           (config.source_pool - 1) <
                       graph.num_vertices(),
               "source_stride spreads the pool past the vertex set");
  TUFP_REQUIRE(config.target_radius >= 0, "negative target_radius");
  TUFP_REQUIRE(config.target_radius == 0 || config.source_pool > 0,
               "target_radius needs pooled sources (balls are per source)");
  TUFP_REQUIRE(config.target_radius == 0 ||
                   config.value_model != ValueModel::kProportional,
               "target_radius drops the hop distance kProportional needs");
}

const std::vector<VertexId>& RequestSampler::ball_of(VertexId source) {
  const auto [it, inserted] = balls_.try_emplace(source);
  std::vector<VertexId>& ball = it->second;
  if (!inserted) return ball;
  if (visited_.size() != static_cast<std::size_t>(graph_->num_vertices())) {
    visited_.assign(static_cast<std::size_t>(graph_->num_vertices()), 0);
  }
  // Plain BFS to target_radius hops over the base adjacency: a pure
  // function of the graph, so the ball — and with it the RNG-to-target
  // mapping — is deterministic across runs and thread counts.
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  visited_[static_cast<std::size_t>(source)] = 1;
  for (int depth = 0; depth < config_.target_radius && !frontier.empty();
       ++depth) {
    next.clear();
    for (const VertexId u : frontier) {
      for (const Arc& a : graph_->arcs_from(u)) {
        auto& seen = visited_[static_cast<std::size_t>(a.to)];
        if (seen) continue;
        seen = 1;
        ball.push_back(a.to);
        next.push_back(a.to);
      }
    }
    frontier.swap(next);
  }
  TUFP_REQUIRE(!ball.empty(),
               "target_radius ball holds only the source itself");
  visited_[static_cast<std::size_t>(source)] = 0;
  for (const VertexId v : ball) visited_[static_cast<std::size_t>(v)] = 0;
  std::sort(ball.begin(), ball.end());
  return ball;
}

Request RequestSampler::sample(Rng& rng) {
  const auto n = static_cast<std::uint64_t>(graph_->num_vertices());
  const auto pool = config_.source_pool > 0
                        ? static_cast<std::uint64_t>(config_.source_pool)
                        : n;
  Request req;
  double hops = kInf;
  int retries = 0;
  do {
    TUFP_REQUIRE(retries++ < config_.max_pair_retries,
                 "could not sample a connected terminal pair");
    req.source = static_cast<VertexId>(
        static_cast<std::uint64_t>(config_.source_stride) *
        rng.next_below(pool));
    if (config_.target_radius > 0) {
      // Local traffic: a uniform draw from the source's hop ball, which
      // excludes the source and is reachable by construction.
      const std::vector<VertexId>& ball = ball_of(req.source);
      req.target = ball[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ball.size())))];
      break;
    }
    req.target = static_cast<VertexId>(rng.next_below(n));
    if (req.source == req.target) continue;
    if (config_.assume_connected) break;  // reachability declared, not probed
    hops = engine_.shortest_path(unit_weights_, req.source, req.target);
  } while (hops >= kInf);

  req.demand = rng.next_double(config_.demand_min, config_.demand_max);
  switch (config_.value_model) {
    case ValueModel::kUniform:
      req.value = rng.next_double(config_.value_min, config_.value_max);
      break;
    case ValueModel::kZipf: {
      const int rank = zipf_.sample(rng);
      req.value = std::max(config_.value_min,
                           config_.value_max / static_cast<double>(rank));
      break;
    }
    case ValueModel::kProportional:
      req.value = std::max(config_.value_min,
                           req.demand * hops * rng.next_double(0.8, 1.2));
      break;
  }
  return req;
}

std::vector<Request> generate_requests(const Graph& graph,
                                       const RequestGenConfig& config, Rng& rng) {
  TUFP_REQUIRE(config.num_requests >= 0, "negative request count");
  RequestSampler sampler(graph, config);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(config.num_requests));
  for (int i = 0; i < config.num_requests; ++i) {
    requests.push_back(sampler.sample(rng));
  }
  return requests;
}

}  // namespace tufp
