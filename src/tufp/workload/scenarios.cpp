#include "tufp/workload/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tufp/graph/generators.hpp"
#include "tufp/util/assert.hpp"

namespace tufp {

double regime_capacity(int num_edges, double eps, double slack) {
  TUFP_REQUIRE(num_edges >= 1, "need at least one edge");
  TUFP_REQUIRE(eps > 0.0 && eps <= 1.0, "eps outside (0,1]");
  TUFP_REQUIRE(slack > 0.0, "slack must be positive");
  return std::max(1.0, slack * std::log(static_cast<double>(num_edges)) /
                           (eps * eps));
}

UfpInstance make_grid_scenario(int rows, int cols, double capacity,
                               int num_requests, ValueModel value_model,
                               std::uint64_t seed) {
  Rng rng(seed);
  Graph g = grid_graph(rows, cols, capacity, /*directed=*/false);
  RequestGenConfig config;
  config.num_requests = num_requests;
  config.value_model = value_model;
  std::vector<Request> requests = generate_requests(g, config, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

UfpInstance make_random_scenario(int num_vertices, int num_edges,
                                 double capacity, int num_requests,
                                 std::uint64_t seed) {
  Rng rng(seed);
  Graph g = random_graph(num_vertices, num_edges, capacity, capacity,
                         /*directed=*/true, rng);
  RequestGenConfig config;
  config.num_requests = num_requests;
  std::vector<Request> requests = generate_requests(g, config, rng);
  return UfpInstance(std::move(g), std::move(requests));
}

StreamingScenario make_streaming_grid_scenario(int rows, int cols,
                                               double capacity,
                                               ValueModel value_model) {
  Graph g = grid_graph(rows, cols, capacity, /*directed=*/false);
  StreamingScenario scenario;
  scenario.graph = std::make_shared<const Graph>(std::move(g));
  scenario.request_config.value_model = value_model;
  return scenario;
}

StreamingScenario make_streaming_random_scenario(int num_vertices,
                                                 int num_edges,
                                                 double capacity,
                                                 ValueModel value_model,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  Graph g = random_graph(num_vertices, num_edges, capacity, capacity,
                         /*directed=*/true, rng);
  StreamingScenario scenario;
  scenario.graph = std::make_shared<const Graph>(std::move(g));
  scenario.request_config.value_model = value_model;
  return scenario;
}

MucaInstance make_random_auction(int num_items, int multiplicity,
                                 int num_requests, int bundle_min,
                                 int bundle_max, double value_min,
                                 double value_max, std::uint64_t seed) {
  TUFP_REQUIRE(num_items >= 1, "need at least one item");
  TUFP_REQUIRE(multiplicity >= 1, "multiplicity must be positive");
  TUFP_REQUIRE(bundle_min >= 1 && bundle_min <= bundle_max &&
                   bundle_max <= num_items,
               "bad bundle size range");
  TUFP_REQUIRE(value_min > 0.0 && value_min <= value_max, "bad value range");

  Rng rng(seed);
  std::vector<int> multiplicities(static_cast<std::size_t>(num_items),
                                  multiplicity);
  std::vector<int> pool(static_cast<std::size_t>(num_items));
  std::iota(pool.begin(), pool.end(), 0);

  std::vector<MucaRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_requests));
  for (int r = 0; r < num_requests; ++r) {
    const auto size = static_cast<int>(
        rng.next_int(bundle_min, bundle_max));
    // Partial Fisher-Yates: the first `size` entries become the bundle.
    for (int k = 0; k < size; ++k) {
      const auto j = static_cast<std::size_t>(
          k + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(num_items - k))));
      std::swap(pool[static_cast<std::size_t>(k)], pool[j]);
    }
    MucaRequest req;
    req.bundle.assign(pool.begin(), pool.begin() + size);
    std::sort(req.bundle.begin(), req.bundle.end());
    req.value = rng.next_double(value_min, value_max);
    requests.push_back(std::move(req));
  }
  return MucaInstance(std::move(multiplicities), std::move(requests));
}

}  // namespace tufp
