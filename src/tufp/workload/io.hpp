// Plain-text instance serialization.
//
// Formats (whitespace separated, '#' comments allowed between records):
//
//   ufp <directed|undirected> <num_vertices> <num_edges> <num_requests>
//   edge <u> <v> <capacity>          x num_edges
//   req  <s> <t> <demand> <value>    x num_requests
//
//   muca <num_items> <num_requests>
//   item <multiplicity>              x num_items
//   req  <value> <k> <u_1> ... <u_k> x num_requests
//
// Loaders validate aggressively and throw std::invalid_argument with the
// offending token on malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/ufp/instance.hpp"

namespace tufp {

void save_ufp(const UfpInstance& instance, std::ostream& os);
UfpInstance load_ufp(std::istream& is);

void save_muca(const MucaInstance& instance, std::ostream& os);
MucaInstance load_muca(std::istream& is);

// File-path conveniences (throw on I/O failure).
void save_ufp_file(const UfpInstance& instance, const std::string& path);
UfpInstance load_ufp_file(const std::string& path);
void save_muca_file(const MucaInstance& instance, const std::string& path);
MucaInstance load_muca_file(const std::string& path);

}  // namespace tufp
