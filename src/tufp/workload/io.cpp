#include "tufp/workload/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "tufp/util/assert.hpp"

namespace tufp {

namespace {

// Reads the next token, skipping '#'-to-end-of-line comments.
std::string next_token(std::istream& is) {
  std::string token;
  while (is >> token) {
    if (token[0] != '#') return token;
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  throw std::invalid_argument("tufp io: unexpected end of input");
}

std::string expect_token(std::istream& is, const std::string& expected) {
  const std::string token = next_token(is);
  if (token != expected) {
    throw std::invalid_argument("tufp io: expected '" + expected + "', got '" +
                                token + "'");
  }
  return token;
}

template <typename T>
T parse(const std::string& token) {
  std::istringstream ss(token);
  T value;
  if (!(ss >> value) || !ss.eof()) {
    throw std::invalid_argument("tufp io: bad numeric token '" + token + "'");
  }
  return value;
}

// Header counts drive reserve() and read loops: a negative count must be a
// parse error here, not a giant allocation three lines later.
int parse_count(std::istream& is, const char* what) {
  const std::string token = next_token(is);
  const int value = parse<int>(token);
  if (value < 0) {
    throw std::invalid_argument("tufp io: negative " + std::string(what) +
                                " '" + token + "'");
  }
  return value;
}

}  // namespace

void save_ufp(const UfpInstance& instance, std::ostream& os) {
  const Graph& g = instance.graph();
  os << std::setprecision(17);
  os << "ufp " << (g.is_directed() ? "directed" : "undirected") << ' '
     << g.num_vertices() << ' ' << g.num_edges() << ' '
     << instance.num_requests() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    os << "edge " << u << ' ' << v << ' ' << g.capacity(e) << '\n';
  }
  for (const Request& r : instance.requests()) {
    os << "req " << r.source << ' ' << r.target << ' ' << r.demand << ' '
       << r.value << '\n';
  }
}

UfpInstance load_ufp(std::istream& is) {
  expect_token(is, "ufp");
  const std::string direction = next_token(is);
  if (direction != "directed" && direction != "undirected") {
    throw std::invalid_argument("tufp io: bad direction '" + direction + "'");
  }
  const int n = parse_count(is, "vertex count");
  const int m = parse_count(is, "edge count");
  const int R = parse_count(is, "request count");

  Graph g = direction == "directed" ? Graph::directed(n) : Graph::undirected(n);
  for (int e = 0; e < m; ++e) {
    expect_token(is, "edge");
    const auto u = parse<VertexId>(next_token(is));
    const auto v = parse<VertexId>(next_token(is));
    const auto cap = parse<double>(next_token(is));
    g.add_edge(u, v, cap);
  }
  g.finalize();

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    expect_token(is, "req");
    Request req;
    req.source = parse<VertexId>(next_token(is));
    req.target = parse<VertexId>(next_token(is));
    req.demand = parse<double>(next_token(is));
    req.value = parse<double>(next_token(is));
    requests.push_back(req);
  }
  return UfpInstance(std::move(g), std::move(requests));
}

void save_muca(const MucaInstance& instance, std::ostream& os) {
  os << std::setprecision(17);
  os << "muca " << instance.num_items() << ' ' << instance.num_requests()
     << '\n';
  for (int u = 0; u < instance.num_items(); ++u) {
    os << "item " << instance.multiplicity(u) << '\n';
  }
  for (const MucaRequest& r : instance.requests()) {
    os << "req " << r.value << ' ' << r.bundle.size();
    for (int u : r.bundle) os << ' ' << u;
    os << '\n';
  }
}

MucaInstance load_muca(std::istream& is) {
  expect_token(is, "muca");
  const int m = parse_count(is, "item count");
  const int R = parse_count(is, "request count");

  std::vector<int> multiplicities;
  multiplicities.reserve(static_cast<std::size_t>(m));
  for (int u = 0; u < m; ++u) {
    expect_token(is, "item");
    multiplicities.push_back(parse<int>(next_token(is)));
  }

  std::vector<MucaRequest> requests;
  requests.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    expect_token(is, "req");
    MucaRequest req;
    req.value = parse<double>(next_token(is));
    const int k = parse_count(is, "bundle size");
    req.bundle.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) req.bundle.push_back(parse<int>(next_token(is)));
    requests.push_back(std::move(req));
  }
  return MucaInstance(std::move(multiplicities), std::move(requests));
}

void save_ufp_file(const UfpInstance& instance, const std::string& path) {
  std::ofstream os(path);
  TUFP_REQUIRE(os.good(), "cannot open file for writing: " + path);
  save_ufp(instance, os);
  TUFP_REQUIRE(os.good(), "write failed: " + path);
}

UfpInstance load_ufp_file(const std::string& path) {
  std::ifstream is(path);
  TUFP_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return load_ufp(is);
}

void save_muca_file(const MucaInstance& instance, const std::string& path) {
  std::ofstream os(path);
  TUFP_REQUIRE(os.good(), "cannot open file for writing: " + path);
  save_muca(instance, os);
  TUFP_REQUIRE(os.good(), "write failed: " + path);
}

MucaInstance load_muca_file(const std::string& path) {
  std::ifstream is(path);
  TUFP_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return load_muca(is);
}

}  // namespace tufp
