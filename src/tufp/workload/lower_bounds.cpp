#include "tufp/workload/lower_bounds.hpp"

#include <algorithm>

#include "tufp/util/assert.hpp"
#include "tufp/util/math.hpp"

namespace tufp {

TieScore StaircaseInstance::paper_tie_score() const {
  // "i minimal, j maximal": i dominates, then larger j preferred. i is
  // recovered from the request's source vertex, j from the final edge
  // (v_j, t) of the candidate path.
  const int ll = l;
  const UfpInstance* inst = &instance;
  return [ll, inst](int request, const Path& path) {
    const VertexId source = inst->request(request).source;
    const int i = static_cast<int>(source) + 1;  // s_i ids are 0..l-1
    TUFP_CHECK(!path.empty(), "staircase path must be non-empty");
    const auto [vj, t_vertex] = inst->graph().endpoints(path.back());
    (void)t_vertex;
    const int j = static_cast<int>(vj) - ll + 1;  // v_j ids are l..2l-1
    return static_cast<double>(i) * (ll + 2) + (ll - j);
  };
}

double StaircaseInstance::optimal_value() const {
  return static_cast<double>(B) * l;
}

double StaircaseInstance::predicted_alg_value() const {
  return staircase_alg_value(l, B);
}

StaircaseInstance make_staircase(int l, int B, bool subdivided) {
  TUFP_REQUIRE(l >= 1, "staircase needs l >= 1");
  TUFP_REQUIRE(B >= 1, "staircase needs B >= 1");

  // Layout: s_i -> id i-1, v_j -> id l+j-1, t -> id 2l; chain vertices of
  // the subdivided variant appended afterwards.
  const VertexId t = static_cast<VertexId>(2 * l);
  int num_vertices = 2 * l + 1;
  if (subdivided) {
    for (int i = 1; i <= l; ++i) {
      for (int j = i; j <= l; ++j) num_vertices += i * l - j;  // chain interior
    }
  }
  Graph g = Graph::directed(num_vertices);

  // (v_j, t) edges first (their relative order is irrelevant for ties).
  for (int j = 1; j <= l; ++j) {
    g.add_edge(static_cast<VertexId>(l + j - 1), t, static_cast<double>(B));
  }
  // (s_i, v_j) edges with j descending: Dijkstra keeps the first-settled
  // parent on exact ties, so descending insertion realizes the paper's
  // "maximal j" adversarial resolution for Dijkstra-based algorithms too.
  VertexId next_aux = static_cast<VertexId>(2 * l + 1);
  for (int i = 1; i <= l; ++i) {
    for (int j = l; j >= i; --j) {
      const auto si = static_cast<VertexId>(i - 1);
      const auto vj = static_cast<VertexId>(l + j - 1);
      if (!subdivided) {
        g.add_edge(si, vj, static_cast<double>(B));
        continue;
      }
      const int chain_edges = i * l + 1 - j;
      VertexId prev = si;
      for (int k = 1; k < chain_edges; ++k) {
        g.add_edge(prev, next_aux, static_cast<double>(B));
        prev = next_aux++;
      }
      g.add_edge(prev, vj, static_cast<double>(B));
    }
  }
  g.finalize();

  // Requests: B copies of (s_i, t, 1, 1), i ascending — the id-order
  // fallback then realizes "minimal i".
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(l) * B);
  for (int i = 1; i <= l; ++i) {
    for (int b = 0; b < B; ++b) {
      requests.push_back({static_cast<VertexId>(i - 1), t, 1.0, 1.0});
    }
  }

  StaircaseInstance out{UfpInstance(std::move(g), std::move(requests)),
                        l,
                        B,
                        t,
                        {},
                        {},
                        subdivided};
  for (int i = 1; i <= l; ++i) out.s.push_back(static_cast<VertexId>(i - 1));
  for (int j = 1; j <= l; ++j) out.v.push_back(static_cast<VertexId>(l + j - 1));
  return out;
}

TieScore Fig3Instance::paper_tie_score() const {
  const UfpInstance* inst = &instance;
  const VertexId v7 = v[6];
  return [inst, v7](int request, const Path& path) {
    // Groups: requests are declared (v1,v3) x B, (v4,v6) x B, (v1,v6) x B,
    // (v3,v4) x B; the adversary prefers the first two groups and, within
    // them, the paths through v7.
    const int B_count = inst->num_requests() / 4;
    const int group = request / B_count;
    const double rank = group <= 1 ? 0.0 : 1.0;
    bool via_v7 = false;
    for (EdgeId e : path) {
      const auto [a, b] = inst->graph().endpoints(e);
      if (a == v7 || b == v7) {
        via_v7 = true;
        break;
      }
    }
    return rank * 2.0 + (via_v7 ? 0.0 : 1.0);
  };
}

Fig3Instance make_fig3(int B) {
  TUFP_REQUIRE(B >= 2 && B % 2 == 0, "Figure 3 needs even B >= 2");
  // v1..v7 -> ids 0..6.
  Graph g = Graph::undirected(7);
  const auto cap = static_cast<double>(B);
  const auto V = [](int k) { return static_cast<VertexId>(k - 1); };
  g.add_edge(V(1), V(2), cap);
  g.add_edge(V(2), V(3), cap);
  g.add_edge(V(4), V(5), cap);
  g.add_edge(V(5), V(6), cap);
  g.add_edge(V(1), V(7), cap);
  g.add_edge(V(3), V(7), cap);
  g.add_edge(V(4), V(7), cap);
  g.add_edge(V(6), V(7), cap);
  g.finalize();

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(4) * B);
  const std::pair<int, int> groups[] = {{1, 3}, {4, 6}, {1, 6}, {3, 4}};
  for (const auto& [a, b] : groups) {
    for (int k = 0; k < B; ++k) requests.push_back({V(a), V(b), 1.0, 1.0});
  }

  Fig3Instance out{UfpInstance(std::move(g), std::move(requests)), B, {}};
  for (int k = 1; k <= 7; ++k) out.v.push_back(V(k));
  return out;
}

Fig4Instance make_fig4(int p, int B, int items_per_cell) {
  TUFP_REQUIRE(p >= 3 && p % 2 == 1, "Figure 4 needs odd p >= 3");
  TUFP_REQUIRE(B >= 2 && B % 2 == 0, "Figure 4 needs even B >= 2");
  TUFP_REQUIRE(items_per_cell >= 1, "items_per_cell must be >= 1");

  const int m = p * (p + 1) * items_per_cell;
  std::vector<int> multiplicities(static_cast<std::size_t>(m), B);

  // U_{i,j} = items [cell_base(i,j), cell_base(i,j) + items_per_cell).
  const auto cell = [&](int i, int j, std::vector<int>& bundle) {
    const int base = ((i - 1) * (p + 1) + (j - 1)) * items_per_cell;
    for (int k = 0; k < items_per_cell; ++k) bundle.push_back(base + k);
  };

  std::vector<MucaRequest> requests;
  // Type 1 (declared first so id-order tie-breaking realizes the paper's
  // "select U_1, then U_2, ..." schedule): B/2 copies of each row bundle.
  for (int row = 1; row <= p; ++row) {
    std::vector<int> bundle;
    for (int j = 1; j <= p + 1; ++j) cell(row, j, bundle);
    for (int k = 0; k < B / 2; ++k) requests.push_back({bundle, 1.0});
  }
  const int num_type1 = static_cast<int>(requests.size());
  // Type 2: per phase l, two variants sharing U_{1,2l-1} and U_{1,2l}.
  for (int phase = 1; phase <= (p + 1) / 2; ++phase) {
    for (int variant = 0; variant < 2; ++variant) {
      std::vector<int> bundle;
      cell(1, 2 * phase - 1, bundle);
      cell(1, 2 * phase, bundle);
      const int column = variant == 0 ? 2 * phase - 1 : 2 * phase;
      for (int i = 2; i <= p; ++i) cell(i, column, bundle);
      for (int k = 0; k < B / 2; ++k) requests.push_back({bundle, 1.0});
    }
  }

  return Fig4Instance{MucaInstance(std::move(multiplicities), std::move(requests)),
                      p, B, items_per_cell, num_type1};
}

}  // namespace tufp
