// The paper's lower-bound constructions (Figures 2, 3 and 4).
//
// Each builder returns the instance together with the adversarial
// tie-breaking schedule the proof assumes (as a TieScore / request
// ordering) and the closed-form values the theorems predict, so the bench
// harness can print measured-vs-predicted side by side.
#pragma once

#include <vector>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/ufp/iterative_minimizer.hpp"

namespace tufp {

// ---------------------------------------------------------------------------
// Figure 2: the directed staircase. Vertices s_1..s_l, v_1..v_l, t; edges
// s_i -> v_j for j >= i and v_j -> t, all with capacity B; B unit requests
// (s_i, t, 1, 1) per source. OPT = B*l (route s_i via v_i); any reasonable
// iterative path-minimizing algorithm with the paper's tie-break
// ("i minimal, j maximal") extracts at most B*l*(1-(B/(B+1))^B) + B^2,
// forcing ratio -> e/(e-1) (Theorem 3.11).

struct StaircaseInstance {
  UfpInstance instance;
  int l = 0;
  int B = 0;
  VertexId t = kInvalidVertex;
  std::vector<VertexId> s;  // s_1..s_l (index 0-based)
  std::vector<VertexId> v;  // v_1..v_l
  bool subdivided = false;

  // The paper's adversarial schedule: minimal i first, then maximal j.
  TieScore paper_tie_score() const;

  double optimal_value() const;        // B*l
  double predicted_alg_value() const;  // B*l*(1-(B/(B+1))^B) (fluid limit)
};

// `subdivided` replaces each (s_i, v_j) edge by a directed chain of
// i*l+1-j edges — the paper's device for making the schedule structural
// instead of tie-broken (see EXPERIMENTS.md for the caveat it carries).
// Directed-arc insertion order is adversarial (j descending) so that
// Dijkstra-based algorithms resolve equal-length ties toward maximal j.
StaircaseInstance make_staircase(int l, int B, bool subdivided = false);

// ---------------------------------------------------------------------------
// Figure 3: the 7-vertex undirected gadget, capacity B on all 8 edges,
// four groups of B unit requests: (v1,v3), (v4,v6), (v1,v6), (v3,v4).
// OPT = 4B; with the adversarial schedule any reasonable iterative
// path-minimizing algorithm ends at 3B: ratio 4/3 for arbitrary B
// (Theorem 3.12).

struct Fig3Instance {
  UfpInstance instance;
  int B = 0;
  // Vertex ids of v1..v7 (index 0 = v1).
  std::vector<VertexId> v;

  // Adversarial schedule: prefer the (v1,v3)/(v4,v6) groups, and among
  // their paths the ones through v7.
  TieScore paper_tie_score() const;

  double optimal_value() const { return 4.0 * B; }
  double predicted_alg_value() const { return 3.0 * B; }
};

Fig3Instance make_fig3(int B);

// ---------------------------------------------------------------------------
// Figure 4: the MUCA gadget. p odd, B even, m a multiple of p*(p+1); items
// partitioned into U_{i,j} (i=1..p, j=1..p+1) of m/(p(p+1)) items each.
// Type-1: B/2 unit requests per row bundle U_i. Type-2: for each
// l = 1..(p+1)/2 and each variant, B/2 unit requests. OPT = p*B; any
// reasonable iterative bundle-minimizing algorithm (type-1-first schedule)
// gets (3p+1)B/4: ratio -> 4/3 (Theorem 4.5).

struct Fig4Instance {
  MucaInstance instance;
  int p = 0;
  int B = 0;
  int items_per_cell = 0;     // m/(p(p+1))
  int num_type1_requests = 0;  // p * B/2, declared first (ids 0..)

  double optimal_value() const { return static_cast<double>(p) * B; }
  double predicted_alg_value() const {
    return (3.0 * p + 1.0) * B / 4.0;
  }
};

// items_per_cell >= 1 scales m = p*(p+1)*items_per_cell.
Fig4Instance make_fig4(int p, int B, int items_per_cell = 1);

}  // namespace tufp
