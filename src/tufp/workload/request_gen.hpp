// Random request workloads over arbitrary graphs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/graph.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/rng.hpp"

namespace tufp {

enum class ValueModel {
  kUniform,        // v ~ U[value_min, value_max]
  kZipf,           // v = value_max / rank^s, rank ~ Zipf — few hot requests
  kProportional,   // v proportional to demand * hop distance (+- 20% noise)
};

struct RequestGenConfig {
  int num_requests = 50;
  double demand_min = 0.2;
  double demand_max = 1.0;  // normalized formulation: <= 1
  ValueModel value_model = ValueModel::kUniform;
  double value_min = 1.0;
  double value_max = 10.0;
  double zipf_exponent = 1.1;
  // Resample terminal pairs until the target is reachable from the source
  // (bounded retries; throws if the graph is too disconnected).
  int max_pair_retries = 200;
  // Skip the per-request reachability probe entirely. Required at the
  // scale tier (10^6 requests over 10^5-vertex worlds), where one unit
  // Dijkstra per sample would dominate the benchmark it feeds; legal
  // only on worlds known strongly connected (grids, telecom meshes).
  // Incompatible with kProportional, whose value needs the hop distance.
  bool assume_connected = false;
  // When > 0, sources are drawn from vertices [0, source_pool) instead
  // of the whole vertex set — the hub-locality workload that gives the
  // cross-epoch tree cache repeated sources to warm against. Targets
  // still range over all vertices.
  int source_pool = 0;
  // When > 1, the pooled sources are spread across the vertex set
  // instead of clustered at its low end: source = stride * draw, draw in
  // [0, source_pool). The churn tier uses this to place its hubs in
  // distant graph regions, so one hub's reclaims cannot touch another
  // hub's warm trees. Requires a source pool, with
  // stride * (pool - 1) < num_vertices.
  int source_stride = 1;
  // When > 0, targets are drawn uniformly from the hop-limited BFS ball
  // around the sampled source (excluding the source) instead of from the
  // whole vertex set — local traffic, the knob that keeps warm trees
  // small enough to survive remote reclaims. Balls are computed lazily
  // once per source over the base adjacency (deterministic, sorted by
  // vertex id), so a source pool is required; reachability holds by
  // construction, making assume_connected unnecessary. Incompatible with
  // kProportional (no hop distance is probed).
  int target_radius = 0;
};

// Incremental form of generate_requests(): owns the reachability engine
// and Zipf table so the streaming adapters (engine/request_stream.hpp) can
// draw one request at a time without per-call setup. Sampling k requests
// through sample() consumes the RNG exactly like one
// generate_requests() call with num_requests = k, so batch and streaming
// workloads with the same seed are identical.
class RequestSampler {
 public:
  RequestSampler(const Graph& graph, const RequestGenConfig& config);

  Request sample(Rng& rng);

  const RequestGenConfig& config() const { return config_; }

 private:
  // Hop-limited BFS ball around `source` (sorted, source excluded),
  // computed on first use and memoized. target_radius > 0 only.
  const std::vector<VertexId>& ball_of(VertexId source);

  const Graph* graph_;
  RequestGenConfig config_;
  ShortestPathEngine engine_;
  std::vector<double> unit_weights_;
  ZipfSampler zipf_;
  std::unordered_map<VertexId, std::vector<VertexId>> balls_;
  std::vector<std::uint8_t> visited_;  // ball_of scratch, zero between calls
};

std::vector<Request> generate_requests(const Graph& graph,
                                       const RequestGenConfig& config, Rng& rng);

}  // namespace tufp
