// Random request workloads over arbitrary graphs.
#pragma once

#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/graph.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/util/rng.hpp"

namespace tufp {

enum class ValueModel {
  kUniform,        // v ~ U[value_min, value_max]
  kZipf,           // v = value_max / rank^s, rank ~ Zipf — few hot requests
  kProportional,   // v proportional to demand * hop distance (+- 20% noise)
};

struct RequestGenConfig {
  int num_requests = 50;
  double demand_min = 0.2;
  double demand_max = 1.0;  // normalized formulation: <= 1
  ValueModel value_model = ValueModel::kUniform;
  double value_min = 1.0;
  double value_max = 10.0;
  double zipf_exponent = 1.1;
  // Resample terminal pairs until the target is reachable from the source
  // (bounded retries; throws if the graph is too disconnected).
  int max_pair_retries = 200;
  // Skip the per-request reachability probe entirely. Required at the
  // scale tier (10^6 requests over 10^5-vertex worlds), where one unit
  // Dijkstra per sample would dominate the benchmark it feeds; legal
  // only on worlds known strongly connected (grids, telecom meshes).
  // Incompatible with kProportional, whose value needs the hop distance.
  bool assume_connected = false;
  // When > 0, sources are drawn from vertices [0, source_pool) instead
  // of the whole vertex set — the hub-locality workload that gives the
  // cross-epoch tree cache repeated sources to warm against. Targets
  // still range over all vertices.
  int source_pool = 0;
};

// Incremental form of generate_requests(): owns the reachability engine
// and Zipf table so the streaming adapters (engine/request_stream.hpp) can
// draw one request at a time without per-call setup. Sampling k requests
// through sample() consumes the RNG exactly like one
// generate_requests() call with num_requests = k, so batch and streaming
// workloads with the same seed are identical.
class RequestSampler {
 public:
  RequestSampler(const Graph& graph, const RequestGenConfig& config);

  Request sample(Rng& rng);

  const RequestGenConfig& config() const { return config_; }

 private:
  const Graph* graph_;
  RequestGenConfig config_;
  ShortestPathEngine engine_;
  std::vector<double> unit_weights_;
  ZipfSampler zipf_;
};

std::vector<Request> generate_requests(const Graph& graph,
                                       const RequestGenConfig& config, Rng& rng);

}  // namespace tufp
