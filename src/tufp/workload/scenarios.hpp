// Canned end-to-end scenarios used by benches, tests and examples.
#pragma once

#include <cstdint>
#include <memory>

#include "tufp/auction/muca_instance.hpp"
#include "tufp/ufp/instance.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {

// Smallest capacity that puts an m-edge graph into the paper's regime for
// accuracy eps, times a slack factor: slack * ln(m)/eps^2 (at least 1).
// On a normalized instance (d_max = 1) this is equally the smallest
// beta = c_min/d_max inside the regime — the threshold the evaluation lab
// (lab/sweep.hpp) records per cell as SweepCell::in_regime, so ratio
// curves can be read against where Theorem 3.1's guarantee formally
// kicks in.
double regime_capacity(int num_edges, double eps, double slack = 1.0);

// ISP-style undirected mesh with uniform capacity and mixed traffic.
UfpInstance make_grid_scenario(int rows, int cols, double capacity,
                               int num_requests, ValueModel value_model,
                               std::uint64_t seed);

// Random connected directed graph scenario.
UfpInstance make_random_scenario(int num_vertices, int num_edges,
                                 double capacity, int num_requests,
                                 std::uint64_t seed);

// Topology + request distribution for the streaming admission engine: the
// graph outlives every epoch, and the request config parameterizes the
// stream adapters (engine/request_stream.hpp) instead of a fixed batch.
struct StreamingScenario {
  std::shared_ptr<const Graph> graph;
  RequestGenConfig request_config;
};

// ISP-style undirected mesh with uniform capacity; the streaming
// counterpart of make_grid_scenario (request count/seed live with the
// stream, not the scenario).
StreamingScenario make_streaming_grid_scenario(int rows, int cols,
                                               double capacity,
                                               ValueModel value_model);

// Random connected directed topology for streaming workloads. The seed
// governs the topology only; stream adapters take their own seed.
StreamingScenario make_streaming_random_scenario(int num_vertices,
                                                 int num_edges,
                                                 double capacity,
                                                 ValueModel value_model,
                                                 std::uint64_t seed);

// Random single-minded auction: bundle sizes uniform in
// [bundle_min, bundle_max], values uniform in [value_min, value_max].
MucaInstance make_random_auction(int num_items, int multiplicity,
                                 int num_requests, int bundle_min,
                                 int bundle_max, double value_min,
                                 double value_max, std::uint64_t seed);

}  // namespace tufp
