// E10 — runtime claims and engineering ablations (google-benchmark).
//
// Theorem 3.1: at most |R| iterations, each costing at most |R| shortest
// path computations. Theorem 5.1: the repeat variant's time is polynomial
// in m and c_max/d_min. On top of the paper claims this suite measures the
// implementation levers DESIGN.md §6 calls out: lazy shortest-path
// invalidation, the bucket-queue vs heap Dijkstra kernels, and the
// OpenMP-parallel per-source tree refresh.
//
// Usage: bench_perf_runtime [--json PATH] [google-benchmark flags]
//   --json PATH is shorthand for --benchmark_out=PATH
//   --benchmark_out_format=json — the format tools/check_bench_regression.py
//   and the committed bench/baseline.json use for the CI regression gate.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/bounded_ufp_repeat.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance grid_workload(int side, int requests, double capacity,
                          std::uint64_t seed) {
  Rng rng(seed);
  Graph g = grid_graph(side, side, capacity, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

void BM_DijkstraGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Rng rng(11);
  const Graph g = grid_graph(side, side, 4.0, false);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.next_double(0.1, 2.0);
  ShortestPathEngine engine(g);
  const auto s = static_cast<VertexId>(0);
  const auto t = static_cast<VertexId>(g.num_vertices() - 1);
  Path path;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.shortest_path(weights, s, t, &path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DijkstraGrid)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DijkstraGridKernel(benchmark::State& state) {
  // Heap vs bucket queue on the bounded key range the solver's dual
  // weights live in early on (ratio ~20 here -> a handful of buckets).
  const int side = static_cast<int>(state.range(0));
  const bool bucket = state.range(1) != 0;
  Rng rng(11);
  const Graph g = grid_graph(side, side, 4.0, false);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.next_double(0.1, 2.0);
  const WeightProfile profile = WeightProfile::scan(weights);
  ShortestPathEngine engine(g, bucket ? SpKernel::kBucket : SpKernel::kHeap);
  const auto s = static_cast<VertexId>(0);
  const auto t = static_cast<VertexId>(g.num_vertices() - 1);
  Path path;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.shortest_path(weights, s, t, &path, {}, &profile));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(bucket ? "bucket" : "heap");
}
BENCHMARK(BM_DijkstraGridKernel)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_BoundedUfpKernel(benchmark::State& state) {
  // End-to-end Alg. 1 with the shortest-path kernel pinned; kAuto should
  // track whichever is faster while the key range stays bounded. Note
  // "bucket" means bucket-while-eligible: late in a saturated run the
  // spread duals exceed the bucket cap and the engine degrades to the
  // heap, so this row measures the solver's real mixed regime, not a
  // pure-bucket microbenchmark (BM_DijkstraGridKernel is that).
  const int kernel = static_cast<int>(state.range(0));
  const UfpInstance inst = grid_workload(6, 600, 12.0, 29);
  BoundedUfpConfig cfg;
  cfg.epsilon = 0.7;
  cfg.parallel = false;
  cfg.sp_kernel = kernel == 0   ? SpKernel::kHeap
                  : kernel == 1 ? SpKernel::kBucket
                                : SpKernel::kAuto;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounded_ufp(inst, cfg).iterations);
  }
  state.SetLabel(kernel == 0 ? "heap" : kernel == 1 ? "bucket" : "auto");
}
BENCHMARK(BM_BoundedUfpKernel)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BoundedUfp(benchmark::State& state) {
  const int requests = static_cast<int>(state.range(0));
  const bool lazy = state.range(1) != 0;
  const UfpInstance inst = grid_workload(4, requests, 8.0, 23);
  BoundedUfpConfig cfg;
  cfg.epsilon = 0.7;
  cfg.lazy_shortest_paths = lazy;
  cfg.parallel = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounded_ufp(inst, cfg).iterations);
  }
  state.SetLabel(lazy ? "lazy-sp" : "eager-sp");
}
BENCHMARK(BM_BoundedUfp)
    ->Args({32, 1})
    ->Args({32, 0})
    ->Args({128, 1})
    ->Args({128, 0})
    ->Args({512, 1})
    ->Args({512, 0});

void BM_BoundedUfpParallel(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  const UfpInstance inst = grid_workload(6, 600, 12.0, 29);
  BoundedUfpConfig cfg;
  cfg.epsilon = 0.7;
  cfg.parallel = parallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounded_ufp(inst, cfg).iterations);
  }
  state.SetLabel(parallel ? "openmp" : "serial");
}
BENCHMARK(BM_BoundedUfpParallel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Repeat(benchmark::State& state) {
  const UfpInstance inst = grid_workload(3, 8, 12.0, 31);
  BoundedUfpRepeatConfig cfg;
  cfg.epsilon = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounded_ufp_repeat(inst, cfg).iterations);
  }
}
BENCHMARK(BM_Repeat);

void BM_IterationsScaleLinearlyInRequests(benchmark::State& state) {
  // Theorem 3.1's counting argument: iterations <= |R|. The benchmark
  // reports iterations per request as a counter (should stay <= 1).
  const int requests = static_cast<int>(state.range(0));
  const UfpInstance inst = grid_workload(4, requests, 40.0, 37);
  BoundedUfpConfig cfg;
  cfg.epsilon = 0.4;
  int iterations = 0;
  for (auto _ : state) {
    iterations = bounded_ufp(inst, cfg).iterations;
    benchmark::DoNotOptimize(iterations);
  }
  state.counters["iters_per_request"] =
      static_cast<double>(iterations) / requests;
}
BENCHMARK(BM_IterationsScaleLinearlyInRequests)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  // Translate --json PATH into google-benchmark's output flags so the CI
  // regression gate and callers share one spelling with the other benches.
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      storage.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    storage.push_back(argv[i]);
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
