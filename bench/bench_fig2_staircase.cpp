// E2 — Figure 2 / Theorem 3.11: the directed staircase forces every
// reasonable iterative path-minimizing algorithm to ratio e/(e-1) - o(1).
//
// Series regenerated:
//   (a) exact simulation of the adversarial schedule (generic minimizer of
//       h with the paper's "i minimal, j maximal" tie-break) over (l, B);
//   (b) Bounded-UFP itself on the same instance (adversarial arc order
//       realizes the tie-break through Dijkstra; saturation mode so the
//       run is not cut short by the out-of-regime threshold);
//   (c) the fluid closed form B*l*(1-(B/(B+1))^B) pushed to large (l, B),
//       converging to the limit ratio e/(e-1) ~ 1.5820.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/iterative_minimizer.hpp"
#include "tufp/ufp/reasonable.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/lower_bounds.hpp"

namespace {

using namespace tufp;

double simulate(const StaircaseInstance& sc) {
  const ExponentialLengthFunction h(0.25, static_cast<double>(sc.B));
  IterativeMinimizerConfig cfg;
  cfg.function = &h;
  cfg.tie_score = sc.paper_tie_score();
  return reasonable_iterative_minimizer(sc.instance, cfg)
      .solution.total_value(sc.instance);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E2", "Figure 2 staircase (directed lower bound)",
      "any reasonable iterative path-minimizing algorithm stays at ratio >= "
      "e/(e-1) - o(1) ~ 1.5820 (Theorem 3.11)");

  Table sim({"l", "B", "requests", "OPT=B*l", "ALG(simulated)", "ALG(fluid)",
             "ratio(sim)", "ratio(fluid)", "limit e/(e-1)", "ms"});
  const std::vector<std::pair<int, int>> sizes{
      {8, 2}, {16, 2}, {16, 4}, {24, 4}, {32, 4}, {32, 6}, {48, 6}, {64, 8}};
  for (const auto& [l, B] : sizes) {
    const StaircaseInstance sc = make_staircase(l, B);
    WallTimer timer;
    const double alg = simulate(sc);
    const double ms = timer.elapsed_ms();
    sim.row()
        .cell(l)
        .cell(B)
        .cell(sc.instance.num_requests())
        .cell(sc.optimal_value())
        .cell(alg)
        .cell(sc.predicted_alg_value())
        .cell(sc.optimal_value() / alg)
        .cell(staircase_ratio(B))
        .cell(kEOverEMinus1)
        .cell(ms);
  }
  std::cout << "(a) generic reasonable minimizer, paper tie-break\n";
  bench::emit(sim, csv);

  Table ufp({"l", "B", "eps", "ALG(Bounded-UFP)", "OPT", "ratio"});
  for (const auto& [l, B] : std::vector<std::pair<int, int>>{
           {16, 2}, {24, 4}, {32, 4}, {48, 6}}) {
    const StaircaseInstance sc = make_staircase(l, B);
    BoundedUfpConfig cfg;
    cfg.epsilon = 0.25;
    cfg.run_to_saturation = true;  // out-of-regime threshold would fire at m
    const BoundedUfpResult result = bounded_ufp(sc.instance, cfg);
    const double alg = result.solution.total_value(sc.instance);
    ufp.row()
        .cell(l)
        .cell(B)
        .cell(cfg.epsilon)
        .cell(alg)
        .cell(sc.optimal_value())
        .cell(sc.optimal_value() / alg);
  }
  std::cout << "(b) Bounded-UFP on the staircase (adversarial arc order; "
               "member of the lower-bounded family)\n";
  bench::emit(ufp, csv);

  Table fluid({"B", "ratio(fluid) = 1/(1-(B/(B+1))^B)", "gap to e/(e-1)"});
  for (int B : {2, 4, 8, 16, 32, 64, 128, 256, 1024}) {
    const double r = staircase_ratio(B);
    fluid.row().cell(B).cell(r).cell(r - kEOverEMinus1);
  }
  std::cout << "(c) fluid-limit ratio as B grows (l -> infinity)\n";
  bench::emit(fluid, csv);

  std::cout << "expected shape: ratio(sim) tracks ratio(fluid) within the "
               "B^2/(B*l) integrality correction and both tend to "
            << kEOverEMinus1 << " from above as B grows.\n";
  return 0;
}
