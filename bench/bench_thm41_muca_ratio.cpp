// E4 — Theorem 4.1: Bounded-MUCA(eps/6) is a (1+eps)*e/(e-1)-approximation
// for the Omega(ln m)-bounded multi-unit combinatorial auction.
//
// Same regime scaling as E1: the algorithm parameter is eps/6, so the
// multiplicity must satisfy B >= 36*ln(m)/eps^2. Part (a) sweeps eps on
// congested random auctions with certificate-measured ratios; part (b)
// pins the measurement to exact optima on a two-item auction (ln 2 keeps
// the regime requirement tiny, so exact solvers stay tractable under real
// congestion).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "tufp/auction/bounded_muca.hpp"
#include "tufp/auction/muca_exact.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace tufp;
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E4", "Theorem 4.1 approximation sweep (Bounded-MUCA)",
      "Bounded-MUCA(eps/6) is within (1+eps)*e/(e-1) of OPT for min item "
      "multiplicity B >= 36*ln(m)/eps^2");

  constexpr int kItems = 12;
  constexpr int kSeeds = 3;

  Table table({"eps(thm)", "B", "requests", "winners(mean)", "value(mean)",
               "cert(mean)", "ratio cert/ALG", "bound (1+eps)e/(e-1)",
               "feasible", "ms(mean)"});
  for (double eps : {0.25, 0.5, 1.0}) {
    const double alg_eps = eps / 6.0;
    const int B = static_cast<int>(std::ceil(std::log(static_cast<double>(
                      kItems)) / (alg_eps * alg_eps))) + 1;
    const int requests = 5 * B;  // per-item load ~1.5*B: real rejections
    RunningStats value_stats, cert_stats, ratio_stats, winners, ms_stats;
    bool all_feasible = true;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const MucaInstance inst =
          make_random_auction(kItems, B, requests, 2, 5, 1.0, 10.0, seed * 61);
      BoundedMucaConfig cfg;
      cfg.epsilon = alg_eps;
      WallTimer timer;
      const BoundedMucaResult result = bounded_muca(inst, cfg);
      ms_stats.add(timer.elapsed_ms());
      all_feasible &= result.solution.check_feasibility(inst).feasible;
      const double value = result.solution.total_value(inst);
      value_stats.add(value);
      cert_stats.add(result.dual_upper_bound);
      ratio_stats.add(result.dual_upper_bound / value);
      winners.add(result.solution.num_selected());
    }
    table.row()
        .cell(eps)
        .cell(B)
        .cell(requests)
        .cell(winners.mean())
        .cell(value_stats.mean())
        .cell(cert_stats.mean())
        .cell(ratio_stats.mean())
        .cell((1.0 + eps) * kEOverEMinus1)
        .cell(all_feasible ? "yes" : "NO")
        .cell(ms_stats.mean());
  }
  std::cout << "(a) congested " << kItems
            << "-item auctions, certificate-measured ratio\n";
  bench::emit(table, csv);

  // (b) Exact optima: two items, so the regime requirement is only
  // B >= 36*ln(2) ~ 25 for the algorithm's eps = 1/6. Requests are
  // declared in value-density order so the exact branch & bound finds
  // near-optimal incumbents first and prunes hard.
  Table exact_table({"B", "requests", "value", "LP", "intOPT",
                     "ratio intOPT/ALG", "bound"});
  for (int B : {25, 36}) {
    for (std::uint64_t seed = 7; seed <= 8; ++seed) {
      const int requests = 5 * B / 2;
      MucaInstance raw =
          make_random_auction(2, B, requests, 1, 2, 1.0, 10.0, seed * 91);
      std::vector<MucaRequest> sorted = raw.requests();
      std::sort(sorted.begin(), sorted.end(),
                [](const MucaRequest& a, const MucaRequest& b) {
                  return a.value / static_cast<double>(a.bundle.size()) >
                         b.value / static_cast<double>(b.bundle.size());
                });
      const MucaInstance inst(raw.multiplicities(), std::move(sorted));
      BoundedMucaConfig cfg;
      cfg.epsilon = 1.0 / 6.0;
      const BoundedMucaResult result = bounded_muca(inst, cfg);
      const double value = result.solution.total_value(inst);
      const MucaExactResult exact = solve_muca_exact(inst);
      exact_table.row()
          .cell(B)
          .cell(requests)
          .cell(value)
          .cell(solve_muca_lp(inst))
          .cell(exact.proven_optimal ? exact.optimal_value : -1.0)
          .cell(exact.proven_optimal ? exact.optimal_value / value : -1.0)
          .cell(2.0 * kEOverEMinus1);
    }
  }
  std::cout << "(b) two-item auction vs exact optima (alg eps = 1/6)\n";
  bench::emit(exact_table, csv);

  std::cout << "expected shape: measured ratio below the bound in every row; "
               "certificates deliver the provable quality with no exact "
               "solve.\n";
  return 0;
}
