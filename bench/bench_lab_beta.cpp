// E13 — the approximation-ratio lab's headline series: certified ratio vs
// the large-capacity parameter beta = c_min/d_max (DESIGN.md §9).
//
// The paper's story is that Bounded-UFP's guarantee tightens as capacity
// grows relative to demand ((1+eps)e/(e-1) once B = Omega(ln m)); this
// series measures the empirical curve on the staircase and grid world
// families with every ratio certified against the lab's bound hierarchy.
// Greedy rides along as the truthful comparator.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/lab/sweep.hpp"
#include "tufp/sim/world_gen.hpp"

int main(int argc, char** argv) {
  using namespace tufp;
  const bool csv = bench::csv_mode(argc, argv);
  if (!csv) {
    bench::print_header(
        "E13", "certified approximation ratio vs beta = c_min/d_max",
        "Thm 3.1: ratio -> (1+eps)e/(e-1) as B enters the Omega(ln m) "
        "regime; quality improves monotonically with capacity headroom");
  }

  lab::SweepConfig config;
  config.seed = 7;
  config.families = {sim::WorldFamily::kStaircase, sim::WorldFamily::kGrid,
                     sim::WorldFamily::kLayered};
  config.solvers = {"bounded", "greedy-density"};
  config.betas = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  config.worlds_per_family = 5;
  bench::emit(lab::summary_table(lab::run_beta_sweep(config)), csv);
  return 0;
}
