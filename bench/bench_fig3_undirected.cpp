// E3 — Figure 3 / Theorem 3.12: the 7-vertex undirected gadget caps every
// reasonable iterative path-minimizing algorithm at ratio 4/3 for ANY B —
// even arbitrarily large capacity does not admit a PTAS for this family.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/ufp/iterative_minimizer.hpp"
#include "tufp/ufp/reasonable.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/lower_bounds.hpp"

int main(int argc, char** argv) {
  using namespace tufp;
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E3", "Figure 3 gadget (undirected, arbitrary B)",
      "adversarial schedule ends at ALG = 3B vs OPT = 4B: ratio 4/3 "
      "(Theorem 3.12)");

  Table table({"B", "requests", "ALG(simulated)", "ALG(paper)=3B", "OPT=4B",
               "ratio", "matches paper", "ms"});
  for (int B : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const Fig3Instance fig = make_fig3(B);
    const ExponentialLengthFunction h(0.25, static_cast<double>(B));
    IterativeMinimizerConfig cfg;
    cfg.function = &h;
    cfg.tie_score = fig.paper_tie_score();
    WallTimer timer;
    const auto result = reasonable_iterative_minimizer(fig.instance, cfg);
    const double ms = timer.elapsed_ms();
    const double alg = result.solution.total_value(fig.instance);
    table.row()
        .cell(B)
        .cell(fig.instance.num_requests())
        .cell(alg)
        .cell(fig.predicted_alg_value())
        .cell(fig.optimal_value())
        .cell(fig.optimal_value() / alg)
        .cell(alg == fig.predicted_alg_value() ? "yes" : "NO")
        .cell(ms);
  }
  bench::emit(table, csv);

  std::cout << "expected shape: ALG = 3B exactly for every B; ratio pinned "
               "at 4/3 = 1.3333 — the bound does not decay with capacity.\n";
  return 0;
}
