// E9 — "improves on the current best truthful mechanism" (§1.1): the
// SPAA'07 duality accounting certifies e/(e-1) where the BKV-style
// accounting on the *same* run certifies only ~e, and the primal-dual
// beats the classical truthful greedy baselines in value.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/baselines/bkv.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance make_instance(std::uint64_t seed, double capacity, int requests,
                          ValueModel model) {
  Rng rng(seed);
  Graph g = grid_graph(3, 3, capacity, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  cfg.value_model = model;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E9", "Baselines: certified bounds and value comparison",
      "same run, two certificates: z-credited (SPAA'07, -> e/(e-1)) vs "
      "coarse (BKV-style, -> e); plus truthful greedy comparators");

  // (a) Certificate gap on identical in-regime faithful runs: B chosen per
  // Lemma 3.8 for the algorithm's eps, workload congested so the threshold
  // dynamics are exercised (~2.5*B requests on a 7-edge grid).
  Table cert_table({"workload", "alg eps", "B", "value", "tight cert",
                    "coarse cert", "tight/value", "coarse/value",
                    "coarse/tight"});
  for (const auto& [name, alg_eps, model] :
       {std::tuple{"uniform values", 1.0 / 6.0, ValueModel::kUniform},
        std::tuple{"zipf values", 1.0 / 6.0, ValueModel::kZipf},
        std::tuple{"uniform, eps=1/3", 1.0 / 3.0, ValueModel::kUniform}}) {
    Rng probe_rng(0);
    Graph probe = grid_graph(2, 3, 1.0, false);
    const double B = regime_capacity(probe.num_edges(), alg_eps, 1.02);
    RunningStats value, tight, coarse;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed * 29 + 3);
      Graph g = grid_graph(2, 3, B, false);
      RequestGenConfig gen;
      gen.num_requests = static_cast<int>(7.0 * B);  // congested
      gen.demand_min = 0.5;
      gen.value_model = model;
      std::vector<Request> reqs = generate_requests(g, gen, rng);
      const UfpInstance inst(std::move(g), std::move(reqs));
      BoundedUfpConfig cfg;
      cfg.epsilon = alg_eps;
      const BkvResult bkv = bkv_ufp(inst, cfg);
      value.add(bkv.solution.total_value(inst));
      tight.add(bkv.tight_upper_bound);
      coarse.add(bkv.coarse_upper_bound);
    }
    cert_table.row()
        .cell(name)
        .cell(alg_eps)
        .cell(B)
        .cell(value.mean())
        .cell(tight.mean())
        .cell(coarse.mean())
        .cell(tight.mean() / value.mean())
        .cell(coarse.mean() / value.mean())
        .cell(coarse.mean() / tight.mean());
  }
  std::cout << "(a) per-run certificates on in-regime faithful runs (limit "
               "constants: e/(e-1) = "
            << kEOverEMinus1 << ", e = " << kE << ")\n";
  bench::emit(cert_table, csv);

  // (b) Value comparison across truthful algorithms on tight workloads.
  Table value_table({"workload", "BoundedUFP", "greedy(value)",
                     "greedy(density)", "fracOPT", "UFP/frac",
                     "best greedy/frac"});
  const struct {
    const char* name;
    double capacity;
    ValueModel model;
  } tight_workloads[] = {
      {"grid tight uniform", 2.0, ValueModel::kUniform},
      {"grid tight zipf", 2.0, ValueModel::kZipf},
      {"grid roomy uniform", 6.0, ValueModel::kUniform},
      {"grid roomy proportional", 6.0, ValueModel::kProportional},
  };
  for (const auto& w : tight_workloads) {
    RunningStats ufp_stats, gv_stats, gd_stats, frac_stats;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const UfpInstance inst =
          make_instance(seed * 53 + 7, w.capacity, 16, w.model);
      BoundedUfpConfig cfg;
      cfg.run_to_saturation = true;
      ufp_stats.add(bounded_ufp(inst, cfg).solution.total_value(inst));
      gv_stats.add(greedy_ufp(inst, GreedyRanking::kByValue).total_value(inst));
      gd_stats.add(
          greedy_ufp(inst, GreedyRanking::kByDensity).total_value(inst));
      frac_stats.add(solve_ufp_lp(inst).objective);
    }
    value_table.row()
        .cell(w.name)
        .cell(ufp_stats.mean())
        .cell(gv_stats.mean())
        .cell(gd_stats.mean())
        .cell(frac_stats.mean())
        .cell(ufp_stats.mean() / frac_stats.mean())
        .cell(std::max(gv_stats.mean(), gd_stats.mean()) / frac_stats.mean());
  }
  std::cout << "(b) value comparison (all monotone/truthful comparators)\n";
  bench::emit(value_table, csv);

  std::cout << "expected shape: coarse/tight > 1 everywhere — the paper's "
               "improvement is in the provable guarantee on the same run. "
               "Average-case values of the truthful comparators are close; "
               "the primal-dual's edge is its worst-case certificate, not "
               "typical-case dominance.\n";
  return 0;
}
