// Shared helpers for the reproduction harness binaries.
//
// Every bench regenerates one theorem/figure-shaped series from the paper
// (see DESIGN.md §3) and prints it as an aligned table. Passing --csv as
// the first argument switches the output to CSV for downstream plotting.
#pragma once

#include <iostream>
#include <string>

#include "tufp/util/table.hpp"

namespace tufp::bench {

inline bool csv_mode(int argc, char** argv) {
  return argc > 1 && std::string(argv[1]) == "--csv";
}

inline void print_header(const std::string& experiment_id,
                         const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << experiment_id << ": " << title << '\n'
            << "paper: " << paper_claim << '\n'
            << "==============================================================\n";
}

inline void emit(const Table& table, bool csv) {
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

}  // namespace tufp::bench
