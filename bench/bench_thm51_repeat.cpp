// E6 — Theorem 5.1: with repetitions allowed the same primal-dual skeleton
// achieves (1+eps) — in sharp contrast to the e/(e-1) barrier without
// repetitions — and runs in time polynomial in m and c_max/d_min.
//
// Regime scaling as in E1: the theorem invokes the algorithm with eps/6,
// so B >= 36*ln(m)/eps^2 in the theorem's eps.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/ufp/bounded_ufp_repeat.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance make_instance(std::uint64_t seed, double alg_eps, int requests) {
  Rng rng(seed);
  Graph probe = grid_graph(3, 3, 1.0, false);
  const double B = regime_capacity(probe.num_edges(), alg_eps, 1.02);
  Graph g = grid_graph(3, 3, B, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  cfg.demand_min = 0.5;  // bounds c_max/d_min, hence the iteration count
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E6", "Theorem 5.1: unsplittable flow with repetitions",
      "Bounded-UFP-Repeat(eps/6) certifies (1+eps); iterations <= "
      "m*c_max/d_min");

  constexpr int kSeeds = 3;

  Table table({"eps(thm)", "B", "iterations(mean)", "iter bound",
               "value(mean)", "cert(mean)", "ratio cert/value",
               "bound 1+eps", "feasible", "ms(mean)"});
  for (double eps : {0.25, 0.5, 1.0}) {
    const double alg_eps = eps / 6.0;
    RunningStats iters, value_stats, cert_stats, ratio_stats, ms_stats;
    bool all_feasible = true;
    double B = 0.0, iter_bound = 0.0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const UfpInstance inst = make_instance(seed * 37, alg_eps, 7);
      B = inst.bound_B();
      iter_bound = inst.graph().num_edges() * inst.graph().max_capacity() /
                   inst.min_demand();
      BoundedUfpRepeatConfig cfg;
      cfg.epsilon = alg_eps;
      WallTimer timer;
      const BoundedUfpRepeatResult result = bounded_ufp_repeat(inst, cfg);
      ms_stats.add(timer.elapsed_ms());
      all_feasible &= result.solution.check_feasibility(inst).feasible;
      const double value = result.solution.total_value(inst);
      iters.add(static_cast<double>(result.iterations));
      value_stats.add(value);
      cert_stats.add(result.dual_upper_bound);
      ratio_stats.add(result.dual_upper_bound / value);
    }
    table.row()
        .cell(eps)
        .cell(B)
        .cell(iters.mean())
        .cell(iter_bound)
        .cell(value_stats.mean())
        .cell(cert_stats.mean())
        .cell(ratio_stats.mean())
        .cell(1.0 + eps)
        .cell(all_feasible ? "yes" : "NO")
        .cell(ms_stats.mean());
  }
  std::cout << "(a) approximation and iteration count, 3x3 grid, " << kSeeds
            << " seeds per row\n";
  bench::emit(table, csv);

  // Contrast with the no-repetition barrier: the repeat certificate ratio
  // beats e/(e-1) once 1 + eps < e/(e-1).
  Table contrast({"eps(thm)", "repeat cert ratio", "one-shot family LB",
                  "repetitions beat the barrier"});
  for (double eps : {0.25, 0.5, 1.0}) {
    const UfpInstance inst = make_instance(991, eps / 6.0, 7);
    BoundedUfpRepeatConfig cfg;
    cfg.epsilon = eps / 6.0;
    const BoundedUfpRepeatResult result = bounded_ufp_repeat(inst, cfg);
    const double ratio =
        result.dual_upper_bound / result.solution.total_value(inst);
    contrast.row()
        .cell(eps)
        .cell(ratio)
        .cell(kEOverEMinus1)
        .cell(ratio < kEOverEMinus1 ? "yes" : "no");
  }
  std::cout << "(b) repetitions vs the deterministic one-shot barrier\n";
  bench::emit(contrast, csv);

  std::cout << "expected shape: cert/value <= 1+eps in every row, "
               "iterations within m*c_max/d_min, and the measured repeat "
               "ratio dips below e/(e-1) — impossible for any reasonable "
               "one-shot path minimizer (Theorem 3.11).\n";
  return 0;
}
