// E10: streaming admission engine throughput.
//
// Drives the epoch-batched engine over grid scenarios at several batch
// sizes and payment policies, reporting end-to-end request throughput,
// per-epoch solve latency and the admission/revenue profile. The load side
// (admitted fraction, revenue) is deterministic; the wall-clock side is
// machine-dependent and what CI tracks over time.
//
// Usage: bench_engine_throughput [--csv] [--json PATH] [--full]
//                                [--scale] [--scale-only]
//                                [--scale-churn] [--scale-churn-only]
//                                [--scale-requests N]
//   --csv   CSV instead of aligned table (first arg, bench_util convention)
//   --json  also write the series as a JSON array (CI artifact)
//   --full  bigger grids / more requests (off by default so the bench
//           stays ctest-speed friendly)
//   --scale           add the serving scale tier: 10^5-vertex worlds
//                     (316x316 grid, 10^5-vertex telecom mesh) clearing
//                     10^6 streamed requests, each as a persistent /
//                     snapshot row pair — the committed acceptance
//                     numbers for the persistent residual graph
//                     (DESIGN.md §12)
//   --scale-only      run only the scale cases (CI splits tiers)
//   --scale-churn     add the NON-saturating churn scale tier: the same
//                     worlds under hub-local traffic (spread source pool,
//                     hop-ball targets) with finite lease durations
//                     (exponential and flash-crowd), so reclaims fire
//                     steadily and the warm tree cache survives them
//                     (trees_kept_on_reclaim in the JSON rows). The
//                     committed churn acceptance ratio is persistent
//                     >= 2x snapshot on clear_requests_per_second.
//   --scale-churn-only  run only the churn scale cases (CI splits tiers)
//   --scale-requests  override the scale tiers' streamed request count
//                     (CI runs a reduced tier on PRs, the full 10^6
//                     nightly)
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/request_stream.hpp"
#include "tufp/engine/sharded_engine.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

struct BenchCase {
  std::string name;
  int rows;
  int cols;
  double capacity;
  std::int64_t requests;
  int max_batch;
  PaymentPolicy payments;
  int threads = 0;  // solver OpenMP threads (0 = runtime default)
  // Lease churn (DESIGN.md §10). Default kInfinite reproduces the
  // fill-phase benchmark; a finite profile turns the case into a
  // steady-state benchmark: the horizon stretches with the request count
  // while the active lease set stays bounded by capacity x duration.
  DurationConfig durations = {};
  // Scale tier (DESIGN.md §12). `persistent` toggles the engine's
  // residual mode so every scale world runs as a persistent/snapshot row
  // pair; `vertices > 0` selects the random telecom topology instead of
  // the grid. The sampler overrides exist for 10^6-request streams:
  // assume_connected skips the per-sample reachability Dijkstra (legal
  // on these strongly connected worlds) and source_pool concentrates
  // sources on a hub set, the locality the cross-epoch tree cache
  // serves.
  bool persistent = true;
  int vertices = 0;
  int edges = 0;
  bool assume_connected = false;
  int source_pool = 0;
  // Churn-tier locality knobs (workload/request_gen.hpp): stride spreads
  // the source pool across the vertex set, radius draws targets from the
  // per-source hop ball — together they keep each hub's warm trees away
  // from the other hubs' reclaims.
  int source_stride = 1;
  int target_radius = 0;
  // Sharded serving layer (DESIGN.md §13): >1 wraps the engine in
  // ShardedEpochEngine, so every winner runs the two-phase reserve/commit
  // protocol across the region shards. The load side stays byte-identical
  // to the unsharded case (the protocol is a differential shadow of the
  // decider); the row measures the protocol's clear-throughput overhead.
  int shards = 1;
};

struct BenchRow {
  BenchCase config;
  std::int64_t admitted = 0;
  double admitted_fraction = 0.0;
  double revenue = 0.0;
  double requests_per_second = 0.0;
  double solve_p50 = 0.0;
  double solve_p99 = 0.0;
  double wall_seconds = 0.0;
  // Epoch-clear throughput: offered requests over wall time spent inside
  // clear_epoch (snapshot + auction + payments), stream generation
  // excluded. The metric the thread-scaling cases compare.
  double solve_seconds_total = 0.0;
  double clear_requests_per_second = 0.0;
  // Steady-state lease telemetry (zero on fill-phase cases). The
  // flatness ratio divides the mean per-epoch reclaim wall time of the
  // run's second half by its first half: amortized-O(1) expiry
  // processing keeps it near 1 however long the horizon grows.
  std::int64_t active_leases_max = 0;
  std::int64_t active_leases_final = 0;
  std::int64_t leases_expired = 0;
  double occupancy_final = 0.0;
  double virtual_horizon = 0.0;
  double reclaim_flat_ratio = 0.0;
  // Warm-tree reclaim revalidation outcome (persistent churn rows only;
  // zero elsewhere). kept > 0 is the churn tier's whole point: reclaims
  // that do NOT cost the cache its trees.
  std::int64_t trees_kept_on_reclaim = 0;
  std::int64_t trees_dropped_on_reclaim = 0;
  // Per-phase wall time from the span profiler (obs/trace.hpp), total
  // seconds inside each epoch phase across the run. Wall-channel data:
  // recorded in the artifact for trend eyeballing, never exact-gated.
  double span_reclaim_seconds = 0.0;
  double span_snapshot_seconds = 0.0;
  double span_solve_seconds = 0.0;
  double span_payments_seconds = 0.0;
  double span_commit_seconds = 0.0;
};

const char* payment_name(PaymentPolicy p) {
  switch (p) {
    case PaymentPolicy::kNone: return "none";
    case PaymentPolicy::kDualPrice: return "dual";
    case PaymentPolicy::kCritical: return "critical";
  }
  return "?";
}

BenchRow run_case(const BenchCase& c) {
  StreamingScenario scenario =
      c.vertices > 0
          ? make_streaming_random_scenario(c.vertices, c.edges, c.capacity,
                                           ValueModel::kUniform, /*seed=*/7)
          : make_streaming_grid_scenario(c.rows, c.cols, c.capacity,
                                         ValueModel::kUniform);
  scenario.request_config.assume_connected = c.assume_connected;
  scenario.request_config.source_pool = c.source_pool;
  scenario.request_config.source_stride = c.source_stride;
  scenario.request_config.target_radius = c.target_radius;
  EpochEngineConfig config;
  config.max_batch = c.max_batch;
  config.payments = c.payments;
  config.solver.num_threads = c.threads;
  config.persistent_residual = c.persistent;
  std::unique_ptr<ShardedEpochEngine> sharded;
  std::unique_ptr<EpochEngine> single;
  if (c.shards > 1) {
    sharded =
        std::make_unique<ShardedEpochEngine>(scenario.graph, config, c.shards);
  } else {
    single = std::make_unique<EpochEngine>(scenario.graph, config);
  }
  EpochEngine& engine = sharded ? sharded->engine() : *single;

  PoissonStream stream(scenario.graph, scenario.request_config,
                       /*rate=*/10000.0, c.requests, /*seed=*/1,
                       c.durations);

  std::int64_t active_max = 0;
  double last_close = 0.0;
  std::vector<double> reclaim_per_epoch;
  obs::SpanProfiler profiler;
  obs::SpanProfiler* previous = obs::install_span_profiler(&profiler);
  const EngineSummary summary =
      engine.run(stream, [&](const AdmissionReport& r) {
        active_max = std::max(active_max, r.active_leases);
        last_close = std::max(last_close, r.close_time);
        reclaim_per_epoch.push_back(r.reclaim_seconds);
      });
  obs::install_span_profiler(previous);

  BenchRow row;
  row.config = c;
  row.admitted = summary.counters.admitted;
  row.admitted_fraction = summary.admitted_fraction;
  row.revenue = summary.counters.revenue;
  row.requests_per_second = summary.requests_per_second;
  row.solve_p50 = engine.metrics().solve_seconds().percentile(0.5);
  row.solve_p99 = engine.metrics().solve_seconds().percentile(0.99);
  row.wall_seconds = summary.wall_seconds;
  const auto& solve = engine.metrics().solve_seconds().stats();
  row.solve_seconds_total = solve.mean() * static_cast<double>(solve.count());
  row.clear_requests_per_second =
      row.solve_seconds_total > 0.0
          ? static_cast<double>(summary.counters.requests_seen) /
                row.solve_seconds_total
          : 0.0;
  row.active_leases_max = active_max;
  row.active_leases_final = summary.active_leases;
  row.leases_expired = summary.counters.leases_expired;
  row.occupancy_final = summary.occupancy;
  row.virtual_horizon = last_close;
  // Second-half vs first-half mean per-epoch reclaim wall time: flat
  // (~1x) means expiry processing did not grow with the horizon.
  const std::size_t half = reclaim_per_epoch.size() / 2;
  if (half > 0) {
    double first = 0.0, second = 0.0;
    for (std::size_t i = 0; i < half; ++i) first += reclaim_per_epoch[i];
    for (std::size_t i = half; i < reclaim_per_epoch.size(); ++i) {
      second += reclaim_per_epoch[i];
    }
    first /= static_cast<double>(half);
    second /= static_cast<double>(reclaim_per_epoch.size() - half);
    row.reclaim_flat_ratio = first > 0.0 ? second / first : 0.0;
  }
  row.trees_kept_on_reclaim =
      engine.metrics().counters().trees_kept_on_reclaim;
  row.trees_dropped_on_reclaim =
      engine.metrics().counters().trees_dropped_on_reclaim;
  row.span_reclaim_seconds = profiler.phase_seconds("reclaim");
  row.span_snapshot_seconds = profiler.phase_seconds("snapshot");
  row.span_solve_seconds = profiler.phase_seconds("solve");
  row.span_payments_seconds = profiler.phase_seconds("payments");
  row.span_commit_seconds = profiler.phase_seconds("commit");
  return row;
}

void write_json(const std::vector<BenchRow>& rows, const std::string& path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    os << "  {\"case\": \"" << r.config.name << "\""
       << ", \"rows\": " << r.config.rows << ", \"cols\": " << r.config.cols
       << ", \"capacity\": " << r.config.capacity
       << ", \"requests\": " << r.config.requests
       << ", \"max_batch\": " << r.config.max_batch << ", \"payments\": \""
       << payment_name(r.config.payments) << "\""
       << ", \"threads\": " << r.config.threads
       << ", \"persistent\": " << (r.config.persistent ? "true" : "false")
       << ", \"vertices\": " << r.config.vertices
       << ", \"edges\": " << r.config.edges
       << ", \"source_pool\": " << r.config.source_pool
       << ", \"source_stride\": " << r.config.source_stride
       << ", \"target_radius\": " << r.config.target_radius
       << ", \"shards\": " << r.config.shards
       << ", \"openmp\": " << (openmp_available() ? "true" : "false")
       << ", \"admitted\": " << r.admitted
       << ", \"admitted_fraction\": " << r.admitted_fraction
       << ", \"revenue\": " << r.revenue
       << ", \"requests_per_second\": " << r.requests_per_second
       << ", \"solve_p50_seconds\": " << r.solve_p50
       << ", \"solve_p99_seconds\": " << r.solve_p99
       << ", \"solve_seconds_total\": " << r.solve_seconds_total
       << ", \"clear_requests_per_second\": " << r.clear_requests_per_second
       << ", \"duration_profile\": \""
       << duration_profile_name(r.config.durations.profile) << "\""
       << ", \"active_leases_max\": " << r.active_leases_max
       << ", \"active_leases_final\": " << r.active_leases_final
       << ", \"leases_expired\": " << r.leases_expired
       << ", \"occupancy_final\": " << r.occupancy_final
       << ", \"virtual_horizon\": " << r.virtual_horizon
       << ", \"reclaim_flat_ratio\": " << r.reclaim_flat_ratio
       << ", \"trees_kept_on_reclaim\": " << r.trees_kept_on_reclaim
       << ", \"trees_dropped_on_reclaim\": " << r.trees_dropped_on_reclaim
       << ", \"span_reclaim_seconds\": " << r.span_reclaim_seconds
       << ", \"span_snapshot_seconds\": " << r.span_snapshot_seconds
       << ", \"span_solve_seconds\": " << r.span_solve_seconds
       << ", \"span_payments_seconds\": " << r.span_payments_seconds
       << ", \"span_commit_seconds\": " << r.span_commit_seconds
       << ", \"wall_seconds\": " << r.wall_seconds << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = tufp::bench::csv_mode(argc, argv);
  std::string json_path;
  bool full = false;
  bool scale = false;
  bool scale_only = false;
  bool scale_churn = false;
  bool scale_churn_only = false;
  std::int64_t scale_requests = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    if (a == "--full") full = true;
    if (a == "--scale") scale = true;
    if (a == "--scale-only") scale = scale_only = true;
    if (a == "--scale-churn") scale_churn = true;
    if (a == "--scale-churn-only") scale_churn = scale_churn_only = true;
    if (a == "--scale-requests" && i + 1 < argc) {
      scale_requests = std::stoll(argv[++i]);
    }
  }

  std::vector<BenchCase> cases = {
      {"grid8-none", 8, 8, 20.0, 4000, 500, PaymentPolicy::kNone},
      {"grid8-dual", 8, 8, 20.0, 4000, 500, PaymentPolicy::kDualPrice},
      {"grid12-dual", 12, 12, 30.0, 8000, 1000, PaymentPolicy::kDualPrice},
      {"grid8-critical", 8, 8, 8.0, 400, 100, PaymentPolicy::kCritical},
      // Thread-scaling pair on the default grid scenario: identical load
      // (the engine is thread-count deterministic), only epoch-clear wall
      // time may differ. CI records clear_requests_per_second for both.
      {"grid12-dual-t1", 12, 12, 30.0, 8000, 1000, PaymentPolicy::kDualPrice,
       1},
      {"grid12-dual-t4", 12, 12, 30.0, 8000, 1000, PaymentPolicy::kDualPrice,
       4},
  };
  {
    // Steady-state pair (DESIGN.md §10): the grid8 fill case runs 4000
    // requests and saturates — a transient. These run a 10x longer
    // virtual horizon (40000 requests at the same offered rate) under
    // exponential lease churn, so the network never fills: the active
    // lease set stays bounded by capacity x duration while admissions
    // keep flowing — the sustained-load regime a production admission
    // system actually lives in. reclaim_flat_ratio near 1 in the JSON is
    // the measured amortized-O(1) expiry claim; the t1/t4 pair doubles
    // as the steady-state thread-determinism fixture.
    DurationConfig churn;
    churn.profile = DurationProfile::kExponential;
    churn.mean = 0.2;
    cases.push_back({"grid8-lease-exp-t1", 8, 8, 16.0, 40000, 500,
                     PaymentPolicy::kDualPrice, 1, churn});
    cases.push_back({"grid8-lease-exp-t4", 8, 8, 16.0, 40000, 500,
                     PaymentPolicy::kDualPrice, 4, churn});
  }
  if (full) {
    cases.push_back({"grid16-dual", 16, 16, 50.0, 40000, 4000,
                     PaymentPolicy::kDualPrice});
    cases.push_back({"grid24-dual", 24, 24, 100.0, 100000, 10000,
                     PaymentPolicy::kDualPrice});
  }
  if (scale_only || scale_churn_only) cases.clear();
  if (scale) {
    // Serving scale tier (DESIGN.md §12): 10^5-vertex worlds clearing a
    // 10^6-request stream, each as a persistent/snapshot pair differing
    // ONLY in EpochEngineConfig::persistent_residual (allocations are
    // identical — the residual-differential oracle pins that — so the
    // clear_requests_per_second ratio isolates the epoch-clear machinery).
    // The workload is a hub overload: 8 hub sources whose adjacent edges
    // saturate within the first epochs, after which every epoch still
    // pays its full epoch-open cost — an O(m) in-place rescan
    // (persistent) vs the legacy snapshot recompile (allocate + rebuild
    // CSR + translate ids + rebuild solver caches). That steady overload
    // is where the two modes differ and what the committed >= 5x
    // acceptance ratio in bench/baseline_engine.json measures.
    const auto add_pair = [&](BenchCase base) {
      base.persistent = true;
      base.name += "-persistent";
      cases.push_back(base);
      base.persistent = false;
      base.name.replace(base.name.size() - std::string("persistent").size(),
                        std::string::npos, "snapshot");
      cases.push_back(base);
    };
    BenchCase grid;
    grid.name = "scale-grid316";
    grid.rows = 316;  // 316 x 316 = 99856 vertices
    grid.cols = 316;
    grid.capacity = 8.0;
    grid.requests = scale_requests;
    grid.max_batch = 50;
    grid.payments = PaymentPolicy::kNone;
    grid.assume_connected = true;  // undirected mesh: always connected
    grid.source_pool = 8;
    add_pair(grid);
    // Sharded serving row (DESIGN.md §13): the grid world once more with
    // the persistent engine wrapped in a 4-shard coordinator. The decider
    // and its admissions are byte-identical to scale-grid316-persistent
    // (the sharded-differential oracle pins that), so the
    // clear_requests_per_second ratio against that row isolates the
    // two-phase reserve/commit protocol's overhead — gated in CI as
    // shard4 >= 0.5x the unsharded persistent row.
    BenchCase grid_shard = grid;
    grid_shard.name = "scale-grid316-shard4-persistent";
    grid_shard.persistent = true;
    grid_shard.shards = 4;
    cases.push_back(grid_shard);
    BenchCase telecom;
    telecom.name = "scale-telecom100k";
    telecom.rows = 0;
    telecom.cols = 0;
    telecom.vertices = 100'000;
    telecom.edges = 300'000;  // mutual spanning tree + random extras
    telecom.capacity = 8.0;
    telecom.requests = scale_requests;
    telecom.max_batch = 50;
    telecom.payments = PaymentPolicy::kNone;
    telecom.assume_connected = true;  // generator trees are mutual
    telecom.source_pool = 8;
    add_pair(telecom);
  }
  if (scale_churn) {
    // Non-saturating churn scale tier: the same 10^5-vertex worlds under
    // hub-local traffic — 32 sources spread across the vertex set
    // (stride) with targets drawn from each hub's hop ball — and finite
    // lease durations, exponential and flash-crowd. The network never
    // saturates: reclaims return capacity as fast as admissions take it,
    // so every epoch both reclaims AND admits. That is the regime the
    // per-tree reclaim revalidation targets: most hubs sit far from any
    // reclaimed edge, their warm trees survive
    // (trees_kept_on_reclaim > 0 in the persistent rows), and the
    // persistent engine's committed acceptance is >= 2x snapshot on
    // clear_requests_per_second. The hub regions run at steady mid-band
    // load (occupancy_final in the JSON tracks the global gauge, which
    // reads low because the load is local by design).
    const auto add_pair = [&](BenchCase base) {
      base.persistent = true;
      base.name += "-persistent";
      cases.push_back(base);
      base.persistent = false;
      base.name.replace(base.name.size() - std::string("persistent").size(),
                        std::string::npos, "snapshot");
      cases.push_back(base);
    };
    DurationConfig exp_churn;
    exp_churn.profile = DurationProfile::kExponential;
    // Steady-state per-hub demand = rate x mean x admit x d_mean / pool
    // ~ 0.25 * 10^4 * 0.6 / 32 ~ 47: inside the weakest hub cut of both
    // worlds (see the capacity comments below).
    exp_churn.mean = 0.25;
    DurationConfig flash_churn;
    flash_churn.profile = DurationProfile::kFlashCrowd;
    // Window short enough that one window's pile-up (rate x period
    // admissions spread over the hubs) stays inside every hub cut —
    // repeated synchronized release waves, not a saturating pile.
    flash_churn.mean = 0.1;
    flash_churn.period = 0.1;
    const auto churn_case = [&](const char* name, const DurationConfig& d,
                                bool telecom_world) {
      BenchCase c;
      c.name = name;
      c.payments = PaymentPolicy::kNone;
      c.requests = scale_requests;
      c.max_batch = 50;
      c.durations = d;
      c.source_pool = 32;
      c.source_stride = 3100;  // spreads 32 hubs over ~10^5 vertices
      // Capacities sized so a hub's cut never saturates under the steady
      // active-lease demand (rate x mean duration / pool): a saturated
      // hub edge makes ball targets unreachable under the blocked mask
      // and turns the early-terminating local Dijkstra into a full-graph
      // exhaustion — the saturating regime the OTHER scale tier measures.
      if (telecom_world) {
        c.rows = 0;
        c.cols = 0;
        c.vertices = 100'000;
        c.edges = 300'000;
        c.capacity = 64.0;  // random mesh: hub out-degree can be 1
        // Expander-like: radius grows the ball geometrically, so a small
        // hop budget already gives hundreds of local targets while the
        // trees stay small enough to dodge remote reclaims.
        c.target_radius = 3;
      } else {
        c.rows = 316;
        c.cols = 316;
        c.capacity = 16.0;  // grid hub cut is 4 edges
        c.target_radius = 8;  // mesh: ~2 r^2 vertices per hub ball
      }
      add_pair(c);
    };
    churn_case("scale-churn-grid316-exp", exp_churn, false);
    churn_case("scale-churn-grid316-flash", flash_churn, false);
    churn_case("scale-churn-telecom100k-exp", exp_churn, true);
    churn_case("scale-churn-telecom100k-flash", flash_churn, true);
  }

  if (!openmp_available()) {
    // The thread-scaling rows are meaningless when thread requests are
    // silently serialized; say so loudly and record it in the JSON.
    std::cerr << "warning: built without OpenMP — threads>0 cases run "
                 "serial, thread-scaling rows measure nothing\n";
  }
  if (!csv) {
    tufp::bench::print_header(
        "E10", "streaming admission engine throughput",
        "serving-layer extension of Alg. 1 (no paper counterpart): "
        "epoch-batched online auctions over residual snapshots");
  }

  Table table({"case", "requests", "batch", "payments", "threads", "admitted",
               "admitted_frac", "revenue", "req_per_sec", "clear_rps",
               "leases_max", "occup", "reclaim_flat", "solve_p50_s",
               "solve_p99_s", "wall_s"});
  table.set_precision(4);
  std::vector<BenchRow> rows;
  for (const BenchCase& c : cases) {
    const BenchRow r = run_case(c);
    rows.push_back(r);
    table.row()
        .cell(r.config.name)
        .cell(static_cast<long long>(r.config.requests))
        .cell(r.config.max_batch)
        .cell(payment_name(r.config.payments))
        .cell(r.config.threads)
        .cell(static_cast<long long>(r.admitted))
        .cell(r.admitted_fraction)
        .cell(r.revenue)
        .cell(r.requests_per_second)
        .cell(r.clear_requests_per_second)
        .cell(static_cast<long long>(r.active_leases_max))
        .cell(r.occupancy_final)
        .cell(r.reclaim_flat_ratio)
        .cell(r.solve_p50)
        .cell(r.solve_p99)
        .cell(r.wall_seconds);
  }
  tufp::bench::emit(table, csv);

  if (!json_path.empty()) {
    write_json(rows, json_path);
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
