// E7 — Corollaries 3.2 / 4.2: the full truthful mechanisms
// (allocation + critical payments) leave no profitable misreport, charge
// within the declared values (individual rationality), and cost a
// polynomial number of allocation-rule evaluations.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/mechanism/truthfulness_audit.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance tight_instance(std::uint64_t seed, int requests) {
  Rng rng(seed);
  Graph g = grid_graph(3, 3, 2.0, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E7", "Truthful mechanism audit (UFP + MUCA)",
      "monotone + exact + critical payments => no agent gains by "
      "misreporting (Theorem 2.3, Corollaries 3.2/4.2)");

  BoundedUfpConfig sat;
  sat.run_to_saturation = true;  // tight fixtures sit outside the regime
  const UfpRule ufp_rule = make_bounded_ufp_rule(sat);

  Table ufp_table({"seed", "agents", "winners", "revenue", "social value",
                   "misreports", "violations", "rule evals", "ms"});
  long total_violations = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const UfpInstance inst = tight_instance(seed * 71, 10);
    WallTimer timer;
    const UfpMechanismResult mech = run_ufp_mechanism(inst, ufp_rule);
    AuditOptions audit_options;
    audit_options.seed = seed;
    const AuditReport report =
        audit_ufp_truthfulness(inst, ufp_rule, audit_options);
    const double ms = timer.elapsed_ms();
    total_violations += static_cast<long>(report.violations.size());
    double revenue = 0.0;
    for (double p : mech.payments) revenue += p;
    ufp_table.row()
        .cell(seed)
        .cell(inst.num_requests())
        .cell(mech.allocation.num_selected())
        .cell(revenue)
        .cell(mech.allocation.total_value(inst))
        .cell(report.misreports_tried)
        .cell(static_cast<std::size_t>(report.violations.size()))
        .cell(mech.rule_evaluations)
        .cell(ms);
  }
  std::cout << "(a) UFP mechanism (Bounded-UFP + critical payments)\n";
  bench::emit(ufp_table, csv);

  BoundedMucaConfig muca_sat;
  muca_sat.run_to_saturation = true;
  const MucaRule muca_rule = make_bounded_muca_rule(muca_sat);

  Table muca_table({"seed", "agents", "winners", "revenue", "social value",
                    "misreports", "violations"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const MucaInstance inst =
        make_random_auction(10, 3, 12, 2, 4, 1.0, 9.0, seed * 83);
    const MucaMechanismResult mech = run_muca_mechanism(inst, muca_rule);
    AuditOptions audit_options;
    audit_options.seed = seed + 100;
    const AuditReport report =
        audit_muca_truthfulness(inst, muca_rule, audit_options);
    total_violations += static_cast<long>(report.violations.size());
    double revenue = 0.0;
    for (double p : mech.payments) revenue += p;
    muca_table.row()
        .cell(seed)
        .cell(inst.num_requests())
        .cell(mech.allocation.num_selected())
        .cell(revenue)
        .cell(mech.allocation.total_value(inst))
        .cell(report.misreports_tried)
        .cell(static_cast<std::size_t>(report.violations.size()));
  }
  std::cout << "(b) MUCA mechanism (Bounded-MUCA, unknown single-minded)\n";
  bench::emit(muca_table, csv);

  std::cout << "expected shape: zero violations in every row (revenue <= "
               "social value by individual rationality). total violations: "
            << total_violations << "\n";
  return total_violations == 0 ? 0 : 1;
}
