// E12 — Figure 1 / Figure 5 linear programs: the weak-duality chain every
// reproduction number relies on, measured end to end:
//   ALG <= integral OPT <= fractional OPT (Fig 1 LP) <= dual certificates.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/baselines/bkv.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/lp/garg_konemann.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/bounded_ufp_repeat.hpp"
#include "tufp/ufp/dual_certificate.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"

namespace {

using namespace tufp;

UfpInstance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  Graph g = grid_graph(2, 3, 1.6, false);
  RequestGenConfig cfg;
  cfg.num_requests = 9;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

const char* ok(bool b) { return b ? "ok" : "VIOLATED"; }

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E12", "Weak duality chain (Figure 1 and Figure 5 programs)",
      "ALG <= intOPT <= fracOPT <= every dual-feasible value; Figure 5's "
      "relaxation dominates Figure 1's");

  Table table({"seed", "ALG", "intOPT", "fracOPT", "run cert", "final-y cert",
               "coarse(rep) cert", "chain"});
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const UfpInstance inst = make_instance(seed * 67);
    BoundedUfpConfig cfg;
    cfg.run_to_saturation = true;
    const BkvResult run = bkv_ufp(inst, cfg);
    const double alg = run.solution.total_value(inst);
    const double int_opt = solve_ufp_exact(inst).optimal_value;
    const double frac_opt = solve_ufp_lp(inst).objective;
    const BoundedUfpResult ufp_run = bounded_ufp(inst, cfg);
    const double final_y_cert = best_dual_bound(inst, ufp_run.y).upper_bound;

    const bool chain_ok = alg <= int_opt + 1e-7 && int_opt <= frac_opt + 1e-7 &&
                          frac_opt <= run.tight_upper_bound + 1e-6 &&
                          frac_opt <= final_y_cert + 1e-6 &&
                          frac_opt <= run.coarse_upper_bound + 1e-6 &&
                          run.tight_upper_bound <=
                              run.coarse_upper_bound + 1e-6;
    violations += chain_ok ? 0 : 1;
    table.row()
        .cell(seed)
        .cell(alg)
        .cell(int_opt)
        .cell(frac_opt)
        .cell(run.tight_upper_bound)
        .cell(final_y_cert)
        .cell(run.coarse_upper_bound)
        .cell(ok(chain_ok));
  }
  std::cout << "(a) Figure 1 chain on tight 2x3 grids\n";
  bench::emit(table, csv);

  // Figure 5: the repetitions relaxation upper-bounds the one-shot problem.
  // Capacity 8 keeps the threshold e^{eps(B-1)} above the initial dual
  // value m so the repeat run is non-trivial.
  Table rep_table({"seed", "one-shot fracOPT", "repeat value", "repeat cert",
                   "fracOPT <= repeat cert"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 101);
    Graph g = grid_graph(2, 3, 8.0, false);
    RequestGenConfig gen;
    gen.num_requests = 9;
    gen.demand_min = 0.5;
    std::vector<Request> reqs = generate_requests(g, gen, rng);
    const UfpInstance inst(std::move(g), std::move(reqs));
    const double frac_opt = solve_ufp_lp(inst).objective;
    BoundedUfpRepeatConfig rep_cfg;
    rep_cfg.epsilon = 0.9;
    const BoundedUfpRepeatResult rep = bounded_ufp_repeat(inst, rep_cfg);
    const bool dominated = frac_opt <= rep.dual_upper_bound + 1e-6;
    violations += dominated ? 0 : 1;
    rep_table.row()
        .cell(seed)
        .cell(frac_opt)
        .cell(rep.solution.total_value(inst))
        .cell(rep.dual_upper_bound)
        .cell(ok(dominated));
  }
  std::cout << "(b) Figure 5 relaxation dominates Figure 1's optimum\n";
  bench::emit(rep_table, csv);

  // (c) The fractional problem is "easy" (paper §1.2, refs [9]/[8]): the
  // combinatorial Garg-Konemann solver closes in on the exact LP optimum
  // as its eps shrinks — the FPTAS behaviour the integral problem provably
  // cannot have within the reasonable family.
  Table gk_table({"gk eps", "GK value(mean)", "exact LP(mean)", "GK/LP",
                  "iterations(mean)"});
  for (double gk_eps : {0.4, 0.2, 0.1, 0.05}) {
    RunningStats gk_stats, lp_stats, iters;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const UfpInstance inst = make_instance(seed * 67);
      GkConfig cfg;
      cfg.epsilon = gk_eps;
      const GkResult gk = garg_konemann_fractional_ufp(inst, cfg);
      gk_stats.add(gk.objective);
      lp_stats.add(solve_ufp_lp(inst).objective);
      iters.add(static_cast<double>(gk.iterations));
    }
    gk_table.row()
        .cell(gk_eps)
        .cell(gk_stats.mean())
        .cell(lp_stats.mean())
        .cell(gk_stats.mean() / lp_stats.mean())
        .cell(iters.mean());
  }
  std::cout << "(c) fractional FPTAS (Garg-Konemann) vs exact LP\n";
  bench::emit(gk_table, csv);

  std::cout << "expected shape: every chain column reads 'ok'; GK/LP climbs "
               "toward 1 as its eps shrinks. violations: "
            << violations << "\n";
  return violations == 0 ? 0 : 1;
}
