// E5 — Figure 4 / Theorem 4.5: the partition-auction gadget caps every
// reasonable iterative bundle-minimizing algorithm at (3p+1)B/4 vs OPT=pB,
// approaching ratio 4/3 as p grows.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "tufp/auction/bundle_minimizer.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/lower_bounds.hpp"

int main(int argc, char** argv) {
  using namespace tufp;
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E5", "Figure 4 multi-unit auction gadget",
      "reasonable bundle minimizers reach (3p+1)B/4 vs OPT = pB: ratio -> "
      "4/3 as p grows (Theorem 4.5)");

  Table table({"p", "B", "items", "requests", "ALG(simulated)",
               "ALG(paper)=(3p+1)B/4", "OPT=pB", "ratio", "matches", "ms"});
  const std::vector<std::pair<int, int>> sizes{
      {3, 8}, {5, 8}, {7, 8}, {9, 8}, {11, 8}, {15, 8}, {7, 2}, {7, 32}};
  for (const auto& [p, B] : sizes) {
    const Fig4Instance fig = make_fig4(p, B);
    const ExponentialBundleFunction h(
        0.25, static_cast<double>(fig.instance.bound_B()));
    BundleMinimizerConfig cfg;
    cfg.function = &h;
    WallTimer timer;
    const auto result = reasonable_bundle_minimizer(fig.instance, cfg);
    const double ms = timer.elapsed_ms();
    const double alg = result.solution.total_value(fig.instance);
    table.row()
        .cell(p)
        .cell(B)
        .cell(fig.instance.num_items())
        .cell(fig.instance.num_requests())
        .cell(alg)
        .cell(fig.predicted_alg_value())
        .cell(fig.optimal_value())
        .cell(fig.optimal_value() / alg)
        .cell(alg == fig.predicted_alg_value() ? "yes" : "NO")
        .cell(ms);
  }
  bench::emit(table, csv);

  std::cout << "expected shape: ALG = (3p+1)B/4 exactly; ratio = 4p/(3p+1) "
               "climbing to 4/3 = 1.3333 as p grows, independent of B.\n";
  return 0;
}
