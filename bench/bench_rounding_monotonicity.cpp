// E8 — the paper's motivation (§1): randomized rounding achieves nearly
// the fractional optimum in the large-capacity regime but violates the
// monotonicity that truthfulness requires, so it cannot back a truthful
// mechanism. Bounded-UFP trades a constant factor for monotonicity.
#include <iostream>

#include "bench_util.hpp"
#include "tufp/baselines/randomized_rounding.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/mechanism/truthfulness_audit.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance make_instance(std::uint64_t seed, double capacity, int requests) {
  Rng rng(seed);
  Graph g = grid_graph(2, 3, capacity, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E8", "Randomized rounding: near-optimal value, broken monotonicity",
      "standard (1+eps) technique [17,16,18] cannot be used truthfully "
      "(paper §1); the deterministic primal-dual can");

  // (a) Value: in the large-capacity regime rounding tracks the LP.
  Table value_table({"seed", "B", "fracOPT", "RR value", "RR/frac",
                     "BoundedUFP value", "UFP/frac", "dropped"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const UfpInstance inst = make_instance(seed * 41, 30.0, 18);
    const RoundingResult rr = randomized_rounding_ufp(inst, seed);
    BoundedUfpConfig ufp_cfg;
    ufp_cfg.epsilon = 0.5;
    const double ufp_value =
        bounded_ufp(inst, ufp_cfg).solution.total_value(inst);
    value_table.row()
        .cell(seed)
        .cell(inst.bound_B())
        .cell(rr.fractional_optimum)
        .cell(rr.solution.total_value(inst))
        .cell(rr.solution.total_value(inst) / rr.fractional_optimum)
        .cell(ufp_value)
        .cell(ufp_value / rr.fractional_optimum)
        .cell(rr.dropped);
  }
  std::cout << "(a) value comparison in the large-capacity regime\n";
  bench::emit(value_table, csv);

  // (b) Monotonicity: audit both rules on tight instances.
  const UfpRule rr_rule = [](const UfpInstance& inst) {
    return randomized_rounding_ufp(inst, 20260609).solution;
  };
  BoundedUfpConfig sat;
  sat.run_to_saturation = true;
  const UfpRule ufp_rule = make_bounded_ufp_rule(sat);

  Table mono_table({"seed", "probes", "RR violations", "BoundedUFP violations"});
  long rr_total = 0, ufp_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const UfpInstance inst = make_instance(seed * 13, 1.4, 9);
    MonotonicityOptions options;
    options.seed = seed;
    options.probes_per_agent = 8;
    const auto rr_report = audit_ufp_monotonicity(inst, rr_rule, options);
    const auto ufp_report = audit_ufp_monotonicity(inst, ufp_rule, options);
    rr_total += static_cast<long>(rr_report.violations.size());
    ufp_total += static_cast<long>(ufp_report.violations.size());
    mono_table.row()
        .cell(seed)
        .cell(rr_report.probes_tried)
        .cell(static_cast<std::size_t>(rr_report.violations.size()))
        .cell(static_cast<std::size_t>(ufp_report.violations.size()));
  }
  std::cout << "(b) Definition 2.1 monotonicity audit on tight instances\n";
  bench::emit(mono_table, csv);

  std::cout << "expected shape: RR value ~ fracOPT (better than Bounded-UFP) "
               "but RR violations > 0 while Bounded-UFP has exactly 0.\n"
            << "totals: RR=" << rr_total << " BoundedUFP=" << ufp_total << "\n";
  return ufp_total == 0 && rr_total > 0 ? 0 : 1;
}
