// E1 — Theorem 3.1: Bounded-UFP(eps/6) is a (1+eps)*e/(e-1)-approximation
// on Omega(ln(m)/eps^2)-bounded instances.
//
// Regime scaling: the theorem invokes the algorithm with parameter eps/6,
// and Lemma 3.8 needs B >= ln(m)/(eps_alg)^2 for the *algorithm's*
// parameter — i.e. B >= 36*ln(m)/eps^2 in the theorem's eps. Workloads are
// congested (requests ~ 2.5*B on a 7-edge grid) so the allocation actually
// rejects agents; ratios are measured against:
//   (a) the run's own dual certificate (sound for any size), and
//   (b) the exact fractional/integral optima on a bottleneck-link instance
//       (m = 1 edge is in-regime for every B and keeps the exact solvers
//       tractable under congestion).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/stats.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

UfpInstance congested_grid(std::uint64_t seed, double alg_eps) {
  Rng rng(seed);
  Graph probe = grid_graph(2, 3, 1.0, false);
  const double B = regime_capacity(probe.num_edges(), alg_eps, 1.02);
  Graph g = grid_graph(2, 3, B, false);
  RequestGenConfig cfg;
  // ~7*B requests at mean demand 0.75 across 7 edges pushes per-edge load
  // to ~1.5*B: the run must reject a constant fraction of agents.
  cfg.num_requests = static_cast<int>(7.0 * B);
  cfg.demand_min = 0.5;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

UfpInstance bottleneck_link(std::uint64_t seed, double capacity, int requests) {
  Rng rng(seed);
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, capacity);
  g.finalize();
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    reqs.push_back({0, 1, rng.next_double(0.4, 1.0), rng.next_double(1.0, 10.0)});
  }
  // Density order: the exact branch & bound finds near-optimal incumbents
  // early and prunes hard (declaration order does not affect the solvers'
  // guarantees, only B&B search speed).
  std::sort(reqs.begin(), reqs.end(), [](const Request& a, const Request& b) {
    return a.value / a.demand > b.value / b.demand;
  });
  return UfpInstance(std::move(g), std::move(reqs));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E1", "Theorem 3.1 approximation sweep (Bounded-UFP)",
      "Bounded-UFP(eps/6) is feasible, monotone, exact and within "
      "(1+eps)*e/(e-1) of OPT for B >= 36*ln(m)/eps^2");

  constexpr int kSeeds = 2;

  Table table({"eps(thm)", "alg eps", "B", "requests", "accepted(mean)",
               "value(mean)", "cert(mean)", "ratio cert/ALG",
               "bound (1+eps)e/(e-1)", "feasible", "ms(mean)"});
  for (double eps : {0.25, 0.5, 1.0}) {
    const double alg_eps = eps / 6.0;
    RunningStats value_stats, cert_stats, ratio_stats, accepted, ms_stats;
    bool all_feasible = true;
    double B = 0.0;
    int requests = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const UfpInstance inst = congested_grid(seed * 97, alg_eps);
      B = inst.bound_B();
      requests = inst.num_requests();
      BoundedUfpConfig cfg;
      cfg.epsilon = alg_eps;
      WallTimer timer;
      const BoundedUfpResult result = bounded_ufp(inst, cfg);
      ms_stats.add(timer.elapsed_ms());
      all_feasible &= result.solution.check_feasibility(inst).feasible;
      const double value = result.solution.total_value(inst);
      value_stats.add(value);
      cert_stats.add(result.dual_upper_bound);
      ratio_stats.add(result.dual_upper_bound / value);
      accepted.add(result.solution.num_selected());
    }
    table.row()
        .cell(eps)
        .cell(alg_eps)
        .cell(B)
        .cell(requests)
        .cell(accepted.mean())
        .cell(value_stats.mean())
        .cell(cert_stats.mean())
        .cell(ratio_stats.mean())
        .cell((1.0 + eps) * kEOverEMinus1)
        .cell(all_feasible ? "yes" : "NO")
        .cell(ms_stats.mean());
  }
  std::cout << "(a) congested 2x3 grid, certificate-measured ratio, " << kSeeds
            << " seeds per row\n";
  bench::emit(table, csv);

  // (b) Exact optima on the bottleneck link (m = 1: in-regime for every B).
  // Requests are declared in value-density order, which lets the exact
  // branch & bound find near-optimal incumbents first and prune hard.
  Table exact_table({"B", "requests", "value", "fracOPT", "intOPT",
                     "ratio intOPT/ALG", "ratio fracOPT/ALG", "bound"});
  for (double B : {10.0, 16.0}) {
    for (std::uint64_t seed = 5; seed <= 6; ++seed) {
      const int requests = static_cast<int>(2.5 * B);
      const UfpInstance inst = bottleneck_link(seed * 131, B, requests);
      BoundedUfpConfig cfg;
      cfg.epsilon = 1.0 / 6.0;
      const BoundedUfpResult result = bounded_ufp(inst, cfg);
      const double value = result.solution.total_value(inst);
      const double frac = solve_ufp_lp(inst).objective;
      const UfpExactResult exact = solve_ufp_exact(inst);
      exact_table.row()
          .cell(B)
          .cell(requests)
          .cell(value)
          .cell(frac)
          .cell(exact.proven_optimal ? exact.optimal_value : -1.0)
          .cell(exact.proven_optimal ? exact.optimal_value / value : -1.0)
          .cell(frac / value)
          .cell(2.0 * kEOverEMinus1);  // eps(thm) = 1
    }
  }
  std::cout << "(b) bottleneck link vs exact optima (alg eps = 1/6)\n";
  bench::emit(exact_table, csv);

  std::cout << "expected shape: every measured ratio sits below the theorem "
               "bound; smaller eps buys a tighter certified ratio (toward "
               "e/(e-1) = "
            << kEOverEMinus1 << ") at the price of a larger B.\n";
  return 0;
}
