// E11 — §3.3 ablation: the reasonable-function family. All members (h,
// the hop-biased h1, the flow-product h2) obey the staircase/gadget lower
// bounds — the inapproximability is a property of the family, not of the
// specific rule Algorithm 1 minimizes.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/ufp/iterative_minimizer.hpp"
#include "tufp/ufp/reasonable.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/lower_bounds.hpp"
#include "tufp/workload/request_gen.hpp"

namespace {

using namespace tufp;

double run_with(const UfpInstance& inst, const ReasonableFunction& fn,
                const TieScore& tie) {
  IterativeMinimizerConfig cfg;
  cfg.function = &fn;
  cfg.tie_score = tie;
  return reasonable_iterative_minimizer(inst, cfg).solution.total_value(inst);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  bench::print_header(
      "E11", "Reasonable-function ablation (h vs h1 vs h2)",
      "every reasonable iterative path minimizer obeys the Figure 2/3 "
      "bounds; the choice of function moves value only within them");

  // (a) Staircase: all members stay below OPT by roughly the same factor.
  Table staircase_table(
      {"l", "B", "OPT", "ALG(h)", "ALG(h1)", "ALG(h2)", "fluid bound+B^2"});
  for (const auto& [l, B] :
       std::vector<std::pair<int, int>>{{12, 3}, {16, 4}, {24, 4}}) {
    const StaircaseInstance sc = make_staircase(l, B);
    const ExponentialLengthFunction h(0.25, B);
    const HopBiasedFunction h1(0.25, B);
    const FlowProductFunction h2;
    const TieScore tie = sc.paper_tie_score();
    staircase_table.row()
        .cell(l)
        .cell(B)
        .cell(sc.optimal_value())
        .cell(run_with(sc.instance, h, tie))
        .cell(run_with(sc.instance, h1, tie))
        .cell(run_with(sc.instance, h2, tie))
        .cell(sc.predicted_alg_value() + static_cast<double>(B) * B);
  }
  std::cout << "(a) staircase, paper tie-break\n";
  bench::emit(staircase_table, csv);

  // (b) Figure 3 gadget.
  Table fig3_table({"B", "OPT", "ALG(h)", "ALG(h1)", "ALG(h2)", "paper 3B"});
  for (int B : {4, 16, 64}) {
    const Fig3Instance fig = make_fig3(B);
    const ExponentialLengthFunction h(0.25, B);
    const HopBiasedFunction h1(0.25, B);
    const FlowProductFunction h2;
    const TieScore tie = fig.paper_tie_score();
    fig3_table.row()
        .cell(B)
        .cell(fig.optimal_value())
        .cell(run_with(fig.instance, h, tie))
        .cell(run_with(fig.instance, h1, tie))
        .cell(run_with(fig.instance, h2, tie))
        .cell(fig.predicted_alg_value());
  }
  std::cout << "(b) Figure 3 gadget, adversarial ties\n";
  bench::emit(fig3_table, csv);

  // (c) Benign random workloads: the functions are nearly interchangeable.
  Table random_table({"seed", "ALG(h)", "ALG(h1)", "ALG(h2)"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 19);
    Graph g = grid_graph(3, 3, 3.0, false);
    RequestGenConfig gen;
    gen.num_requests = 14;
    std::vector<Request> reqs = generate_requests(g, gen, rng);
    const UfpInstance inst(std::move(g), std::move(reqs));
    const ExponentialLengthFunction h(0.25, inst.bound_B());
    const HopBiasedFunction h1(0.25, inst.bound_B());
    const FlowProductFunction h2;
    random_table.row()
        .cell(seed)
        .cell(run_with(inst, h, {}))
        .cell(run_with(inst, h1, {}))
        .cell(run_with(inst, h2, {}));
  }
  std::cout << "(c) benign 3x3 grid workloads, no adversarial ties\n";
  bench::emit(random_table, csv);

  std::cout << "expected shape: on the gadgets all three functions land in "
               "the same lower-bound window; on benign workloads their "
               "values are close — reasonability, not the exact rule, "
               "drives the worst case.\n";
  return 0;
}
