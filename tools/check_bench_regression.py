#!/usr/bin/env python3
"""CI bench-regression gate for benchmark JSON output.

Compares a current JSON run against a committed baseline and fails when
the throughput of any benchmark present in both files regresses by more
than --threshold (default 20%). Two formats are recognized by shape:

* google-benchmark (``bench_perf_runtime --json``, baseline
  ``bench/baseline.json``): an object with a ``benchmarks`` array.
  Throughput is items_per_second when reported, otherwise 1/real_time;
  when a run contains repetition aggregates
  (--benchmark_repetitions=N), only the *_median rows are compared.
* engine-throughput (``bench_engine_throughput --json``, baseline
  ``bench/baseline_engine.json``): a top-level array of case rows.
  Throughput is ``clear_requests_per_second`` — this covers the
  steady-state lease cases (grid8-lease-exp-*) alongside the fill-phase
  ones.

Usage:
  check_bench_regression.py BASELINE CURRENT [--threshold 0.20]
  check_bench_regression.py --update BASELINE CURRENT   # refresh baseline
  check_bench_regression.py BASELINE CURRENT \
      --min-ratio scale-grid316-persistent/scale-grid316-snapshot=5

--min-ratio asserts a throughput ratio between two cases of the CURRENT
run (repeatable). It gates *relative* claims — e.g. the serving-core
acceptance "persistent clears >= 5x the snapshot baseline" — which stay
meaningful across machine classes where absolute numbers do not.

NUM_CASE may contain a single ``*`` glob; it is matched against the
current run's case names and whatever the ``*`` captured is substituted
into DEN_CASE's ``*``, so one spec gates a whole family::

    --min-ratio 'scale-churn-*-persistent/scale-churn-*-snapshot=2'

A glob that matches nothing is a broken gate and fails hard (exit 2),
like a missing named case — and so is a gate case absent from the
BASELINE (e.g. a glob that matched the persistent leg of a new pair
whose rows were never baselined): the gate's absolute-regression leg
would otherwise silently skip. An exact (glob-free) spec naming the same
NUM/DEN pair overrides the glob-derived bound, so a family default can
carry per-case exceptions.

Caveat (documented in README.md): absolute numbers are machine-class
specific. The committed baseline is meaningful on runners comparable to
the one that produced it; refresh it with --update (or by copying the CI
artifact) whenever the runner class or the benchmark set changes.
"""

import argparse
import json
import shutil
import sys

MEDIAN_SUFFIX = "_median"


def expand_ratio_gates(specs, current_cases):
    """Expands --min-ratio specs against the current run's case names.

    `specs` is a list of (num_pattern, den_pattern, bound) from the
    parser; patterns either contain no ``*`` (exact) or exactly one
    ``*`` in both positions (validated at parse time). Returns a sorted
    list of concrete (num, den, bound) gates, or raises ValueError with
    a message naming the glob when a pattern matches no current case.

    Exact specs are applied last so they override a glob-derived gate
    for the same (num, den) pair.
    """
    derived = {}
    exact = {}
    for num, den, bound in specs:
        if "*" not in num:
            exact[(num, den)] = bound
            continue
        prefix, suffix = num.split("*")
        matched = False
        for name in current_cases:
            if (len(name) >= len(prefix) + len(suffix)
                    and name.startswith(prefix) and name.endswith(suffix)):
                capture = name[len(prefix):len(name) - len(suffix)]
                derived[(name, den.replace("*", capture))] = bound
                matched = True
        if not matched:
            raise ValueError(
                f"--min-ratio glob {num!r} matched no case in the current "
                f"run")
    derived.update(exact)
    return sorted((num, den, bound) for (num, den), bound in derived.items())


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, list):
        # bench_engine_throughput format: one object per case. A zero
        # throughput is kept (ratio 0 => flagged as a regression), not
        # dropped: a case collapsing to zero must fail the gate, not
        # silently leave the compared set.
        out = {}
        for row in data:
            name = row.get("case")
            throughput = row.get("clear_requests_per_second")
            if name is not None and throughput is not None:
                out[name] = float(throughput)
        return out
    rows = data.get("benchmarks", [])
    medians = [r for r in rows if r.get("name", "").endswith(MEDIAN_SUFFIX)]
    if medians:
        rows = medians
    out = {}
    for row in rows:
        name = row.get("name")
        if name is None:
            # Malformed or foreign row (e.g. a context object leaking into
            # the array): skip it rather than KeyError the whole gate.
            print(f"warning: {path}: skipping benchmark row without a "
                  f"'name' field", file=sys.stderr)
            continue
        if name.endswith(MEDIAN_SUFFIX):
            name = name[: -len(MEDIAN_SUFFIX)]
        throughput = row.get("items_per_second")
        if throughput is None:
            real_time = row.get("real_time")
            if not real_time:
                continue
            throughput = 1.0 / real_time
        out[name] = float(throughput)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated fractional throughput drop")
    parser.add_argument("--update", action="store_true",
                        help="overwrite BASELINE with CURRENT and exit")
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="NUM_CASE/DEN_CASE=X",
                        help="fail unless current[NUM]/current[DEN] >= X; "
                             "repeatable; NUM may hold one '*' glob whose "
                             "capture substitutes into DEN's '*'")
    args = parser.parse_args()

    ratio_specs = []
    for spec in args.min_ratio:
        try:
            cases, bound = spec.rsplit("=", 1)
            numerator, denominator = cases.split("/", 1)
            ratio_specs.append((numerator, denominator, float(bound)))
        except ValueError:
            parser.error(f"--min-ratio expects NUM_CASE/DEN_CASE=X, got "
                         f"{spec!r}")
        if "*" in numerator or "*" in denominator:
            # One capture, one substitution site: anything else is
            # ambiguous, so reject it at parse time.
            if numerator.count("*") != 1 or denominator.count("*") != 1:
                parser.error(f"--min-ratio glob needs exactly one '*' in "
                             f"both NUM and DEN, got {spec!r}")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    try:
        ratio_gates = expand_ratio_gates(ratio_specs, sorted(current))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A ratio-gated case must exist in the BASELINE too. The gate names
    # its cases as durable acceptance criteria, so a gate case absent
    # from the committed baseline means the baseline predates the gate —
    # a broken gate, exactly like a glob matching nothing. Without this
    # check the case would fall into the generic "missing from the
    # baseline" warning below and its absolute-regression leg would
    # silently never run.
    gate_cases = sorted({c for num, den, _ in ratio_gates for c in (num, den)})
    stale = [c for c in gate_cases if c not in baseline]
    if stale:
        print(f"error: --min-ratio case(s) absent from the baseline: "
              f"{', '.join(stale)}; refresh the baseline with --update",
              file=sys.stderr)
        return 2
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no benchmarks in common between baseline and current",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 0.0
        flag = ""
        if ratio < 1.0 - args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:<{width}}  {baseline[name]:>12.4g}  "
              f"{current[name]:>12.4g}  {ratio:5.2f}{flag}")

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline benchmark(s) absent from the "
              f"current run: {', '.join(missing)}")
    # New benchmarks not yet in the committed baseline are expected right
    # after a bench suite grows: warn (so the baseline gets refreshed) but
    # never fail — the gate compares only the intersection.
    unbaselined = sorted(set(current) - set(baseline))
    if unbaselined:
        print(f"warning: {len(unbaselined)} benchmark(s) missing from the "
              f"baseline, skipped: {', '.join(unbaselined)}; refresh with "
              f"--update", file=sys.stderr)

    ratio_failures = []
    for numerator, denominator, bound in ratio_gates:
        # A ratio gate names its cases explicitly: a missing case is a
        # broken gate, not a skippable row, so it fails loudly.
        missing_cases = [c for c in (numerator, denominator) if c not in current]
        if missing_cases:
            print(f"error: --min-ratio case(s) absent from the current run: "
                  f"{', '.join(missing_cases)}", file=sys.stderr)
            return 2
        ratio = (current[numerator] / current[denominator]
                 if current[denominator] > 0 else float("inf"))
        ok = ratio >= bound
        print(f"ratio gate: {numerator}/{denominator} = {ratio:.2f}x "
              f"(required >= {bound:g}x) {'OK' if ok else '<< FAIL'}")
        if not ok:
            ratio_failures.append((numerator, denominator, ratio, bound))

    if regressions or ratio_failures:
        if regressions:
            worst = min(regressions, key=lambda r: r[1])
            print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
                  f"than {args.threshold:.0%} (worst: {worst[0]} at "
                  f"{worst[1]:.2f}x)", file=sys.stderr)
        for numerator, denominator, ratio, bound in ratio_failures:
            print(f"FAIL: {numerator}/{denominator} = {ratio:.2f}x, "
                  f"required >= {bound:g}x", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"across {len(shared)} compared"
          + (f"; {len(ratio_gates)} ratio gate(s) held" if ratio_gates else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
