// tufp_engine — stream a synthetic bid workload through the epoch-batched
// admission engine and report per-epoch auctions plus a final summary.
//
// Usage:
//   tufp_engine [options]
//
// Scenario:
//   --scenario grid|random   topology family           (default grid)
//   --rows N / --cols N      grid dimensions           (default 24 x 24)
//   --vertices N / --edges N random topology size      (default 400 / 1600)
//   --capacity X             uniform edge capacity     (default 100)
//   --value-model uniform|zipf|proportional            (default uniform)
// Stream:
//   --requests N             total offered requests    (default 100000)
//   --arrivals poisson|burst                           (default poisson)
//   --rate X                 Poisson rate, req/s       (default 10000)
//   --burst-size N / --burst-period X                  (default 1000 / 0.1)
//   --seed S                                           (default 1)
// Engine:
//   --epochs N               target epoch count; sets max_batch =
//                            ceil(requests/N) in count-based mode (default 10)
//   --epoch-duration X       time-based epoch window in virtual seconds
//                            (default 0 = count-based)
//   --queue N                bounded queue capacity    (default 65536)
//   --payments none|dual|critical                      (default dual)
//   --threads N              solver OpenMP threads     (default runtime)
//                            N > 0 is an error in builds without OpenMP:
//                            the engine will not silently serialize an
//                            explicit thread request
//   --eps X                  solver accuracy parameter (default 1/6)
//   --sp-kernel auto|heap|bucket  shortest-path queue  (default auto)
//   --shards N               region shards behind the decider (default 1
//                            = plain single engine). N > 1 runs every
//                            admission through the two-phase
//                            reserve/commit protocol (DESIGN.md §13);
//                            stdout stays byte-identical to --shards 1 —
//                            the protocol observes the decider, it never
//                            changes outcomes. Per-shard activity goes to
//                            --telemetry (shard_epoch events) and stderr.
// Leases (DESIGN.md §10):
//   --duration-profile none|fixed|exponential|heavy-tailed|diurnal|
//                      flash-crowd                     (default none =
//                            permanent leases, the historical semantics)
//   --duration-mean X        mean lease duration, virtual s (default 1)
//   --duration-period X      diurnal cycle / flash-crowd window (default 1)
//   --horizon X              after the stream ends, advance the virtual
//                            clock to X and reclaim what expired
//                            (default 0 = no post-run drain)
// Output:
//   --csv                    per-epoch CSV instead of aligned table
//   --quiet                  suppress the per-epoch series
//   --json PATH              deterministic run summary as telemetry JSONL
//                            (meta + hist + summary events, DESIGN.md §11 —
//                            same schema tufp_serve streams; det channel
//                            only, so the artifact cmp's clean across
//                            --threads)
//   --telemetry PATH|-       stream the full per-epoch telemetry
//                            (epoch/hist/summary events). `-` replaces the
//                            table: det events on stdout, wall on stderr
//   --hist-every N           histogram snapshot cadence for --telemetry
//   --trace PATH|-           per-request decision provenance records
//                            (DESIGN.md §14): one JSONL line per terminal
//                            decision, det channel, byte-identical across
//                            --threads/--sp-kernel/--shards. `-` writes to
//                            stdout (implies --quiet semantics for diffs)
//   --flame PATH             collapsed-stack phase-span dump (flamegraph.pl
//                            format) + span summary on stderr; wall-clock,
//                            never byte-stable
//
// Output discipline: stdout carries only deterministic data — identical
// for any --threads value and any machine (the determinism acceptance
// check diffs it). Wall-clock throughput and solve-time stats go to
// stderr.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/request_stream.hpp"
#include "tufp/engine/sharded_engine.hpp"
#include "tufp/obs/telemetry.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/util/json.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

struct Options {
  std::string scenario = "grid";
  int rows = 24;
  int cols = 24;
  int vertices = 400;
  int edges = 1600;
  double capacity = 100.0;
  std::string value_model = "uniform";

  std::int64_t requests = 100000;
  std::string arrivals = "poisson";
  double rate = 10000.0;
  int burst_size = 1000;
  double burst_period = 0.1;
  std::uint64_t seed = 1;

  int epochs = 10;
  double epoch_duration = 0.0;
  std::size_t queue = 1 << 16;
  std::string payments = "dual";
  int threads = 0;
  double eps = 1.0 / 6.0;
  std::string sp_kernel = "auto";
  int shards = 1;

  std::string duration_profile = "none";
  double duration_mean = 1.0;
  double duration_period = 1.0;
  double horizon = 0.0;

  bool csv = false;
  bool quiet = false;
  std::string json_path;
  std::string telemetry;
  int hist_every = 0;
  std::string trace;
  std::string flame;
};

[[noreturn]] void usage() {
  std::cerr << "usage: tufp_engine [--scenario grid|random] [--rows N] "
               "[--cols N]\n"
               "  [--vertices N] [--edges N] [--capacity X]\n"
               "  [--value-model uniform|zipf|proportional]\n"
               "  [--requests N] [--arrivals poisson|burst] [--rate X]\n"
               "  [--burst-size N] [--burst-period X] [--seed S]\n"
               "  [--epochs N] [--epoch-duration X] [--queue N]\n"
               "  [--payments none|dual|critical] [--threads N] [--eps X]\n"
               "  [--sp-kernel auto|heap|bucket] [--shards N]\n"
               "  [--duration-profile none|fixed|exponential|heavy-tailed|"
               "diurnal|flash-crowd]\n"
               "  [--duration-mean X] [--duration-period X] [--horizon X]\n"
               "  [--csv] [--quiet] [--json PATH] [--telemetry PATH|-]\n"
               "  [--hist-every N] [--trace PATH|-] [--flame PATH]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) usage();
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--scenario") opt.scenario = value(i);
    else if (a == "--rows") opt.rows = std::stoi(value(i));
    else if (a == "--cols") opt.cols = std::stoi(value(i));
    else if (a == "--vertices") opt.vertices = std::stoi(value(i));
    else if (a == "--edges") opt.edges = std::stoi(value(i));
    else if (a == "--capacity") opt.capacity = std::stod(value(i));
    else if (a == "--value-model") opt.value_model = value(i);
    else if (a == "--requests") opt.requests = std::stoll(value(i));
    else if (a == "--arrivals") opt.arrivals = value(i);
    else if (a == "--rate") opt.rate = std::stod(value(i));
    else if (a == "--burst-size") opt.burst_size = std::stoi(value(i));
    else if (a == "--burst-period") opt.burst_period = std::stod(value(i));
    else if (a == "--seed") opt.seed = std::stoull(value(i));
    else if (a == "--epochs") opt.epochs = std::stoi(value(i));
    else if (a == "--epoch-duration") opt.epoch_duration = std::stod(value(i));
    else if (a == "--queue") opt.queue = std::stoull(value(i));
    else if (a == "--payments") opt.payments = value(i);
    else if (a == "--threads") opt.threads = std::stoi(value(i));
    else if (a == "--eps") opt.eps = std::stod(value(i));
    else if (a == "--sp-kernel") opt.sp_kernel = value(i);
    else if (a == "--shards") opt.shards = std::stoi(value(i));
    else if (a == "--duration-profile") opt.duration_profile = value(i);
    else if (a == "--duration-mean") opt.duration_mean = std::stod(value(i));
    else if (a == "--duration-period") opt.duration_period = std::stod(value(i));
    else if (a == "--horizon") opt.horizon = std::stod(value(i));
    else if (a == "--csv") opt.csv = true;
    else if (a == "--quiet") opt.quiet = true;
    else if (a == "--json") opt.json_path = value(i);
    else if (a == "--telemetry") opt.telemetry = value(i);
    else if (a == "--hist-every") opt.hist_every = std::stoi(value(i));
    else if (a == "--trace") opt.trace = value(i);
    else if (a == "--flame") opt.flame = value(i);
    else usage();
  }
  if (opt.epochs < 1 || opt.requests < 0 || opt.shards < 1) usage();
  return opt;
}

ValueModel parse_value_model(const std::string& name) {
  if (name == "uniform") return ValueModel::kUniform;
  if (name == "zipf") return ValueModel::kZipf;
  if (name == "proportional") return ValueModel::kProportional;
  usage();
}

PaymentPolicy parse_payments(const std::string& name) {
  if (name == "none") return PaymentPolicy::kNone;
  if (name == "dual") return PaymentPolicy::kDualPrice;
  if (name == "critical") return PaymentPolicy::kCritical;
  usage();
}

DurationProfile parse_duration_profile(const std::string& name) {
  if (name == "none") return DurationProfile::kInfinite;  // CLI alias
  try {
    const DurationProfile p = duration_profile_from_name(name);
    if (p != DurationProfile::kAuto) return p;
  } catch (const std::invalid_argument&) {
  }
  usage();
}

// The run-description event heading every telemetry stream this tool
// writes (schema: DESIGN.md §11; tufp_serve emits its own meta fields).
void emit_meta(obs::TelemetrySink& sink, const Options& opt,
               const Graph& graph) {
  JsonObject obj;
  obj.field("event", "meta")
      .field("chan", "det")
      .field("tool", "tufp_engine")
      .field("scenario", opt.scenario)
      .field("duration_profile", opt.duration_profile)
      .field("vertices", graph.num_vertices())
      .field("edges", graph.num_edges())
      .field("requests", opt.requests)
      .field("arrivals", opt.arrivals)
      .field("seed", static_cast<std::int64_t>(opt.seed));
  sink.emit(obs::Channel::kDeterministic, obj.str());
}

// Deterministic run summary routed through the telemetry serializer: one
// JSONL stream of meta + hist + summary events — the same schema and the
// same %.17g formatter tufp_serve uses, det channel only, so the CI
// artifact cmp's clean across --threads values.
void write_json(const std::string& path, const Options& opt,
                const Graph& graph, const EngineMetrics& metrics,
                std::int64_t active_leases, double occupancy) {
  std::ofstream os(path);
  if (!os.good()) {
    throw std::runtime_error("cannot open --json path: " + path);
  }
  obs::StreamSink sink(&os, nullptr);
  emit_meta(sink, opt, graph);
  obs::EpochTelemetry telemetry(&sink, {/*histogram_every=*/0,
                                        /*wall_events=*/false});
  telemetry.finish(metrics, active_leases, occupancy,
                   /*wall_seconds=*/0.0, /*requests_per_second=*/0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  cli::require_threads_supported("tufp_engine", opt.threads);
  try {
    if (opt.scenario != "grid" && opt.scenario != "random") usage();
    const ValueModel value_model = parse_value_model(opt.value_model);
    StreamingScenario scenario =
        opt.scenario == "grid"
            ? make_streaming_grid_scenario(opt.rows, opt.cols, opt.capacity,
                                           value_model)
            : make_streaming_random_scenario(opt.vertices, opt.edges,
                                             opt.capacity, value_model,
                                             opt.seed);

    DurationConfig durations;
    durations.profile = parse_duration_profile(opt.duration_profile);
    durations.mean = opt.duration_mean;
    durations.period = opt.duration_period;
    const bool temporal = durations.profile != DurationProfile::kInfinite;

    // The stream seed is derived, not opt.seed itself: the random scenario
    // consumes Rng(opt.seed) for the topology, and reusing the identical
    // sequence for arrivals would correlate workload with topology.
    const std::uint64_t stream_seed = SplitMix64(opt.seed).next();
    std::unique_ptr<RequestStream> stream;
    if (opt.arrivals == "poisson") {
      stream = std::make_unique<PoissonStream>(
          scenario.graph, scenario.request_config, opt.rate, opt.requests,
          stream_seed, durations);
    } else if (opt.arrivals == "burst") {
      stream = std::make_unique<BurstStream>(
          scenario.graph, scenario.request_config, opt.burst_period,
          opt.burst_size, opt.requests, stream_seed, durations);
    } else {
      usage();
    }

    EpochEngineConfig config;
    config.max_batch = static_cast<int>(
        (opt.requests + opt.epochs - 1) / std::max<std::int64_t>(1, opt.epochs));
    if (config.max_batch < 1) config.max_batch = 1;
    config.epoch_duration = opt.epoch_duration;
    config.queue_capacity = opt.queue;
    config.payments = parse_payments(opt.payments);
    config.solver.epsilon = opt.eps;
    config.solver.num_threads = opt.threads;
    config.solver.sp_kernel = cli::parse_sp_kernel("tufp_engine", opt.sp_kernel);

    // --shards N>1 interposes the two-phase region-shard protocol behind
    // the same decider; driving sharded->engine() keeps every stdout byte
    // identical to the single-engine run (the CI smoke cmp's the two).
    std::unique_ptr<ShardedEpochEngine> sharded;
    std::unique_ptr<EpochEngine> single;
    if (opt.shards > 1) {
      sharded = std::make_unique<ShardedEpochEngine>(scenario.graph, config,
                                                     opt.shards);
    } else {
      single = std::make_unique<EpochEngine>(scenario.graph, config);
    }
    EpochEngine& engine = sharded ? sharded->engine() : *single;

    // Live telemetry (DESIGN.md §11): per-epoch JSONL through the same
    // serializer tufp_serve streams. `-` splits channels across
    // stdout/stderr and replaces the table (two det formats interleaved
    // on one stream would be byte-comparable to nothing).
    std::ofstream telemetry_file;
    std::unique_ptr<obs::StreamSink> telemetry_sink;
    std::unique_ptr<obs::EpochTelemetry> telemetry;
    const bool telemetry_to_stdout = opt.telemetry == "-";
    if (!opt.telemetry.empty()) {
      if (telemetry_to_stdout) {
        telemetry_sink =
            std::make_unique<obs::StreamSink>(&std::cout, &std::cerr);
      } else {
        telemetry_file.open(opt.telemetry);
        if (!telemetry_file.good()) {
          throw std::runtime_error("cannot open --telemetry path: " +
                                   opt.telemetry);
        }
        telemetry_sink = std::make_unique<obs::StreamSink>(&telemetry_file,
                                                           &telemetry_file);
      }
      emit_meta(*telemetry_sink, opt, *scenario.graph);
      telemetry = std::make_unique<obs::EpochTelemetry>(
          telemetry_sink.get(),
          obs::TelemetryConfig{opt.hist_every, /*wall_events=*/true});
    }

    // Decision provenance stream (DESIGN.md §14): one det JSONL line per
    // terminal decision, diffable byte-for-byte across --threads,
    // --sp-kernel and --shards (tufp_trace diff pins it; so does CI).
    std::ofstream trace_file;
    std::unique_ptr<obs::StreamSink> trace_sink;
    std::unique_ptr<obs::DecisionTrace> trace;
    if (!opt.trace.empty()) {
      std::ostream* trace_os = &std::cout;
      if (opt.trace != "-") {
        trace_file.open(opt.trace);
        if (!trace_file.good()) {
          throw std::runtime_error("cannot open --trace path: " + opt.trace);
        }
        trace_os = &trace_file;
      }
      trace_sink = std::make_unique<obs::StreamSink>(trace_os, nullptr);
      trace = std::make_unique<obs::DecisionTrace>(trace_sink.get());
      engine.set_decision_trace(trace.get());
    }

    // Phase-span profiler: wall-channel only, installed on this driver
    // thread (worker threads see a null TLS and skip every span site).
    obs::SpanProfiler profiler;
    if (!opt.flame.empty()) obs::install_span_profiler(&profiler);

    // The lease columns appear only under a finite duration profile, so
    // the default (permanent-lease) table stays byte-identical to the
    // pre-temporal engine — the committed golden traces pin this.
    std::vector<std::string> columns = {
        "epoch",   "batch",        "admitted",  "offered_value",
        "admitted_value", "revenue", "dual_ub", "active_edges",
        "saturated", "B",          "iterations"};
    if (temporal) {
      columns.insert(columns.end(), {"expired", "leases", "occupancy"});
    }
    Table series(columns);
    series.set_precision(2);
    const EngineSummary summary =
        engine.run(*stream, [&](const AdmissionReport& r) {
      if (telemetry) {
        telemetry->on_epoch(r, engine.metrics());
        if (sharded && !sharded->epoch_reports().empty()) {
          const ShardEpochReport& sr = sharded->epoch_reports().back();
          for (std::size_t s = 0; s < sr.per_shard.size(); ++s) {
            const shard::ShardCounters& c = sr.per_shard[s];
            telemetry->on_shard_epoch(sr.epoch, static_cast<int>(s),
                                      c.reservations, c.conflicts, c.aborts,
                                      c.commits, c.reclaims);
          }
        }
      }
      auto row = series.row();
      row.cell(r.epoch)
          .cell(r.batch_size)
          .cell(r.admitted)
          .cell(r.offered_value)
          .cell(r.admitted_value)
          .cell(r.revenue)
          .cell(r.dual_upper_bound)
          .cell(r.active_edges)
          .cell(r.saturated_edges)
          .cell(r.min_residual)
          .cell(r.solver_iterations);
      if (temporal) {
        row.cell(r.expired_leases)
            .cell(static_cast<long long>(r.active_leases))
            .cell(r.occupancy);
      }
        });

    // Deterministic channel: epoch series + load summary.
    if (!opt.quiet && !telemetry_to_stdout) {
      if (opt.csv) {
        series.write_csv(std::cout);
      } else {
        series.print(std::cout);
      }
      std::cout << '\n';
    }

    // Post-run drain: advance the virtual clock past the last arrival and
    // reclaim what expired by then (deterministic — it reads only lease
    // state). Makes the steady state inspectable after a finite stream.
    if (opt.horizon > 0.0) {
      const int reclaimed = engine.reclaim_expired(opt.horizon);
      const std::int64_t active =
          engine.lease_ledger() != nullptr
              ? engine.lease_ledger()->active_count()
              : 0;
      if (telemetry) {
        JsonObject obj;
        obj.field("event", "drain")
            .field("chan", "det")
            .field("t", opt.horizon)
            .field("reclaimed", reclaimed)
            .field("active_leases", active)
            .field("occupancy", engine.metrics().occupancy());
        telemetry_sink->emit(obs::Channel::kDeterministic, obj.str());
      }
      if (!telemetry_to_stdout) {
        std::cout << "horizon=" << Table::format_double(opt.horizon, 2)
                  << " reclaimed=" << reclaimed << " active_leases=" << active
                  << "\n";
      }
    }

    if (telemetry) {
      const auto* ledger = engine.lease_ledger();
      telemetry->finish(engine.metrics(),
                        ledger != nullptr ? ledger->active_count() : 0,
                        engine.metrics().occupancy(), summary.wall_seconds,
                        summary.requests_per_second);
    }
    if (!telemetry_to_stdout) {
      std::cout << "=== AdmissionReport summary ===\n"
                << engine.metrics().summary(/*include_wall_clock=*/false);
    }

    if (!opt.json_path.empty()) {
      const auto* ledger = engine.lease_ledger();
      write_json(opt.json_path, opt, *scenario.graph, engine.metrics(),
                 ledger != nullptr ? ledger->active_count() : 0,
                 engine.metrics().occupancy());
      std::cerr << "wrote " << opt.json_path << "\n";
    }

    // Shard protocol audit + totals. Deterministic, but kept on stderr:
    // stdout must stay byte-identical across --shards values.
    if (sharded) {
      const std::vector<std::string> violations = sharded->verify();
      for (const std::string& v : violations) {
        std::cerr << "tufp_engine: shard audit: " << v << "\n";
      }
      if (!violations.empty()) return 1;
      const shard::ShardCounters t = sharded->totals();
      std::cerr << "shards: n=" << sharded->num_shards()
                << " winners=" << sharded->winners()
                << " cross_shard=" << sharded->cross_shard_winners()
                << " reservations=" << t.reservations
                << " conflicts=" << t.conflicts << " aborts=" << t.aborts
                << " commits=" << t.commits << " reclaims=" << t.reclaims
                << "\n";
    }

    if (!opt.flame.empty()) {
      obs::install_span_profiler(nullptr);
      std::ofstream flame(opt.flame);
      if (!flame.good()) {
        throw std::runtime_error("cannot open --flame path: " + opt.flame);
      }
      flame << profiler.collapsed_stacks();
      std::cerr << "spans: " << profiler.to_json() << "\n"
                << "wrote " << opt.flame << "\n";
    }

    // Wall-clock channel (machine-dependent; kept off stdout so the
    // deterministic output diffs clean across thread counts).
    std::cerr << "wall: requests_per_sec="
              << Table::format_double(summary.requests_per_second, 1)
              << " wall_seconds="
              << Table::format_double(summary.wall_seconds, 3)
              << " solve_p99="
              << Table::format_double(
                     engine.metrics().solve_seconds().percentile(0.99), 4)
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tufp_engine: " << e.what() << "\n";
    return 1;
  }
}
