// Small argument-parsing helpers shared by the CLI tools. Header-only on
// purpose: tools/*.cpp each build into their own binary, so shared logic
// must not live in a tool translation unit.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/util/parallel.hpp"

namespace tufp::cli {

// "a,b,,c" -> {"a", "b", "c"} (empty tokens skipped).
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// The shared --sp-kernel vocabulary. Every tool that exposes the flag
// parses it here so the names — and the rejection text — cannot drift
// apart between binaries. Unknown names are a usage error: exit 2 with
// one canonical message.
inline SpKernel parse_sp_kernel(const std::string& tool,
                                const std::string& name) {
  if (name == "auto") return SpKernel::kAuto;
  if (name == "heap") return SpKernel::kHeap;
  if (name == "bucket") return SpKernel::kBucket;
  std::cerr << tool << ": unknown --sp-kernel '" << name
            << "' (expected auto|heap|bucket)\n";
  std::exit(2);
}

// The shared --threads contract: an explicit positive thread count in a
// build without OpenMP is refused (deterministic output would be
// identical either way, but wall-clock numbers would not mean what the
// caller asked for). Identical message and exit code in every tool.
inline void require_threads_supported(const std::string& tool, int threads) {
  if (threads > 0 && !openmp_available()) {
    std::cerr << tool << ": --threads " << threads
              << " requires an OpenMP build (rebuild with an OpenMP-capable "
                 "toolchain, or drop --threads)\n";
    std::exit(2);
  }
}

}  // namespace tufp::cli
