// Small argument-parsing helpers shared by the CLI tools. Header-only on
// purpose: tools/*.cpp each build into their own binary, so shared logic
// must not live in a tool translation unit.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace tufp::cli {

// "a,b,,c" -> {"a", "b", "c"} (empty tokens skipped).
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace tufp::cli
