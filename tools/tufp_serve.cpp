// tufp_serve — resident admission daemon over the epoch engine.
//
// Long-lived counterpart of the batch tufp_engine CLI: admission requests
// arrive as newline-delimited commands on stdin (pipe), on a Unix-domain
// socket, or synthesized from a sim world family; they feed the bounded
// request queue; epochs clear on an occupancy trigger (queue reaches
// --max-batch) or a virtual-clock trigger (--epoch-duration windows); and
// every epoch streams JSONL telemetry (obs/telemetry.hpp, DESIGN.md §11).
// With --sanity every-N the PR-5 conservation oracles run *inside the
// serving loop* (obs/sanity.hpp, the mod_virgule sanity_check idiom): a
// violation aborts the daemon with a replayable session dump.
//
// Usage: tufp_serve [options]
//
// Input (pick one):
//   (default)                newline-delimited commands on stdin
//   --listen PATH            Unix socket; connections served serially,
//                            each speaking the protocol below; a
//                            `shutdown` line ends the daemon
//   --workload FAMILY        synthesize the session from a sim world
//                            (staircase|single-sink|grid|random-sparse|
//                            layered|ring) — requests, arrivals and lease
//                            durations all come from the world
//   --world-seed S           sim world seed            (default 1)
// Topology (stdin/socket modes; --workload brings its own graph):
//   --scenario grid|random   (default grid), --rows/--cols (default 6x6),
//   --vertices/--edges (default 400/1600), --capacity X (default 100),
//   --seed S (random topology seed, default 1)
// Engine & epoch triggers:
//   --max-batch N            occupancy trigger: clear as soon as N
//                            requests are queued (default 64)
//   --epoch-duration X       virtual-clock trigger: clear at each window
//                            boundary the clock crosses (default 0 = off)
//   --queue N                bounded queue capacity (default 65536)
//   --payments none|dual|critical                     (default dual)
//   --threads N / --eps X / --sp-kernel auto|heap|bucket
//   --shards N               region shards behind the decider (default 1).
//                            N > 1 routes every admission through the
//                            two-phase reserve/commit protocol
//                            (DESIGN.md §13); the deterministic telemetry
//                            stream stays byte-identical to --shards 1,
//                            and --sanity audits the shard books against
//                            the global stores on every sweep
//   --horizon X              advance the clock to X at shutdown and
//                            reclaim what expired (default 0)
// Framing:
//   --max-line BYTES         longest accepted request line (default
//                            65536). An oversized line, or a partial line
//                            at EOF / connection close, is shed into the
//                            invalid_rejected counter with an `invalid`
//                            det event — never parsed, never fatal
// Telemetry:
//   --telemetry PATH|-       JSONL events; `-` (default) sends the
//                            deterministic channel to stdout and the
//                            wall-clock channel to stderr; a file path
//                            receives both channels
//   --det-only               drop wall-clock events entirely
//   --hist-every N           admission-delay histogram snapshot cadence
//                            in epochs (default 0 = final snapshot only)
//   --trace PATH             per-request decision provenance records
//                            (DESIGN.md §14) as JSONL; additionally keeps
//                            the last 256 records in a ring — a sanity
//                            violation dumps the ring next to the repro
//                            (serve-repro-<check>-trace.jsonl), so the
//                            decisions leading into the violation ship
//                            with the replayable session
// In-service oracles:
//   --sanity every-N         run the sanity catalogue after every Nth
//                            epoch (and at shutdown); violations abort
//                            with exit 3 after writing a repro dump
//   --repro-dir DIR          where violation dumps go (default ".")
//   --inject leak-expired-capacity
//                            fault injection: the reclaim path leaks 5%
//                            of every expired lease's capacity — proves
//                            the in-service oracles bite (test only)
//
// Protocol (one command per line; '#' starts a comment):
//   req <src> <dst> <demand> <value> [arrival] [duration]
//         offer a bid; arrival defaults to the current virtual clock
//         (clamped up to it — arrivals are nondecreasing), duration
//         defaults to inf (permanent lease)
//   tick <T>      advance the virtual clock to T (may close windows)
//   flush         clear everything queued now, regardless of triggers
//   sanity        run the in-service oracles now
//   drain <T>     advance the clock to T and reclaim expired leases
//   quit          flush, drain --horizon, emit final summary, exit
//   shutdown      like quit; in socket mode also stops accepting
//
// Output discipline: the deterministic telemetry channel is byte-
// identical across --threads and --sp-kernel for the same session (the
// golden serve tests pin this); wall-clock events are machine-dependent
// and never mixed into it.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli_util.hpp"
#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/request_stream.hpp"
#include "tufp/engine/sharded_engine.hpp"
#include "tufp/obs/sanity.hpp"
#include "tufp/obs/telemetry.hpp"
#include "tufp/obs/trace.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/json.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

using namespace tufp;

struct Options {
  std::string listen_path;
  std::string workload;
  std::uint64_t world_seed = 1;

  std::string scenario = "grid";
  int rows = 6;
  int cols = 6;
  int vertices = 400;
  int edges = 1600;
  double capacity = 100.0;
  std::uint64_t seed = 1;

  int max_batch = 64;
  double epoch_duration = 0.0;
  std::size_t queue = 1 << 16;
  std::string payments = "dual";
  int threads = 0;
  double eps = 1.0 / 6.0;
  std::string sp_kernel = "auto";
  int shards = 1;
  double horizon = 0.0;
  std::size_t max_line = 65536;

  std::string telemetry = "-";
  bool det_only = false;
  int hist_every = 0;
  std::string trace;

  int sanity_every = 0;
  std::string repro_dir = ".";
  std::string inject;

  std::vector<std::string> argv;  // everything after argv[0], for dumps
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: tufp_serve [--listen PATH | --workload FAMILY]\n"
         "  [--world-seed S] [--scenario grid|random] [--rows N] [--cols N]\n"
         "  [--vertices N] [--edges N] [--capacity X] [--seed S]\n"
         "  [--max-batch N] [--epoch-duration X] [--queue N]\n"
         "  [--payments none|dual|critical] [--threads N] [--eps X]\n"
         "  [--sp-kernel auto|heap|bucket] [--shards N] [--horizon X]\n"
         "  [--max-line BYTES]\n"
         "  [--telemetry PATH|-] [--det-only] [--hist-every N]\n"
         "  [--trace PATH] [--sanity every-N] [--repro-dir DIR]\n"
         "  [--inject leak-expired-capacity]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  opt.argv.assign(argv + 1, argv + argc);
  std::vector<std::string>& args = opt.argv;
  const auto value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) usage();
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--listen") opt.listen_path = value(i);
    else if (a == "--workload") opt.workload = value(i);
    else if (a == "--world-seed") opt.world_seed = std::stoull(value(i));
    else if (a == "--scenario") opt.scenario = value(i);
    else if (a == "--rows") opt.rows = std::stoi(value(i));
    else if (a == "--cols") opt.cols = std::stoi(value(i));
    else if (a == "--vertices") opt.vertices = std::stoi(value(i));
    else if (a == "--edges") opt.edges = std::stoi(value(i));
    else if (a == "--capacity") opt.capacity = std::stod(value(i));
    else if (a == "--seed") opt.seed = std::stoull(value(i));
    else if (a == "--max-batch") opt.max_batch = std::stoi(value(i));
    else if (a == "--epoch-duration") opt.epoch_duration = std::stod(value(i));
    else if (a == "--queue") opt.queue = std::stoull(value(i));
    else if (a == "--payments") opt.payments = value(i);
    else if (a == "--threads") opt.threads = std::stoi(value(i));
    else if (a == "--eps") opt.eps = std::stod(value(i));
    else if (a == "--sp-kernel") opt.sp_kernel = value(i);
    else if (a == "--shards") opt.shards = std::stoi(value(i));
    else if (a == "--horizon") opt.horizon = std::stod(value(i));
    else if (a == "--max-line") opt.max_line = std::stoull(value(i));
    else if (a == "--telemetry") opt.telemetry = value(i);
    else if (a == "--det-only") opt.det_only = true;
    else if (a == "--hist-every") opt.hist_every = std::stoi(value(i));
    else if (a == "--trace") opt.trace = value(i);
    else if (a == "--sanity") {
      const std::string v = value(i);
      if (v.rfind("every-", 0) != 0) usage();
      opt.sanity_every = std::stoi(v.substr(6));
      if (opt.sanity_every < 1) usage();
    } else if (a == "--repro-dir") opt.repro_dir = value(i);
    else if (a == "--inject") opt.inject = value(i);
    else usage();
  }
  if (opt.max_batch < 1 || opt.epoch_duration < 0.0 || opt.shards < 1 ||
      opt.max_line < 1) {
    usage();
  }
  if (!opt.inject.empty() && opt.inject != "leak-expired-capacity") usage();
  if (!opt.listen_path.empty() && !opt.workload.empty()) usage();
  return opt;
}

PaymentPolicy parse_payments(const std::string& name) {
  if (name == "none") return PaymentPolicy::kNone;
  if (name == "dual") return PaymentPolicy::kDualPrice;
  if (name == "critical") return PaymentPolicy::kCritical;
  usage();
}

// A line source: stdin, one socket connection after another, or the
// synthesized command list of a --workload session.
class LineSource {
 public:
  virtual ~LineSource() = default;
  // False at end of input. Lines arrive without the trailing newline.
  virtual bool next(std::string* line) = 0;
  // Whether the line next() just returned actually ended with a newline
  // on the wire. False means the peer stopped mid-line (EOF or connection
  // close before the terminator): the fragment is a framing error and
  // must be shed, never parsed as a command — a truncated `req` would
  // otherwise admit a bid the client never finished sending.
  virtual bool last_line_terminated() const { return true; }
};

class IstreamSource final : public LineSource {
 public:
  explicit IstreamSource(std::istream& is) : is_(is) {}
  bool next(std::string* line) override {
    if (!std::getline(is_, *line)) return false;
    // getline raises eofbit only when the stream ends *before* the
    // delimiter — exactly the unterminated-final-line case.
    terminated_ = !is_.eof();
    return true;
  }
  bool last_line_terminated() const override { return terminated_; }

 private:
  std::istream& is_;
  bool terminated_ = true;
};

// Materialized command list (the --workload mode): a sim world's
// requests, arrivals and durations rendered as `req` lines, so a
// workload session and a piped session run the exact same code path —
// and a repro dump of either replays through stdin.
class ScriptSource final : public LineSource {
 public:
  explicit ScriptSource(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}
  bool next(std::string* line) override {
    if (index_ >= lines_.size()) return false;
    *line = lines_[index_++];
    return true;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t index_ = 0;
};

// Unix-domain socket listener. Connections are served one at a time —
// the epoch loop is single-threaded by design (determinism), so serial
// accept is the honest concurrency model; a `shutdown` line ends the
// daemon. Each connection's lines feed the same session state.
class SocketSource final : public LineSource {
 public:
  explicit SocketSource(const std::string& path) : path_(path) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("--listen path too long");
    }
    std::copy(path.begin(), path.end(), addr.sun_path);
    ::unlink(path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 4) != 0) {
      throw std::runtime_error("cannot listen on " + path);
    }
  }

  ~SocketSource() override {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  bool next(std::string* line) override {
    while (true) {
      if (conn_fd_ < 0) {
        conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        if (conn_fd_ < 0) return false;
        buffer_.clear();
      }
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        terminated_ = true;
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(conn_fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        // Connection closed: surface a trailing unterminated fragment
        // (flagged, so the session sheds it instead of parsing a command
        // the client never finished), then wait for the next client.
        ::close(conn_fd_);
        conn_fd_ = -1;
        if (!buffer_.empty()) {
          *line = std::move(buffer_);
          buffer_.clear();
          terminated_ = false;
          return true;
        }
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool last_line_terminated() const override { return terminated_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::string buffer_;
  bool terminated_ = true;
};

std::string render_req_line(const Request& req, double arrival,
                            double duration) {
  std::ostringstream os;
  os.precision(17);
  os << "req " << req.source << ' ' << req.target << ' ' << req.demand << ' '
     << req.value << ' ' << arrival;
  if (duration < kInf) os << ' ' << duration;
  return os.str();
}

// The serving loop: session state + telemetry + in-service oracles.
class ServeSession {
 public:
  ServeSession(const Options& opt, std::shared_ptr<const Graph> graph,
               obs::TelemetrySink* sink, obs::DecisionTrace* trace)
      : opt_(opt), queue_(opt.queue), sink_(sink), trace_(trace),
        telemetry_(sink, {opt.hist_every, !opt.det_only}) {
    EpochEngineConfig config;
    config.max_batch = opt.max_batch;
    config.queue_capacity = opt.queue;
    config.payments = parse_payments(opt.payments);
    config.solver.epsilon = opt.eps;
    config.solver.num_threads = opt.threads;
    config.solver.sp_kernel = cli::parse_sp_kernel("tufp_serve", opt.sp_kernel);
    if (opt.inject == "leak-expired-capacity") {
      config.inject_reclaim_leak = 0.05;
    }
    // --shards N>1 interposes the two-phase region-shard protocol
    // (DESIGN.md §13) behind the same decider; the session keeps driving
    // the inner engine, so the det telemetry stream stays byte-identical
    // to the single-engine daemon.
    if (opt.shards > 1) {
      sharded_ = std::make_unique<ShardedEpochEngine>(std::move(graph),
                                                      config, opt.shards);
      engine_ = &sharded_->engine();
    } else {
      single_ = std::make_unique<EpochEngine>(std::move(graph), config);
      engine_ = single_.get();
    }
    if (trace_ != nullptr) engine_->set_decision_trace(trace_);
    if (opt.epoch_duration > 0.0) window_end_ = opt.epoch_duration;
  }

  // Returns the process exit code: 0 clean, 3 on a sanity violation.
  int drive(LineSource& source) {
    emit_meta();
    std::string line;
    while (source.next(&line)) {
      transcript_.push_back(line);
      // Framing errors are shed before command parsing: an unterminated
      // fragment (EOF / connection close mid-line) or an oversized line
      // is counted into invalid_rejected and never interpreted — a
      // truncated `req` must not admit a bid the client never finished.
      if (!source.last_line_terminated()) {
        shed_invalid("unterminated", line);
        continue;
      }
      if (line.size() > opt_.max_line) {
        shed_invalid("oversized", line);
        continue;
      }
      if (!handle(line)) break;  // quit/shutdown or abort
      if (violated_) return 3;
    }
    if (violated_) return 3;
    finish_session();
    return violated_ ? 3 : 0;
  }

 private:
  static std::vector<std::string> tokenize(const std::string& line) {
    std::istringstream is(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (is >> tok) {
      if (tok[0] == '#') break;
      tokens.push_back(tok);
    }
    return tokens;
  }

  // False ends the session (quit/shutdown).
  bool handle(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return true;
    const std::string& cmd = tokens[0];
    try {
      if (cmd == "req") return handle_req(line, tokens);
      if (cmd == "tick" && tokens.size() == 2) {
        advance_clock(std::stod(tokens[1]));
        return true;
      }
      if (cmd == "flush" && tokens.size() == 1) {
        clear_all_queued(clock_);
        return true;
      }
      if (cmd == "sanity" && tokens.size() == 1) {
        run_sanity();
        return !violated_;
      }
      if (cmd == "drain" && tokens.size() == 2) {
        drain(std::stod(tokens[1]));
        return true;
      }
      if ((cmd == "quit" || cmd == "shutdown") && tokens.size() == 1) {
        return false;
      }
    } catch (const std::exception&) {
      // fall through to the protocol shed
    }
    shed_invalid("malformed", line);
    return true;
  }

  bool handle_req(const std::string& line,
                  const std::vector<std::string>& tokens) {
    if (tokens.size() < 5 || tokens.size() > 7) {
      std::cerr << "tufp_serve: malformed req (want: req <src> "
                   "<dst> <demand> <value> [arrival] [duration])\n";
      shed_invalid("malformed", line);
      return true;
    }
    TimedRequest timed;
    timed.request.source = std::stoi(tokens[1]);
    timed.request.target = std::stoi(tokens[2]);
    timed.request.demand = std::stod(tokens[3]);
    timed.request.value = std::stod(tokens[4]);
    const double arrival =
        tokens.size() >= 6 ? std::stod(tokens[5]) : clock_;
    timed.duration = tokens.size() >= 7 ? std::stod(tokens[6]) : kInf;
    timed.sequence = next_sequence_++;
    // Arrivals are nondecreasing on an open-loop wire: a stale timestamp
    // means "now". Advance the clock first — the request may belong to
    // the next virtual-clock window, which must close without it.
    advance_clock(std::max(arrival, clock_));
    timed.arrival_time = clock_;
    const bool queued = queue_.push(timed);
    engine_->record_ingest(1, queued ? 0 : 1);
    if (queued) maybe_clear_on_occupancy();
    return !violated_;
  }

  // Wire-level shed: the line is counted as seen and folded into the
  // same invalid_rejected counter the per-epoch bid validation uses,
  // with a deterministic `invalid` telemetry event — a framing error is
  // an observable fact about the session, not a silent stderr warning.
  void shed_invalid(std::string_view reason, const std::string& line) {
    engine_->record_ingest(1, 0);
    engine_->record_invalid(1);
    telemetry_.on_invalid(engine_->epochs_run(), reason,
                          engine_->metrics().counters().invalid_rejected);
    std::cerr << "tufp_serve: shedding " << reason << " line (" << line.size()
              << " bytes)\n";
  }

  // Virtual-clock trigger: close every window boundary in (clock_, t].
  void advance_clock(double t) {
    if (t <= clock_) return;
    if (opt_.epoch_duration > 0.0) {
      while (window_end_ <= t) {
        if (queue_.empty()) {
          // Idle window: jump to the boundary just before t.
          const double d = opt_.epoch_duration;
          window_end_ = (std::floor(t / d) + 1.0) * d;
          break;
        }
        clear_all_queued(window_end_);
        window_end_ += opt_.epoch_duration;
        if (violated_) return;
      }
    }
    clock_ = std::max(clock_, t);
  }

  // Occupancy trigger: the queue reached one full batch.
  void maybe_clear_on_occupancy() {
    while (!violated_ &&
           queue_.size() >= static_cast<std::size_t>(opt_.max_batch)) {
      clear_batch(clock_);
    }
  }

  void clear_all_queued(double close_time) {
    while (!violated_ && !queue_.empty()) clear_batch(close_time);
  }

  void clear_batch(double close_time) {
    std::vector<TimedRequest> batch;
    batch.reserve(static_cast<std::size_t>(opt_.max_batch));
    TimedRequest item;
    while (static_cast<int>(batch.size()) < opt_.max_batch &&
           queue_.pop(&item)) {
      batch.push_back(std::move(item));
    }
    if (batch.empty()) return;
    AdmissionReport report = engine_->run_epoch(batch, close_time);
    report.queue_depth = static_cast<std::int64_t>(queue_.size());
    telemetry_.on_epoch(report, engine_->metrics());
    if (sharded_ && !sharded_->epoch_reports().empty()) {
      const ShardEpochReport& sr = sharded_->epoch_reports().back();
      for (std::size_t s = 0; s < sr.per_shard.size(); ++s) {
        const shard::ShardCounters& c = sr.per_shard[s];
        telemetry_.on_shard_epoch(sr.epoch, static_cast<int>(s),
                                  c.reservations, c.conflicts, c.aborts,
                                  c.commits, c.reclaims);
      }
    }
    clock_ = std::max(clock_, close_time);
    if (opt_.sanity_every > 0 &&
        engine_->epochs_run() % opt_.sanity_every == 0) {
      run_sanity();
    }
  }

  void drain(double t) {
    advance_clock(t);
    if (violated_) return;
    const int reclaimed = engine_->reclaim_expired(clock_);
    const auto* ledger = engine_->lease_ledger();
    JsonObject obj;
    obj.field("event", "drain")
        .field("chan", "det")
        .field("t", clock_)
        .field("reclaimed", reclaimed)
        .field("active_leases",
               ledger != nullptr ? ledger->active_count() : 0)
        .field("occupancy", engine_->metrics().occupancy());
    sink_->emit(obs::Channel::kDeterministic, obj.str());
    // The reclaim path just ran: exactly when the oracles are worth
    // their cost (a leak can only appear on an expiry).
    if (opt_.sanity_every > 0) run_sanity();
  }

  void run_sanity() {
    std::vector<obs::SanityViolation> violations =
        obs::run_sanity_checks(*engine_);
    int checks = obs::sanity_check_count(*engine_);
    // Sharded service: the per-shard residual stores and lease books are
    // audited against the global state on the same sweep (exact ==, the
    // shard-conserve invariant from the fuzzer, in service).
    if (sharded_) {
      ++checks;
      for (std::string& detail : sharded_->verify()) {
        violations.push_back({"shard-conserve", std::move(detail)});
      }
    }
    telemetry_.on_sanity(engine_->epochs_run(), checks,
                         static_cast<int>(violations.size()));
    if (violations.empty()) return;
    violated_ = true;
    for (const obs::SanityViolation& v : violations) {
      JsonObject obj;
      obj.field("event", "sanity_violation")
          .field("chan", "det")
          .field("epoch", engine_->epochs_run())
          .field("check", v.check)
          .field("detail", v.detail);
      sink_->emit(obs::Channel::kDeterministic, obj.str());
      std::cerr << "tufp_serve: SANITY VIOLATION [" << v.check << "] "
                << v.detail << "\n";
    }
    write_repro(violations);
  }

  // The replayable dump: every protocol line consumed so far (workload
  // sessions are materialized as req lines up front, so they dump the
  // same way), headed by the exact argv. Piping the dump back through
  // tufp_serve with the same flags re-fires the violation.
  void write_repro(const std::vector<obs::SanityViolation>& violations) {
    const std::string path =
        opt_.repro_dir + "/serve-repro-" + violations.front().check + ".txt";
    std::ofstream os(path);
    if (!os.good()) {
      std::cerr << "tufp_serve: cannot write repro dump: " << path << "\n";
      return;
    }
    os << "# tufp_serve sanity-violation repro\n";
    for (const obs::SanityViolation& v : violations) {
      os << "# violation: " << v.check << ": " << v.detail << "\n";
    }
    os << "# args:";
    for (const std::string& a : opt_.argv) os << ' ' << a;
    os << "\n# replay: tufp_serve <args above> < this file\n";
    for (const std::string& line : transcript_) os << line << "\n";
    os << "quit\n";
    std::cerr << "tufp_serve: wrote repro dump: " << path << "\n";
    // The decision ring: the last K terminal decisions leading into the
    // violation, as rendered det lines — the provenance half of the repro.
    if (trace_ != nullptr) {
      const std::string ring_path = opt_.repro_dir + "/serve-repro-" +
                                    violations.front().check +
                                    "-trace.jsonl";
      std::ofstream ring(ring_path);
      if (ring.good()) {
        for (const std::string& rec : trace_->ring_snapshot()) {
          ring << rec << "\n";
        }
        std::cerr << "tufp_serve: wrote decision ring: " << ring_path << "\n";
      } else {
        std::cerr << "tufp_serve: cannot write decision ring: " << ring_path
                  << "\n";
      }
    }
  }

  void finish_session() {
    clear_all_queued(clock_);
    if (violated_) return;
    if (opt_.horizon > 0.0) drain(opt_.horizon);
    if (violated_) return;
    if (opt_.sanity_every > 0) {
      run_sanity();
      if (violated_) return;
    }
    const auto* ledger = engine_->lease_ledger();
    const double wall = timer_.elapsed_seconds();
    const auto seen = engine_->metrics().counters().requests_seen;
    telemetry_.finish(engine_->metrics(),
                      ledger != nullptr ? ledger->active_count() : 0,
                      engine_->metrics().occupancy(), wall,
                      wall > 0.0 ? static_cast<double>(seen) / wall : 0.0);
  }

  void emit_meta() {
    const std::string source =
        !opt_.workload.empty() ? "workload:" + opt_.workload
        : !opt_.listen_path.empty() ? "socket"
                                    : "stdin";
    JsonObject obj;
    obj.field("event", "meta")
        .field("chan", "det")
        .field("tool", "tufp_serve")
        .field("source", source)
        .field("vertices", engine_->base_graph().num_vertices())
        .field("edges", engine_->base_graph().num_edges())
        .field("max_batch", opt_.max_batch)
        .field("epoch_duration", opt_.epoch_duration)
        .field("sanity_every", opt_.sanity_every);
    sink_->emit(obs::Channel::kDeterministic, obj.str());
  }

  const Options& opt_;
  std::unique_ptr<ShardedEpochEngine> sharded_;  // only when --shards > 1
  std::unique_ptr<EpochEngine> single_;          // only when --shards == 1
  EpochEngine* engine_ = nullptr;  // the decider, whichever owns it
  BoundedRequestQueue queue_;
  obs::TelemetrySink* sink_;
  obs::DecisionTrace* trace_;  // null without --trace
  obs::EpochTelemetry telemetry_;
  std::vector<std::string> transcript_;
  WallTimer timer_;
  double clock_ = 0.0;
  double window_end_ = kInf;  // next virtual-clock window boundary
  std::int64_t next_sequence_ = 0;
  bool violated_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  cli::require_threads_supported("tufp_serve", opt.threads);
  try {
    // Topology + (for --workload) the synthesized session script.
    std::shared_ptr<const Graph> graph;
    std::unique_ptr<LineSource> source;
    if (!opt.workload.empty()) {
      sim::WorldSpec spec;
      spec.family = sim::family_from_name(opt.workload);
      spec.seed = opt.world_seed;
      const sim::SimWorld world = sim::generate_world(spec);
      graph = world.instance.shared_graph();
      std::vector<std::string> lines;
      lines.reserve(world.instance.requests().size() + 1);
      for (std::size_t i = 0; i < world.instance.requests().size(); ++i) {
        const double arrival =
            i < world.arrivals.size() ? world.arrivals[i] : 0.0;
        const double duration =
            i < world.durations.size() ? world.durations[i] : kInf;
        lines.push_back(render_req_line(
            world.instance.requests()[i], arrival, duration));
      }
      lines.push_back("quit");
      source = std::make_unique<ScriptSource>(std::move(lines));
    } else {
      if (opt.scenario != "grid" && opt.scenario != "random") usage();
      StreamingScenario scenario =
          opt.scenario == "grid"
              ? make_streaming_grid_scenario(opt.rows, opt.cols, opt.capacity,
                                             ValueModel::kUniform)
              : make_streaming_random_scenario(opt.vertices, opt.edges,
                                               opt.capacity,
                                               ValueModel::kUniform, opt.seed);
      graph = scenario.graph;
      if (!opt.listen_path.empty()) {
        source = std::make_unique<SocketSource>(opt.listen_path);
        std::cerr << "tufp_serve: listening on " << opt.listen_path << "\n";
      } else {
        source = std::make_unique<IstreamSource>(std::cin);
      }
    }

    // Telemetry sink: `-` splits channels across stdout/stderr (the
    // repo's output discipline); a path receives both channels as one
    // JSONL stream (check_trend.py separates them by the chan field).
    std::ofstream file;
    std::unique_ptr<obs::StreamSink> sink;
    if (opt.telemetry == "-") {
      sink = std::make_unique<obs::StreamSink>(
          &std::cout, opt.det_only ? nullptr : &std::cerr);
    } else {
      file.open(opt.telemetry);
      if (!file.good()) {
        throw std::runtime_error("cannot open --telemetry path: " +
                                 opt.telemetry);
      }
      sink = std::make_unique<obs::StreamSink>(
          &file, opt.det_only ? nullptr : &file);
    }

    // Decision provenance stream + bounded ring (DESIGN.md §14).
    std::ofstream trace_file;
    std::unique_ptr<obs::StreamSink> trace_sink;
    std::unique_ptr<obs::DecisionTrace> trace;
    if (!opt.trace.empty()) {
      trace_file.open(opt.trace);
      if (!trace_file.good()) {
        throw std::runtime_error("cannot open --trace path: " + opt.trace);
      }
      trace_sink = std::make_unique<obs::StreamSink>(&trace_file, nullptr);
      trace = std::make_unique<obs::DecisionTrace>(trace_sink.get());
    }

    ServeSession session(opt, std::move(graph), sink.get(), trace.get());
    return session.drive(*source);
  } catch (const std::exception& e) {
    std::cerr << "tufp_serve: " << e.what() << "\n";
    return 1;
  }
}
