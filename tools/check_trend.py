#!/usr/bin/env python3
"""Shape-regression gate over telemetry JSONL trajectories.

Diffs a candidate telemetry stream (tufp_serve / tufp_engine --telemetry)
against a committed baseline, enforcing the two-channel discipline from
DESIGN.md §11:

  * det channel  — epoch/hist/sanity/summary/drain/meta events are a
    deterministic function of workload + config, so the gate is EXACT:
    the event sequences must match field-for-field, bit-for-bit on every
    double.  Any drift is a behaviour change someone must explain (then
    regenerate the baseline).
  * wall channel — epoch_wall/summary_wall events are machine-dependent;
    by default they are ignored, and with --wall-tolerance R each shared
    numeric field must stay within relative factor R of the baseline
    (catching order-of-magnitude throughput cliffs without flaking on
    machine noise).

The trajectory view: beyond per-event equality, the det gate prints which
*series* diverged first (occupancy, active_leases, admitted_value, ...)
so a failure reads as "occupancy trajectory diverged at epoch 12", not a
wall of JSON.

Exit codes: 0 ok, 1 regression, 2 usage/IO error.

Usage:
  check_trend.py --baseline bench/baseline_telemetry.jsonl \
                 --candidate telemetry.jsonl [--wall-tolerance 10.0]
"""

from __future__ import annotations

import argparse
import json
import sys

DET_TRAJECTORY_FIELDS = (
    "occupancy",
    "active_leases",
    "admitted_value",
    "admitted",
    "expired",
    "queue_depth",
    # Per-outcome rejection split (DESIGN.md §14): a classification drift
    # should read as "capacity_blocked trajectory diverged", not raw JSON.
    "no_path",
    "capacity_blocked",
    "lost_auction",
    "shard_conflict",
)


def fail(msg: str) -> None:
    print(f"TREND FAIL: {msg}")


def load_events(path: str):
    """Returns (det_events, wall_events) preserving stream order."""
    det, wall = [], []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(f"error: {path}:{lineno}: bad JSON: {exc}",
                          file=sys.stderr)
                    sys.exit(2)
                chan = event.get("chan")
                if chan == "det":
                    det.append(event)
                elif chan == "wall":
                    wall.append(event)
                else:
                    print(f"error: {path}:{lineno}: event without a "
                          f"det/wall chan field", file=sys.stderr)
                    sys.exit(2)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    return det, wall


def first_trajectory_divergence(base, cand):
    """Names the first det *series* that diverges, for the failure report."""
    base_epochs = [e for e in base if e.get("event") == "epoch"]
    cand_epochs = [e for e in cand if e.get("event") == "epoch"]
    for field in DET_TRAJECTORY_FIELDS:
        for i, (b, c) in enumerate(zip(base_epochs, cand_epochs)):
            if b.get(field) != c.get(field):
                return (f"{field} trajectory diverged at epoch index {i}: "
                        f"baseline {b.get(field)!r} vs candidate "
                        f"{c.get(field)!r}")
    if len(base_epochs) != len(cand_epochs):
        return (f"epoch count changed: baseline {len(base_epochs)} vs "
                f"candidate {len(cand_epochs)}")
    return None


def check_det(base, cand) -> int:
    """Exact gate: det event streams must be identical."""
    failures = 0
    if len(base) != len(cand):
        fail(f"det event count: baseline {len(base)} vs candidate "
             f"{len(cand)}")
        failures += 1
    for i, (b, c) in enumerate(zip(base, cand)):
        if b == c:
            continue
        failures += 1
        kind = b.get("event", "?")
        diffs = []
        for key in sorted(set(b) | set(c)):
            if b.get(key) != c.get(key):
                diffs.append(f"{key}: {b.get(key)!r} -> {c.get(key)!r}")
        fail(f"det event {i} ({kind}) differs: " + "; ".join(diffs[:6]))
        if failures >= 10:
            fail("... (stopping after 10 det mismatches)")
            break
    if failures:
        trajectory = first_trajectory_divergence(base, cand)
        if trajectory:
            fail(trajectory)
    return failures


def check_wall(base, cand, tolerance: float) -> int:
    """Tolerance gate: shared numeric wall fields within factor `tolerance`.

    Wall streams may legitimately differ in length (the det stream is the
    shape authority), so events are matched by (event, epoch) key.
    """
    failures = 0

    def key(e):
        return (e.get("event"), e.get("epoch"))

    base_by_key = {key(e): e for e in base}
    for c in cand:
        b = base_by_key.get(key(c))
        if b is None:
            continue
        for field, cv in c.items():
            bv = b.get(field)
            if not isinstance(cv, (int, float)) or isinstance(cv, bool):
                continue
            if not isinstance(bv, (int, float)) or isinstance(bv, bool):
                continue
            if field == "epoch":
                continue
            if bv == 0 and cv == 0:
                continue
            lo, hi = sorted((abs(bv), abs(cv)))
            if lo == 0 or hi / lo > tolerance:
                fail(f"wall {key(c)} field {field}: baseline {bv!r} vs "
                     f"candidate {cv!r} exceeds tolerance x{tolerance}")
                failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff telemetry trajectories against a baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline telemetry JSONL")
    parser.add_argument("--candidate", required=True,
                        help="freshly produced telemetry JSONL")
    parser.add_argument("--wall-tolerance", type=float, default=0.0,
                        help="check wall-channel numeric fields to this "
                             "relative factor (0 = ignore wall channel)")
    args = parser.parse_args()
    if args.wall_tolerance < 0:
        parser.error("--wall-tolerance must be >= 0")

    base_det, base_wall = load_events(args.baseline)
    cand_det, cand_wall = load_events(args.candidate)

    failures = check_det(base_det, cand_det)
    if args.wall_tolerance > 0:
        failures += check_wall(base_wall, cand_wall, args.wall_tolerance)

    if failures:
        print(f"check_trend: {failures} failure(s) against {args.baseline}")
        return 1
    wall_note = (f", wall within x{args.wall_tolerance}"
                 if args.wall_tolerance > 0 else ", wall ignored")
    print(f"check_trend: OK ({len(cand_det)} det events exact{wall_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
