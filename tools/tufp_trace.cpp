// tufp_trace — inspect per-request decision provenance traces
// (DESIGN.md §14) written by `tufp_engine --trace` / `tufp_serve --trace`.
//
// Usage:
//   tufp_trace explain <trace.jsonl> <request-id>
//       Narrate every record for the request: what was decided, why, and
//       the evidence (path, density, bottleneck edge, conflict shard,
//       payment, warm/fresh SP provenance, lease window).
//   tufp_trace top <trace.jsonl> [--by outcome|edge|phase] [--limit N]
//       Aggregate the trace: decision counts per outcome (default),
//       bottleneck pressure per edge, or — for a collapsed-stack file
//       from `tufp_engine --flame` — self time per phase.
//   tufp_trace diff <a.jsonl> <b.jsonl>
//       Byte-compare the decision streams of two traces and report the
//       first divergent record. Exit 0 when identical, 1 on divergence —
//       the CI determinism gate runs this on a t1-vs-t4 pair.
//
// The parser is deliberately schema-narrow: it reads only the fields
// DecisionRecord::to_json emits, by literal key search, so the tool has
// no JSON dependency and stays honest about the byte-exact contract (a
// field it cannot find is a trace-format bug, not something to paper
// over).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: tufp_trace explain <trace.jsonl> <request-id>\n"
               "       tufp_trace top <trace.jsonl> [--by outcome|edge|phase]"
               " [--limit N]\n"
               "       tufp_trace diff <a.jsonl> <b.jsonl>\n";
  std::exit(2);
}

bool is_decision(const std::string& line) {
  return line.find("\"event\":\"decision\"") != std::string::npos;
}

// Raw value text of `"key":...` up to the next comma/brace at this
// nesting level; empty when the key is absent.
std::string field_text(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t i = at + needle.size();
  std::size_t depth = 0;
  bool quoted = false;
  const std::size_t begin = i;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') quoted = false;
      continue;
    }
    if (c == '"') quoted = true;
    else if (c == '[' || c == '{') ++depth;
    else if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) break;
  }
  return line.substr(begin, i - begin);
}

std::string string_field(const std::string& line, const std::string& key) {
  std::string raw = field_text(line, key);
  if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
    return raw.substr(1, raw.size() - 2);
  }
  return raw;
}

double num_field(const std::string& line, const std::string& key,
                 double fallback = 0.0) {
  const std::string raw = field_text(line, key);
  if (raw.empty()) return fallback;
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    return fallback;  // quoted non-finite ("inf") and malformed alike
  }
}

std::int64_t int_field(const std::string& line, const std::string& key,
                       std::int64_t fallback = -1) {
  const std::string raw = field_text(line, key);
  if (raw.empty()) return fallback;
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "tufp_trace: cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------- explain

void narrate(const std::string& line) {
  const std::string outcome = string_field(line, "outcome");
  const std::int64_t seq = int_field(line, "seq");
  const std::int64_t epoch = int_field(line, "epoch");
  const std::string path = field_text(line, "path");
  const bool warm = field_text(line, "warm_tree") == "true";
  std::cout << "request " << seq << " @ epoch " << epoch << " -> " << outcome
            << "\n";
  if (outcome == "admitted") {
    std::cout << "  admitted along path " << path << " ("
              << (warm ? "warm cross-epoch SP tree" : "fresh SP tree")
              << "), demand " << field_text(line, "demand") << ", bid "
              << field_text(line, "value") << ", charged "
              << field_text(line, "payment") << "\n"
              << "  lease granted at t=" << field_text(line, "admitted_at")
              << ", expires at t=" << field_text(line, "expires_at") << "\n";
  } else if (outcome == "no_path") {
    std::cout << "  the base topology never connects source to target: no "
                 "route exists at any capacity\n";
  } else if (outcome == "capacity_blocked") {
    const std::int64_t edge = int_field(line, "bottleneck_edge");
    if (edge >= 0) {
      std::cout << "  a route exists in the base topology, but saturation "
                   "cut every one this epoch; first edge held below the "
                   "usable floor on the canonical route: edge "
              << edge << "\n";
    } else {
      std::cout << "  saturation cut every route this epoch; no single "
                   "bottleneck edge to name\n";
    }
  } else if (outcome == "lost_auction") {
    std::cout << "  path " << path
              << " stayed feasible, but exit density "
              << field_text(line, "density")
              << " (demand/value x weighted length) never won an "
                 "auction iteration\n";
  } else if (outcome == "shard_conflict") {
    std::cout << "  path " << path
              << " fit at epoch start but lost the intra-epoch capacity "
                 "race; bottleneck edge "
              << int_field(line, "bottleneck_edge")
              << " in canonical-lattice shard "
              << int_field(line, "conflict_shard") << "\n";
  } else if (outcome == "invalid") {
    std::cout << "  malformed bid, shed before any auction\n";
  } else if (outcome == "lease_expired") {
    std::cout << "  lease granted at t=" << field_text(line, "admitted_at")
              << " expired at t=" << field_text(line, "expires_at")
              << "; demand " << field_text(line, "demand")
              << " reclaimed from path " << path << " at t="
              << field_text(line, "close_time") << "\n";
  } else {
    std::cout << "  (unrecognized outcome)\n";
  }
}

int cmd_explain(const std::string& path, const std::string& id) {
  std::int64_t want = 0;
  try {
    want = std::stoll(id);
  } catch (const std::exception&) {
    usage();
  }
  int found = 0;
  for (const std::string& line : read_lines(path)) {
    if (!is_decision(line)) continue;
    if (int_field(line, "seq") != want) continue;
    narrate(line);
    ++found;
  }
  if (found == 0) {
    std::cerr << "tufp_trace: no records for request " << want << " in "
              << path << "\n";
    return 1;
  }
  return 0;
}

// -------------------------------------------------------------------- top

void print_ranked(const std::map<std::string, std::int64_t>& counts,
                  const char* what, int limit) {
  std::vector<std::pair<std::string, std::int64_t>> rows(counts.begin(),
                                                         counts.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (limit > 0 && static_cast<int>(rows.size()) > limit) {
    rows.resize(static_cast<std::size_t>(limit));
  }
  for (const auto& [key, n] : rows) {
    std::cout << n << "\t" << what << " " << key << "\n";
  }
}

int cmd_top(const std::string& path, const std::string& by, int limit) {
  const std::vector<std::string> lines = read_lines(path);
  std::map<std::string, std::int64_t> counts;
  if (by == "outcome") {
    for (const std::string& line : lines) {
      if (is_decision(line)) ++counts[string_field(line, "outcome")];
    }
    print_ranked(counts, "outcome", limit);
  } else if (by == "edge") {
    // Bottleneck pressure: which base edges actually refuse admissions.
    for (const std::string& line : lines) {
      if (!is_decision(line)) continue;
      const std::int64_t edge = int_field(line, "bottleneck_edge");
      if (edge >= 0) ++counts["e" + std::to_string(edge)];
    }
    print_ranked(counts, "edge", limit);
  } else if (by == "phase") {
    // Collapsed-stack input (tufp_engine --flame): "a;b;leaf <usec>".
    for (const std::string& line : lines) {
      const auto space = line.rfind(' ');
      if (space == std::string::npos) continue;
      std::string stack = line.substr(0, space);
      const auto semi = stack.rfind(';');
      const std::string leaf =
          semi == std::string::npos ? stack : stack.substr(semi + 1);
      try {
        counts[leaf] += std::stoll(line.substr(space + 1));
      } catch (const std::exception&) {
      }
    }
    print_ranked(counts, "phase_usec", limit);
  } else {
    usage();
  }
  return 0;
}

// ------------------------------------------------------------------- diff

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  std::vector<std::string> a, b;
  for (const std::string& line : read_lines(path_a)) {
    if (is_decision(line)) a.push_back(line);
  }
  for (const std::string& line : read_lines(path_b)) {
    if (is_decision(line)) b.push_back(line);
  }
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      std::cout << "first divergence at record " << i << ":\n"
                << "- " << a[i] << "\n"
                << "+ " << b[i] << "\n";
      return 1;
    }
  }
  if (a.size() != b.size()) {
    std::cout << "record-count mismatch: " << a.size() << " vs " << b.size()
              << " (first " << n << " identical)\n";
    return 1;
  }
  std::cout << "identical: " << a.size() << " decision records\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string& cmd = args[0];
  if (cmd == "explain" && args.size() == 3) {
    return cmd_explain(args[1], args[2]);
  }
  if (cmd == "diff" && args.size() == 3) return cmd_diff(args[1], args[2]);
  if (cmd == "top" && args.size() >= 2) {
    std::string by = "outcome";
    int limit = 0;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--by" && i + 1 < args.size()) by = args[++i];
      else if (args[i] == "--limit" && i + 1 < args.size()) {
        limit = std::stoi(args[++i]);
      } else {
        usage();
      }
    }
    return cmd_top(args[1], by, limit);
  }
  usage();
}
