// tufp_fuzz — seed-driven property-fuzz harness over the sim subsystem.
//
// Sweep mode (default): generate worlds across the family matrix, run the
// oracle catalogue on each, shrink any violation to a minimal repro file.
//
//   tufp_fuzz --seed 7 --budget 120            # 120 worlds, deterministic
//   tufp_fuzz --budget 60s --repro-dir repros  # nightly: wall-clock cap
//   tufp_fuzz --families grid,ring --oracles feasible,kernel-diff
//   tufp_fuzz --inject overcharge-winners      # prove the harness bites
//
// Replay mode: load a repro (or any workload/io ufp file) and run the
// suite on it.
//
//   tufp_fuzz --replay repros/repro-payments-ir-w3.txt
//   tufp_fuzz --replay case.txt --oracles payments-ir
//
// Options:
//   --seed S            run seed                     (default 1)
//   --budget N|Ns       N worlds, or N wall-clock seconds (suffix 's';
//                       the world sequence is seed-deterministic either
//                       way, a seconds budget only truncates it)
//   --max-worlds N      cap alongside a seconds budget (default 100000)
//   --families a,b,c    subset of: staircase single-sink grid
//                       random-sparse layered ring — plus duration
//                       profiles (infinite fixed exponential heavy-tailed
//                       diurnal flash-crowd), which cross with the
//                       topology families; without one, each world
//                       samples its own profile from its seed
//   --oracles x,y       subset of the catalogue (see --list)
//   --inject F          none|overcharge-winners|charge-losers|
//                       leak-expired-capacity
//   --repro-dir DIR     write shrunk repro files here
//   --no-shrink         keep violations at original size
//   --stop-on-first     exit after the first failing world
//   --replay FILE       replay mode (see above)
//   --list              print the oracle catalogue and families, exit
//
// Exit status: 0 all worlds clean, 1 violations found, 2 usage/load error.
// stdout is deterministic for identical configs (no wall-clock numbers).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "tufp/sim/fuzzer.hpp"
#include "tufp/sim/oracles.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/workload/io.hpp"

namespace {

using namespace tufp;
using namespace tufp::sim;

[[noreturn]] void usage() {
  std::cerr
      << "usage: tufp_fuzz [--seed S] [--budget N|Ns] [--max-worlds N]\n"
         "  [--families a,b,c] [--oracles x,y]\n"
         "  [--inject none|overcharge-winners|charge-losers]\n"
         "  [--repro-dir DIR] [--no-shrink] [--stop-on-first]\n"
         "  [--replay FILE] [--list]\n";
  std::exit(2);
}

using tufp::cli::split_csv;

struct Options {
  FuzzConfig config;
  bool budget_given = false;
  std::string replay_path;
  bool list = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  opt.config.max_worlds = 100;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) usage();
    return args[++i];
  };
  bool max_worlds_given = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--seed") {
      opt.config.seed = std::stoull(value(i));
    } else if (a == "--budget") {
      const std::string b = value(i);
      opt.budget_given = true;
      if (!b.empty() && b.back() == 's') {
        opt.config.budget_seconds = std::stod(b.substr(0, b.size() - 1));
        if (!max_worlds_given) opt.config.max_worlds = 100000;
      } else {
        opt.config.max_worlds = std::stoi(b);
      }
    } else if (a == "--max-worlds") {
      opt.config.max_worlds = std::stoi(value(i));
      max_worlds_given = true;
    } else if (a == "--families") {
      // The matrix has two registered axes: world families and duration
      // profiles. Either kind of name is accepted here, mixed freely —
      // `--families grid,flash-crowd` sweeps grid worlds under
      // flash-crowd leases (profiles round-robin like families do).
      for (const std::string& name : split_csv(value(i))) {
        try {
          opt.config.families.push_back(family_from_name(name));
        } catch (const std::invalid_argument&) {
          try {
            opt.config.duration_profiles.push_back(
                duration_profile_from_name(name));
          } catch (const std::invalid_argument&) {
            throw std::invalid_argument(
                "unknown world family or duration profile: " + name +
                " (see --list)");
          }
        }
      }
    } else if (a == "--oracles") {
      opt.config.oracles = split_csv(value(i));
    } else if (a == "--inject") {
      opt.config.oracle_options.fault = fault_from_name(value(i));
    } else if (a == "--repro-dir") {
      opt.config.repro_dir = value(i);
    } else if (a == "--no-shrink") {
      opt.config.shrink = false;
    } else if (a == "--stop-on-first") {
      opt.config.stop_on_first = true;
    } else if (a == "--replay") {
      opt.replay_path = value(i);
    } else if (a == "--list") {
      opt.list = true;
    } else {
      usage();
    }
  }
  return opt;
}

int run_list() {
  std::cout << "oracles:\n";
  for (const OracleEntry& entry : oracle_catalogue()) {
    std::cout << "  " << entry.name << " — " << entry.summary << "\n";
  }
  std::cout << "families:\n";
  for (WorldFamily f : kAllFamilies) {
    std::cout << "  " << family_name(f) << "\n";
  }
  std::cout << "duration profiles (usable in --families):\n";
  for (DurationProfile p : kAllDurationProfiles) {
    std::cout << "  " << duration_profile_name(p) << "\n";
  }
  return 0;
}

int run_replay(const Options& opt) {
  std::ifstream is(opt.replay_path);
  if (!is.good()) {
    std::cerr << "tufp_fuzz: cannot open " << opt.replay_path << "\n";
    return 2;
  }
  // load_repro honours the repro's `# solver ...` directive so the replay
  // runs under the exact config that produced the violation. The echoed
  // path goes to stderr: stdout stays byte-stable however the repro file
  // is addressed (the golden replay test diffs it).
  const SimWorld world = load_repro(is);
  std::cerr << "replaying " << opt.replay_path << "\n";
  std::cout << "replay"
            << " requests=" << world.instance.num_requests()
            << " edges=" << world.instance.graph().num_edges()
            << " epsilon=" << world.solver.epsilon << " saturation="
            << (world.solver.run_to_saturation ? 1 : 0) << "\n";
  const std::vector<Violation> violations =
      run_oracle_suite(world, opt.config.oracle_options, opt.config.oracles);
  for (const Violation& v : violations) {
    std::cout << "FAIL " << v.oracle << ": " << v.detail << "\n";
  }
  if (violations.empty()) {
    std::cout << "verdict=ok\n";
    return 0;
  }
  std::cout << "verdict=FAIL (" << violations.size() << " violations)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    if (opt.list) return run_list();
    if (!opt.replay_path.empty()) return run_replay(opt);

    const FuzzReport report = run_fuzz(opt.config, &std::cout);
    std::cout << "=== tufp_fuzz summary ===\n"
              << "worlds_run " << report.worlds_run << "\n"
              << "worlds_failed " << report.worlds_failed << "\n";
    if (report.wall_clock_stop) {
      // Machine-dependent truncation point: stderr, so stdout stays
      // diffable for count budgets.
      std::cerr << "wall-clock budget reached after " << report.worlds_run
                << " worlds\n";
    }
    return report.worlds_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "tufp_fuzz: " << e.what() << "\n";
    return 2;
  }
}
