// tufp_lab — the approximation-ratio lab (DESIGN.md §9).
//
// Sweeps the large-capacity parameter beta = c_min/d_max across the sim
// world families, runs the configured solvers on every (world, beta) cell
// and certifies each outcome against the tightest available upper bound
// (packing-lp / gk-dual / claim36). Summary table on stdout; JSON/CSV
// artifacts for the CI trend job.
//
//   tufp_lab --sweep beta --worlds 3 --betas 1,2,4,8,16,32
//   tufp_lab --families staircase,grid --solvers bounded,greedy-density
//   tufp_lab --sweep beta --json ratios.json --threads 4
//   tufp_lab --list
//
// Options:
//   --sweep AXIS        sweep axis; only `beta` exists today (default)
//   --seed S            run seed (default 1)
//   --families a,b,c    subset of the sim world families
//   --solvers x,y       subset of the lab solver catalogue (see --list)
//   --betas b1,b2,...   beta grid, each >= 1 (default 1,2,4,8,16,32)
//   --worlds N          worlds per family (default 3)
//   --eps X             primal-dual accuracy parameter (default 1/6)
//   --threads N         OpenMP threads across cells (errors without OpenMP)
//   --sp-kernel auto|heap|bucket  shortest-path queue for the primal-dual
//                       members (results identical, wall clock only)
//   --json PATH         write the full cell/summary artifact ('-' = stdout)
//   --csv PATH          write the per-cell series as CSV ('-' = stdout)
//   --list              print solvers, bound providers and families, exit
//
// Determinism: stdout and both artifacts are byte-identical for identical
// configs, for any --threads value (each cell is a pure function of the
// run seed; see DESIGN.md §9).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "tufp/lab/solvers.hpp"
#include "tufp/lab/sweep.hpp"
#include "tufp/lab/upper_bound.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/parallel.hpp"
#include "tufp/util/table.hpp"

namespace {

using namespace tufp;
using namespace tufp::lab;

[[noreturn]] void usage() {
  std::cerr << "usage: tufp_lab [--sweep beta] [--seed S] [--families a,b]\n"
               "  [--solvers x,y] [--betas b1,b2,...] [--worlds N] [--eps X]\n"
               "  [--threads N] [--sp-kernel auto|heap|bucket]\n"
               "  [--json PATH] [--csv PATH] [--list]\n";
  std::exit(2);
}

using tufp::cli::split_csv;

struct Options {
  SweepConfig config;
  std::string json_path;
  std::string csv_path;
  bool list = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) usage();
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--sweep") {
      if (value(i) != "beta") {
        std::cerr << "tufp_lab: only the beta sweep axis exists today\n";
        std::exit(2);
      }
    } else if (a == "--seed") {
      opt.config.seed = std::stoull(value(i));
    } else if (a == "--families") {
      for (const std::string& name : split_csv(value(i))) {
        opt.config.families.push_back(sim::family_from_name(name));
      }
    } else if (a == "--solvers") {
      opt.config.solvers = split_csv(value(i));
    } else if (a == "--betas") {
      opt.config.betas.clear();
      for (const std::string& b : split_csv(value(i))) {
        opt.config.betas.push_back(std::stod(b));
      }
    } else if (a == "--worlds") {
      opt.config.worlds_per_family = std::stoi(value(i));
    } else if (a == "--eps") {
      opt.config.solve.epsilon = std::stod(value(i));
    } else if (a == "--threads") {
      opt.config.num_threads = std::stoi(value(i));
      tufp::cli::require_threads_supported("tufp_lab",
                                           opt.config.num_threads);
    } else if (a == "--sp-kernel") {
      opt.config.solve.sp_kernel =
          tufp::cli::parse_sp_kernel("tufp_lab", value(i));
    } else if (a == "--json") {
      opt.json_path = value(i);
    } else if (a == "--csv") {
      opt.csv_path = value(i);
    } else if (a == "--list") {
      opt.list = true;
    } else {
      usage();
    }
  }
  return opt;
}

int run_list() {
  std::cout << "solvers:\n";
  for (const LabSolverEntry& entry : solver_catalogue()) {
    std::cout << "  " << entry.name << " — " << entry.summary << "\n";
  }
  std::cout << "bound providers (tightest available wins):\n";
  for (const auto& provider : standard_providers()) {
    std::cout << "  " << provider->name() << "\n";
  }
  std::cout << "families:\n";
  for (sim::WorldFamily f : sim::kAllFamilies) {
    std::cout << "  " << sim::family_name(f) << "\n";
  }
  return 0;
}

void write_artifact(const std::string& path, const std::string& body,
                    const char* what) {
  if (path == "-") {
    std::cout << body;
    return;
  }
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) {
    std::cerr << "tufp_lab: cannot write " << what << " to " << path << "\n";
    std::exit(2);
  }
  os << body;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    if (opt.list) return run_list();

    const SweepResult result = run_beta_sweep(opt.config);

    std::cout << "tufp_lab sweep=beta seed=" << result.seed
              << " cells=" << result.cells.size() << "\n";
    summary_table(result).print(std::cout);

    if (!opt.json_path.empty()) {
      write_artifact(opt.json_path, sweep_to_json(result), "JSON");
    }
    if (!opt.csv_path.empty()) {
      std::ostringstream csv;
      sweep_to_csv(result, csv);
      write_artifact(opt.csv_path, csv.str(), "CSV");
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tufp_lab: " << e.what() << "\n";
    return 2;
  }
}
