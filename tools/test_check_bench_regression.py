#!/usr/bin/env python3
"""Checks for check_bench_regression.py (run in CI as a ctest).

Pins the gate's contract on mismatched benchmark sets: a candidate row
missing from the baseline (fresh benchmark, baseline not yet refreshed)
is skipped with a warning, never a KeyError or a failure; a row without a
name is skipped with a warning; genuine regressions on the shared set
still fail. Uses only the standard library (unittest) so it runs in the
bare CI container; pytest collects these classes too if present.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402


def google_bench(rows):
    return {"benchmarks": rows}


class Harness(unittest.TestCase):
    def run_gate(self, baseline, current, argv=()):
        tmp = tempfile.mkdtemp(prefix="bench_gate_")
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(cur_path, "w") as f:
            json.dump(current, f)
        out, err = io.StringIO(), io.StringIO()
        old_argv = sys.argv
        sys.argv = ["check_bench_regression.py", base_path, cur_path,
                    *argv]
        try:
            with redirect_stdout(out), redirect_stderr(err):
                rc = gate.main()
        finally:
            sys.argv = old_argv
        return rc, out.getvalue(), err.getvalue()


class CandidateOnlyBenchmarks(Harness):
    def test_skipped_with_warning_not_keyerror(self):
        # The regression this file exists for: a benchmark added to the
        # suite before the committed baseline is refreshed must be
        # skipped with a warning — the gate used to die on mismatched
        # sets instead of comparing the intersection.
        baseline = google_bench(
            [{"name": "bm_old", "items_per_second": 100.0}])
        current = google_bench(
            [{"name": "bm_old", "items_per_second": 99.0},
             {"name": "bm_new", "items_per_second": 5.0}])
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("bm_new", err)
        self.assertIn("missing from the baseline", err)
        self.assertIn("--update", err)

    def test_engine_throughput_format_too(self):
        baseline = [{"case": "grid8", "clear_requests_per_second": 1e5}]
        current = [{"case": "grid8", "clear_requests_per_second": 1e5},
                   {"case": "grid8-lease", "clear_requests_per_second": 2e4}]
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("grid8-lease", err)


class MalformedRows(Harness):
    def test_row_without_name_is_skipped(self):
        baseline = google_bench(
            [{"name": "bm_a", "items_per_second": 100.0}])
        current = google_bench(
            [{"items_per_second": 3.0},  # foreign row: no name
             {"name": "bm_a", "items_per_second": 100.0}])
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("without a 'name' field", err)


class SharedSetStillGated(Harness):
    def test_regression_on_shared_benchmark_fails(self):
        baseline = google_bench(
            [{"name": "bm_a", "items_per_second": 100.0}])
        current = google_bench(
            [{"name": "bm_a", "items_per_second": 10.0},
             {"name": "bm_new", "items_per_second": 1.0}])
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("REGRESSION", out)

    def test_no_overlap_is_a_hard_error(self):
        baseline = google_bench(
            [{"name": "bm_gone", "items_per_second": 1.0}])
        current = google_bench(
            [{"name": "bm_new", "items_per_second": 1.0}])
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 2, msg=out + err)

    def test_baseline_only_benchmark_noted(self):
        baseline = google_bench(
            [{"name": "bm_a", "items_per_second": 100.0},
             {"name": "bm_gone", "items_per_second": 50.0}])
        current = google_bench(
            [{"name": "bm_a", "items_per_second": 100.0}])
        rc, out, err = self.run_gate(baseline, current)
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("bm_gone", out)


class RatioGates(Harness):
    BASELINE = [{"case": "w-persistent", "clear_requests_per_second": 5e4},
                {"case": "w-snapshot", "clear_requests_per_second": 5e3}]

    def test_holding_ratio_passes(self):
        current = [{"case": "w-persistent", "clear_requests_per_second": 5.2e4},
                   {"case": "w-snapshot", "clear_requests_per_second": 5e3}]
        rc, out, err = self.run_gate(
            self.BASELINE, current,
            argv=["--min-ratio", "w-persistent/w-snapshot=5"])
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("ratio gate", out)
        self.assertIn("1 ratio gate(s) held", out)

    def test_broken_ratio_fails(self):
        # Absolute throughput fine (no regression) but the persistent
        # core lost its relative edge: exactly what the ratio gate is for.
        current = [{"case": "w-persistent", "clear_requests_per_second": 1.8e4},
                   {"case": "w-snapshot", "clear_requests_per_second": 6e3}]
        rc, out, err = self.run_gate(
            self.BASELINE, current,
            argv=["--threshold", "0.8",
                  "--min-ratio", "w-persistent/w-snapshot=5"])
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("required >= 5x", err)

    def test_missing_ratio_case_is_a_hard_error(self):
        current = [{"case": "w-persistent", "clear_requests_per_second": 5e4},
                   {"case": "w-snapshot", "clear_requests_per_second": 5e3}]
        rc, out, err = self.run_gate(
            self.BASELINE, current,
            argv=["--min-ratio", "w-persistent/w-gone=5"])
        self.assertEqual(rc, 2, msg=out + err)
        self.assertIn("w-gone", err)


class RatioGateBaselineCoverage(Harness):
    # A gate case present in the CURRENT run but absent from the BASELINE
    # used to fall into the generic "missing from the baseline" warning
    # and skip the gate case's absolute-regression leg silently. It is a
    # broken gate (stale baseline) and must fail hard, like a glob that
    # matches nothing.
    CURRENT = [
        {"case": "scale-grid316-persistent", "clear_requests_per_second": 4e4},
        {"case": "scale-grid316-shard4-persistent",
         "clear_requests_per_second": 3.5e4},
    ]

    def test_exact_gate_case_absent_from_baseline_is_a_hard_error(self):
        baseline = [self.CURRENT[0]]  # shard4 rows never baselined
        rc, out, err = self.run_gate(
            baseline, self.CURRENT,
            argv=["--min-ratio",
                  "scale-grid316-shard4-persistent/"
                  "scale-grid316-persistent=0.5"])
        self.assertEqual(rc, 2, msg=out + err)
        self.assertIn("absent from the baseline", err)
        self.assertIn("scale-grid316-shard4-persistent", err)
        self.assertIn("--update", err)

    def test_glob_substituted_pair_absent_from_baseline_is_a_hard_error(self):
        # The glob matches the persistent leg in the CURRENT run, so
        # expansion succeeds — but the substituted pair was never
        # baselined. This is the skip-with-warning bug pinned as exit 2.
        baseline = [{"case": "unrelated", "clear_requests_per_second": 1.0},
                    self.CURRENT[0]]
        rc, out, err = self.run_gate(
            baseline, self.CURRENT,
            argv=["--min-ratio",
                  "scale-grid316-shard4-*/scale-grid316-*=0.5"])
        self.assertEqual(rc, 2, msg=out + err)
        self.assertIn("absent from the baseline", err)

    def test_fully_baselined_gate_still_passes(self):
        rc, out, err = self.run_gate(
            self.CURRENT, self.CURRENT,
            argv=["--min-ratio",
                  "scale-grid316-shard4-persistent/"
                  "scale-grid316-persistent=0.5"])
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("1 ratio gate(s) held", out)


class GlobRatioGates(Harness):
    # The churn-tier layout the glob syntax exists for: one spec gates
    # every persistent/snapshot pair in the family at once.
    BASELINE = [
        {"case": "scale-churn-grid-exp-persistent",
         "clear_requests_per_second": 4e4},
        {"case": "scale-churn-grid-exp-snapshot",
         "clear_requests_per_second": 1e4},
        {"case": "scale-churn-tel-flash-persistent",
         "clear_requests_per_second": 3e4},
        {"case": "scale-churn-tel-flash-snapshot",
         "clear_requests_per_second": 1e4},
    ]
    GLOB = "scale-churn-*-persistent/scale-churn-*-snapshot=2"

    def test_glob_expands_to_every_pair_and_holds(self):
        rc, out, err = self.run_gate(
            self.BASELINE, self.BASELINE, argv=["--min-ratio", self.GLOB])
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("scale-churn-grid-exp-persistent/"
                      "scale-churn-grid-exp-snapshot", out)
        self.assertIn("scale-churn-tel-flash-persistent/"
                      "scale-churn-tel-flash-snapshot", out)
        self.assertIn("2 ratio gate(s) held", out)

    def test_one_pair_below_bound_fails(self):
        current = [dict(row) for row in self.BASELINE]
        current[2]["clear_requests_per_second"] = 1.5e4  # tel-flash: 1.5x
        rc, out, err = self.run_gate(
            self.BASELINE, current,
            argv=["--threshold", "0.6", "--min-ratio", self.GLOB])
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("scale-churn-tel-flash-persistent", err)
        self.assertIn("required >= 2x", err)

    def test_glob_matching_nothing_is_a_hard_error(self):
        rc, out, err = self.run_gate(
            self.BASELINE, self.BASELINE,
            argv=["--min-ratio", "scale-churn-*-gone/scale-churn-*-snap=2"])
        self.assertEqual(rc, 2, msg=out + err)
        self.assertIn("matched no case", err)

    def test_exact_spec_overrides_glob_for_its_pair(self):
        current = [dict(row) for row in self.BASELINE]
        current[2]["clear_requests_per_second"] = 1.5e4  # tel-flash: 1.5x
        rc, out, err = self.run_gate(
            self.BASELINE, current,
            argv=["--threshold", "0.6",
                  "--min-ratio", self.GLOB,
                  "--min-ratio",
                  "scale-churn-tel-flash-persistent/"
                  "scale-churn-tel-flash-snapshot=1.2"])
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("required >= 1.2x", out)


if __name__ == "__main__":
    unittest.main()
