// tufp_solve — run any solver in the library on an instance file.
//
// Usage:
//   tufp_solve [options] <instance-file>
//
// The file format (UFP vs MUCA) is auto-detected from the header token.
// Options:
//   --algo NAME   bounded (default) | repeat | greedy-value |
//                 greedy-density | exact | lp | gk
//                 (MUCA files support bounded | greedy-value |
//                  greedy-density | exact | lp)
//   --eps X       accuracy parameter for the primal-dual solvers
//   --saturate    run_to_saturation (out-of-regime instances)
//   --quiet       print only the summary line
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tufp/auction/bounded_muca.hpp"
#include "tufp/auction/muca_exact.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/lp/garg_konemann.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/bounded_ufp_repeat.hpp"
#include "tufp/util/table.hpp"
#include "tufp/util/timer.hpp"
#include "tufp/workload/io.hpp"

namespace {

using namespace tufp;

struct Options {
  std::string algo = "bounded";
  double eps = 1.0 / 6.0;
  bool saturate = false;
  bool quiet = false;
  std::string path;
};

[[noreturn]] void usage() {
  std::cerr << "usage: tufp_solve [--algo NAME] [--eps X] [--saturate] "
               "[--quiet] <instance-file>\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      opt.algo = args[++i];
    } else if (args[i] == "--eps" && i + 1 < args.size()) {
      opt.eps = std::stod(args[++i]);
    } else if (args[i] == "--saturate") {
      opt.saturate = true;
    } else if (args[i] == "--quiet") {
      opt.quiet = true;
    } else if (!args[i].empty() && args[i][0] != '-') {
      opt.path = args[i];
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

std::string detect_kind(const std::string& path) {
  std::ifstream is(path);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') {
      std::getline(is, token);
      continue;
    }
    return token;
  }
  return "";
}

int solve_ufp_file(const Options& opt) {
  const UfpInstance inst = load_ufp_file(opt.path);
  WallTimer timer;
  double value = 0.0;
  int selected = -1;
  std::string note;

  if (opt.algo == "bounded") {
    BoundedUfpConfig cfg;
    cfg.epsilon = opt.eps;
    cfg.run_to_saturation = opt.saturate;
    const BoundedUfpResult r = bounded_ufp(inst, cfg);
    value = r.solution.total_value(inst);
    selected = r.solution.num_selected();
    note = "dual upper bound " + Table::format_double(r.dual_upper_bound, 4);
    if (!opt.quiet) {
      Table t({"request", "path edges"});
      for (int i = 0; i < inst.num_requests(); ++i) {
        if (const Path* p = r.solution.path_of(i)) {
          std::string edges;
          for (EdgeId e : *p) edges += std::to_string(e) + " ";
          t.row().cell(i).cell(edges);
        }
      }
      t.print(std::cout);
    }
  } else if (opt.algo == "repeat") {
    BoundedUfpRepeatConfig cfg;
    cfg.epsilon = opt.eps;
    const BoundedUfpRepeatResult r = bounded_ufp_repeat(inst, cfg);
    value = r.solution.total_value(inst);
    selected = static_cast<int>(r.solution.allocations().size());
    note = "dual upper bound " + Table::format_double(r.dual_upper_bound, 4);
  } else if (opt.algo == "greedy-value" || opt.algo == "greedy-density") {
    const UfpSolution s = greedy_ufp(inst, opt.algo == "greedy-value"
                                               ? GreedyRanking::kByValue
                                               : GreedyRanking::kByDensity);
    value = s.total_value(inst);
    selected = s.num_selected();
  } else if (opt.algo == "exact") {
    const UfpExactResult r = solve_ufp_exact(inst);
    value = r.optimal_value;
    selected = r.solution.num_selected();
    note = r.proven_optimal ? "proven optimal" : "node cap hit (lower bound)";
  } else if (opt.algo == "lp") {
    value = solve_ufp_lp(inst).objective;
    note = "fractional optimum (Figure 1 relaxation)";
  } else if (opt.algo == "gk") {
    GkConfig cfg;
    cfg.epsilon = std::min(0.5, opt.eps);
    const GkResult r = garg_konemann_fractional_ufp(inst, cfg);
    value = r.objective;
    note = r.converged ? "fractional (Garg-Konemann)" : "iteration cap hit";
  } else {
    usage();
  }

  std::cout << "algo=" << opt.algo << " value=" << value;
  if (selected >= 0) std::cout << " selected=" << selected;
  std::cout << " requests=" << inst.num_requests()
            << " time_ms=" << timer.elapsed_ms();
  if (!note.empty()) std::cout << "  [" << note << "]";
  std::cout << "\n";
  return 0;
}

int solve_muca_file(const Options& opt) {
  const MucaInstance inst = load_muca_file(opt.path);
  WallTimer timer;
  double value = 0.0;
  int selected = -1;
  std::string note;

  if (opt.algo == "bounded") {
    BoundedMucaConfig cfg;
    cfg.epsilon = opt.eps;
    cfg.run_to_saturation = opt.saturate;
    const BoundedMucaResult r = bounded_muca(inst, cfg);
    value = r.solution.total_value(inst);
    selected = r.solution.num_selected();
    note = "dual upper bound " + Table::format_double(r.dual_upper_bound, 4);
  } else if (opt.algo == "greedy-value" || opt.algo == "greedy-density") {
    const MucaSolution s = greedy_muca(inst, opt.algo == "greedy-value"
                                                 ? GreedyRanking::kByValue
                                                 : GreedyRanking::kByDensity);
    value = s.total_value(inst);
    selected = s.num_selected();
  } else if (opt.algo == "exact") {
    const MucaExactResult r = solve_muca_exact(inst);
    value = r.optimal_value;
    selected = r.solution.num_selected();
    note = r.proven_optimal ? "proven optimal" : "node cap hit (lower bound)";
  } else if (opt.algo == "lp") {
    value = solve_muca_lp(inst);
    note = "fractional optimum";
  } else {
    usage();
  }

  std::cout << "algo=" << opt.algo << " value=" << value;
  if (selected >= 0) std::cout << " selected=" << selected;
  std::cout << " requests=" << inst.num_requests()
            << " time_ms=" << timer.elapsed_ms();
  if (!note.empty()) std::cout << "  [" << note << "]";
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    const std::string kind = detect_kind(opt.path);
    if (kind == "ufp") return solve_ufp_file(opt);
    if (kind == "muca") return solve_muca_file(opt);
    std::cerr << "tufp_solve: unrecognized instance header '" << kind << "'\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "tufp_solve: " << e.what() << "\n";
    return 1;
  }
}
