#!/usr/bin/env python3
"""Checks for check_trend.py (run in CI as a ctest).

Pins the two-channel discipline of the trend gate: det-channel events
compare exactly (any drift fails, and the failure names the trajectory
that diverged first), wall-channel events are ignored by default and
tolerance-compared with --wall-tolerance. Standard library only
(unittest); pytest collects these classes too if present.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_trend as trend  # noqa: E402


def epoch(i, **fields):
    event = {"event": "epoch", "chan": "det", "epoch": i,
             "admitted": 10, "admitted_value": 50.0, "occupancy": 0.1,
             "active_leases": 10, "expired": 0, "queue_depth": 0}
    event.update(fields)
    return event


def wall(i, **fields):
    event = {"event": "epoch_wall", "chan": "wall", "epoch": i,
             "solve_seconds": 0.001}
    event.update(fields)
    return event


SUMMARY = {"event": "summary", "chan": "det", "epochs": 2, "admitted": 20}


class Harness(unittest.TestCase):
    def run_trend(self, baseline_events, candidate_events, argv=()):
        tmp = tempfile.mkdtemp(prefix="trend_gate_")
        base_path = os.path.join(tmp, "baseline.jsonl")
        cand_path = os.path.join(tmp, "candidate.jsonl")
        for path, events in ((base_path, baseline_events),
                             (cand_path, candidate_events)):
            with open(path, "w") as f:
                for event in events:
                    f.write(json.dumps(event) + "\n")
        out, err = io.StringIO(), io.StringIO()
        old_argv = sys.argv
        sys.argv = ["check_trend.py", "--baseline", base_path,
                    "--candidate", cand_path, *argv]
        try:
            with redirect_stdout(out), redirect_stderr(err):
                rc = trend.main()
        finally:
            sys.argv = old_argv
        return rc, out.getvalue(), err.getvalue()


class DetChannelExact(Harness):
    def test_identical_streams_pass(self):
        events = [epoch(0), epoch(1), SUMMARY, wall(0), wall(1)]
        rc, out, err = self.run_trend(events, events)
        self.assertEqual(rc, 0, msg=out + err)
        self.assertIn("OK", out)

    def test_any_det_drift_fails_and_names_trajectory(self):
        baseline = [epoch(0), epoch(1, occupancy=0.2), SUMMARY]
        candidate = [epoch(0), epoch(1, occupancy=0.2000001), SUMMARY]
        rc, out, err = self.run_trend(baseline, candidate)
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("occupancy trajectory diverged at epoch index 1", out)

    def test_outcome_split_drift_names_its_trajectory(self):
        # The per-outcome rejection split is det data: a request sliding
        # from capacity_blocked into no_path must fail and be named.
        baseline = [epoch(0, no_path=1, capacity_blocked=4,
                          lost_auction=2, shard_conflict=0), SUMMARY]
        candidate = [epoch(0, no_path=2, capacity_blocked=3,
                           lost_auction=2, shard_conflict=0), SUMMARY]
        rc, out, err = self.run_trend(baseline, candidate)
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("no_path trajectory diverged at epoch index 0", out)

    def test_shard_conflict_drift_names_its_trajectory(self):
        baseline = [epoch(0, shard_conflict=3), SUMMARY]
        candidate = [epoch(0, shard_conflict=5), SUMMARY]
        rc, out, err = self.run_trend(baseline, candidate)
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("shard_conflict trajectory diverged at epoch index 0",
                      out)

    def test_missing_det_event_fails(self):
        baseline = [epoch(0), epoch(1), SUMMARY]
        candidate = [epoch(0), SUMMARY]
        rc, out, err = self.run_trend(baseline, candidate)
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("det event count", out)


class WallChannelTolerant(Harness):
    def test_wall_ignored_by_default(self):
        baseline = [epoch(0), SUMMARY, wall(0, solve_seconds=0.001)]
        candidate = [epoch(0), SUMMARY, wall(0, solve_seconds=10.0)]
        rc, out, err = self.run_trend(baseline, candidate)
        self.assertEqual(rc, 0, msg=out + err)

    def test_wall_within_tolerance_passes(self):
        baseline = [epoch(0), SUMMARY, wall(0, solve_seconds=0.001)]
        candidate = [epoch(0), SUMMARY, wall(0, solve_seconds=0.004)]
        rc, out, err = self.run_trend(baseline, candidate,
                                      ["--wall-tolerance", "10"])
        self.assertEqual(rc, 0, msg=out + err)

    def test_wall_beyond_tolerance_fails(self):
        baseline = [epoch(0), SUMMARY, wall(0, solve_seconds=0.001)]
        candidate = [epoch(0), SUMMARY, wall(0, solve_seconds=1.0)]
        rc, out, err = self.run_trend(baseline, candidate,
                                      ["--wall-tolerance", "10"])
        self.assertEqual(rc, 1, msg=out + err)
        self.assertIn("solve_seconds", out)

    def test_extra_wall_events_are_not_an_error(self):
        # Wall streams may differ in length (--det-only runs, crashes
        # mid-wall-write): the det stream is the shape authority.
        baseline = [epoch(0), SUMMARY]
        candidate = [epoch(0), SUMMARY, wall(0)]
        rc, out, err = self.run_trend(baseline, candidate,
                                      ["--wall-tolerance", "10"])
        self.assertEqual(rc, 0, msg=out + err)


class StreamHygiene(Harness):
    def test_event_without_chan_is_a_usage_error(self):
        baseline = [epoch(0), SUMMARY]
        candidate = [epoch(0), {"event": "epoch"}, SUMMARY]
        with self.assertRaises(SystemExit) as ctx:
            self.run_trend(baseline, candidate)
        self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
