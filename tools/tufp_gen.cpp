// tufp_gen — generate problem instances in the tufp text format.
//
// Usage:
//   tufp_gen grid <rows> <cols> <capacity> <requests> <seed> [--out FILE]
//   tufp_gen random <vertices> <edges> <capacity> <requests> <seed> [--out FILE]
//   tufp_gen staircase <l> <B> [--out FILE]          (Figure 2 gadget)
//   tufp_gen fig3 <B> [--out FILE]                   (Figure 3 gadget)
//   tufp_gen muca <items> <B> <requests> <bundle_min> <bundle_max> <seed>
//            [--out FILE]
//   tufp_gen fig4 <p> <B> [--out FILE]               (Figure 4 gadget)
//
// Instances print to stdout unless --out is given.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tufp/workload/io.hpp"
#include "tufp/workload/lower_bounds.hpp"
#include "tufp/workload/scenarios.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  tufp_gen grid <rows> <cols> <capacity> <requests> <seed>\n"
         "  tufp_gen random <vertices> <edges> <capacity> <requests> <seed>\n"
         "  tufp_gen staircase <l> <B>\n"
         "  tufp_gen fig3 <B>\n"
         "  tufp_gen muca <items> <B> <requests> <bmin> <bmax> <seed>\n"
         "  tufp_gen fig4 <p> <B>\n"
         "append --out FILE to write to a file instead of stdout\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tufp;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out_path;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--out") {
      out_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  if (args.empty()) usage();

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file.good()) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    os = &file;
  }

  try {
    const std::string& kind = args[0];
    const auto arg_int = [&](std::size_t i) { return std::stoi(args.at(i)); };
    const auto arg_dbl = [&](std::size_t i) { return std::stod(args.at(i)); };
    const auto arg_u64 = [&](std::size_t i) {
      return static_cast<std::uint64_t>(std::stoull(args.at(i)));
    };

    if (kind == "grid" && args.size() == 6) {
      save_ufp(make_grid_scenario(arg_int(1), arg_int(2), arg_dbl(3),
                                  arg_int(4), ValueModel::kUniform, arg_u64(5)),
               *os);
    } else if (kind == "random" && args.size() == 6) {
      save_ufp(make_random_scenario(arg_int(1), arg_int(2), arg_dbl(3),
                                    arg_int(4), arg_u64(5)),
               *os);
    } else if (kind == "staircase" && args.size() == 3) {
      save_ufp(make_staircase(arg_int(1), arg_int(2)).instance, *os);
    } else if (kind == "fig3" && args.size() == 2) {
      save_ufp(make_fig3(arg_int(1)).instance, *os);
    } else if (kind == "muca" && args.size() == 7) {
      save_muca(make_random_auction(arg_int(1), arg_int(2), arg_int(3),
                                    arg_int(4), arg_int(5), 1.0, 10.0,
                                    arg_u64(6)),
                *os);
    } else if (kind == "fig4" && args.size() == 3) {
      save_muca(make_fig4(arg_int(1), arg_int(2)).instance, *os);
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "tufp_gen: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
