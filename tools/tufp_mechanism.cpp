// tufp_mechanism — run the full truthful mechanism on an instance file:
// allocation (Bounded-UFP / Bounded-MUCA) plus critical-value payments,
// with an optional strategic audit.
//
// Usage:
//   tufp_mechanism [--eps X] [--saturate] [--audit] <instance-file>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tufp/mechanism/truthfulness_audit.hpp"
#include "tufp/util/table.hpp"
#include "tufp/workload/io.hpp"

namespace {

using namespace tufp;

struct Options {
  double eps = 1.0 / 6.0;
  bool saturate = false;
  bool audit = false;
  std::string path;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: tufp_mechanism [--eps X] [--saturate] [--audit] <file>\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--eps" && i + 1 < args.size()) {
      opt.eps = std::stod(args[++i]);
    } else if (args[i] == "--saturate") {
      opt.saturate = true;
    } else if (args[i] == "--audit") {
      opt.audit = true;
    } else if (!args[i].empty() && args[i][0] != '-') {
      opt.path = args[i];
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

std::string detect_kind(const std::string& path) {
  std::ifstream is(path);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') {
      std::getline(is, token);
      continue;
    }
    return token;
  }
  return "";
}

int run_ufp(const Options& opt) {
  const UfpInstance inst = load_ufp_file(opt.path);
  BoundedUfpConfig cfg;
  cfg.epsilon = opt.eps;
  cfg.run_to_saturation = opt.saturate;
  const UfpRule rule = make_bounded_ufp_rule(cfg);
  const UfpMechanismResult res = run_ufp_mechanism(inst, rule);

  Table t({"agent", "demand", "value", "won", "payment", "utility"});
  t.set_precision(4);
  double revenue = 0.0;
  for (int r = 0; r < inst.num_requests(); ++r) {
    const Request& req = inst.request(r);
    t.row()
        .cell(r)
        .cell(req.demand)
        .cell(req.value)
        .cell(res.allocation.is_selected(r) ? "yes" : "no")
        .cell(res.payments[r])
        .cell(res.utilities[r]);
    revenue += res.payments[r];
  }
  t.print(std::cout);
  std::cout << "welfare=" << res.allocation.total_value(inst)
            << " revenue=" << revenue
            << " winners=" << res.allocation.num_selected() << "/"
            << inst.num_requests() << "\n";

  if (opt.audit) {
    const AuditReport report = audit_ufp_truthfulness(inst, rule, {});
    std::cout << "audit: " << report.misreports_tried << " misreports, "
              << report.violations.size() << " profitable\n";
    return report.truthful() ? 0 : 1;
  }
  return 0;
}

int run_muca(const Options& opt) {
  const MucaInstance inst = load_muca_file(opt.path);
  BoundedMucaConfig cfg;
  cfg.epsilon = opt.eps;
  cfg.run_to_saturation = opt.saturate;
  const MucaRule rule = make_bounded_muca_rule(cfg);
  const MucaMechanismResult res = run_muca_mechanism(inst, rule);

  Table t({"agent", "bundle size", "value", "won", "payment"});
  t.set_precision(4);
  double revenue = 0.0;
  for (int r = 0; r < inst.num_requests(); ++r) {
    const MucaRequest& req = inst.request(r);
    t.row()
        .cell(r)
        .cell(req.bundle.size())
        .cell(req.value)
        .cell(res.allocation.is_selected(r) ? "yes" : "no")
        .cell(res.payments[r]);
    revenue += res.payments[r];
  }
  t.print(std::cout);
  std::cout << "welfare=" << res.allocation.total_value(inst)
            << " revenue=" << revenue
            << " winners=" << res.allocation.num_selected() << "/"
            << inst.num_requests() << "\n";

  if (opt.audit) {
    const AuditReport report = audit_muca_truthfulness(inst, rule, {});
    std::cout << "audit: " << report.misreports_tried << " misreports, "
              << report.violations.size() << " profitable\n";
    return report.truthful() ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    const std::string kind = detect_kind(opt.path);
    if (kind == "ufp") return run_ufp(opt);
    if (kind == "muca") return run_muca(opt);
    std::cerr << "tufp_mechanism: unrecognized instance header '" << kind
              << "'\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "tufp_mechanism: " << e.what() << "\n";
    return 1;
  }
}
