// Sharded multi-engine serving (engine/sharded_engine.hpp, DESIGN.md
// §13): the two-phase reserve/commit protocol at the shard level —
// conflict counting, the abort/release rollback, lease-book arithmetic —
// plus the cross-shard boundary-conflict determinism acceptance: two
// winners contending for the same boundary edge from different shards
// produce the identical outcome (reports, shard counters, conflict
// count) across thread counts and both shortest-path kernels, and the
// sharded-differential oracle holds on every sim world family.
#include "tufp/engine/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tufp/engine/epoch_engine.hpp"
#include "tufp/graph/graph.hpp"
#include "tufp/sim/oracles.hpp"
#include "tufp/sim/world.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/math.hpp"

namespace tufp {
namespace {

TimedRequest make_timed(double arrival, std::int64_t sequence, double demand,
                        double value, double duration, VertexId s,
                        VertexId t) {
  TimedRequest req;
  req.arrival_time = arrival;
  req.sequence = sequence;
  req.duration = duration;
  req.request = {s, t, demand, value};
  return req;
}

TEST(ShardEngine, ReserveCountsConflictsOnRecontendedEdges) {
  const std::vector<double> caps{10.0, 10.0, 10.0, 10.0};
  shard::ShardEngine eng(0, shard::ShardWindow{0, 4}, caps);

  const std::vector<EdgeId> first{0, 1};
  const std::vector<EdgeId> second{1, 2};  // edge 1 re-contended
  EXPECT_TRUE(eng.reserve(0, first, 2.0));
  EXPECT_TRUE(eng.reserve(0, second, 3.0));
  EXPECT_EQ(eng.counters().reservations, 4);
  EXPECT_EQ(eng.counters().conflicts, 1);

  // A new epoch's reservation table starts clean (lazy reset): the same
  // edges re-reserved under epoch 1 conflict with nothing.
  EXPECT_TRUE(eng.reserve(1, first, 1.0));
  EXPECT_EQ(eng.counters().conflicts, 1);
}

TEST(ShardEngine, CommitAndDrainMirrorTheGlobalArithmetic) {
  const std::vector<double> caps{4.0, 4.0};
  shard::ShardEngine eng(0, shard::ShardWindow{0, 2}, caps);

  const std::vector<EdgeId> path{0, 1};
  ASSERT_TRUE(eng.reserve(0, path, 1.5));
  eng.commit(path, 1.5);
  EXPECT_EQ(eng.residual(0), 2.5);  // exact clamp rule max(0, r - d)
  EXPECT_EQ(eng.book().active_on_edge(0), 1);
  EXPECT_EQ(eng.book().leased_demand(0), 1.5);
  EXPECT_EQ(eng.counters().commits, 1);
  const std::int64_t clock_after_commit = eng.clock();
  EXPECT_GT(clock_after_commit, 0);

  // Drain restores with the ledger's snap rule: the last lease off an
  // edge snaps the residual back to the exact base capacity.
  eng.drain(1.5, path);
  EXPECT_EQ(eng.residual(0), 4.0);
  EXPECT_EQ(eng.residual(1), 4.0);
  EXPECT_EQ(eng.book().active_on_edge(0), 0);
  EXPECT_EQ(eng.book().leased_demand(0), 0.0);
  EXPECT_EQ(eng.book().active_leases(), 0);
  EXPECT_EQ(eng.counters().reclaims, 1);
  EXPECT_GT(eng.last_decrease(), clock_after_commit);  // drains tick + bump
}

TEST(ShardEngine, FailedReserveReleasesItsPartialAcquisitions) {
  const std::vector<double> caps{10.0, 1.0, 10.0};
  shard::ShardEngine eng(0, shard::ShardWindow{0, 3}, caps);

  // Demand 5 fits edge 0, refuses edge 1: the call must undo edge 0's
  // reservation and report the refusal.
  const std::vector<EdgeId> path{0, 1, 2};
  EXPECT_FALSE(eng.reserve(0, path, 5.0));
  EXPECT_EQ(eng.counters().releases, 1);  // edge 0 undone
  // The edge is free again: a feasible winner reserves without conflict.
  EXPECT_TRUE(eng.reserve(0, std::vector<EdgeId>{0}, 5.0));
  EXPECT_EQ(eng.counters().conflicts, 0);
}

TEST(ShardedEngine, TryAdmitAbortRollsBackAcquiredShardsInReverse) {
  // Two shards; the demand fits shard 0's window but not shard 1's, so
  // phase 1 acquires shard 0, refuses at shard 1, and the coordinator
  // must release shard 0 and count exactly one abort at the refusing
  // shard — leaving every shard's residual untouched.
  Graph g = Graph::directed(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 2.0);
  g.finalize();
  auto base = std::make_shared<const Graph>(std::move(g));

  EpochEngineConfig config;
  config.max_batch = 4;
  ShardedEpochEngine sharded(base, config, 2);
  ASSERT_EQ(sharded.num_shards(), 2);

  const std::vector<EdgeId> path{0, 1, 2};  // crosses both windows
  EXPECT_FALSE(sharded.try_admit(0, path, 5.0));  // edge 2 cannot fit 5
  const shard::ShardCounters t = sharded.totals();
  EXPECT_EQ(t.aborts, 1);
  EXPECT_EQ(t.commits, 0);
  EXPECT_GT(t.releases, 0);
  for (int s = 0; s < sharded.num_shards(); ++s) {
    const shard::ShardWindow& w = sharded.plan().window(s);
    for (EdgeId e = w.begin; e < w.end; ++e) {
      EXPECT_EQ(sharded.shard(s).residual(e), sharded.shard(s).capacity(e));
    }
  }
  // A feasible admission still goes through after the rollback.
  EXPECT_TRUE(sharded.try_admit(0, path, 1.0));
  EXPECT_EQ(sharded.totals().commits, 2);  // one per touched shard
}

// Satellite acceptance: two winners contending for the same boundary
// edge from different shards. Both paths funnel through the single
// middle edge; with 2 shards the funnel edge sits in the second window
// while each winner enters from the first, so the epoch's second winner
// re-reserves an edge the first already holds — a counted cross-shard
// conflict. The outcome (reports, winner accounting, per-shard counters)
// must be identical across thread counts and both SP kernels.
TEST(ShardedEngine, BoundaryConflictIsDeterministicAcrossThreadsAndKernels) {
  Graph g = Graph::directed(6);
  g.add_edge(0, 2, 100.0);  // e0: s1 -> a   (shard 0)
  g.add_edge(1, 2, 100.0);  // e1: s2 -> a   (shard 0)
  g.add_edge(2, 3, 100.0);  // e2: a  -> b   (shard 1, the funnel)
  g.add_edge(3, 4, 100.0);  // e3: b  -> t1  (shard 1)
  g.add_edge(3, 5, 100.0);  // e4: b  -> t2  (shard 1)
  g.finalize();
  auto base = std::make_shared<const Graph>(std::move(g));

  struct Leg {
    int admitted = 0;
    double admitted_value = 0.0;
    double revenue = 0.0;
    std::int64_t winners = 0;
    std::int64_t cross = 0;
    std::vector<shard::ShardCounters> per_shard;
  };
  std::vector<Leg> legs;
  for (const SpKernel kernel : {SpKernel::kHeap, SpKernel::kBucket}) {
    for (const int threads : {1, 4}) {
      EpochEngineConfig config;
      config.max_batch = 2;
      config.solver.sp_kernel = kernel;
      config.solver.num_threads = threads;
      ShardedEpochEngine sharded(base, config, 2);
      ASSERT_EQ(sharded.plan().shard_of(2), 1);  // the funnel edge
      const AdmissionReport report = sharded.engine().run_epoch(
          {make_timed(0.0, 0, 1.0, 2.0, kInf, 0, 4),
           make_timed(0.0, 1, 1.0, 1.0, kInf, 1, 5)});

      Leg leg;
      leg.admitted = report.admitted;
      leg.admitted_value = report.admitted_value;
      leg.revenue = report.revenue;
      leg.winners = sharded.winners();
      leg.cross = sharded.cross_shard_winners();
      for (int s = 0; s < sharded.num_shards(); ++s) {
        leg.per_shard.push_back(sharded.shard(s).counters());
      }
      EXPECT_TRUE(sharded.verify().empty());
      legs.push_back(std::move(leg));
    }
  }

  // Both winners admitted, both cross-shard, and the funnel shard saw
  // the second winner conflict with the first's reservation.
  ASSERT_EQ(legs.size(), 4u);
  EXPECT_EQ(legs[0].admitted, 2);
  EXPECT_EQ(legs[0].cross, 2);
  EXPECT_GE(legs[0].per_shard[1].conflicts, 1);
  EXPECT_EQ(legs[0].per_shard[0].aborts + legs[0].per_shard[1].aborts, 0);
  for (std::size_t i = 1; i < legs.size(); ++i) {
    EXPECT_EQ(legs[i].admitted, legs[0].admitted) << "leg " << i;
    EXPECT_EQ(legs[i].admitted_value, legs[0].admitted_value) << "leg " << i;
    EXPECT_EQ(legs[i].revenue, legs[0].revenue) << "leg " << i;
    EXPECT_EQ(legs[i].winners, legs[0].winners) << "leg " << i;
    EXPECT_EQ(legs[i].cross, legs[0].cross) << "leg " << i;
    for (std::size_t s = 0; s < legs[i].per_shard.size(); ++s) {
      EXPECT_EQ(legs[i].per_shard[s].reservations,
                legs[0].per_shard[s].reservations);
      EXPECT_EQ(legs[i].per_shard[s].conflicts,
                legs[0].per_shard[s].conflicts);
      EXPECT_EQ(legs[i].per_shard[s].aborts, legs[0].per_shard[s].aborts);
      EXPECT_EQ(legs[i].per_shard[s].commits, legs[0].per_shard[s].commits);
    }
  }
}

// The sharded-differential + shard-conserve oracles on one world of
// every family: sharded == single byte-exact (every report field, both
// kernels, 1 and 4 threads, plain and temporal churn), and the per-shard
// books reconstruct the global state exactly.
TEST(ShardedEngine, DifferentialOraclesHoldOnEveryWorldFamily) {
  const std::vector<std::string> only{"sharded-differential",
                                      "shard-conserve"};
  for (const sim::WorldFamily family : sim::kAllFamilies) {
    const sim::SimWorld world = sim::generate_world({family, 17});
    const std::vector<sim::Violation> violations =
        sim::run_oracle_suite(world, sim::OracleOptions{}, only);
    for (const sim::Violation& v : violations) {
      ADD_FAILURE() << sim::family_name(family) << ": " << v.oracle << ": "
                    << v.detail;
    }
  }
}

}  // namespace
}  // namespace tufp
