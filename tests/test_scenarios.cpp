#include "tufp/workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tufp/graph/generators.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {
namespace {

TEST(RegimeCapacity, MatchesFormula) {
  EXPECT_NEAR(regime_capacity(100, 0.5), std::log(100.0) / 0.25, 1e-12);
  EXPECT_NEAR(regime_capacity(100, 0.5, 2.0), 2.0 * std::log(100.0) / 0.25,
              1e-12);
  // Floors at 1 for tiny graphs.
  EXPECT_DOUBLE_EQ(regime_capacity(1, 1.0), 1.0);
  EXPECT_THROW(regime_capacity(0, 0.5), std::invalid_argument);
  EXPECT_THROW(regime_capacity(10, 0.0), std::invalid_argument);
}

TEST(RequestGen, RespectsRanges) {
  Rng rng(3);
  Graph g = grid_graph(3, 3, 2.0, false);
  RequestGenConfig cfg;
  cfg.num_requests = 40;
  cfg.demand_min = 0.3;
  cfg.demand_max = 0.9;
  cfg.value_min = 2.0;
  cfg.value_max = 4.0;
  const auto reqs = generate_requests(g, cfg, rng);
  ASSERT_EQ(reqs.size(), 40u);
  for (const Request& r : reqs) {
    EXPECT_NE(r.source, r.target);
    EXPECT_GE(r.demand, 0.3);
    EXPECT_LE(r.demand, 0.9);
    EXPECT_GE(r.value, 2.0);
    EXPECT_LT(r.value, 4.0);
  }
}

TEST(RequestGen, PairsAlwaysConnected) {
  Rng rng(5);
  // Directed path graph: only forward pairs are connected.
  Graph g = Graph::directed(5);
  for (int i = 0; i + 1 < 5; ++i) {
    g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), 2.0);
  }
  g.finalize();
  RequestGenConfig cfg;
  cfg.num_requests = 30;
  const auto reqs = generate_requests(g, cfg, rng);
  for (const Request& r : reqs) EXPECT_LT(r.source, r.target);
}

TEST(RequestGen, ValueModelsProducePositiveValues) {
  Rng rng(7);
  Graph g = grid_graph(3, 3, 2.0, false);
  for (ValueModel model : {ValueModel::kUniform, ValueModel::kZipf,
                           ValueModel::kProportional}) {
    RequestGenConfig cfg;
    cfg.num_requests = 20;
    cfg.value_model = model;
    for (const Request& r : generate_requests(g, cfg, rng)) {
      EXPECT_GT(r.value, 0.0);
    }
  }
}

TEST(RequestGen, ValidatesConfig) {
  Rng rng(9);
  Graph g = grid_graph(2, 2, 1.0, false);
  RequestGenConfig cfg;
  cfg.demand_min = 0.0;
  EXPECT_THROW(generate_requests(g, cfg, rng), std::invalid_argument);
}

TEST(Scenarios, GridScenarioIsWellFormed) {
  const UfpInstance inst =
      make_grid_scenario(4, 4, 3.0, 25, ValueModel::kUniform, 42);
  EXPECT_EQ(inst.graph().num_vertices(), 16);
  EXPECT_EQ(inst.num_requests(), 25);
  EXPECT_DOUBLE_EQ(inst.bound_B(), 3.0);
  EXPECT_TRUE(inst.is_normalized());
}

TEST(Scenarios, RandomScenarioIsWellFormed) {
  const UfpInstance inst = make_random_scenario(12, 30, 2.0, 15, 43);
  EXPECT_EQ(inst.graph().num_vertices(), 12);
  EXPECT_TRUE(inst.graph().is_directed());
  EXPECT_EQ(inst.num_requests(), 15);
}

TEST(Scenarios, SameSeedReproduces) {
  const UfpInstance a = make_random_scenario(10, 25, 2.0, 10, 77);
  const UfpInstance b = make_random_scenario(10, 25, 2.0, 10, 77);
  ASSERT_EQ(a.num_requests(), b.num_requests());
  for (int r = 0; r < a.num_requests(); ++r) {
    EXPECT_EQ(a.request(r).source, b.request(r).source);
    EXPECT_DOUBLE_EQ(a.request(r).value, b.request(r).value);
  }
}

TEST(Scenarios, RandomAuctionShape) {
  const MucaInstance inst = make_random_auction(10, 4, 20, 2, 5, 1.0, 9.0, 11);
  EXPECT_EQ(inst.num_items(), 10);
  EXPECT_EQ(inst.num_requests(), 20);
  EXPECT_EQ(inst.bound_B(), 4);
  for (const MucaRequest& r : inst.requests()) {
    EXPECT_GE(r.bundle.size(), 2u);
    EXPECT_LE(r.bundle.size(), 5u);
    // Sorted and distinct.
    for (std::size_t i = 1; i < r.bundle.size(); ++i) {
      EXPECT_LT(r.bundle[i - 1], r.bundle[i]);
    }
  }
}

TEST(Scenarios, RandomAuctionValidatesArgs) {
  EXPECT_THROW(make_random_auction(5, 2, 10, 3, 6, 1, 2, 1),
               std::invalid_argument);  // bundle_max > items
  EXPECT_THROW(make_random_auction(5, 0, 10, 1, 3, 1, 2, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tufp
