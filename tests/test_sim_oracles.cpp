#include "tufp/sim/oracles.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tufp/sim/world_gen.hpp"
#include "tufp/workload/io.hpp"

namespace tufp::sim {
namespace {

TEST(SimOracles, FullCatalogueCleanOnHealthyWorlds) {
  const OracleOptions options;
  for (WorldFamily family :
       {WorldFamily::kGrid, WorldFamily::kStaircase, WorldFamily::kRing}) {
    for (std::uint64_t seed : {11ULL, 23ULL}) {
      const SimWorld world = generate_world({family, seed});
      const std::vector<Violation> violations =
          run_oracle_suite(world, options);
      for (const Violation& v : violations) {
        ADD_FAILURE() << family_name(family) << " seed " << seed << ": "
                      << v.oracle << ": " << v.detail;
      }
    }
  }
}

TEST(SimOracles, CatalogueNamesAreUniqueAndSelectable) {
  const auto catalogue = oracle_catalogue();
  ASSERT_GE(catalogue.size(), 10u);
  for (const OracleEntry& entry : catalogue) {
    for (const OracleEntry& other : catalogue) {
      if (&entry != &other) EXPECT_STRNE(entry.name, other.name);
    }
    // Every oracle runs standalone through the subset path.
    const SimWorld world = generate_world({WorldFamily::kGrid, 5});
    const std::vector<std::string> only{entry.name};
    EXPECT_TRUE(run_oracle_suite(world, OracleOptions{}, only).empty())
        << entry.name;
  }
}

TEST(SimOracles, UnknownOracleNameThrows) {
  const SimWorld world = generate_world({WorldFamily::kGrid, 5});
  const std::vector<std::string> only{"not-an-oracle"};
  EXPECT_THROW(run_oracle_suite(world, OracleOptions{}, only),
               std::invalid_argument);
}

// First grid world whose auction actually admits somebody (a world can
// sample the faithful stop threshold and clear nothing; faults on winners
// need winners).
SimWorld world_with_winners() {
  for (std::uint64_t seed = 1;; ++seed) {
    SimWorld world = generate_world({WorldFamily::kGrid, seed});
    const SimPricing pricing =
        sim_price(world.instance, world.solver, OracleOptions{});
    if (pricing.allocation.num_selected() > 0) return world;
  }
}

TEST(SimOracles, OverchargeFaultBreaksIndividualRationality) {
  const SimWorld world = world_with_winners();
  OracleOptions options;
  options.fault = FaultInjection::kOverchargeWinners;
  const std::vector<std::string> only{"payments-ir"};
  const std::vector<Violation> violations =
      run_oracle_suite(world, options, only);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().oracle, "payments-ir");
  EXPECT_NE(violations.front().detail.find("above its bid"),
            std::string::npos);
}

TEST(SimOracles, ChargeLosersFaultBreaksLoserPaysZero) {
  // A saturating world guarantees losers exist for the fault to hit.
  OracleOptions options;
  options.fault = FaultInjection::kChargeLosers;
  const std::vector<std::string> only{"payments-ir"};
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    const SimWorld world = generate_world({WorldFamily::kSingleSink, seed});
    caught = !run_oracle_suite(world, options, only).empty();
  }
  EXPECT_TRUE(caught);
}

TEST(SimOracles, SimPriceFaultSemantics) {
  const SimWorld world = world_with_winners();
  OracleOptions clean;
  const SimPricing honest = sim_price(world.instance, world.solver, clean);
  OracleOptions broken;
  broken.fault = FaultInjection::kOverchargeWinners;
  const SimPricing faulty = sim_price(world.instance, world.solver, broken);

  ASSERT_GT(honest.allocation.num_selected(), 0);
  for (int r = 0; r < world.instance.num_requests(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    const double bid = world.instance.request(r).value;
    // The fault touches payments only, never the allocation.
    EXPECT_EQ(honest.allocation.is_selected(r),
              faulty.allocation.is_selected(r));
    if (honest.allocation.is_selected(r)) {
      EXPECT_LE(honest.payments[i], bid + 1e-9);
      EXPECT_GT(faulty.payments[i], bid);
    } else {
      EXPECT_EQ(honest.payments[i], 0.0);
      EXPECT_EQ(faulty.payments[i], 0.0);
    }
  }
}

TEST(SimOracles, WrappedInstanceReplaysThroughTheSuite) {
  const SimWorld world = generate_world({WorldFamily::kRandomSparse, 29});
  std::stringstream ss;
  save_ufp(world.instance, ss);
  const SimWorld replay = wrap_instance(load_ufp(ss));
  EXPECT_EQ(replay.instance.num_requests(), world.instance.num_requests());
  EXPECT_TRUE(run_oracle_suite(replay, OracleOptions{}).empty());
}

TEST(SimOracles, FaultNamesRoundTrip) {
  for (FaultInjection f :
       {FaultInjection::kNone, FaultInjection::kOverchargeWinners,
        FaultInjection::kChargeLosers}) {
    EXPECT_EQ(fault_from_name(fault_name(f)), f);
  }
  EXPECT_THROW(fault_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace tufp::sim
