// Cross-solver consistency: every algorithm in the library, run on the
// same random instances, must respect the partial order theory imposes:
//
//   any feasible integral value  <=  exact integral OPT
//   exact integral OPT           <=  exact fractional OPT (Figure 1 LP)
//   GK fractional value          <=  exact fractional OPT
//   fractional OPT               <=  every dual certificate
//   BKV-skeleton selections      ==  Bounded-UFP selections (same config)
//
// One seeded sweep ties all modules together end to end — an integration
// net that catches cross-module regressions no unit test sees.
#include <gtest/gtest.h>

#include "tufp/baselines/bkv.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/baselines/randomized_rounding.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/lp/garg_konemann.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/ufp/dual_certificate.hpp"
#include "tufp/ufp/iterative_minimizer.hpp"
#include "tufp/ufp/reasonable.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {
namespace {

constexpr double kTol = 1e-6;

class CrossSolverTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  UfpInstance make(std::uint64_t seed) const {
    Rng rng(seed);
    Graph g = grid_graph(2, 3, 1.6, false);
    RequestGenConfig cfg;
    cfg.num_requests = 9;
    std::vector<Request> reqs = generate_requests(g, cfg, rng);
    return UfpInstance(std::move(g), std::move(reqs));
  }
};

TEST_P(CrossSolverTest, FullOrderingHolds) {
  const UfpInstance inst = make(GetParam() * 211 + 5);

  // Exact references.
  const UfpExactResult exact = solve_ufp_exact(inst);
  ASSERT_TRUE(exact.proven_optimal);
  const double int_opt = exact.optimal_value;
  const double frac_opt = solve_ufp_lp(inst).objective;
  ASSERT_GE(frac_opt, int_opt - kTol);

  // Every integral heuristic: feasible and below intOPT.
  BoundedUfpConfig sat;
  sat.run_to_saturation = true;
  const BoundedUfpResult bounded = bounded_ufp(inst, sat);
  const ExponentialLengthFunction h(sat.epsilon, inst.bound_B());
  IterativeMinimizerConfig mini_cfg;
  mini_cfg.function = &h;
  const auto minimizer = reasonable_iterative_minimizer(inst, mini_cfg);
  const RoundingResult rounding = randomized_rounding_ufp(inst, GetParam());

  const struct {
    const char* name;
    const UfpSolution* solution;
  } integral[] = {
      {"bounded_ufp", &bounded.solution},
      {"minimizer(h)", &minimizer.solution},
      {"greedy(value)", nullptr},
      {"greedy(density)", nullptr},
      {"randomized_rounding", &rounding.solution},
  };
  const UfpSolution greedy_v = greedy_ufp(inst, GreedyRanking::kByValue);
  const UfpSolution greedy_d = greedy_ufp(inst, GreedyRanking::kByDensity);
  for (const auto& algo : integral) {
    const UfpSolution* sol = algo.solution;
    if (std::string(algo.name) == "greedy(value)") sol = &greedy_v;
    if (std::string(algo.name) == "greedy(density)") sol = &greedy_d;
    ASSERT_TRUE(sol->check_feasibility(inst).feasible)
        << algo.name << " seed " << GetParam();
    EXPECT_LE(sol->total_value(inst), int_opt + kTol)
        << algo.name << " seed " << GetParam();
  }

  // Fractional solvers: below fracOPT.
  const GkResult gk = garg_konemann_fractional_ufp(inst);
  EXPECT_LE(gk.objective, frac_opt + kTol);

  // Dual side: every certificate dominates fracOPT.
  const BkvResult bkv = bkv_ufp(inst, sat);
  EXPECT_GE(bkv.tight_upper_bound, frac_opt - kTol);
  EXPECT_GE(bkv.coarse_upper_bound, bkv.tight_upper_bound - kTol);
  const DualCertificate cert = best_dual_bound(inst, bounded.y);
  EXPECT_GE(cert.upper_bound, frac_opt - kTol);

  // Skeleton equivalence: BKV and Bounded-UFP select identically.
  EXPECT_EQ(bkv.solution.selected_requests(),
            bounded.solution.selected_requests());
}

TEST_P(CrossSolverTest, CertificateSandwichesBoundedUfp) {
  const UfpInstance inst = make(GetParam() * 509 + 11);
  BoundedUfpConfig sat;
  sat.run_to_saturation = true;
  const BoundedUfpResult result = bounded_ufp(inst, sat);
  const double value = result.solution.total_value(inst);
  const double int_opt = solve_ufp_exact(inst).optimal_value;
  EXPECT_LE(value, int_opt + kTol);
  EXPECT_GE(result.dual_upper_bound, int_opt - kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace tufp
