#include "tufp/ufp/dual_certificate.hpp"

#include <gtest/gtest.h>

#include "tufp/graph/dijkstra.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/branch_and_bound.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {
namespace {

UfpInstance small_instance(std::uint64_t seed, double capacity = 1.5,
                           int requests = 8) {
  Rng rng(seed);
  Graph g = grid_graph(2, 3, capacity, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

TEST(DualCertificate, RejectsNonPositiveWeights) {
  const UfpInstance inst = small_instance(1);
  std::vector<double> y(static_cast<std::size_t>(inst.graph().num_edges()), 1.0);
  y[0] = 0.0;
  EXPECT_THROW(best_dual_bound(inst, y), std::invalid_argument);
  std::vector<double> wrong_size(3, 1.0);
  EXPECT_THROW(best_dual_bound(inst, wrong_size), std::invalid_argument);
}

TEST(DualCertificate, TrivialFallbackIsTotalValue) {
  // With huge weights the best alpha is infinity: UB = sum of values.
  const UfpInstance inst = small_instance(2);
  std::vector<double> y(static_cast<std::size_t>(inst.graph().num_edges()), 1e12);
  const DualCertificate cert = best_dual_bound(inst, y);
  EXPECT_LE(cert.upper_bound, inst.total_value() + 1e-9);
}

class DualCertRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualCertRandomTest, BoundsFractionalAndIntegralOpt) {
  const UfpInstance inst = small_instance(GetParam());
  Rng rng(GetParam() * 31 + 7);
  std::vector<double> y(static_cast<std::size_t>(inst.graph().num_edges()));
  for (auto& w : y) w = rng.next_double(0.01, 3.0);

  const DualCertificate cert = best_dual_bound(inst, y);
  const double frac = solve_ufp_lp(inst).objective;
  const double integral = solve_ufp_exact(inst).optimal_value;
  EXPECT_GE(cert.upper_bound, frac - 1e-7) << "seed " << GetParam();
  EXPECT_GE(cert.upper_bound, integral - 1e-7);
  EXPECT_GE(frac, integral - 1e-7);
}

TEST_P(DualCertRandomTest, CertificateIsDualFeasible) {
  const UfpInstance inst = small_instance(GetParam() + 100);
  Rng rng(GetParam() * 17 + 3);
  std::vector<double> y(static_cast<std::size_t>(inst.graph().num_edges()));
  for (auto& w : y) w = rng.next_double(0.05, 2.0);

  const DualCertificate cert = best_dual_bound(inst, y);
  // Verify z_r + (d_r/alpha) * sp_r >= v_r directly (shortest path suffices
  // for all paths in S_r).
  ShortestPathEngine engine(inst.graph());
  for (int r = 0; r < inst.num_requests(); ++r) {
    const Request& req = inst.request(r);
    const double sp = engine.shortest_path(y, req.source, req.target);
    if (sp >= kInf) continue;
    const double scaled =
        cert.alpha > 0.0 ? req.demand * sp / cert.alpha : 0.0;
    EXPECT_GE(cert.z[static_cast<std::size_t>(r)] + scaled, req.value - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualCertRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(DualCertificate, TightensAlongAlgorithmRun) {
  // Feeding the algorithm's own final weights into the standalone
  // certificate gives a valid bound (often looser than the in-run minimum).
  const UfpInstance inst = small_instance(42, 3.0, 10);
  BoundedUfpConfig cfg;
  cfg.run_to_saturation = true;
  const BoundedUfpResult result = bounded_ufp(inst, cfg);
  EXPECT_GT(result.iterations, 0);
  const DualCertificate cert = best_dual_bound(inst, result.y);
  const double value = result.solution.total_value(inst);
  EXPECT_GE(cert.upper_bound, value - 1e-9);
  EXPECT_GE(result.dual_upper_bound, value - 1e-9);
}

TEST(DualCertificate, UnreachableRequestsIgnored) {
  Graph g = Graph::directed(3);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  UfpInstance inst(std::move(g), {{0, 1, 1.0, 2.0}, {0, 2, 1.0, 500.0}});
  const std::vector<double> y{1.0};
  const DualCertificate cert = best_dual_bound(inst, y);
  // The unreachable request has no dual constraint; the bound stays small.
  EXPECT_LE(cert.upper_bound, 2.0 + 1e-9);
}

}  // namespace
}  // namespace tufp
