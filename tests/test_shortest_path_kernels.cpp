// Cross-checks of the two ShortestPathEngine kernels (dijkstra.hpp).
//
// The bucket-queue (dial) kernel must be byte-for-byte interchangeable
// with the heap kernel wherever it is eligible: same distances, same
// canonical (lexicographic-min predecessor) paths, for single-pair and
// multi-target tree queries alike — including on tie-heavy uniform-weight
// graphs, which is where queue disciplines usually diverge. The solver
// cross-check at the bottom pins the consequence the engine relies on:
// Bounded-UFP output is invariant under the kernel choice.
#include "tufp/graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tufp/graph/bellman_ford.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"

namespace tufp {
namespace {

class KernelCrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

// Random positive weights with a bounded ratio, so the bucket kernel is
// always eligible; compare both kernels against each other (exact) and
// against Bellman-Ford (tolerance).
TEST_P(KernelCrossCheckTest, SameDistancesAndPathsEverywhere) {
  Rng rng(GetParam());
  const bool directed = rng.next_bool();
  const int n = 4 + static_cast<int>(rng.next_below(12));
  const int extra = static_cast<int>(rng.next_below(2 * n));
  Graph g = random_graph(n, n - 1 + extra, 1.0, 1.0, directed, rng);

  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.next_double(0.2, 5.0);
  const WeightProfile profile = WeightProfile::scan(weights);
  ASSERT_TRUE(profile.all_positive);

  ShortestPathEngine heap(g, SpKernel::kHeap);
  ShortestPathEngine bucket(g, SpKernel::kBucket);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const std::vector<double> reference = bellman_ford(g, weights, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (s == t) continue;
      Path heap_path;
      Path bucket_path;
      const double dh = heap.shortest_path(weights, s, t, &heap_path, {},
                                           &profile);
      const double db = bucket.shortest_path(weights, s, t, &bucket_path, {},
                                             &profile);
      ASSERT_EQ(bucket.last_used_kernel(), SpKernel::kBucket);
      // Identical relaxation semantics -> bitwise identical distances.
      ASSERT_EQ(dh, db) << "seed=" << GetParam() << " s=" << s << " t=" << t;
      ASSERT_EQ(heap_path, bucket_path)
          << "seed=" << GetParam() << " s=" << s << " t=" << t;
      ASSERT_NEAR(dh, reference[static_cast<std::size_t>(t)], 1e-9);
      if (dh < kInf) {
        ASSERT_TRUE(is_simple_path(g, heap_path, s, t));
        ASSERT_NEAR(path_length(heap_path, weights), dh, 1e-9);
      }
    }
  }
}

// Uniform weights maximize shortest-path ties — grids have exponentially
// many equal-length paths — which is exactly where naive queue orders
// diverge. The canonical tie-break must keep the kernels identical.
TEST_P(KernelCrossCheckTest, TieHeavyUniformGridsAgree) {
  Rng rng(GetParam() * 977 + 5);
  const int side = 3 + static_cast<int>(rng.next_below(4));
  Graph g = grid_graph(side, side, 2.0, /*directed=*/false);
  const std::vector<double> weights(static_cast<std::size_t>(g.num_edges()),
                                    1.0);
  const WeightProfile profile = WeightProfile::scan(weights);

  ShortestPathEngine heap(g, SpKernel::kHeap);
  ShortestPathEngine bucket(g, SpKernel::kBucket);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (s == t) continue;
      Path hp;
      Path bp;
      ASSERT_EQ(heap.shortest_path(weights, s, t, &hp, {}, &profile),
                bucket.shortest_path(weights, s, t, &bp, {}, &profile));
      ASSERT_EQ(hp, bp) << "s=" << s << " t=" << t;
    }
  }
}

// The canonical path's every step uses the lexicographically smallest
// (predecessor, edge) among shortest predecessors — the property the
// cross-kernel and cross-shard determinism proofs rest on.
TEST_P(KernelCrossCheckTest, PathsUseLexMinShortestPredecessors) {
  Rng rng(GetParam() * 31 + 7);
  const int n = 5 + static_cast<int>(rng.next_below(8));
  Graph g = random_graph(n, 2 * n, 1.0, 1.0, /*directed=*/true, rng);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()));
  for (auto& w : weights) w = 0.25 * (1.0 + rng.next_below(8));  // many ties
  const WeightProfile profile = WeightProfile::scan(weights);

  ShortestPathEngine engine(g, SpKernel::kBucket);
  const VertexId s = 0;
  // Engine-exact distances from s (bitwise consistent with path checks).
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  dist[0] = 0.0;
  for (VertexId v = 1; v < n; ++v) {
    dist[static_cast<std::size_t>(v)] =
        engine.shortest_path(weights, s, v, nullptr, {}, &profile);
  }

  for (VertexId t = 1; t < n; ++t) {
    if (dist[static_cast<std::size_t>(t)] >= kInf) continue;
    Path path;
    engine.shortest_path(weights, s, t, &path, {}, &profile);
    const std::vector<VertexId> vertices = path_vertices(g, path, s);
    for (std::size_t k = 1; k < vertices.size(); ++k) {
      const VertexId v = vertices[k];
      VertexId best_u = kInvalidVertex;
      EdgeId best_e = kInvalidEdge;
      for (VertexId u = 0; u < n; ++u) {
        if (dist[static_cast<std::size_t>(u)] >= kInf) continue;
        for (const Arc& arc : g.arcs_from(u)) {
          if (arc.to != v) continue;
          const double w = weights[static_cast<std::size_t>(arc.edge)];
          if (!(w > 0.0)) continue;
          if (dist[static_cast<std::size_t>(u)] + w !=
              dist[static_cast<std::size_t>(v)]) {
            continue;
          }
          if (best_u == kInvalidVertex || u < best_u ||
              (u == best_u && arc.edge < best_e)) {
            best_u = u;
            best_e = arc.edge;
          }
        }
      }
      ASSERT_EQ(vertices[k - 1], best_u) << "t=" << t << " step=" << k;
      ASSERT_EQ(path[k - 1], best_e) << "t=" << t << " step=" << k;
    }
  }
}

// One tree query must answer exactly like the per-target single-pair
// queries it replaces (the sharded cache refresh depends on this).
TEST_P(KernelCrossCheckTest, TreeMatchesSinglePairQueries) {
  Rng rng(GetParam() * 131 + 3);
  const int n = 6 + static_cast<int>(rng.next_below(10));
  Graph g = random_graph(n, 3 * n, 1.0, 1.0, rng.next_bool(), rng);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.next_double(0.5, 2.0);
  const WeightProfile profile = WeightProfile::scan(weights);

  for (const SpKernel kernel : {SpKernel::kHeap, SpKernel::kBucket}) {
    ShortestPathEngine tree_engine(g, kernel);
    ShortestPathEngine pair_engine(g, kernel);
    const VertexId s = 0;
    std::vector<ShortestPathEngine::TreeTarget> targets;
    std::vector<Path> tree_paths(static_cast<std::size_t>(n));
    for (VertexId t = 1; t < n; ++t) {
      ShortestPathEngine::TreeTarget target;
      target.vertex = t;
      target.path = &tree_paths[static_cast<std::size_t>(t)];
      targets.push_back(target);
    }
    // Duplicate target: allowed, must answer like the first occurrence.
    Path dup_path;
    targets.push_back({1, 0.0, &dup_path});
    tree_engine.shortest_tree(weights, s, targets, {}, &profile);

    for (const auto& target : targets) {
      Path pair_path;
      const double d = pair_engine.shortest_path(weights, s, target.vertex,
                                                 &pair_path, {}, &profile);
      ASSERT_EQ(target.length, d) << "t=" << target.vertex;
      if (d < kInf) {
        ASSERT_EQ(*target.path, pair_path) << "t=" << target.vertex;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelCrossCheckTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KernelSelection, AutoNeedsProfileAndBoundedRange) {
  Graph g = grid_graph(4, 4, 2.0, false);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 1.0);
  ShortestPathEngine engine(g);  // kAuto

  // No profile: general-weights fallback.
  engine.shortest_path(weights, 0, 15);
  EXPECT_EQ(engine.last_used_kernel(), SpKernel::kHeap);

  // Bounded positive range: bucket queue.
  WeightProfile profile = WeightProfile::scan(weights);
  engine.shortest_path(weights, 0, 15, nullptr, {}, &profile);
  EXPECT_EQ(engine.last_used_kernel(), SpKernel::kBucket);

  // Range wider than the bucket cap: heap, even when forced to bucket.
  weights[0] = 1e9;
  profile = WeightProfile::scan(weights);
  engine.set_kernel(SpKernel::kBucket);
  engine.shortest_path(weights, 0, 15, nullptr, {}, &profile);
  EXPECT_EQ(engine.last_used_kernel(), SpKernel::kHeap);

  // A zero weight disqualifies the monotone bucket layout.
  weights[0] = 0.0;
  profile = WeightProfile::scan(weights);
  EXPECT_FALSE(profile.all_positive);
  engine.shortest_path(weights, 0, 15, nullptr, {}, &profile);
  EXPECT_EQ(engine.last_used_kernel(), SpKernel::kHeap);
}

TEST(KernelSelection, ProfileIncludeTracksGrowth) {
  std::vector<double> weights{1.0, 2.0, 4.0};
  WeightProfile profile = WeightProfile::scan(weights);
  EXPECT_DOUBLE_EQ(profile.min_positive, 1.0);
  EXPECT_DOUBLE_EQ(profile.max_weight, 4.0);
  profile.include(16.0);
  EXPECT_DOUBLE_EQ(profile.max_weight, 16.0);
  EXPECT_TRUE(profile.all_positive);
  profile.include(0.0);
  EXPECT_FALSE(profile.all_positive);
}

TEST(KernelCrossCheck, BlockedEdgesRespectedByBothKernels) {
  Graph g = grid_graph(4, 4, 2.0, false);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 1.0);
  const WeightProfile profile = WeightProfile::scan(weights);
  ShortestPathEngine heap(g, SpKernel::kHeap);
  ShortestPathEngine bucket(g, SpKernel::kBucket);
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint8_t> blocked(
        static_cast<std::size_t>(g.num_edges()), 0);
    for (auto& b : blocked) b = rng.next_below(4) == 0 ? 1 : 0;
    Path hp;
    Path bp;
    const double dh = heap.shortest_path(weights, 0, 15, &hp, blocked, &profile);
    const double db =
        bucket.shortest_path(weights, 0, 15, &bp, blocked, &profile);
    ASSERT_EQ(dh, db) << "round=" << round;
    if (dh < kInf) ASSERT_EQ(hp, bp);
  }
}

// Kernel choice must not leak into solver output: Bounded-UFP selections,
// paths and duals are identical under heap, bucket and auto.
TEST(KernelCrossCheck, BoundedUfpInvariantUnderKernel) {
  Rng rng(4242);
  Graph g = grid_graph(5, 5, 6.0, false);
  RequestGenConfig cfg;
  cfg.num_requests = 120;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  const UfpInstance inst(std::move(g), std::move(reqs));

  BoundedUfpConfig base;
  base.epsilon = 0.5;
  base.run_to_saturation = true;
  base.parallel = false;

  BoundedUfpConfig heap_cfg = base;
  heap_cfg.sp_kernel = SpKernel::kHeap;
  BoundedUfpConfig bucket_cfg = base;
  bucket_cfg.sp_kernel = SpKernel::kBucket;
  BoundedUfpConfig auto_cfg = base;
  auto_cfg.sp_kernel = SpKernel::kAuto;

  const BoundedUfpResult a = bounded_ufp(inst, heap_cfg);
  const BoundedUfpResult b = bounded_ufp(inst, bucket_cfg);
  const BoundedUfpResult c = bounded_ufp(inst, auto_cfg);
  ASSERT_GT(a.iterations, 0);
  EXPECT_EQ(a.solution.selected_requests(), b.solution.selected_requests());
  EXPECT_EQ(a.solution.selected_requests(), c.solution.selected_requests());
  EXPECT_EQ(a.final_dual_sum, b.final_dual_sum);
  EXPECT_EQ(a.final_dual_sum, c.final_dual_sum);
  for (int r = 0; r < inst.num_requests(); ++r) {
    if (!a.solution.is_selected(r)) continue;
    EXPECT_EQ(*a.solution.path_of(r), *b.solution.path_of(r)) << "r=" << r;
    EXPECT_EQ(*a.solution.path_of(r), *c.solution.path_of(r)) << "r=" << r;
  }
}

}  // namespace
}  // namespace tufp
