// EpochEngine::reset() vs warm state (DESIGN.md §12/§13): after a full
// churn replay — reclaims fired, warm trees stored and revalidated,
// ledger clocks advanced — reset() must return the engine to a state
// byte-indistinguishable from freshly constructed. Pinned by replaying
// the same churn world twice through one engine (reset between) and
// comparing every deterministic report field, the final residual and the
// lifetime counters against a fresh engine's replay with exact ==. The
// sharded coordinator's reset() is held to the same bar, shard books
// included.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/sharded_engine.hpp"
#include "tufp/sim/world.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/temporal/duration.hpp"

namespace tufp {
namespace {

// Every deterministic field of one epoch's report (wall-clock seconds
// excluded — they are the only nondeterministic fields by contract).
struct ReportDigest {
  int epoch;
  int batch_size;
  int admitted;
  int invalid_rejected;
  double close_time;
  double offered_value;
  double admitted_value;
  double revenue;
  double dual_upper_bound;
  int active_edges;
  int saturated_edges;
  double min_residual;
  int solver_iterations;
  std::int64_t sp_computations;
  std::int64_t sp_tree_runs;
  int expired_leases;
  std::int64_t active_leases;
  double occupancy;
  double max_admission_delay;

  bool operator==(const ReportDigest&) const = default;
};

ReportDigest digest(const AdmissionReport& r) {
  return {r.epoch,          r.batch_size,       r.admitted,
          r.invalid_rejected, r.close_time,     r.offered_value,
          r.admitted_value, r.revenue,          r.dual_upper_bound,
          r.active_edges,   r.saturated_edges,  r.min_residual,
          r.solver_iterations, r.sp_computations, r.sp_tree_runs,
          r.expired_leases, r.active_leases,    r.occupancy,
          r.max_admission_delay};
}

// One full replay of the world's stream (the engine drivers' batching
// rule), returning the per-epoch digests.
std::vector<ReportDigest> replay(const sim::SimWorld& world,
                                 EpochEngine& engine) {
  std::vector<ReportDigest> out;
  const auto& requests = world.instance.requests();
  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimedRequest t;
    t.arrival_time = world.arrivals[i];
    t.sequence = static_cast<std::int64_t>(i);
    t.duration = i < world.durations.size() ? world.durations[i] : kInf;
    t.request = requests[i];
    batch.push_back(t);
    if (static_cast<int>(batch.size()) < world.max_batch &&
        i + 1 < requests.size()) {
      continue;
    }
    out.push_back(digest(engine.run_epoch(batch)));
    batch.clear();
  }
  return out;
}

void expect_same_run(const std::vector<ReportDigest>& expected,
                     const std::vector<ReportDigest>& actual,
                     const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(expected[i] == actual[i])
        << label << ": epoch digest " << i << " diverged";
  }
}

TEST(EngineReset, ResetThenReplayIsByteIdenticalToAFreshEngine) {
  // A churn world: finite leases expire mid-replay, so the warm state a
  // stale reset would leak — tree-cache clocks, residual stamps,
  // last_decrease, ledger wheel — is all genuinely exercised.
  sim::ScaleChurnSpec spec;
  spec.rows = 24;
  spec.cols = 24;
  spec.num_requests = 600;
  spec.source_pool = 10;
  spec.target_radius = 5;
  spec.seed = 29;
  const sim::SimWorld world = sim::make_scale_churn_world(spec);
  ASSERT_FALSE(world.durations.empty());

  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.track_leases = true;
  config.solver = world.solver;
  config.solver.capacity_guard = true;

  EpochEngine warm(world.instance.shared_graph(), config);
  const std::vector<ReportDigest> first = replay(world, warm);
  ASSERT_FALSE(first.empty());
  EXPECT_GT(warm.metrics().counters().leases_expired, 0)
      << "world must churn or the reset audit is vacuous";

  warm.reset();
  EXPECT_EQ(warm.epochs_run(), 0);
  EXPECT_EQ(warm.metrics().counters().requests_seen, 0);
  const std::vector<ReportDigest> after_reset = replay(world, warm);

  EpochEngine fresh(world.instance.shared_graph(), config);
  const std::vector<ReportDigest> baseline = replay(world, fresh);

  expect_same_run(baseline, after_reset, "reset engine vs fresh engine");
  expect_same_run(baseline, first, "first run vs fresh engine");

  // Final state, not just the report stream: residual and the lifetime
  // counters agree exactly.
  const auto warm_res = warm.residual();
  const auto fresh_res = fresh.residual();
  ASSERT_EQ(warm_res.size(), fresh_res.size());
  for (std::size_t e = 0; e < warm_res.size(); ++e) {
    EXPECT_EQ(warm_res[e], fresh_res[e]) << "edge " << e;
  }
  EXPECT_EQ(warm.metrics().counters().admitted,
            fresh.metrics().counters().admitted);
  EXPECT_EQ(warm.metrics().counters().leases_expired,
            fresh.metrics().counters().leases_expired);
  EXPECT_EQ(warm.metrics().counters().sp_tree_runs,
            fresh.metrics().counters().sp_tree_runs);
  EXPECT_EQ(warm.metrics().counters().trees_kept_on_reclaim,
            fresh.metrics().counters().trees_kept_on_reclaim);
}

TEST(EngineReset, ShardedResetRestoresEveryShardAndTheCoordinator) {
  sim::ScaleChurnSpec spec;
  spec.rows = 20;
  spec.cols = 20;
  spec.num_requests = 400;
  spec.source_pool = 8;
  spec.target_radius = 4;
  spec.durations = DurationProfile::kHeavyTailed;
  spec.seed = 31;
  const sim::SimWorld world = sim::make_scale_churn_world(spec);
  ASSERT_FALSE(world.durations.empty());

  EpochEngineConfig config;
  config.max_batch = world.max_batch;
  config.track_leases = true;
  config.solver = world.solver;
  config.solver.capacity_guard = true;

  ShardedEpochEngine sharded(world.instance.shared_graph(), config, 3);
  const std::vector<ReportDigest> first = replay(world, sharded.engine());
  const shard::ShardCounters first_totals = sharded.totals();
  EXPECT_GT(first_totals.commits, 0);
  EXPECT_TRUE(sharded.verify().empty());

  sharded.reset();
  EXPECT_EQ(sharded.winners(), 0);
  EXPECT_EQ(sharded.totals().commits, 0);
  EXPECT_TRUE(sharded.epoch_reports().empty());
  for (int s = 0; s < sharded.num_shards(); ++s) {
    const shard::ShardWindow& w = sharded.plan().window(s);
    for (EdgeId e = w.begin; e < w.end; ++e) {
      EXPECT_EQ(sharded.shard(s).residual(e), sharded.shard(s).capacity(e));
    }
    EXPECT_EQ(sharded.shard(s).book().active_leases(), 0);
  }

  const std::vector<ReportDigest> after_reset = replay(world, sharded.engine());
  expect_same_run(first, after_reset, "sharded reset replay");
  EXPECT_TRUE(sharded.verify().empty());

  // The protocol history replays identically too, counter for counter.
  const shard::ShardCounters again = sharded.totals();
  EXPECT_EQ(again.reservations, first_totals.reservations);
  EXPECT_EQ(again.conflicts, first_totals.conflicts);
  EXPECT_EQ(again.aborts, first_totals.aborts);
  EXPECT_EQ(again.commits, first_totals.commits);
  EXPECT_EQ(again.releases, first_totals.releases);
  EXPECT_EQ(again.reclaims, first_totals.reclaims);
}

}  // namespace
}  // namespace tufp
