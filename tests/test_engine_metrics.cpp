#include "tufp/engine/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace tufp {
namespace {

TEST(GeometricHistogram, EmptyDefaults) {
  GeometricHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.stats().count(), 0u);
}

TEST(GeometricHistogram, PercentileBracketsTheSample) {
  GeometricHistogram h(/*min_value=*/1e-6, /*growth=*/2.0, /*num_buckets=*/40);
  for (int i = 0; i < 1000; ++i) h.record(0.010);  // 10ms
  EXPECT_EQ(h.count(), 1000);
  // Bucket upper edges are powers of two times min_value; the estimate
  // must bracket the true value within one growth factor.
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 0.010);
  EXPECT_LE(p50, 0.020 * 2.0);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 0.010);
}

TEST(GeometricHistogram, OrdersMixedValues) {
  GeometricHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1e-4);
  for (int i = 0; i < 10; ++i) h.record(1.0);
  EXPECT_LT(h.percentile(0.5), h.percentile(0.95));
  EXPECT_GE(h.percentile(0.95), 1.0);
}

TEST(GeometricHistogram, ClampsUnderAndOverflow) {
  GeometricHistogram h(1.0, 2.0, 4);  // covers [1, 16)
  h.record(0.0);     // below min: bucket 0
  h.record(1e9);     // above max: last bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 16.0);
}

TEST(GeometricHistogram, MergeAddsCounts) {
  GeometricHistogram a, b;
  for (int i = 0; i < 50; ++i) a.record(0.001);
  for (int i = 0; i < 50; ++i) b.record(0.1);
  a.merge(b);
  EXPECT_EQ(a.count(), 100);
  EXPECT_EQ(a.stats().count(), 100u);
  EXPECT_LT(a.percentile(0.25), a.percentile(0.9));
}

TEST(GeometricHistogram, MergeRejectsMismatchedLayouts) {
  GeometricHistogram a(1e-6, 2.0, 40);
  GeometricHistogram b(1e-6, 2.0, 32);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(GeometricHistogram, RejectsBadInputs) {
  EXPECT_THROW(GeometricHistogram(0.0, 2.0, 8), std::invalid_argument);
  EXPECT_THROW(GeometricHistogram(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(GeometricHistogram(1.0, 2.0, 0), std::invalid_argument);
  GeometricHistogram h;
  EXPECT_THROW(h.record(-1.0), std::invalid_argument);
  EXPECT_THROW(h.percentile(1.5), std::invalid_argument);
}

TEST(GeometricHistogram, EmptyHistogramSerializesCleanly) {
  // A phase that never ran still serializes: the empty histogram must
  // short-circuit to a pinned literal instead of pushing nan/inf bucket
  // edges or RunningStats reads through the det formatter.
  GeometricHistogram h;
  EXPECT_EQ(h.to_json(), "{\"count\":0,\"buckets\":[]}");
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(EngineMetrics, AdmittedFraction) {
  EngineMetrics m;
  EXPECT_EQ(m.admitted_fraction(), 0.0);
  m.counters().admitted = 30;
  m.counters().rejected = 70;
  EXPECT_DOUBLE_EQ(m.admitted_fraction(), 0.3);
}

TEST(EngineMetrics, SummaryKeepsWallClockOffTheDeterministicBlock) {
  EngineMetrics m;
  m.counters().epochs = 2;
  m.counters().requests_seen = 100;
  m.counters().admitted = 40;
  m.counters().rejected = 60;
  m.counters().revenue = 123.0;
  m.solve_seconds().record(0.5);

  const std::string det = m.summary(/*include_wall_clock=*/false);
  EXPECT_NE(det.find("admitted=40"), std::string::npos);
  EXPECT_NE(det.find("revenue=123.00"), std::string::npos);
  EXPECT_EQ(det.find("solve_seconds"), std::string::npos);

  const std::string full = m.summary(/*include_wall_clock=*/true);
  EXPECT_NE(full.find("solve_seconds_mean"), std::string::npos);
}

}  // namespace
}  // namespace tufp
