#include <gtest/gtest.h>

#include "tufp/baselines/bkv.hpp"
#include "tufp/baselines/greedy.hpp"
#include "tufp/baselines/randomized_rounding.hpp"
#include "tufp/graph/generators.hpp"
#include "tufp/lp/ufp_lp.hpp"
#include "tufp/ufp/bounded_ufp.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/rng.hpp"
#include "tufp/workload/request_gen.hpp"
#include "tufp/workload/scenarios.hpp"

namespace tufp {
namespace {

UfpInstance make_instance(std::uint64_t seed, double capacity, int requests) {
  Rng rng(seed);
  Graph g = grid_graph(3, 3, capacity, false);
  RequestGenConfig cfg;
  cfg.num_requests = requests;
  std::vector<Request> reqs = generate_requests(g, cfg, rng);
  return UfpInstance(std::move(g), std::move(reqs));
}

TEST(Greedy, ByValuePicksHighValueFirst) {
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  UfpInstance inst(std::move(g), {{0, 1, 0.8, 1.0}, {0, 1, 0.8, 9.0}});
  const UfpSolution sol = greedy_ufp(inst, GreedyRanking::kByValue);
  EXPECT_FALSE(sol.is_selected(0));
  EXPECT_TRUE(sol.is_selected(1));
}

TEST(Greedy, AlwaysFeasible) {
  for (std::uint64_t seed = 1; seed < 9; ++seed) {
    const UfpInstance inst = make_instance(seed, 1.2, 18);
    for (GreedyRanking ranking :
         {GreedyRanking::kByValue, GreedyRanking::kByDensity}) {
      const UfpSolution sol = greedy_ufp(inst, ranking);
      EXPECT_TRUE(sol.check_feasibility(inst).feasible) << "seed " << seed;
    }
  }
}

TEST(Greedy, DensityBeatsValueOnAdversarialMix) {
  // One huge-value long-demand request vs many small efficient ones.
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  std::vector<Request> reqs;
  reqs.push_back({0, 1, 1.0, 1.2});  // hog: value 1.2 for the whole edge
  for (int i = 0; i < 9; ++i) reqs.push_back({0, 1, 0.1, 0.5});
  UfpInstance inst(std::move(g), std::move(reqs));
  const double by_value =
      greedy_ufp(inst, GreedyRanking::kByValue).total_value(inst);
  const double by_density =
      greedy_ufp(inst, GreedyRanking::kByDensity).total_value(inst);
  EXPECT_DOUBLE_EQ(by_value, 1.2);
  EXPECT_DOUBLE_EQ(by_density, 4.5);
}

TEST(Greedy, MucaVariantsFeasible) {
  const MucaInstance inst = make_random_auction(8, 2, 16, 2, 4, 1, 9, 5);
  for (GreedyRanking ranking :
       {GreedyRanking::kByValue, GreedyRanking::kByDensity}) {
    const MucaSolution sol = greedy_muca(inst, ranking);
    EXPECT_TRUE(sol.check_feasibility(inst).feasible);
    EXPECT_GT(sol.num_selected(), 0);
  }
}

TEST(Bkv, SharedSkeletonMatchesBoundedUfpSelections) {
  const UfpInstance inst = make_instance(11, 2.0, 15);
  BoundedUfpConfig cfg;
  cfg.run_to_saturation = true;
  const BkvResult bkv = bkv_ufp(inst, cfg);
  const BoundedUfpResult ufp = bounded_ufp(inst, cfg);
  EXPECT_GT(bkv.iterations, 0);
  EXPECT_EQ(bkv.solution.selected_requests(), ufp.solution.selected_requests());
  EXPECT_EQ(bkv.iterations, ufp.iterations);
}

TEST(Bkv, CoarseBoundDominatesTightBound) {
  // The paper's improvement is exactly this gap: the z-credited certificate
  // is never worse than the BKV-style one.
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const UfpInstance inst = make_instance(seed, 2.5, 20);
    BoundedUfpConfig cfg;
    cfg.run_to_saturation = true;
    const BkvResult bkv = bkv_ufp(inst, cfg);
    EXPECT_GT(bkv.iterations, 0);
    const double value = bkv.solution.total_value(inst);
    EXPECT_GE(bkv.coarse_upper_bound, bkv.tight_upper_bound - 1e-9)
        << "seed " << seed;
    EXPECT_GE(bkv.tight_upper_bound, value - 1e-9);
  }
}

TEST(Bkv, CoarseBoundStillSound) {
  // Coarse certificate uses the repetitions dual: must dominate the
  // fractional UFP optimum too.
  const UfpInstance inst = make_instance(31, 1.5, 8);
  BoundedUfpConfig cfg;
  cfg.run_to_saturation = true;
  const BkvResult bkv = bkv_ufp(inst, cfg);
  const double frac = solve_ufp_lp(inst).objective;
  EXPECT_GE(bkv.coarse_upper_bound, frac - 1e-6);
}

TEST(RandomizedRoundingTest, FeasibleAfterRepair) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    const UfpInstance inst = make_instance(seed, 1.5, 14);
    const RoundingResult result = randomized_rounding_ufp(inst, seed);
    EXPECT_TRUE(result.solution.check_feasibility(inst).feasible)
        << "seed " << seed;
    EXPECT_GE(result.fractional_optimum,
              result.solution.total_value(inst) - 1e-6);
  }
}

TEST(RandomizedRoundingTest, DeterministicGivenSeed) {
  const UfpInstance inst = make_instance(50, 1.5, 12);
  const auto a = randomized_rounding_ufp(inst, 99);
  const auto b = randomized_rounding_ufp(inst, 99);
  EXPECT_EQ(a.solution.selected_requests(), b.solution.selected_requests());
}

TEST(RandomizedRoundingTest, TracksLpOnLargeCapacity) {
  // In the large-capacity regime rounding rarely needs repair and lands
  // close to the fractional optimum (the 1+eps story the paper cites).
  const UfpInstance inst = make_instance(60, 40.0, 20);
  const RoundingResult result = randomized_rounding_ufp(inst, 7);
  EXPECT_EQ(result.dropped, 0);
  EXPECT_GE(result.solution.total_value(inst),
            0.75 * result.fractional_optimum);
}

TEST(RandomizedRoundingTest, ScaleValidation) {
  const UfpInstance inst = make_instance(70, 2.0, 5);
  RoundingConfig cfg;
  cfg.scale = 0.0;
  EXPECT_THROW(randomized_rounding_ufp(inst, 1, cfg), std::invalid_argument);
}


TEST(Bkv, SaturationRequiresGuard) {
  const UfpInstance inst = make_instance(77, 2.0, 6);
  BoundedUfpConfig cfg;
  cfg.run_to_saturation = true;
  cfg.capacity_guard = false;
  EXPECT_THROW(bkv_ufp(inst, cfg), std::invalid_argument);
}

TEST(Bkv, FaithfulThresholdStopsOutOfRegime) {
  // B = 2 with the default eps: threshold below m, so the faithful run is
  // empty and both certificates stay at +infinity (no iteration priced).
  const UfpInstance inst = make_instance(78, 2.0, 6);
  const BkvResult bkv = bkv_ufp(inst);
  EXPECT_EQ(bkv.iterations, 0);
  EXPECT_TRUE(bkv.stopped_by_threshold);
}

}  // namespace
}  // namespace tufp
