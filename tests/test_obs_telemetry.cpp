// Observability layer (DESIGN.md §11): the canonical JSON formatter, the
// two-channel telemetry discipline (det events byte-identical across
// thread counts, wall events strictly segregated), histogram JSON
// stability across --threads, the in-service sanity oracles on healthy
// and fault-injected engines, and the engine-side reclaim-leak injection
// knob the oracle-bite tests depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "tufp/engine/epoch_engine.hpp"
#include "tufp/engine/metrics.hpp"
#include "tufp/engine/request_stream.hpp"
#include "tufp/obs/sanity.hpp"
#include "tufp/obs/telemetry.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/json.hpp"
#include "tufp/util/math.hpp"
#include "tufp/util/parallel.hpp"

namespace tufp {
namespace {

TimedRequest make_timed(double arrival, std::int64_t sequence, double demand,
                        double value, double duration, VertexId s,
                        VertexId t) {
  TimedRequest req;
  req.arrival_time = arrival;
  req.sequence = sequence;
  req.duration = duration;
  req.request = {s, t, demand, value};
  return req;
}

// ------------------------------------------------------------- util/json

TEST(JsonUtil, DoubleRoundTripsShortestForm) {
  // %.17g is the shortest format guaranteed to round-trip any double;
  // every telemetry stream funnels through this one formatter, so
  // byte-identity of events reduces to bit-identity of the doubles.
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(1.5), "1.5");
  EXPECT_EQ(json_double(0.1), "0.10000000000000001");
  EXPECT_EQ(json_double(-3.0), "-3");
}

TEST(JsonUtil, ObjectPreservesInsertionOrderAndEscapes) {
  JsonObject obj;
  obj.field("b", 1).field("a", std::string_view("x\"y\n")).field("flag", true);
  EXPECT_EQ(obj.str(), "{\"b\":1,\"a\":\"x\\\"y\\n\",\"flag\":true}");
}

TEST(JsonUtil, NonFiniteDoublesQuotedInObjects) {
  // JSON has no inf/nan literals: as object fields they are emitted as
  // strings so every line stays parseable by a strict reader.
  JsonObject obj;
  obj.field("inf", kInf).field("ninf", -kInf);
  EXPECT_EQ(obj.str(), "{\"inf\":\"inf\",\"ninf\":\"-inf\"}");
}

// ------------------------------------------------- channel segregation

TEST(Telemetry, ChannelsAreStrictlySeparated) {
  std::ostringstream det;
  std::ostringstream wall;
  obs::StreamSink sink(&det, &wall);
  sink.emit(obs::Channel::kDeterministic, "{\"chan\":\"det\"}");
  sink.emit(obs::Channel::kWallClock, "{\"chan\":\"wall\"}");
  EXPECT_EQ(det.str(), "{\"chan\":\"det\"}\n");
  EXPECT_EQ(wall.str(), "{\"chan\":\"wall\"}\n");
}

TEST(Telemetry, NullChannelDropsSilently) {
  std::ostringstream det;
  obs::StreamSink sink(&det, nullptr);  // det-only sink (tufp_engine --json)
  sink.emit(obs::Channel::kWallClock, "{\"chan\":\"wall\"}");
  sink.emit(obs::Channel::kDeterministic, "{\"chan\":\"det\"}");
  EXPECT_EQ(det.str(), "{\"chan\":\"det\"}\n");
}

TEST(Telemetry, EveryEventCarriesItsChannelTag) {
  // The chan field is the contract check_trend.py splits streams by: a
  // full epoch + sanity + finish cycle must tag every single line.
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, 10.0);
  g.finalize();
  auto base = std::make_shared<const Graph>(std::move(g));
  EpochEngine engine(base, {});

  std::ostringstream det;
  std::ostringstream wall;
  obs::StreamSink sink(&det, &wall);
  obs::EpochTelemetry telemetry(&sink, {/*histogram_every=*/1,
                                        /*wall_events=*/true});
  const AdmissionReport report =
      engine.run_epoch({make_timed(0.0, 0, 0.5, 1.0, kInf, 0, 1)});
  telemetry.on_epoch(report, engine.metrics());
  telemetry.on_sanity(1, 3, 0);
  telemetry.finish(engine.metrics(), 1, 0.05, 0.1, 10.0);

  std::istringstream det_lines(det.str());
  std::string line;
  int det_count = 0;
  while (std::getline(det_lines, line)) {
    EXPECT_NE(line.find("\"chan\":\"det\""), std::string::npos) << line;
    ++det_count;
  }
  // epoch + hist (cadence 1) + sanity + final hist + summary.
  EXPECT_EQ(det_count, 5);

  std::istringstream wall_lines(wall.str());
  int wall_count = 0;
  while (std::getline(wall_lines, line)) {
    EXPECT_NE(line.find("\"chan\":\"wall\""), std::string::npos) << line;
    ++wall_count;
  }
  EXPECT_EQ(wall_count, 2);  // epoch_wall + summary_wall
  EXPECT_EQ(telemetry.events_emitted(), 7);
}

// --------------------------------------- histogram JSON thread-identity

std::string run_world_histogram_json(int num_threads) {
  sim::WorldSpec spec;
  spec.family = sim::WorldFamily::kGrid;
  spec.seed = 11;
  const sim::SimWorld world = sim::generate_world(spec);

  EpochEngineConfig config;
  config.max_batch = 32;
  config.solver.num_threads = num_threads;
  EpochEngine engine(world.instance.shared_graph(), config);

  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < world.instance.requests().size(); ++i) {
    TimedRequest timed;
    timed.request = world.instance.requests()[i];
    timed.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    timed.duration = i < world.durations.size() ? world.durations[i] : kInf;
    timed.sequence = static_cast<std::int64_t>(i);
    batch.push_back(timed);
    if (batch.size() == 32) {
      engine.run_epoch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) engine.run_epoch(batch);
  return engine.metrics().admission_delay().to_json();
}

TEST(HistogramJson, ByteIdenticalAcrossThreadCounts) {
  // The satellite pin: GeometricHistogram::to_json() feeds the det
  // channel, so its serialization must be byte-identical for any OpenMP
  // thread count — bucket membership is a pure function of the recorded
  // (deterministic) delays, and the formatter is canonical.
  const std::string t1 = run_world_histogram_json(1);
  EXPECT_FALSE(t1.empty());
  EXPECT_NE(t1.find("\"count\":"), std::string::npos);
  EXPECT_NE(t1.find("\"buckets\":"), std::string::npos);
  if (!openmp_available()) GTEST_SKIP() << "no OpenMP in this build";
  const std::string t4 = run_world_histogram_json(4);
  EXPECT_EQ(t1, t4);
}

TEST(HistogramJson, BucketsAreGeometricEdges) {
  GeometricHistogram hist(1.0, 2.0, 8);
  hist.record(1.5);   // [1, 2)
  hist.record(3.0);   // [2, 4)
  hist.record(3.9);   // [2, 4)
  // Edges come from the same min*growth^i formula percentile() uses,
  // through the canonical formatter — build the expectation identically
  // rather than assuming exp(log(2)*i) rounds to an integer.
  const auto edge = [](int i) {
    return json_double(std::exp(std::log(2.0) * static_cast<double>(i)));
  };
  const std::string expected = "{\"count\":3,\"buckets\":[[" + edge(0) + "," +
                               edge(1) + ",1],[" + edge(1) + "," + edge(2) +
                               ",2]]}";
  EXPECT_EQ(hist.to_json(), expected);
}

// --------------------------------------------------- in-service oracles

TEST(SanityOracles, HealthyEngineUnderChurnIsClean) {
  sim::WorldSpec spec;
  spec.family = sim::WorldFamily::kGrid;
  spec.seed = 3;
  spec.durations = DurationProfile::kExponential;
  const sim::SimWorld world = sim::generate_world(spec);

  EpochEngineConfig config;
  config.max_batch = 16;
  EpochEngine engine(world.instance.shared_graph(), config);
  EXPECT_EQ(obs::sanity_check_count(engine), 3);

  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < world.instance.requests().size(); ++i) {
    TimedRequest timed;
    timed.request = world.instance.requests()[i];
    timed.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    timed.duration = i < world.durations.size() ? world.durations[i] : kInf;
    timed.sequence = static_cast<std::int64_t>(i);
    batch.push_back(timed);
    if (batch.size() == 16) {
      engine.run_epoch(batch);
      batch.clear();
      // The in-service cadence: oracles between epochs, on live state.
      EXPECT_TRUE(obs::run_sanity_checks(engine).empty());
    }
  }
  if (!batch.empty()) engine.run_epoch(batch);
  engine.reclaim_expired(1e9);  // full drain: no-leak must hold exactly
  EXPECT_TRUE(obs::run_sanity_checks(engine).empty());
}

TEST(SanityOracles, InjectedReclaimLeakIsCaught) {
  // The oracle-bite proof at unit level (the ctest proves it through the
  // daemon): leak 5% of expired capacity in the engine's own reclaim
  // path and both lease-conservation oracles must name the edge.
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  auto base = std::make_shared<const Graph>(std::move(g));

  EpochEngineConfig config;
  config.max_batch = 1;
  config.inject_reclaim_leak = 0.05;
  EpochEngine engine(base, config);

  engine.run_epoch({make_timed(0.0, 0, 1.0, 1.0, 0.3, 0, 1)});
  EXPECT_TRUE(obs::run_sanity_checks(engine).empty());  // not expired yet

  engine.reclaim_expired(1.0);  // expiry leaks 0.05 of the edge
  const std::vector<obs::SanityViolation> violations =
      obs::run_sanity_checks(engine);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].check, "temporal-conserve");
  EXPECT_EQ(violations[1].check, "temporal-no-leak");
  EXPECT_NE(violations[0].detail.find("edge 0"), std::string::npos);
}

TEST(SanityOracles, LeaselessEngineRunsFeasibleOnly) {
  Graph g = Graph::directed(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  auto base = std::make_shared<const Graph>(std::move(g));
  EpochEngineConfig config;
  config.track_leases = false;
  EpochEngine engine(base, config);
  EXPECT_EQ(obs::sanity_check_count(engine), 1);
  EXPECT_TRUE(obs::run_sanity_checks(engine).empty());
}

// ---------------------------------------------- det-event thread-identity

std::string run_world_telemetry(int num_threads) {
  sim::WorldSpec spec;
  spec.family = sim::WorldFamily::kRandomSparse;
  spec.seed = 5;
  spec.durations = DurationProfile::kExponential;
  const sim::SimWorld world = sim::generate_world(spec);

  EpochEngineConfig config;
  config.max_batch = 16;
  config.solver.num_threads = num_threads;
  EpochEngine engine(world.instance.shared_graph(), config);

  std::ostringstream det;
  obs::StreamSink sink(&det, nullptr);
  obs::EpochTelemetry telemetry(&sink, {/*histogram_every=*/2,
                                        /*wall_events=*/false});
  std::vector<TimedRequest> batch;
  for (std::size_t i = 0; i < world.instance.requests().size(); ++i) {
    TimedRequest timed;
    timed.request = world.instance.requests()[i];
    timed.arrival_time = i < world.arrivals.size() ? world.arrivals[i] : 0.0;
    timed.duration = i < world.durations.size() ? world.durations[i] : kInf;
    timed.sequence = static_cast<std::int64_t>(i);
    batch.push_back(timed);
    if (batch.size() == 16) {
      telemetry.on_epoch(engine.run_epoch(batch), engine.metrics());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    telemetry.on_epoch(engine.run_epoch(batch), engine.metrics());
  }
  const auto* ledger = engine.lease_ledger();
  telemetry.finish(engine.metrics(),
                   ledger != nullptr ? ledger->active_count() : 0,
                   engine.metrics().occupancy(), /*wall_seconds=*/0.0,
                   /*requests_per_second=*/0.0);
  return det.str();
}

TEST(Telemetry, DetStreamByteIdenticalAcrossThreadCounts) {
  // The acceptance criterion at unit level: the full det-channel JSONL
  // stream of a lease-churning world is byte-identical across thread
  // counts (the serve golden ctest re-proves it through the daemon).
  const std::string t1 = run_world_telemetry(1);
  EXPECT_NE(t1.find("\"event\":\"epoch\""), std::string::npos);
  EXPECT_NE(t1.find("\"event\":\"summary\""), std::string::npos);
  if (!openmp_available()) GTEST_SKIP() << "no OpenMP in this build";
  EXPECT_EQ(t1, run_world_telemetry(4));
}

}  // namespace
}  // namespace tufp
