// The approximation-ratio lab (DESIGN.md §9): solver registry, beta
// rescaling, the paper's headline curve (quality improves with the
// capacity-to-demand ratio), certification soundness and thread-count
// determinism of the parallel sweep.
#include "tufp/lab/sweep.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "tufp/lab/solvers.hpp"
#include "tufp/lab/solvers_compat.hpp"
#include "tufp/sim/world_gen.hpp"
#include "tufp/util/math.hpp"
#include "tufp/workload/scenarios.hpp"

namespace tufp {
namespace {

using lab::LabSolveConfig;
using lab::SweepCell;
using lab::SweepConfig;
using lab::SweepResult;
using lab::SweepSummaryRow;

SweepConfig acceptance_config() {
  SweepConfig config;
  config.seed = 1;
  config.families = {sim::WorldFamily::kStaircase, sim::WorldFamily::kGrid};
  config.solvers = {"bounded", "exact"};
  config.betas = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  config.worlds_per_family = 4;
  return config;
}

TEST(LabSolvers, CatalogueIsCompleteAndResolvable) {
  const auto catalogue = lab::solver_catalogue();
  ASSERT_EQ(catalogue.size(), 6u);
  for (const lab::LabSolverEntry& entry : catalogue) {
    EXPECT_EQ(lab::find_solver(entry.name), &entry);
  }
  EXPECT_EQ(lab::find_solver("no-such-solver"), nullptr);
}

TEST(LabSolvers, ExactGatesItselfOnLargeInstances) {
  const sim::SimWorld world =
      sim::generate_world({sim::WorldFamily::kGrid, 9});
  LabSolveConfig config;
  config.exact_max_requests = 1;
  const lab::LabSolve solve = lab::run_solver_on_instance(
      *lab::find_solver("exact"), world.instance.normalized(), config);
  EXPECT_FALSE(solve.ran);
  EXPECT_FALSE(solve.note.empty());
}

TEST(LabSolvers, DeprecatedInstanceShimStillCompilesAndForwards) {
  const sim::SimWorld world =
      sim::generate_world({sim::WorldFamily::kStaircase, 3});
  const UfpInstance instance = world.instance.normalized();
  LabSolveConfig config;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const lab::LabSolve via_shim =
      lab::run_solver(*lab::find_solver("greedy-value"), instance, config);
#pragma GCC diagnostic pop
  const lab::LabSolve direct = lab::run_solver_on_instance(
      *lab::find_solver("greedy-value"), instance, config);
  EXPECT_TRUE(via_shim.ran);
  EXPECT_EQ(via_shim.value, direct.value);
  EXPECT_EQ(via_shim.selected, direct.selected);
}

TEST(LabSweep, RejectsUnknownSolverAndOutOfDomainBeta) {
  SweepConfig config = acceptance_config();
  config.solvers = {"bounded", "nonsense"};
  EXPECT_THROW(lab::run_beta_sweep(config), std::invalid_argument);
  config = acceptance_config();
  config.betas = {0.5};
  EXPECT_THROW(lab::run_beta_sweep(config), std::invalid_argument);
}

TEST(LabSweep, RescalingHitsTheRequestedBetaExactly) {
  const sim::SimWorld world =
      sim::generate_world({sim::WorldFamily::kRing, 17});
  const UfpInstance normalized = world.instance.normalized();
  for (double beta : {1.0, 4.0, 32.0}) {
    const UfpInstance scaled =
        normalized.with_capacity_scale(beta / normalized.bound_B());
    EXPECT_NEAR(scaled.bound_B() / scaled.max_demand(), beta, 1e-9 * beta);
  }
}

// The PR's acceptance pin: every reported value sits below its certified
// upper bound, every measured ratio below its certified ratio, and the
// bounded solver's mean certified ratio never worsens by more than the
// noise tolerance as beta grows on the staircase and grid families.
TEST(LabSweep, CertifiedRatiosSoundAndNonWorseningInBeta) {
  const SweepResult result = lab::run_beta_sweep(acceptance_config());

  int certified_cells = 0;
  int measured_cells = 0;
  for (const SweepCell& cell : result.cells) {
    EXPECT_EQ(cell.in_regime,
              cell.beta >= regime_capacity(cell.edges,
                                           acceptance_config().solve.epsilon));
    if (!cell.ran) continue;
    EXPECT_TRUE(approx_le(cell.value, cell.upper_bound, 1e-9, 1e-9))
        << cell.solver << " value " << cell.value << " above bound "
        << cell.upper_bound << " (" << sim::family_name(cell.family)
        << ", beta " << cell.beta << ", world " << cell.world_index << ")";
    if (cell.certified_ratio >= 0.0) ++certified_cells;
    if (cell.exact_opt >= 0.0) {
      // OPT itself obeys the certificate, so the measured ratio OPT/value
      // can never exceed the certified ratio UB/value.
      EXPECT_TRUE(approx_le(cell.exact_opt, cell.upper_bound, 1e-9, 1e-9));
      if (cell.measured_ratio >= 0.0) {
        ++measured_cells;
        EXPECT_TRUE(approx_le(cell.measured_ratio, cell.certified_ratio,
                              1e-9, 1e-9));
      }
    }
  }
  EXPECT_GT(certified_cells, 0);
  EXPECT_GT(measured_cells, 0) << "exact never proved OPT on any cell";

  // Mean certified ratio of `bounded` per (family, beta), in beta order.
  std::map<std::pair<int, double>, double> curve;
  for (const SweepSummaryRow& row : result.summary) {
    if (row.solver != "bounded" || row.cells == 0) continue;
    curve[{static_cast<int>(row.family), row.beta}] = row.mean_ratio;
  }
  for (const sim::WorldFamily family : acceptance_config().families) {
    double previous = -1.0;
    for (const double beta : acceptance_config().betas) {
      const auto it = curve.find({static_cast<int>(family), beta});
      ASSERT_NE(it, curve.end())
          << sim::family_name(family) << " beta " << beta;
      const double ratio = it->second;
      EXPECT_GE(ratio, 1.0 - 1e-9);
      if (previous >= 0.0) {
        // 10% noise tolerance on the 4-world mean; the trend across the
        // grid must match the paper's large-capacity story.
        EXPECT_LE(ratio, previous * 1.10 + 1e-9)
            << sim::family_name(family) << ": ratio worsened from "
            << previous << " to " << ratio << " at beta " << beta;
      }
      previous = ratio;
    }
    // Endpoint check: by beta = 32 the regime is wide enough that the
    // certified ratio collapses to ~1.
    EXPECT_LE(previous, 1.05) << sim::family_name(family);
  }
}

TEST(LabSweep, JsonByteIdenticalAcrossThreadCounts) {
  SweepConfig config = acceptance_config();
  config.solvers = {"bounded", "greedy-density"};
  config.worlds_per_family = 2;
  config.betas = {2.0, 8.0};
  config.num_threads = 1;
  const std::string one = lab::sweep_to_json(lab::run_beta_sweep(config));
  config.num_threads = 4;
  const std::string four = lab::sweep_to_json(lab::run_beta_sweep(config));
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"sweep\": \"beta\""), std::string::npos);
}

TEST(LabSweep, WorldSeedsAddressableAcrossConfigSubsets) {
  // Shrinking the family set or the beta grid must not renumber the
  // surviving cells' worlds (the fuzz-style addressability contract).
  SweepConfig wide = acceptance_config();
  wide.solvers = {"greedy-value"};
  wide.worlds_per_family = 2;
  SweepConfig narrow = wide;
  narrow.families = {sim::WorldFamily::kGrid};
  narrow.betas = {4.0};
  const SweepResult a = lab::run_beta_sweep(wide);
  const SweepResult b = lab::run_beta_sweep(narrow);
  for (const SweepCell& cell : b.cells) {
    bool found = false;
    for (const SweepCell& ref : a.cells) {
      if (ref.family == cell.family && ref.world_index == cell.world_index &&
          ref.beta == cell.beta) {
        EXPECT_EQ(ref.world_seed, cell.world_seed);
        EXPECT_EQ(ref.value, cell.value);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace tufp
