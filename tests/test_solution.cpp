#include "tufp/ufp/solution.hpp"

#include <gtest/gtest.h>

namespace tufp {
namespace {

UfpInstance two_path_instance() {
  // 0 ->(e0) 1 ->(e1) 2, plus direct 0 ->(e2) 2; capacities 1.
  Graph g = Graph::directed(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.finalize();
  return UfpInstance(std::move(g),
                     {{0, 2, 0.6, 2.0}, {0, 2, 0.6, 3.0}, {0, 1, 0.3, 1.0}});
}

TEST(UfpSolution, AssignAndQuery) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  EXPECT_EQ(sol.num_selected(), 0);
  sol.assign(0, {0, 1});
  sol.assign(1, {2});
  EXPECT_TRUE(sol.is_selected(0));
  EXPECT_TRUE(sol.is_selected(1));
  EXPECT_FALSE(sol.is_selected(2));
  EXPECT_EQ(sol.num_selected(), 2);
  EXPECT_EQ(*sol.path_of(0), (Path{0, 1}));
  EXPECT_EQ(sol.path_of(2), nullptr);
  EXPECT_EQ(sol.selected_requests(), (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(sol.total_value(inst), 5.0);
}

TEST(UfpSolution, ExactnessRejectsDoubleAssign) {
  UfpSolution sol(2);
  sol.assign(0, {0});
  EXPECT_THROW(sol.assign(0, {2}), std::invalid_argument);
  EXPECT_THROW(sol.assign(1, {}), std::invalid_argument);
  EXPECT_THROW(sol.assign(5, {0}), std::invalid_argument);
}

TEST(UfpSolution, EdgeLoads) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  sol.assign(0, {0, 1});
  sol.assign(2, {0});
  const auto loads = sol.edge_loads(inst);
  EXPECT_DOUBLE_EQ(loads[0], 0.9);
  EXPECT_DOUBLE_EQ(loads[1], 0.6);
  EXPECT_DOUBLE_EQ(loads[2], 0.0);
}

TEST(UfpSolution, FeasibilityAccepts) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  sol.assign(0, {0, 1});
  sol.assign(1, {2});
  const auto report = sol.check_feasibility(inst);
  EXPECT_TRUE(report.feasible) << report.message;
}

TEST(UfpSolution, FeasibilityCatchesOverload) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  sol.assign(0, {0, 1});
  sol.assign(1, {0, 1});  // 1.2 > 1.0 on e0, e1
  const auto report = sol.check_feasibility(inst);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.message.find("overloaded"), std::string::npos);
}

TEST(UfpSolution, FeasibilityCatchesWrongTerminals) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  sol.assign(2, {0, 1});  // request 2 targets vertex 1, path goes to 2
  const auto report = sol.check_feasibility(inst);
  EXPECT_FALSE(report.feasible);
}

TEST(UfpSolution, FeasibilityCatchesDisconnectedWalk) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(3);
  sol.assign(0, {1, 0});  // edges out of order: not a walk from 0
  EXPECT_FALSE(sol.check_feasibility(inst).feasible);
}

TEST(UfpSolution, InstanceArityMismatchThrows) {
  const UfpInstance inst = two_path_instance();
  UfpSolution sol(2);
  EXPECT_THROW(sol.total_value(inst), std::invalid_argument);
}

TEST(UfpMultiSolution, RepetitionsAccumulate) {
  const UfpInstance inst = two_path_instance();
  UfpMultiSolution sol(3);
  sol.add(0, {0, 1});
  sol.add(0, {2});
  sol.add(1, {2});
  EXPECT_EQ(sol.repetitions_of(0), 2);
  EXPECT_EQ(sol.repetitions_of(1), 1);
  EXPECT_EQ(sol.repetitions_of(2), 0);
  EXPECT_DOUBLE_EQ(sol.total_value(inst), 2.0 + 2.0 + 3.0);
  const auto loads = sol.edge_loads(inst);
  EXPECT_DOUBLE_EQ(loads[2], 1.2);
}

TEST(UfpMultiSolution, FeasibilityChecksAggregateLoad) {
  const UfpInstance inst = two_path_instance();
  UfpMultiSolution sol(3);
  sol.add(0, {2});
  EXPECT_TRUE(sol.check_feasibility(inst).feasible);
  sol.add(1, {2});  // 1.2 > 1.0 on e2
  EXPECT_FALSE(sol.check_feasibility(inst).feasible);
}

TEST(UfpMultiSolution, UndirectedPathsValidated) {
  Graph g = Graph::undirected(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  UfpInstance inst(std::move(g), {{2, 0, 1.0, 1.0}});
  UfpMultiSolution sol(1);
  sol.add(0, {1, 0});  // traversed backwards: valid in undirected graphs
  EXPECT_TRUE(sol.check_feasibility(inst).feasible);
}

}  // namespace
}  // namespace tufp
