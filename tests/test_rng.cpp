#include "tufp/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tufp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation (Vigna).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowHitsAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntEmptyRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_int(1, 0), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Zipf, RankOneIsMostFrequent) {
  Rng rng(23);
  ZipfSampler zipf(20, 1.2);
  std::vector<int> counts(21, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
}

TEST(Zipf, SupportBounds) {
  Rng rng(29);
  ZipfSampler zipf(5, 0.8);
  for (int i = 0; i < 2000; ++i) {
    const int k = zipf.sample(rng);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 5);
  }
}

TEST(Zipf, ExponentZeroIsUniformish) {
  Rng rng(31);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]) / n, 0.25,
                0.02);
  }
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tufp
